// bench_campaign: runner throughput (cells/sec) vs. thread count.
//
// Runs one small synthetic campaign through exp::run_campaign at 1, 2,
// 4 and 8 worker threads and reports cells/sec and speedup over the
// single-threaded run. Also asserts (cheaply) that every thread count
// produced identical per-cell CSV output — the determinism contract the
// runner is built around.
#include <chrono>
#include <iostream>

#include "common.hpp"
#include "exp/campaign.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

int main() {
  using namespace pjsb;
  bench::print_header(
      "bench_campaign",
      "exp::run_campaign throughput over a 2x3x2x2 synthetic campaign");

  exp::CampaignSpec spec;
  exp::WorkloadSpec lublin;
  lublin.label = "lublin99";
  lublin.model = workload::ModelKind::kLublin99;
  lublin.jobs = 400;
  exp::WorkloadSpec jann;
  jann.label = "jann97";
  jann.model = workload::ModelKind::kJann97;
  jann.jobs = 400;
  spec.workloads = {lublin, jann};
  spec.schedulers = {"fcfs", "easy", "sjf"};
  exp::ConfigSpec open;
  exp::ConfigSpec outages;
  outages.label = "open+outages";
  outages.outages = true;
  spec.configs = {open, outages};
  spec.replications = 2;
  spec.master_seed = bench::kSeed;
  spec.nodes = 128;

  const std::size_t cells = spec.cell_count();
  std::string reference_csv;
  double base_seconds = 0.0;

  util::Table table({"threads", "cells", "seconds", "cells/sec", "speedup"});
  for (const int threads : {1, 2, 4, 8}) {
    exp::RunnerOptions options;
    options.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const auto run = exp::run_campaign(spec, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto csv = exp::cells_csv(run);
    if (threads == 1) {
      reference_csv = csv;
      base_seconds = seconds;
    } else if (csv != reference_csv) {
      std::cerr << "DETERMINISM VIOLATION at " << threads << " threads\n";
      return 1;
    }
    table.row()
        .cell(threads)
        .cell(cells)
        .cell(seconds, 3)
        .cell(seconds > 0 ? double(cells) / seconds : 0.0, 2)
        .cell(seconds > 0 ? base_seconds / seconds : 0.0, 2);
  }
  std::cout << table.to_string();
  std::cout << "\nper-cell output identical at every thread count\n";
  return 0;
}
