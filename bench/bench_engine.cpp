// E11 — DES substrate performance: simulated jobs and events per
// second, per scheduler. Uses the shared bench harness (--quick,
// --json) so CI can track the throughput trajectory without a
// google-benchmark dependency.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace pjsb;
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "E11: DES substrate performance",
      "Replay throughput (jobs/s, events/s) per scheduler on a common "
      "Lublin'99 workload.");

  const std::size_t jobs = options.quick ? 500 : 2000;
  const int reps = options.quick ? 1 : 3;
  const auto trace =
      bench::make_workload(workload::ModelKind::kLublin99, jobs, 128, 0.7);

  bench::JsonReporter json("bench_engine");
  util::Table table({"scheduler", "reps", "wall_s", "jobs/s", "events/s"});
  for (const char* name : {"fcfs", "sjf", "easy", "conservative", "gang4"}) {
    bench::WallTimer timer;
    std::int64_t events = 0;
    std::int64_t completed = 0;
    for (int r = 0; r < reps; ++r) {
      const auto result =
          sim::replay(trace, sim::SimulationSpec{}.with_scheduler(name));
      events += result.stats.events_processed;
      completed += result.stats.jobs_completed;
    }
    const double secs = timer.seconds();
    const double jobs_per_s = double(completed) / secs;
    const double events_per_s = double(events) / secs;
    table.row()
        .cell(name)
        .cell(reps)
        .cell(secs, 2)
        .cell(jobs_per_s, 0)
        .cell(events_per_s, 0);
    json.add(std::string("replay_") + name, "jobs", jobs_per_s, "jobs/s");
    json.add(std::string("replay_") + name, "events", events_per_s,
             "events/s");
  }
  std::cout << table.to_string() << '\n';
  json.add_table("replay", table);
  return json.write(options.json_path) ? 0 : 1;
}
