// E11 — DES substrate performance (google-benchmark): simulated jobs
// and events per second, per scheduler.
#include <benchmark/benchmark.h>

#include "common.hpp"

namespace {

using namespace pjsb;

const swf::Trace& workload_trace() {
  static const swf::Trace trace =
      bench::make_workload(workload::ModelKind::kLublin99, 2000, 128, 0.7);
  return trace;
}

void run_scheduler(benchmark::State& state, const char* name) {
  std::int64_t events = 0;
  std::int64_t jobs = 0;
  for (auto _ : state) {
    const auto result =
        sim::replay(workload_trace(), sched::make_scheduler(name));
    events += result.stats.events_processed;
    jobs += result.stats.jobs_completed;
    benchmark::DoNotOptimize(result.completed.size());
  }
  state.counters["events/s"] = benchmark::Counter(
      double(events), benchmark::Counter::kIsRate);
  state.counters["jobs/s"] =
      benchmark::Counter(double(jobs), benchmark::Counter::kIsRate);
}

void BM_ReplayFcfs(benchmark::State& state) { run_scheduler(state, "fcfs"); }
void BM_ReplaySjf(benchmark::State& state) { run_scheduler(state, "sjf"); }
void BM_ReplayEasy(benchmark::State& state) { run_scheduler(state, "easy"); }
void BM_ReplayConservative(benchmark::State& state) {
  run_scheduler(state, "conservative");
}
void BM_ReplayGang(benchmark::State& state) { run_scheduler(state, "gang4"); }

BENCHMARK(BM_ReplayFcfs);
BENCHMARK(BM_ReplaySjf);
BENCHMARK(BM_ReplayEasy);
BENCHMARK(BM_ReplayConservative);
BENCHMARK(BM_ReplayGang);

}  // namespace

BENCHMARK_MAIN();
