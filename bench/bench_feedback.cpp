// E5 — feedback methodology (section 2.2): "the instant at which a job
// is submitted to the system may depend on the termination of a
// previous job ... this effect is lost when a log is replayed."
//
// We annotate a workload with inferred dependencies (fields 17/18) and
// replay it open- and closed-loop on a fast scheduler (EASY) and a slow
// one (FCFS). Expected shape: open-loop replay overstates the
// degradation on the slow scheduler, because in reality users wait for
// results before submitting more work (the closed loop self-throttles).
#include "common.hpp"

#include <map>

#include "core/feedback/rewrite.hpp"

int main() {
  using namespace pjsb;
  bench::print_header(
      "E5: open-loop vs closed-loop replay",
      "Expected: closed-loop waits are lower than open-loop waits on "
      "the slow scheduler (feedback self-throttles the arrival stream).");

  auto trace =
      bench::make_workload(workload::ModelKind::kFeitelson96, 2500, 64,
                           0.95);
  // Derive a plausible observed schedule to infer dependencies from.
  {
    const auto base =
        sim::replay(trace, sim::SimulationSpec{}.with_scheduler("easy"));
    std::map<std::int64_t, std::int64_t> waits;
    for (const auto& c : base.completed) waits[c.id] = c.wait();
    for (auto& r : trace.records) {
      const auto it = waits.find(r.job_number);
      if (it != waits.end()) r.wait_time = it->second;
    }
  }
  feedback::InferenceOptions inference;
  inference.max_think_time = 2 * 3600;
  const auto annotated = feedback::annotate_trace(trace, inference);
  std::cout << "jobs with inferred dependencies: " << annotated << " / "
            << trace.records.size() << "\n\n";

  util::Table table({"scheduler", "loop", "mean_wait_s", "mean_bsld",
                     "makespan_h"});
  for (const std::string scheduler : {"easy", "fcfs"}) {
    for (const bool closed : {false, true}) {
      sim::SimulationSpec spec;
      spec.scheduler = scheduler;
      spec.closed_loop = closed;
      const auto result = sim::replay(trace, spec);
      const auto report =
          metrics::compute_report(result.completed, result.stats);
      table.row()
          .cell(scheduler)
          .cell(closed ? "closed" : "open")
          .cell(report.mean_wait, 0)
          .cell(report.mean_bounded_slowdown, 2)
          .cell(double(report.makespan) / 3600.0, 2);
    }
  }
  std::cout << table.to_string() << '\n';
  return 0;
}
