// E12 — internal-structure strawman (section 2.2, [23]) and the gang
// scheduling claim of [22]: "if synchronization is frequent, then
// either gang scheduling or IPS cognizant space slicing mechanisms are
// needed, but if common IPS is coarse grained it may be unnecessary."
//
// Sweep barrier granularity and multiprogramming level; report the
// slowdown of uncoordinated time slicing relative to gang scheduling.
// Expected shape: the penalty explodes as granularity shrinks below
// the quantum, and vanishes for coarse-grain jobs.
#include "common.hpp"

#include "util/stats.hpp"
#include "workload/structure.hpp"

int main() {
  using namespace pjsb;
  bench::print_header(
      "E12: gang scheduling vs uncoordinated time slicing by "
      "granularity",
      "Expected: uncoordinated/gang ratio >> 1 for fine grain, ~1 for "
      "coarse grain; ratio grows with multiprogramming level.");

  const double quantum = 0.1;  // 100ms scheduling quantum
  util::Table table({"granularity_s", "mpl", "gang_runtime_s",
                     "uncoord_runtime_s", "penalty"});
  for (const double granularity : {0.01, 0.05, 0.2, 1.0, 5.0, 20.0}) {
    for (const int mpl : {2, 4}) {
      util::Rng rng(bench::kSeed + 11);
      workload::StructureParams params;
      params.processors = 32;
      params.barriers = 200;
      params.granularity = granularity;
      params.variance_cv = 0.25;

      util::OnlineStats gang_stats, unco_stats;
      for (int rep = 0; rep < 5; ++rep) {
        const auto job = workload::generate_structured_job(params, rng);
        gang_stats.add(workload::gang_runtime(job, mpl));
        unco_stats.add(
            workload::uncoordinated_runtime(job, mpl, quantum, rng));
      }
      table.row()
          .cell(granularity, 2)
          .cell(mpl)
          .cell(gang_stats.mean(), 1)
          .cell(unco_stats.mean(), 1)
          .cell(unco_stats.mean() / gang_stats.mean(), 2);
    }
  }
  std::cout << table.to_string() << '\n';
  return 0;
}
