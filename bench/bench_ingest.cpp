// PR10 — GB/s SWF ingest.
//
// Measures the full ingest pipeline against the legacy implementations
// on one generated on-disk trace:
//   * legacy parse: the istream-based read_swf_file, the pre-PR10 rate;
//   * fast parse: the mmap'd chunk-parallel FastReader at 1/2/8
//     threads, with records/header/errors compared against the legacy
//     result (the records_identical bit gates in CI — a fast parser
//     that disagrees with the oracle scores zero);
//   * stream drain: swf::StreamReader, whose line scanner is now the
//     same fast scanner, drained record by record in O(1) memory;
//   * write: the buffered to_chars emitter vs the ostream formatting
//     the writer used before PR10 (reproduced here as the baseline).
//
// The headline gate metrics are fast_parse.speedup_vs_legacy (>= 5x)
// and fast_parse.records_identical (== 1). Default sizes: 1M jobs
// (--quick: 60k).
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/swf/fast_reader.hpp"
#include "core/swf/stream_reader.hpp"
#include "core/swf/writer.hpp"
#include "workload/stream.hpp"

namespace {

using namespace pjsb;

constexpr int kThreadCounts[] = {1, 2, 8};

int fail(const std::string& message) {
  std::cerr << "bench_ingest: " << message << '\n';
  return 1;
}

/// The ostream-based record formatting write_swf used before the
/// buffered emitter, kept verbatim as the write baseline.
void legacy_write(std::ostream& out, const swf::Trace& trace) {
  const auto& h = trace.header;
  for (const auto& line : h.to_comment_lines()) out << line << '\n';
  for (const auto& r : trace.records) out << r.to_line() << '\n';
}

bool same_parse(const swf::ReadResult& a, const swf::ReadResult& b) {
  return a.trace.records == b.trace.records &&
         a.trace.header == b.trace.header && a.errors == b.errors;
}

double mb_per_s(std::uintmax_t bytes, double seconds) {
  return seconds > 0 ? double(bytes) / 1e6 / seconds : 0.0;
}

/// Times `reps` runs of `fn` and returns the fastest. The shared box
/// this runs on jitters +-15% run to run; min-of-N is the standard
/// noise-free estimator, applied symmetrically to every path measured
/// here so no side gains an advantage.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    bench::WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  const std::uint64_t jobs = options.quick ? 60'000 : 1'000'000;
  const int reps = options.quick ? 5 : 3;

  bench::print_header(
      "PR10: GB/s SWF ingest",
      "The mmap'd chunk-parallel parser sustains >= 5x the legacy parse "
      "rate while staying byte-identical on records, header and errors.");

  // One on-disk trace, streamed to /tmp in constant memory.
  const std::string dir =
      "/tmp/bench_ingest." + std::to_string(std::uint64_t(getpid()));
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    return fail("cannot create " + dir);
  }
  const std::string path = dir + "/trace.swf";
  {
    workload::GeneratorSpec gen;
    gen.kind = workload::ModelKind::kLublin99;
    gen.config.machine_nodes = 256;
    gen.config.mean_interarrival = 1300.0;
    gen.seed = bench::kSeed;
    gen.max_jobs = jobs;
    workload::ModelJobSource source(gen);
    std::ofstream out(path);
    if (!out) return fail("cannot write " + path);
    if (swf::write_swf_stream(out, source) != jobs) {
      return fail("short generate");
    }
  }
  std::uintmax_t bytes = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    bytes = std::uintmax_t(in.tellg());
  }
  std::cout << "trace: " << jobs << " jobs, " << double(bytes) / 1e6
            << " MB\n\n";

  bench::JsonReporter json("bench_ingest");
  util::Table table({"path", "MB/s", "speedup", "identical"});

  // Legacy parse baseline.
  swf::ReadResult legacy;
  const double legacy_s =
      best_seconds(reps, [&] { legacy = swf::read_swf_file(path); });
  if (!legacy.ok()) return fail("legacy parse reported errors");
  const double legacy_rate = mb_per_s(bytes, legacy_s);
  json.add("legacy_parse", "mb_per_s", legacy_rate, "MB/s");
  table.row().cell("legacy read_swf_file").cell(legacy_rate, 1).cell("-").cell(
      "-");

  // Fast parse at each thread count; identical means identical at
  // EVERY thread count, not just the fastest.
  double best_rate = 0.0;
  bool all_identical = true;
  for (const int threads : kThreadCounts) {
    swf::FastReaderOptions fast_options;
    fast_options.threads = threads;
    swf::ReadResult fast;
    const double seconds = best_seconds(
        reps, [&] { fast = swf::fast_read_swf_file(path, fast_options); });
    const bool identical = same_parse(fast, legacy);
    all_identical = all_identical && identical;
    const double rate = mb_per_s(bytes, seconds);
    best_rate = std::max(best_rate, rate);
    const std::string name = "fast_parse_t" + std::to_string(threads);
    json.add(name, "mb_per_s", rate, "MB/s");
    json.add(name, "records_identical", identical ? 1.0 : 0.0, "bool");
    table.row()
        .cell("fast threads=" + std::to_string(threads))
        .cell(rate, 1)
        .cell(rate / legacy_rate, 2)
        .cell(identical ? "yes" : "NO");
  }
  json.add("fast_parse", "mb_per_s", best_rate, "MB/s");
  json.add("fast_parse", "speedup_vs_legacy", best_rate / legacy_rate,
           "ratio");
  json.add("fast_parse", "records_identical", all_identical ? 1.0 : 0.0,
           "bool");

  // StreamReader drain: the O(1)-memory path on the shared scanner.
  {
    std::size_t records = 0;
    bool stream_errors = false;
    const double seconds = best_seconds(reps, [&] {
      swf::StreamReader reader(path);
      records = 0;
      while (reader.next()) ++records;
      stream_errors = stream_errors || reader.error_count() > 0;
    });
    if (stream_errors) return fail("stream parse errors");
    const double rate = mb_per_s(bytes, seconds);
    json.add("stream_drain", "mb_per_s", rate, "MB/s");
    json.add("stream_drain", "records_per_s", double(records) / seconds,
             "records/s");
    table.row()
        .cell("stream drain")
        .cell(rate, 1)
        .cell(rate / legacy_rate, 2)
        .cell("-");
  }

  // Write: buffered to_chars emitter vs the old ostream formatting.
  {
    std::string rendered;
    const double fast_s = best_seconds(
        reps, [&] { rendered = swf::write_swf_string(legacy.trace); });

    std::string old_rendered;
    const double old_s = best_seconds(reps, [&] {
      std::ostringstream out;
      legacy_write(out, legacy.trace);
      old_rendered = out.str();
    });
    if (rendered != old_rendered) return fail("writer output changed");

    const double fast_rate = mb_per_s(rendered.size(), fast_s);
    const double old_rate = mb_per_s(old_rendered.size(), old_s);
    json.add("write", "mb_per_s", fast_rate, "MB/s");
    json.add("legacy_write", "mb_per_s", old_rate, "MB/s");
    json.add("write", "speedup_vs_legacy", fast_rate / old_rate, "ratio");
    table.row()
        .cell("write (buffered)")
        .cell(fast_rate, 1)
        .cell(fast_rate / old_rate, 2)
        .cell(rendered == old_rendered ? "yes" : "NO");
  }

  std::cout << table.to_string() << '\n'
            << "fast parse best: " << best_rate << " MB/s ("
            << best_rate / legacy_rate << "x legacy), records identical: "
            << (all_identical ? "yes" : "NO") << '\n';
  json.add_table("ingest", table);
  if (!json.write(options.json_path)) return 1;

  if (std::system(("rm -rf " + dir).c_str()) != 0) {
    std::cerr << "bench_ingest: could not remove " << dir << '\n';
  }
  return all_identical ? 0 : 1;
}
