// E9 — Figure 1 + WARMstones (section 4.3): evaluate meta-schedulers
// over a canonical heterogeneous metasystem running a benchmark suite
// of annotated program graphs.
//
// Expected shape: information helps — min-predicted-wait beats random;
// the co-allocating policy is the only one that achieves simultaneous
// multi-site execution for coupled applications (via reservations).
#include "common.hpp"

#include "meta/warmstones.hpp"

int main() {
  using namespace pjsb;
  bench::print_header(
      "E9: meta-scheduler comparison on the WARMstones environment",
      "Expected: min-wait <= least-queued <= random on turnaround; "
      "co-alloc succeeds on coupled apps, others never co-allocate.");

  meta::WarmstonesConfig config;
  config.sites = meta::canonical_metasystem(bench::kSeed);
  for (auto& site : config.sites) site.background_jobs = 1200;
  config.apps = 30;
  config.mean_interarrival = 1200;
  config.seed = bench::kSeed;
  const auto suite = meta::generate_suite(config);

  std::size_t coupled = 0;
  for (const auto& app : suite) {
    if (app.graph.coupled && app.graph.modules.size() > 1) ++coupled;
  }
  std::cout << "suite: " << suite.size() << " applications (" << coupled
            << " coupled/co-allocation candidates), 3 sites "
               "(256/easy, 128/conservative, 64/easy)\n\n";

  std::vector<std::unique_ptr<meta::MetaScheduler>> policies;
  policies.push_back(meta::make_random_meta(1));
  policies.push_back(meta::make_least_queued_meta());
  policies.push_back(meta::make_min_wait_meta());
  policies.push_back(meta::make_coalloc_meta());

  util::Table table({"meta-scheduler", "completed", "mean_turnaround_s",
                     "mean_stretch", "coalloc", "util_alpha", "util_beta",
                     "util_gamma"});
  for (const auto& policy : policies) {
    const auto report = meta::evaluate(config, *policy, suite);
    table.row()
        .cell(report.metascheduler)
        .cell(report.completed_apps)
        .cell(report.mean_turnaround, 0)
        .cell(report.mean_stretch, 2)
        .cell(std::to_string(report.coalloc_successes) + "/" +
              std::to_string(report.coalloc_attempts))
        .cell(report.site_utilization.at(0), 3)
        .cell(report.site_utilization.at(1), 3)
        .cell(report.site_utilization.at(2), 3);
  }
  std::cout << table.to_string() << '\n';
  return 0;
}
