// E3 — the metric-conflict claim (section 1.2, citing [30]):
// "measurement using different metrics may lead to conflicting results
// ... contradicting results for the comparison of two scheduling
// algorithms if response time or slowdown were used as a metric."
//
// Workload: many short narrow jobs + a steady stream of long wide jobs.
// SJF crushes slowdown (short jobs never wait) but sacrifices the long
// jobs' response time; FCFS is the reverse. The harness prints the
// per-metric rankings and the discordant pair count.
#include "common.hpp"

#include "metrics/objective.hpp"
#include "util/stats.hpp"

namespace {

using namespace pjsb;

swf::Trace bimodal_workload() {
  util::Rng rng(bench::kSeed);
  std::vector<workload::RawModelJob> jobs;
  workload::ModelConfig config;
  config.jobs = 3000;
  config.machine_nodes = 64;
  double t = 0.0;
  for (std::size_t i = 0; i < config.jobs; ++i) {
    t += rng.exponential(1.0 / 55.0);
    workload::RawModelJob j;
    j.submit = std::int64_t(t);
    if (rng.bernoulli(0.85)) {
      j.procs = rng.uniform_int(1, 4);
      j.runtime = rng.uniform_int(30, 300);  // short & narrow
    } else {
      j.procs = rng.uniform_int(24, 56);
      j.runtime = rng.uniform_int(3600, 6 * 3600);  // long & wide
    }
    jobs.push_back(j);
  }
  return workload::package_jobs(std::move(jobs), config, "bimodal", rng);
}

}  // namespace

int main() {
  using namespace pjsb;
  bench::print_header(
      "E3: response time vs slowdown rank schedulers differently",
      "Expected: at least one scheduler pair flips order between mean "
      "response and mean bounded slowdown (claim of [30]).");

  const auto trace = bimodal_workload();
  const std::vector<std::string> schedulers = {"fcfs", "sjf", "easy"};
  std::vector<metrics::MetricsReport> reports;
  util::Table table({"scheduler", "mean_response_s", "mean_slowdown",
                     "mean_bsld", "util"});
  for (const auto& s : schedulers) {
    const auto report = bench::run_and_report(trace, s);
    table.row()
        .cell(s)
        .cell(report.mean_response, 0)
        .cell(report.mean_slowdown, 2)
        .cell(report.mean_bounded_slowdown, 2)
        .cell(report.utilization, 3);
    reports.push_back(report);
  }
  std::cout << table.to_string() << '\n';

  const auto by_response =
      metrics::rank_by_metric(metrics::MetricId::kMeanResponse, reports);
  const auto by_bsld = metrics::rank_by_metric(
      metrics::MetricId::kMeanBoundedSlowdown, reports);
  auto render = [&](const std::vector<std::size_t>& rank) {
    std::string out;
    for (std::size_t i : rank) {
      if (!out.empty()) out += " < ";
      out += schedulers[i];
    }
    return out;
  };
  std::cout << "ranking by mean response:          " << render(by_response)
            << "\nranking by mean bounded slowdown:  " << render(by_bsld)
            << '\n';
  const auto discordant =
      util::kendall_discordant_pairs(by_response, by_bsld);
  std::cout << "discordant scheduler pairs: " << discordant
            << (discordant > 0 ? "  -> METRIC CONFLICT REPRODUCED"
                               : "  -> no conflict at this load")
            << '\n';
  return 0;
}
