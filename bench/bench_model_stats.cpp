// E13 — workload-model characterization (section 2.1): "a statistical
// analysis shows that the one proposed by Lublin is relatively
// representative of multiple workloads."
//
// Without the original logs we characterize each model's marginals and
// measure pairwise distribution distances (two-sample KS statistic) on
// job size and runtime — the comparison machinery a [58]-style study
// needs. Expected shape: all models share the canonical invariants
// (power-of-two dominance, small-job dominance, heavy-tailed runtimes)
// while remaining statistically distinguishable from each other.
#include "common.hpp"

#include "util/stats.hpp"

namespace {

using namespace pjsb;

struct ModelSample {
  std::string name;
  std::vector<double> sizes;
  std::vector<double> runtimes;
  swf::TraceStats stats;
};

}  // namespace

int main() {
  using namespace pjsb;
  bench::print_header(
      "E13: workload model characterization and pairwise KS distances",
      "Expected: all models show power-of-two dominance, many small "
      "jobs, heavy-tailed runtimes (CV > 1); pairwise KS > 0 (the "
      "models are distinguishable, hence the need for a standard).");

  std::vector<ModelSample> samples;
  for (const auto kind : workload::all_models()) {
    util::Rng rng(bench::kSeed);
    workload::ModelConfig config;
    config.jobs = 5000;
    config.machine_nodes = 128;
    const auto trace = workload::generate(kind, config, rng);
    ModelSample s;
    s.name = workload::model_name(kind);
    for (const auto& r : trace.records) {
      s.sizes.push_back(double(r.allocated_procs));
      s.runtimes.push_back(double(r.run_time));
    }
    s.stats = trace.stats();
    samples.push_back(std::move(s));
  }

  util::Table table({"model", "mean_procs", "pow2_frac", "serial_frac",
                     "mean_runtime_s", "runtime_CV", "mean_mem_kb"});
  for (const auto& s : samples) {
    // Memory marginal (field 7) from a fresh generation.
    util::Rng rng(bench::kSeed);
    workload::ModelConfig config;
    config.jobs = 2000;
    config.machine_nodes = 128;
    const auto trace = workload::generate(
        s.name == "feitelson96"  ? workload::ModelKind::kFeitelson96
        : s.name == "jann97"     ? workload::ModelKind::kJann97
        : s.name == "lublin99"   ? workload::ModelKind::kLublin99
                                 : workload::ModelKind::kDowney97,
        config, rng);
    util::OnlineStats mem;
    for (const auto& r : trace.records) {
      if (r.used_memory_kb != swf::kUnknown) {
        mem.add(double(r.used_memory_kb));
      }
    }
    table.row()
        .cell(s.name)
        .cell(s.stats.mean_procs, 1)
        .cell(s.stats.fraction_power_of_two, 3)
        .cell(s.stats.fraction_serial, 3)
        .cell(s.stats.mean_runtime, 0)
        .cell(util::coefficient_of_variation(s.runtimes), 2)
        .cell(mem.mean(), 0);
  }
  std::cout << table.to_string() << '\n';

  util::Table ks({"model A", "model B", "KS(size)", "KS(runtime)"});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t j = i + 1; j < samples.size(); ++j) {
      ks.row()
          .cell(samples[i].name)
          .cell(samples[j].name)
          .cell(util::ks_statistic(samples[i].sizes, samples[j].sizes), 3)
          .cell(util::ks_statistic(samples[i].runtimes,
                                   samples[j].runtimes),
                3);
    }
  }
  std::cout << ks.to_string() << '\n';
  return 0;
}
