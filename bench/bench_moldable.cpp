// E10 — rigid vs flexible jobs (section 1.2 / 2.1): Downey's model
// "provides data about the total computation and the speedup function
// ... This enables the scheduler to choose the number of processors
// that will be used, according to the current load conditions."
//
// Three allocation policies for the same moldable job stream:
//   rigid-A     : allocate round(A) processors (what a rigid trace says)
//   moldable-min: allocation minimizing runtime (greedy user)
//   moldable-eff: largest allocation keeping efficiency >= 0.5
// Expected shape: moldable policies beat rigid-A on response time; the
// efficiency-capped variant wins at high load (less waste -> shorter
// queues).
#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "workload/downey97.hpp"

namespace {

using namespace pjsb;

/// Largest n with speedup(n)/n >= target efficiency.
std::int64_t efficient_allocation(const workload::DowneyJob& job,
                                  std::int64_t max_procs,
                                  double target_efficiency) {
  std::int64_t best = 1;
  for (std::int64_t n = 1; n <= max_procs; ++n) {
    if (job.speedup(double(n)) / double(n) >= target_efficiency) best = n;
  }
  return best;
}

swf::Trace trace_with_allocation(
    const std::vector<workload::DowneyJob>& jobs, std::int64_t nodes,
    const std::function<std::int64_t(const workload::DowneyJob&)>& alloc) {
  util::Rng rng(bench::kSeed);
  workload::ModelConfig config;
  config.jobs = jobs.size();
  config.machine_nodes = nodes;
  std::vector<workload::RawModelJob> raw;
  raw.reserve(jobs.size());
  for (const auto& j : jobs) {
    workload::RawModelJob r;
    r.submit = j.submit;
    r.procs = std::clamp<std::int64_t>(alloc(j), 1, nodes);
    r.runtime = std::max<std::int64_t>(
        1, std::int64_t(std::lround(j.runtime_on(r.procs))));
    raw.push_back(r);
  }
  return workload::package_jobs(std::move(raw), config, "downey", rng);
}

}  // namespace

int main() {
  using namespace pjsb;
  bench::print_header(
      "E10: rigid vs moldable allocation under EASY",
      "Expected: allocation choice must respect load (Downey's point). "
      "Greedy runtime-minimizing allocation inflates total work "
      "(efficiency ~0.5) and backfires under congestion; a frugal "
      "high-efficiency moldable policy beats the rigid-A rendering.");

  const std::int64_t nodes = 128;
  util::Rng rng(bench::kSeed + 3);
  workload::ModelConfig config;
  config.jobs = 2000;
  config.machine_nodes = nodes;
  config.mean_interarrival = 150;
  const auto detailed =
      workload::generate_downey97_detailed(workload::Downey97Params{},
                                           config, rng);

  struct Policy {
    std::string name;
    std::function<std::int64_t(const workload::DowneyJob&)> alloc;
  };
  const std::vector<Policy> policies = {
      {"rigid-A",
       [](const workload::DowneyJob& j) {
         return std::int64_t(std::lround(j.avg_parallelism));
       }},
      {"moldable-min",
       [nodes](const workload::DowneyJob& j) {
         return j.best_allocation(nodes);
       }},
      {"moldable-eff0.5",
       [nodes](const workload::DowneyJob& j) {
         return efficient_allocation(j, nodes, 0.5);
       }},
      {"moldable-eff0.9",
       [nodes](const workload::DowneyJob& j) {
         return efficient_allocation(j, nodes, 0.9);
       }},
  };

  util::Table table({"policy", "mean_procs", "mean_response_s",
                     "mean_bsld", "util"});
  for (const auto& policy : policies) {
    const auto trace =
        trace_with_allocation(detailed.moldable, nodes, policy.alloc);
    const auto report = bench::run_and_report(trace, "easy");
    const auto stats = trace.stats();
    table.row()
        .cell(policy.name)
        .cell(stats.mean_procs, 1)
        .cell(report.mean_response, 0)
        .cell(report.mean_bounded_slowdown, 2)
        .cell(report.utilization, 3);
  }
  std::cout << table.to_string() << '\n';
  return 0;
}
