// E4 — weighted objective functions reorder schedulers (section 1.2,
// citing [41]): "significant differences in the ranking of various
// scheduling algorithms if applied to objective functions that only
// differ in the selection of a weight."
//
// Sweep lambda in [0,1] over the owner/user blend and report the
// winner at each weight; a rank flip along the sweep reproduces the
// claim.
#include "common.hpp"

#include "metrics/objective.hpp"

int main() {
  using namespace pjsb;
  bench::print_header(
      "E4: objective-function weights reorder schedulers",
      "Expected: the winning scheduler changes at some lambda (claim of "
      "[41]). lambda=0 is purely owner-centric (idle capacity), "
      "lambda=1 purely user-centric (bounded slowdown).");

  // Gang trades utilization for responsiveness; FCFS/backfilling trade
  // the other way — a natural candidate pair for a flip.
  const auto trace =
      bench::make_workload(workload::ModelKind::kLublin99, 2500, 128, 0.85);
  const std::vector<std::string> schedulers = {"fcfs", "easy", "sjf",
                                               "gang4"};
  std::vector<metrics::MetricsReport> reports;
  for (const auto& s : schedulers) {
    reports.push_back(bench::run_and_report(trace, s));
  }

  util::Table base({"scheduler", "mean_bsld", "util"});
  for (std::size_t i = 0; i < schedulers.size(); ++i) {
    base.row()
        .cell(schedulers[i])
        .cell(reports[i].mean_bounded_slowdown, 2)
        .cell(reports[i].utilization, 3);
  }
  std::cout << base.to_string() << '\n';

  util::Table table({"lambda", "winner", "cost(winner)"});
  std::string first_winner, last_winner;
  for (int step = 0; step <= 10; ++step) {
    const double lambda = double(step) / 10.0;
    const auto objective = metrics::owner_user_blend(lambda);
    const auto rank = metrics::rank_by_objective(objective, reports);
    const auto& winner = schedulers[rank[0]];
    if (step == 0) first_winner = winner;
    last_winner = winner;
    table.row()
        .cell(lambda, 1)
        .cell(winner)
        .cell(objective.cost(reports[rank[0]]), 4);
  }
  std::cout << table.to_string() << '\n';
  std::cout << (first_winner != last_winner
                    ? "winner changed across the sweep -> RANK FLIP "
                      "REPRODUCED"
                    : "no flip at this workload/load")
            << '\n';
  return 0;
}
