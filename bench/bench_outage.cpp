// E6 — the outage proposal (section 2.2): "if the purpose of running a
// new scheduling algorithm through a simulator on a real workload is to
// measure how well that algorithm will work in production ... it cannot
// possibly be accurate if it ignores all factors external to a
// scheduler's trace file."
//
// Three arms: no outages (what trace-only evaluation sees), outages
// with an outage-blind scheduler (announcements withheld), and outages
// with an outage-aware scheduler (drains around announced windows).
// Expected shape: trace-only overstates performance; awareness recovers
// part of the loss (fewer kills, less wasted work).
#include "common.hpp"

#include "core/outage/generate.hpp"

int main() {
  using namespace pjsb;
  bench::print_header(
      "E6: ignoring outages misestimates production behaviour",
      "Expected: 'none' (trace-only) shows the best metrics; 'blind' "
      "suffers kills and wasted work; 'aware' drains around announced "
      "maintenance and wastes less.");

  const std::int64_t nodes = 128;
  const auto trace =
      bench::make_workload(workload::ModelKind::kLublin99, 3000, nodes, 0.7);
  const auto horizon = trace.horizon();

  util::Rng rng(bench::kSeed + 1);
  outage::FailureModelParams fparams;
  fparams.mtbf_seconds = double(horizon) / 40.0;
  const auto failures =
      outage::generate_failures(fparams, horizon, nodes, rng);
  outage::MaintenanceParams mparams;
  mparams.period = std::max<std::int64_t>(horizon / 6, 3600);
  mparams.first_start = mparams.period / 2;
  mparams.duration = 2 * 3600;
  const auto maintenance =
      outage::generate_maintenance(mparams, horizon, nodes);
  const auto merged = outage::merge(failures, maintenance);
  std::cout << "outage stream: " << merged.records.size() << " events, "
            << merged.total_node_seconds() / 3600 << " node-hours lost\n\n";

  util::Table table({"scheduler", "outages", "mean_wait_s", "mean_bsld",
                     "util", "restarts/job", "wasted_frac"});
  for (const std::string scheduler : {"easy", "conservative"}) {
    for (const std::string mode : {"none", "blind", "aware"}) {
      sim::SimulationSpec spec;
      spec.scheduler = scheduler;
      spec.deliver_announcements = (mode == "aware");
      sim::ReplayHooks hooks;
      if (mode != "none") hooks.with_outages(merged);
      const auto result = sim::replay(trace, spec, hooks);
      const auto report =
          metrics::compute_report(result.completed, result.stats);
      table.row()
          .cell(scheduler)
          .cell(mode)
          .cell(report.mean_wait, 0)
          .cell(report.mean_bounded_slowdown, 2)
          .cell(report.utilization, 3)
          .cell(report.mean_restarts, 3)
          .cell(report.wasted_fraction, 4);
    }
  }
  std::cout << table.to_string() << '\n';
  return 0;
}
