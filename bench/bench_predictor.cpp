// E7 — queue-wait prediction (section 3.1): meta-schedulers need wait
// estimates; "the results obtained for queue time predictions are still
// relatively inaccurate". We compare the recent-mean baseline, the
// template predictor ([57]/[31] style) and the scheduler-assisted
// profile query, online over a simulated day-to-day workload.
#include "common.hpp"

#include <cmath>
#include <map>
#include <memory>

#include "predict/recent_mean.hpp"
#include "predict/scheduler_assisted.hpp"
#include "predict/template_pred.hpp"
#include "sched/backfill.hpp"

namespace {

using namespace pjsb;

/// Decorates a machine scheduler: on every submission, records each
/// predictor's guess; on completion, scores it against the actual wait
/// and lets the learning predictors observe.
class PredictingScheduler final : public sched::Scheduler {
 public:
  struct Scores {
    util::OnlineStats abs_err_recent;
    util::OnlineStats abs_err_template;
    util::OnlineStats abs_err_assisted;
    util::OnlineStats over_recent;    ///< 1 if predicted >= actual
    util::OnlineStats over_template;
    util::OnlineStats over_assisted;
    std::size_t predictions = 0;
  };

  explicit PredictingScheduler(std::unique_ptr<sched::Scheduler> inner)
      : inner_(std::move(inner)), recent_(32), template_(3) {}

  std::string name() const override { return "predicting-" + inner_->name(); }
  Scores& scores() { return scores_; }

  void on_attach(sched::SchedulerContext& ctx) override {
    inner_->on_attach(ctx);
  }
  void on_submit(sched::SchedulerContext& ctx, std::int64_t id) override {
    const auto& j = ctx.job(id);
    predict::JobFeatures f;
    f.submit = ctx.now();
    f.procs = j.procs;
    f.estimate = j.estimate;
    f.user_id = j.user_id;
    f.executable_id = j.executable_id;
    Pending p;
    p.features = f;
    p.recent = recent_.predict(f);
    p.tmpl = template_.predict(f);
    p.assisted = predict::SchedulerAssistedPredictor(*inner_).predict(f);
    pending_[id] = p;
    inner_->on_submit(ctx, id);
  }
  void on_job_end(sched::SchedulerContext& ctx, std::int64_t id) override {
    const auto& j = ctx.job(id);
    const auto it = pending_.find(id);
    if (it != pending_.end()) {
      const std::int64_t actual = j.start - j.submit;
      auto score = [&](const std::optional<std::int64_t>& prediction,
                       util::OnlineStats& stats, util::OnlineStats& over) {
        if (!prediction) return;
        stats.add(std::abs(double(*prediction - actual)));
        over.add(*prediction >= actual ? 1.0 : 0.0);
      };
      score(it->second.recent, scores_.abs_err_recent,
            scores_.over_recent);
      score(it->second.tmpl, scores_.abs_err_template,
            scores_.over_template);
      score(it->second.assisted, scores_.abs_err_assisted,
            scores_.over_assisted);
      ++scores_.predictions;
      recent_.observe(it->second.features, actual);
      template_.observe(it->second.features, actual);
      pending_.erase(it);
    }
    inner_->on_job_end(ctx, id);
  }
  void on_job_killed(sched::SchedulerContext& ctx, std::int64_t id) override {
    inner_->on_job_killed(ctx, id);
  }
  void schedule(sched::SchedulerContext& ctx) override {
    inner_->schedule(ctx);
  }
  std::optional<std::int64_t> predict_start(
      std::int64_t now, std::int64_t procs,
      std::int64_t estimate) const override {
    return inner_->predict_start(now, procs, estimate);
  }

 private:
  struct Pending {
    predict::JobFeatures features;
    std::optional<std::int64_t> recent, tmpl, assisted;
  };
  std::unique_ptr<sched::Scheduler> inner_;
  predict::RecentMeanPredictor recent_;
  predict::TemplatePredictor template_;
  std::map<std::int64_t, Pending> pending_;
  Scores scores_;
};

}  // namespace

int main() {
  using namespace pjsb;
  bench::print_header(
      "E7: queue-wait predictor accuracy",
      "Expected: the learning template predictor ([57]/[31]) beats the "
      "recent-mean baseline; the scheduler-assisted profile query "
      "overpredicts because it trusts loose user estimates (it is an "
      "upper bound, not an expectation) — 'relatively inaccurate' "
      "across the board, as section 3.1 observes.");

  util::Table table(
      {"scheduler", "predictor", "MAE_s", "overpredict_frac", "n"});
  for (const std::string scheduler : {"easy", "conservative"}) {
    const auto trace =
        bench::make_workload(workload::ModelKind::kLublin99, 3000, 128, 0.8);
    auto predicting = std::make_unique<PredictingScheduler>(
        sched::make_scheduler(scheduler));
    auto* handle = predicting.get();
    sim::EngineConfig config;
    config.nodes = 128;
    sim::Engine engine(config, std::move(predicting));
    engine.load_trace(trace);
    engine.run();
    const auto& s = handle->scores();
    table.row().cell(scheduler).cell("recent-mean")
        .cell(s.abs_err_recent.mean(), 0)
        .cell(s.over_recent.mean(), 2)
        .cell(s.abs_err_recent.count());
    table.row().cell(scheduler).cell("template")
        .cell(s.abs_err_template.mean(), 0)
        .cell(s.over_template.mean(), 2)
        .cell(s.abs_err_template.count());
    table.row().cell(scheduler).cell("scheduler-assisted")
        .cell(s.abs_err_assisted.mean(), 0)
        .cell(s.over_assisted.mean(), 2)
        .cell(s.abs_err_assisted.count());
  }
  std::cout << table.to_string() << '\n';
  return 0;
}
