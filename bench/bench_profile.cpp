// Hot-path benchmark for the scheduling substrate: CapacityProfile
// primitive ops at several profile sizes, plus end-to-end replays of the
// backfill-heavy schedulers (conservative, easy) on a large workload.
// This is the benchmark-gate for profile/scheduler refactors: run with
// --json to record BENCH_*.json trajectory points, and --dump-csv to
// capture per-job scheduler decisions for byte-identical regression
// comparison across implementations.
//
// Usage: bench_profile [--quick] [--json PATH] [--dump-csv PATH]
#include <filesystem>
#include <fstream>

#include "common.hpp"
#include "sched/profile.hpp"
#include "sim/spec.hpp"

namespace {

using namespace pjsb;

/// Build a profile with `steps` step points from deterministic usages.
sched::CapacityProfile make_profile(std::int64_t base, int steps,
                                    util::Rng& rng) {
  sched::CapacityProfile p(base);
  for (int i = 0; i < steps / 2; ++i) {
    const std::int64_t start = rng.uniform_int(0, 100000);
    const std::int64_t len = rng.uniform_int(10, 5000);
    const std::int64_t procs = rng.uniform_int(1, base / 4);
    p.add_usage(start, start + len, procs);
  }
  return p;
}

/// Run `body` until `max_reps` iterations or `budget_s` seconds of wall
/// time, whichever first; returns iterations per second. The budget
/// keeps slow implementations measurable instead of unbounded.
template <typename F>
double measure_rate(F&& body, int max_reps, double budget_s) {
  bench::WallTimer timer;
  int done = 0;
  while (done < max_reps) {
    body();
    ++done;
    if ((done & 0xf) == 0 && timer.seconds() >= budget_s) break;
  }
  return double(done) / timer.seconds();
}

void profile_micro(util::Table& table, bench::JsonReporter& json,
                   bool quick) {
  const std::int64_t base = 1024;
  const int query_reps = quick ? 20000 : 200000;
  const double budget_s = quick ? 0.5 : 2.0;
  for (const int steps : {64, 512, 4096}) {
    util::Rng rng(bench::kSeed + std::uint64_t(steps));
    const auto p = make_profile(base, steps, rng);
    std::int64_t sink = 0;

    // earliest_start queries (the backfill inner loop).
    const double es_per_s = measure_rate(
        [&] {
          const std::int64_t from = rng.uniform_int(0, 100000);
          const std::int64_t dur = rng.uniform_int(10, 5000);
          const std::int64_t procs = rng.uniform_int(1, base);
          sink += p.earliest_start(from, dur, procs) & 1;
        },
        query_reps, budget_s);

    // min_available window queries.
    const double ma_per_s = measure_rate(
        [&] {
          const std::int64_t from = rng.uniform_int(0, 100000);
          sink += p.min_available(from, from + rng.uniform_int(10, 5000)) & 1;
        },
        query_reps, budget_s);

    // add/remove usage round-trips on a copy.
    auto q = p;
    const double mut_per_s = measure_rate(
        [&] {
          const std::int64_t start = rng.uniform_int(0, 100000);
          const std::int64_t len = rng.uniform_int(10, 5000);
          q.add_usage(start, start + len, 3);
          q.remove_usage(start, start + len, 3);
        },
        query_reps / 4, budget_s);
    if (sink == -1) std::cout << "";  // defeat dead-code elimination

    table.row()
        .cell(std::int64_t(steps))
        .cell(es_per_s, 0)
        .cell(ma_per_s, 0)
        .cell(mut_per_s, 0);
    const std::string name = "profile_steps_" + std::to_string(steps);
    json.add(name, "earliest_start", es_per_s, "queries/s");
    json.add(name, "min_available", ma_per_s, "queries/s");
    json.add(name, "add_remove_usage", mut_per_s, "roundtrips/s");
  }
}

void replay_bench(util::Table& table, bench::JsonReporter& json,
                  bool quick, const std::string& csv_path) {
  // Backfill-heavy workload: high offered load keeps deep queues, which
  // is exactly where the O(Q * P^2) rebuild cost used to live.
  const std::int64_t nodes = 256;
  const std::size_t jobs = quick ? 5000 : 100000;
  const auto trace =
      bench::make_workload(workload::ModelKind::kLublin99, jobs, nodes, 0.85);

  double conservative_wall = 0.0;
  for (const char* name : {"conservative", "easy"}) {
    bench::WallTimer timer;
    const auto result =
        sim::replay(trace, sim::SimulationSpec{}.with_scheduler(name));
    const double secs = timer.seconds();
    if (std::string(name) == "conservative") conservative_wall = secs;
    const double jobs_per_s = double(result.stats.jobs_completed) / secs;
    const double events_per_s = double(result.stats.events_processed) / secs;
    table.row()
        .cell(name)
        .cell(std::int64_t(jobs))
        .cell(secs, 2)
        .cell(jobs_per_s, 0)
        .cell(events_per_s, 0);
    const std::string bench_name = std::string("replay_") + name;
    json.add(bench_name, "wall", secs, "s");
    json.add(bench_name, "jobs", jobs_per_s, "jobs/s");
    json.add(bench_name, "events", events_per_s, "events/s");

    if (!csv_path.empty()) {
      std::ofstream out(csv_path + "." + name + ".csv");
      bench::write_decisions_csv(out, result.completed);
    }
  }

  // The same conservative replay with every observability sink on
  // (JSONL event trace + time-series CSV + Chrome phase profile).
  // The `overhead` ratio is self-relative — both runs happen on this
  // machine within seconds of each other — so the bench gate can bound
  // it with a machine-independent max_abs instead of a baseline diff.
  const auto dir = std::filesystem::temp_directory_path();
  const auto sink = [&](const char* leaf) {
    return (dir / leaf).string();
  };
  const auto spec = sim::SimulationSpec{}
                        .with_scheduler("conservative")
                        .with_trace(sink("pjsb_bench_profile.trace.jsonl"))
                        .with_timeseries(sink("pjsb_bench_profile.ts.csv"))
                        .with_profile(sink("pjsb_bench_profile.prof.json"));
  bench::WallTimer timer;
  const auto traced = sim::replay(trace, spec);
  const double traced_secs = timer.seconds();
  const double traced_jobs_per_s =
      double(traced.stats.jobs_completed) / traced_secs;
  const double overhead =
      conservative_wall > 0.0 ? traced_secs / conservative_wall : 0.0;
  table.row()
      .cell("conservative+sinks")
      .cell(std::int64_t(jobs))
      .cell(traced_secs, 2)
      .cell(traced_jobs_per_s, 0)
      .cell(double(traced.stats.events_processed) / traced_secs, 0);
  json.add("replay_conservative_traced", "wall", traced_secs, "s");
  json.add("replay_conservative_traced", "jobs", traced_jobs_per_s,
           "jobs/s");
  json.add("replay_conservative_traced", "overhead", overhead, "x");
  for (const char* leaf : {"pjsb_bench_profile.trace.jsonl",
                           "pjsb_bench_profile.ts.csv",
                           "pjsb_bench_profile.prof.json"}) {
    std::error_code ec;
    std::filesystem::remove(dir / leaf, ec);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pjsb;
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "profile hot path",
      "CapacityProfile primitive throughput and backfill-heavy replay "
      "rates; the regression gate for scheduler hot-path changes.");

  bench::JsonReporter json("bench_profile");

  util::Table micro({"steps", "earliest_start/s", "min_available/s",
                     "add_remove/s"});
  profile_micro(micro, json, options.quick);
  std::cout << micro.to_string() << '\n';
  json.add_table("profile_micro", micro);

  util::Table replay({"scheduler", "jobs", "wall_s", "jobs/s", "events/s"});
  replay_bench(replay, json, options.quick, options.csv_path);
  std::cout << replay.to_string() << '\n';
  json.add_table("replay", replay);

  return json.write(options.json_path) ? 0 : 1;
}
