// E8 — reservations interact with local scheduling (sections 3, 4.2):
// "meta applications may ask for simultaneous access to resources from
// several local schedulers. This requires local mechanisms such as
// reservation of resources and these reservations affect the
// performance of local scheduling algorithms."
//
// Sweep the advance-reservation load on one EASY-scheduled machine and
// measure what happens to the local jobs. Expected shape: local wait /
// slowdown degrade monotonically as reserved capacity grows, and
// utilization drops (drained holes in front of each window).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace pjsb;
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "E8: advance reservations vs local backfilling",
      "Expected: local slowdown rises and utilization falls "
      "monotonically with reservation load.");

  const std::int64_t nodes = 128;
  const std::size_t jobs = options.quick ? 600 : 2500;
  const auto trace =
      bench::make_workload(workload::ModelKind::kLublin99, jobs, nodes, 0.7);
  bench::WallTimer timer;
  const auto horizon = trace.horizon();

  util::Table table({"reservations", "accepted", "res_node_frac",
                     "mean_wait_s", "mean_bsld", "util"});
  for (const int count : {0, 8, 24, 48, 96}) {
    sim::EngineConfig config;
    config.nodes = nodes;
    sim::Engine engine(config, sched::make_scheduler("easy"));
    engine.load_trace(trace);

    util::Rng rng(bench::kSeed + 7);
    int accepted = 0;
    std::int64_t reserved_node_seconds = 0;
    for (int i = 0; i < count; ++i) {
      sched::AdvanceReservation res;
      res.start = rng.uniform_int(horizon / 20, horizon);
      res.duration = rng.uniform_int(1800, 4 * 3600);
      res.procs = rng.uniform_int(nodes / 8, nodes / 2);
      if (engine.request_reservation(res)) {
        ++accepted;
        reserved_node_seconds += res.duration * res.procs;
      }
    }
    engine.run();
    const auto report =
        metrics::compute_report(engine.completed(), engine.stats());
    const double res_frac =
        engine.stats().capacity_node_seconds > 0
            ? double(reserved_node_seconds) /
                  double(engine.stats().capacity_node_seconds)
            : 0.0;
    table.row()
        .cell(count)
        .cell(accepted)
        .cell(res_frac, 3)
        .cell(report.mean_wait, 0)
        .cell(report.mean_bounded_slowdown, 2)
        .cell(report.utilization, 3);
  }
  std::cout << table.to_string() << '\n';

  bench::JsonReporter json("bench_reservation");
  json.add("sweep", "wall", timer.seconds(), "s");
  json.add_table("reservation_sweep", table);
  return json.write(options.json_path) ? 0 : 1;
}
