// E2 — The paper's core use case (section 1.1): "having a
// representative workload may ... allow the administrator of a parallel
// machine to determine the scheduler best suited for him. Hence, those
// administrators can be assisted by a set of benchmarks that cover most
// workloads occurring in practice."
//
// Table: workload model x offered load x scheduler -> the standard
// metric set. Expected shape: backfilling dominates FCFS, and the gap
// widens with load.
#include "common.hpp"

int main() {
  using namespace pjsb;
  bench::print_header(
      "E2: scheduler comparison across canonical workloads",
      "Backfilling should beat FCFS everywhere, increasingly so at "
      "high load; SJF favors slowdown over fairness.");

  const std::vector<workload::ModelKind> models = {
      workload::ModelKind::kLublin99, workload::ModelKind::kJann97,
      workload::ModelKind::kFeitelson96};
  const std::vector<double> loads = {0.5, 0.7, 0.9};
  const std::vector<std::string> schedulers = {"fcfs", "sjf", "easy",
                                               "conservative"};

  util::Table table({"model", "load", "scheduler", "mean_wait_s",
                     "mean_bsld", "p95_wait_s", "util"});
  for (const auto model : models) {
    for (const double load : loads) {
      const auto trace = bench::make_workload(model, 3000, 128, load);
      for (const auto& scheduler : schedulers) {
        const auto report = bench::run_and_report(trace, scheduler);
        table.row()
            .cell(workload::model_name(model))
            .cell(load, 2)
            .cell(scheduler)
            .cell(report.mean_wait, 0)
            .cell(report.mean_bounded_slowdown, 2)
            .cell(report.p95_wait, 0)
            .cell(report.utilization, 3);
      }
    }
  }
  std::cout << table.to_string() << '\n';
  return 0;
}
