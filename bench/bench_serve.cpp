// Scheduling-daemon throughput: concurrent what-if queries served over
// real sockets must sustain >= 10k queries/s from >= 4 connections,
// and every answer must be identical to a serial predict_start pass
// against the same frozen state (BENCH_9.json gates both).
//
// Setup: a Lublin'99 workload (20k jobs, 2k in --quick) on 64 nodes
// under conservative backfill is replayed to half its horizon; the
// engine moves into a Server on an ephemeral loopback TCP port. A twin
// engine restored from the same snapshot bytes answers every query
// shape serially first; then 4 client threads (one connection each)
// fire the same shapes through the socket and diff every answer.
#include "common.hpp"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot/whatif.hpp"

namespace {

using namespace pjsb;

constexpr int kConnections = 4;

/// Replay `trace` under `scheduler` up to `cut` sim-seconds.
std::unique_ptr<sim::Engine> run_to(const swf::Trace& trace,
                                    const std::string& scheduler,
                                    std::int64_t cut) {
  const auto config = sim::spec_engine_config(
      sim::SimulationSpec{}.with_scheduler(scheduler),
      trace.header.max_nodes.value_or(sim::kDefaultNodes));
  auto engine = std::make_unique<sim::Engine>(
      config, sched::make_scheduler(scheduler));
  engine->load_trace(trace);
  while (true) {
    const auto t = engine->next_event_time();
    if (!t || *t > cut) break;
    engine->step();
  }
  return engine;
}

/// Deterministic query shapes, distinct per (connection, index).
sim::WhatIfQuery nth_query(int conn, int i) {
  sim::WhatIfQuery q;
  q.procs = 1 + (conn * 7 + i * 3) % 64;
  q.estimate = 300 + (conn + i * 131) % 7200;
  q.submit_offset = (i * 13) % 600;
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "scheduling daemon what-if throughput",
      "Concurrent WHATIF queries over real sockets: >= 10k queries/s "
      "from 4 connections, every answer byte-identical to a serial "
      "predict_start pass (both gated).");

  const std::size_t jobs = options.quick ? 2000 : 20000;
  const int queries_per_conn = options.quick ? 2500 : 25000;
  const std::int64_t nodes = 64;
  const auto trace =
      bench::make_workload(workload::ModelKind::kLublin99, jobs, nodes, 0.85);

  auto donor = run_to(trace, "conservative", trace.horizon() / 2);
  const auto bytes = donor->snapshot();
  auto twin = sim::Engine::restore(bytes);

  // Serial reference pass: one answer per (connection, index) shape.
  std::vector<std::vector<std::optional<std::int64_t>>> expected(
      kConnections);
  for (int c = 0; c < kConnections; ++c) {
    for (int i = 0; i < queries_per_conn; ++i) {
      const auto q = nth_query(c, i);
      expected[c].push_back(twin->scheduler().predict_start(
          twin->now() + q.submit_offset, q.procs, q.estimate));
    }
  }

  serve::ServerConfig config;
  config.tcp_port = 0;  // ephemeral
  serve::Server server(config, std::move(donor));
  server.start();

  std::atomic<std::int64_t> answered{0};
  std::atomic<std::int64_t> mismatches{0};
  bench::WallTimer timer;
  std::vector<std::thread> pool;
  for (int c = 0; c < kConnections; ++c) {
    pool.emplace_back([&, c] {
      auto client = serve::Client::connect_tcp(server.port());
      client.handshake("", "bench_serve");
      for (int i = 0; i < queries_per_conn; ++i) {
        const auto q = nth_query(c, i);
        const auto answer =
            client.whatif(q.procs, q.estimate, q.submit_offset);
        if (!answer.ok ||
            answer.field_i64("start") != expected[c][i]) {
          ++mismatches;
        }
        ++answered;
      }
    });
  }
  for (auto& thread : pool) thread.join();
  const double wall = timer.seconds();
  server.request_shutdown();
  server.wait();

  const double qps = wall > 0 ? double(answered.load()) / wall : 0.0;
  const double identical = mismatches.load() == 0 ? 1.0 : 0.0;

  util::Table table(
      {"connections", "queries", "wall_s", "queries/s", "mismatches"});
  table.row()
      .cell(std::int64_t(kConnections))
      .cell(answered.load())
      .cell(wall, 3)
      .cell(qps, 0)
      .cell(mismatches.load());
  std::cout << table.to_string();

  bench::JsonReporter reporter("bench_serve");
  reporter.add("serve", "whatif_qps", qps, "queries/s");
  reporter.add("serve", "answers_identical", identical, "bool");
  reporter.add("serve", "connections", kConnections, "sessions");
  reporter.add_table("serve", table);
  if (!reporter.write(options.json_path)) return 1;
  if (mismatches.load() != 0) {
    std::cerr << "bench_serve: " << mismatches.load()
              << " answer(s) diverged from the serial reference\n";
    return 1;
  }
  return 0;
}
