// E1/PR3 — SWF substrate + streaming ingestion.
//
// Two families of measurements:
//   * parse/write micro throughput on an in-memory trace (the original
//     E1 "the file format is easy to parse and use" rates);
//   * the streaming scale demonstration: a synthetic trace is streamed
//     to disk (constant memory), replayed through swf::StreamReader +
//     the bounded-memory engine path at half and full length, and
//     replayed once more through the materialize-everything path. Each
//     replay runs in a child process so its peak RSS (wait4 ru_maxrss)
//     is measured in isolation; the streaming peaks at half vs full
//     length demonstrate O(running+queued+lookahead) memory, and the
//     decision CSVs (completion order) are compared byte-for-byte
//     against the in-memory run.
//
// Default sizes: 1M jobs (--quick: 50k). JSON output feeds the CI
// bench-regression gate (scripts/check_bench_regression.py).
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common.hpp"
#include "core/swf/stream_reader.hpp"
#include "core/swf/writer.hpp"
#include "util/resource.hpp"
#include "workload/stream.hpp"

namespace {

using namespace pjsb;

constexpr std::int64_t kNodes = 256;
/// Mean interarrival chosen to put the Lublin '99 stream at ~0.7
/// offered load on 256 nodes (measured via swf_tool stats), so queues
/// stay bounded — the flat-RSS claim is about a system keeping up, not
/// an ever-growing backlog — while backfilling still works hard.
constexpr double kInterarrival = 1300.0;
constexpr const char* kScheduler = "easy";

workload::GeneratorSpec generator_spec(std::uint64_t max_jobs) {
  workload::GeneratorSpec spec;
  spec.kind = workload::ModelKind::kLublin99;
  spec.config.machine_nodes = kNodes;
  spec.config.mean_interarrival = kInterarrival;
  spec.seed = bench::kSeed;
  spec.max_jobs = max_jobs;
  return spec;
}


/// Write `key value` lines for the parent to pick up.
void write_report(const std::string& path,
                  const std::map<std::string, double>& values) {
  std::ofstream out(path);
  for (const auto& [key, value] : values) out << key << ' ' << value << '\n';
}

int fail(const std::string& message) {
  std::cerr << "bench_swf: " << message << '\n';
  return 1;
}

// ---- child phases --------------------------------------------------

int phase_generate(const std::string& trace_path, std::uint64_t jobs) {
  workload::ModelJobSource source(generator_spec(jobs));
  std::ofstream out(trace_path);
  if (!out) return fail("cannot write " + trace_path);
  bench::WallTimer timer;
  const auto written = swf::write_swf_stream(out, source);
  out.close();
  if (written != jobs) return fail("short generate");
  std::cerr << "  generated " << written << " jobs in " << timer.seconds()
            << "s, peak rss " << util::peak_rss_mb() << " MB\n";
  return 0;
}

/// Completion-order decision dump: the regression artifact both replay
int phase_stream_replay(const std::string& trace_path,
                        const std::string& csv_path,
                        const std::string& report_path,
                        std::uint64_t max_jobs) {
  std::ofstream csv(csv_path);
  if (!csv) return fail("cannot write " + csv_path);

  swf::StreamReaderOptions reader_options;
  reader_options.prefetch = true;
  swf::StreamReader source(trace_path, reader_options);
  if (source.open_failed()) return fail("cannot open " + trace_path);

  // Both replay paths dump completions through the same streaming CSV
  // observer, so "same bytes" means "same scheduler decisions in the
  // same order".
  sim::CompletionCsvObserver observer(csv);
  const auto spec = sim::SimulationSpec{}
                        .with_scheduler(kScheduler)
                        .with_lookahead(4096)
                        .with_max_jobs(max_jobs)
                        .streaming_memory();

  bench::WallTimer timer;
  const auto result =
      sim::replay(source, spec, sim::ReplayHooks{}.observe(observer));
  const double wall = timer.seconds();
  if (source.error_count() > 0) return fail("parse errors in trace");

  write_report(report_path,
               {{"jobs", double(result.stats.jobs_completed)},
                {"pulled", double(result.source_pulled)},
                {"wall", wall},
                {"events", double(result.stats.events_processed)},
                {"utilization", result.stats.utilization()}});
  return 0;
}

int phase_inmem_replay(const std::string& trace_path,
                       const std::string& csv_path,
                       const std::string& report_path) {
  std::ofstream csv(csv_path);
  if (!csv) return fail("cannot write " + csv_path);

  auto read = swf::read_swf_file(trace_path);
  if (!read.ok()) return fail("parse errors in trace");

  sim::CompletionCsvObserver observer(csv);
  bench::WallTimer timer;
  const auto result =
      sim::replay(read.trace, sim::SimulationSpec{}.with_scheduler(kScheduler),
                  sim::ReplayHooks{}.observe(observer));
  const double wall = timer.seconds();

  write_report(report_path, {{"jobs", double(result.stats.jobs_completed)},
                             {"wall", wall},
                             {"events", double(result.stats.events_processed)}});
  return 0;
}

// ---- parent orchestration ------------------------------------------

struct PhaseOutcome {
  bool ok = false;
  double peak_rss_mb = 0.0;
  std::map<std::string, double> report;
};

/// Run this binary again with `args`, wait, and collect the child's
/// peak RSS from wait4 plus its key=value report file (if any).
PhaseOutcome run_phase(const std::string& self,
                       const std::vector<std::string>& args,
                       const std::string& report_path) {
  PhaseOutcome outcome;
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(self.c_str()));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) return outcome;
  if (pid == 0) {
    execv(self.c_str(), argv.data());
    std::perror("bench_swf: execv");
    _exit(127);
  }
  int status = 0;
  struct rusage usage{};
  if (wait4(pid, &status, 0, &usage) != pid) return outcome;
  outcome.ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  outcome.peak_rss_mb = double(usage.ru_maxrss) / 1024.0;
  if (!report_path.empty()) {
    std::ifstream in(report_path);
    std::string key;
    double value = 0.0;
    while (in >> key >> value) outcome.report[key] = value;
  }
  return outcome;
}

bool files_identical(const std::string& a, const std::string& b) {
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  if (!fa || !fb) return false;
  constexpr std::size_t kBlock = 1 << 20;
  std::string ba(kBlock, '\0'), bb(kBlock, '\0');
  for (;;) {
    fa.read(ba.data(), std::streamsize(kBlock));
    fb.read(bb.data(), std::streamsize(kBlock));
    if (fa.gcount() != fb.gcount()) return false;
    if (fa.gcount() == 0) return fa.eof() && fb.eof();
    if (std::memcmp(ba.data(), bb.data(), std::size_t(fa.gcount())) != 0) {
      return false;
    }
  }
}

/// Parse/write micro rates on a 5000-job in-memory trace (the original
/// E1 measurement, reproduced without google-benchmark).
void micro_bench(bench::JsonReporter& json, util::Table& table) {
  util::Rng rng(1);
  workload::ModelConfig config;
  config.jobs = 5000;
  const auto trace =
      workload::generate(workload::ModelKind::kLublin99, config, rng);
  const auto text = swf::write_swf_string(trace);

  constexpr int kReps = 10;
  bench::WallTimer parse_timer;
  std::size_t records = 0;
  for (int i = 0; i < kReps; ++i) {
    records = swf::read_swf_string(text).trace.records.size();
  }
  const double parse_s = parse_timer.seconds() / kReps;
  bench::WallTimer write_timer;
  std::size_t bytes = 0;
  for (int i = 0; i < kReps; ++i) bytes = swf::write_swf_string(trace).size();
  const double write_s = write_timer.seconds() / kReps;

  const double parse_mb_s = double(text.size()) / 1e6 / parse_s;
  const double write_mb_s = double(bytes) / 1e6 / write_s;
  json.add("parse", "mb_per_s", parse_mb_s, "MB/s");
  json.add("parse", "records_per_s", double(records) / parse_s, "records/s");
  json.add("write", "mb_per_s", write_mb_s, "MB/s");
  table.row()
      .cell("parse (in-memory)")
      .cell(parse_mb_s, 1)
      .cell(double(records) / parse_s / 1000.0, 1)
      .cell("-");
  table.row()
      .cell("write")
      .cell(write_mb_s, 1)
      .cell(double(records) / write_s / 1000.0, 1)
      .cell("-");
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);

  // Hidden child-phase dispatch.
  std::map<std::string, std::string> phase_args;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--phase" || arg == "--trace" || arg == "--csv" ||
        arg == "--report" || arg == "--jobs") {
      phase_args[arg] = argv[i + 1];
    }
  }
  if (const auto it = phase_args.find("--phase"); it != phase_args.end()) {
    const std::string& phase = it->second;
    const std::uint64_t jobs =
        std::uint64_t(std::atoll(phase_args["--jobs"].c_str()));
    if (phase == "generate") {
      return phase_generate(phase_args["--trace"], jobs);
    }
    if (phase == "stream-replay") {
      return phase_stream_replay(phase_args["--trace"], phase_args["--csv"],
                                 phase_args["--report"], jobs);
    }
    if (phase == "inmem-replay") {
      return phase_inmem_replay(phase_args["--trace"], phase_args["--csv"],
                                phase_args["--report"]);
    }
    return fail("unknown phase " + phase);
  }

  const std::uint64_t jobs = options.quick ? 50'000 : 1'000'000;
  bench::print_header(
      "E1+PR3: SWF substrate + streaming ingestion",
      "Streaming replay holds peak RSS flat while trace length doubles; "
      "decisions are byte-identical to the materialized path.");

  bench::JsonReporter json("bench_swf");
  util::Table micro({"operation", "MB/s", "krec/s", "peak rss MB"});
  micro_bench(json, micro);
  std::cout << micro.to_string() << '\n';

  // Scratch space for the trace + artifacts.
  const std::string dir =
      "/tmp/bench_swf." + std::to_string(std::uint64_t(getpid()));
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    return fail("cannot create " + dir);
  }
  const std::string self = "/proc/self/exe";
  const std::string trace = dir + "/trace.swf";
  const std::string report = dir + "/report.txt";

  const auto gen = run_phase(
      self,
      {"--phase", "generate", "--trace", trace, "--jobs",
       std::to_string(jobs)},
      "");
  if (!gen.ok) return fail("generate phase failed");

  const auto half = run_phase(
      self,
      {"--phase", "stream-replay", "--trace", trace, "--csv",
       dir + "/half.csv", "--report", report, "--jobs",
       std::to_string(jobs / 2)},
      report);
  if (!half.ok) return fail("stream-replay (half) phase failed");

  const auto full = run_phase(self,
                              {"--phase", "stream-replay", "--trace", trace,
                               "--csv", dir + "/stream.csv", "--report",
                               report, "--jobs", "0"},
                              report);
  if (!full.ok) return fail("stream-replay (full) phase failed");

  const auto inmem = run_phase(self,
                               {"--phase", "inmem-replay", "--trace", trace,
                                "--csv", dir + "/inmem.csv", "--report",
                                report},
                               report);
  if (!inmem.ok) return fail("inmem-replay phase failed");

  const bool identical =
      files_identical(dir + "/stream.csv", dir + "/inmem.csv");
  const double flatness =
      half.peak_rss_mb > 0 ? full.peak_rss_mb / half.peak_rss_mb : 0.0;

  util::Table table(
      {"phase", "jobs", "wall_s", "jobs/s", "peak rss MB"});
  const auto add_row = [&table](const std::string& name,
                                const PhaseOutcome& outcome) {
    const double w = outcome.report.count("wall") ? outcome.report.at("wall")
                                                  : 0.0;
    const double j = outcome.report.count("jobs") ? outcome.report.at("jobs")
                                                  : 0.0;
    table.row()
        .cell(name)
        .cell(std::int64_t(j))
        .cell(w, 2)
        .cell(w > 0 ? j / w : 0.0, 0)
        .cell(outcome.peak_rss_mb, 1);
  };
  add_row("stream half", half);
  add_row("stream full", full);
  add_row("in-memory full", inmem);
  std::cout << table.to_string() << '\n'
            << "generate peak rss: " << gen.peak_rss_mb << " MB\n"
            << "rss flatness (full/half): " << flatness << '\n'
            << "decision CSVs identical: " << (identical ? "yes" : "NO")
            << '\n';

  json.add("generate", "peak_rss_mb", gen.peak_rss_mb, "MB");
  json.add("stream_replay_half", "peak_rss_mb", half.peak_rss_mb, "MB");
  json.add("stream_replay", "peak_rss_mb", full.peak_rss_mb, "MB");
  json.add("stream_replay", "rss_flatness", flatness, "ratio");
  json.add("stream_replay", "jobs_per_s",
           full.report.count("wall") && full.report.at("wall") > 0
               ? full.report.at("jobs") / full.report.at("wall")
               : 0.0,
           "jobs/s");
  json.add("stream_replay", "csv_identical", identical ? 1.0 : 0.0, "bool");
  json.add("inmem_replay", "peak_rss_mb", inmem.peak_rss_mb, "MB");
  json.add("inmem_replay", "jobs_per_s",
           inmem.report.count("wall") && inmem.report.at("wall") > 0
               ? inmem.report.at("jobs") / inmem.report.at("wall")
               : 0.0,
           "jobs/s");
  json.add_table("streaming", table);
  if (!json.write(options.json_path)) return 1;

  if (std::system(("rm -rf " + dir).c_str()) != 0) {
    std::cerr << "bench_swf: could not remove " << dir << '\n';
  }
  return identical ? 0 : 1;
}
