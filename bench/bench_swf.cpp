// E1 — SWF substrate throughput (google-benchmark).
// "The file format is easy to parse and use": parse, write, validate
// and anonymize rates on a model-generated trace.
#include <benchmark/benchmark.h>

#include "core/swf/anonymize.hpp"
#include "core/swf/reader.hpp"
#include "core/swf/validator.hpp"
#include "core/swf/writer.hpp"
#include "workload/model.hpp"

namespace {

using namespace pjsb;

const swf::Trace& sample_trace() {
  static const swf::Trace trace = [] {
    util::Rng rng(1);
    workload::ModelConfig config;
    config.jobs = 5000;
    return workload::generate(workload::ModelKind::kLublin99, config, rng);
  }();
  return trace;
}

const std::string& sample_text() {
  static const std::string text = swf::write_swf_string(sample_trace());
  return text;
}

void BM_ParseSwf(benchmark::State& state) {
  for (auto _ : state) {
    auto result = swf::read_swf_string(sample_text());
    benchmark::DoNotOptimize(result.trace.records.size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 5000);
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(sample_text().size()));
}
BENCHMARK(BM_ParseSwf);

void BM_WriteSwf(benchmark::State& state) {
  for (auto _ : state) {
    auto text = swf::write_swf_string(sample_trace());
    benchmark::DoNotOptimize(text.size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 5000);
}
BENCHMARK(BM_WriteSwf);

void BM_ValidateSwf(benchmark::State& state) {
  for (auto _ : state) {
    auto report = swf::validate(sample_trace());
    benchmark::DoNotOptimize(report.diagnostics.size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 5000);
}
BENCHMARK(BM_ValidateSwf);

void BM_AnonymizeSwf(benchmark::State& state) {
  for (auto _ : state) {
    swf::Trace copy = sample_trace();
    auto result = swf::anonymize(copy);
    benchmark::DoNotOptimize(result.users);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 5000);
}
BENCHMARK(BM_AnonymizeSwf);

}  // namespace

BENCHMARK_MAIN();
