// Snapshot/what-if performance: answering "when would this job start?"
// from a warm snapshot must beat re-simulating the run from scratch by
// orders of magnitude — the speedup is the whole point of the snapshot
// subsystem, so it is gated (BENCH_8.json: >= 50x).
//
// Three rates on a backfill-heavy workload (100k jobs, 5k in --quick):
//   warm    — WhatIfService predict queries against one restored clone
//             (each query is one profile sweep);
//   cold    — the same prediction the hard way: replay the workload
//             from t=0 to the snapshot point, ask once, throw it away;
//   restore — Engine::restore from snapshot bytes (the setup cost a
//             simulate-mode query or a new service pays).
#include "common.hpp"

#include <memory>

#include "sim/engine.hpp"
#include "sim/snapshot/snapshot.hpp"
#include "sim/snapshot/whatif.hpp"

namespace {

using namespace pjsb;

/// Replay `trace` under `scheduler` up to `cut` sim-seconds.
std::unique_ptr<sim::Engine> run_to(const swf::Trace& trace,
                                    const std::string& scheduler,
                                    std::int64_t cut) {
  const auto config = sim::spec_engine_config(
      sim::SimulationSpec{}.with_scheduler(scheduler),
      trace.header.max_nodes.value_or(sim::kDefaultNodes));
  auto engine = std::make_unique<sim::Engine>(
      config, sched::make_scheduler(scheduler));
  engine->load_trace(trace);
  while (true) {
    const auto t = engine->next_event_time();
    if (!t || *t > cut) break;
    engine->step();
  }
  return engine;
}

/// A deterministic spread of query shapes (width x walltime x offset).
sim::WhatIfQuery nth_query(int i) {
  sim::WhatIfQuery q;
  q.procs = 1 + (i * 7) % 64;
  q.estimate = 300 + (i * 131) % 7200;
  q.submit_offset = (i * 13) % 600;
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "snapshot what-if throughput",
      "Hypothetical start-time queries per second: warm snapshot "
      "(WhatIfService) vs cold replay-from-scratch; the gate holds the "
      "speedup above 50x.");

  const std::int64_t nodes = 256;
  const std::size_t jobs = options.quick ? 5000 : 100000;
  const std::string scheduler = "conservative";
  const auto trace =
      bench::make_workload(workload::ModelKind::kLublin99, jobs, nodes, 0.85);
  const std::int64_t cut = trace.horizon() / 2;

  // Freeze the donor mid-run; everything below works off these bytes.
  bench::WallTimer snap_timer;
  const auto donor = run_to(trace, scheduler, cut);
  const double to_cut_secs = snap_timer.seconds();
  const std::string bytes = donor->snapshot();

  bench::JsonReporter json("bench_whatif");
  util::Table table({"mode", "queries", "wall_s", "queries/s"});

  // Warm: one service, many predict queries.
  sim::WhatIfService service(bytes);
  const int warm_queries = options.quick ? 2000 : 20000;
  bench::WallTimer warm_timer;
  std::int64_t sink = 0;
  for (int i = 0; i < warm_queries; ++i) {
    const auto answer = service.query(nth_query(i));
    sink += answer.start.value_or(0) & 1;
  }
  const double warm_secs = warm_timer.seconds();
  const double warm_qps = double(warm_queries) / warm_secs;
  table.row().cell("warm").cell(warm_queries).cell(warm_secs, 3)
      .cell(warm_qps, 0);

  // Cold: each query pays a full replay from t=0 to the snapshot point.
  const int cold_queries = 3;
  bench::WallTimer cold_timer;
  for (int i = 0; i < cold_queries; ++i) {
    const auto engine = run_to(trace, scheduler, cut);
    const auto q = nth_query(i);
    const auto start = engine->scheduler().predict_start(
        engine->now() + q.submit_offset, q.procs, q.estimate);
    sink += start.value_or(0) & 1;
  }
  const double cold_secs = cold_timer.seconds();
  const double cold_qps = double(cold_queries) / cold_secs;
  table.row().cell("cold").cell(cold_queries).cell(cold_secs, 3)
      .cell(cold_qps, 0);
  if (sink == -1) std::cout << "";  // defeat dead-code elimination

  // Restore: rebuilding a live engine from the bytes.
  const int restores = options.quick ? 20 : 50;
  bench::WallTimer restore_timer;
  for (int i = 0; i < restores; ++i) {
    const auto clone = sim::Engine::restore(bytes);
    sink += clone->now() & 1;
  }
  const double restore_secs = restore_timer.seconds();
  const double restores_per_s = double(restores) / restore_secs;
  table.row().cell("restore").cell(restores).cell(restore_secs, 3)
      .cell(restores_per_s, 0);

  const double speedup = warm_qps / cold_qps;
  std::cout << table.to_string() << '\n'
            << "snapshot bytes: " << bytes.size() << ", replay-to-cut: "
            << to_cut_secs << " s, warm/cold speedup: " << speedup
            << "x\n";

  json.add("whatif", "warm_queries_per_s", warm_qps, "queries/s");
  json.add("whatif", "cold_queries_per_s", cold_qps, "queries/s");
  json.add("whatif", "speedup", speedup, "x");
  json.add("whatif", "restores_per_s", restores_per_s, "restores/s");
  json.add("whatif", "snapshot_bytes", double(bytes.size()), "bytes");
  json.add_table("whatif", table);
  return json.write(options.json_path) ? 0 : 1;
}
