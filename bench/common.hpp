// Shared helpers for the experiment harnesses (bench/). Each binary
// regenerates one artifact from DESIGN.md's experiment index and prints
// it as an ASCII table; EXPERIMENTS.md records the measured outputs.
#pragma once

#include <iostream>
#include <string>

#include "metrics/aggregate.hpp"
#include "sched/factory.hpp"
#include "sim/replay.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/model.hpp"
#include "workload/scale.hpp"

namespace pjsb::bench {

inline constexpr std::uint64_t kSeed = 20240612;

/// Generate a model workload scaled to a target offered load.
inline swf::Trace make_workload(workload::ModelKind kind, std::size_t jobs,
                                std::int64_t nodes, double load,
                                std::uint64_t seed = kSeed) {
  util::Rng rng(seed);
  workload::ModelConfig config;
  config.jobs = jobs;
  config.machine_nodes = nodes;
  config.mean_interarrival = 300;
  auto trace = workload::generate(kind, config, rng);
  return workload::scale_to_load(trace, load, nodes);
}

/// Replay a trace under a named scheduler and aggregate metrics.
inline metrics::MetricsReport run_and_report(
    const swf::Trace& trace, const std::string& scheduler,
    const sim::ReplayOptions& options = {}) {
  const auto result =
      sim::replay(trace, sched::make_scheduler(scheduler), options);
  return metrics::compute_report(result.completed, result.stats);
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "=== " << experiment << " ===\n" << claim << "\n\n";
}

}  // namespace pjsb::bench
