// Shared helpers for the experiment harnesses (bench/). Each binary
// regenerates one artifact from DESIGN.md's experiment index and prints
// it as an ASCII table; EXPERIMENTS.md records the measured outputs.
// Every bench also speaks a common CLI (--quick, --json PATH) and can
// emit its results as machine-readable JSON so CI can track performance
// trajectories (BENCH_*.json) across PRs.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/aggregate.hpp"
#include "sched/registry.hpp"
#include "sim/replay.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/model.hpp"
#include "workload/scale.hpp"

namespace pjsb::bench {

inline constexpr std::uint64_t kSeed = 20240612;

/// Common CLI for bench binaries: `--quick` shrinks problem sizes so CI
/// can run the suite in seconds; `--json PATH` writes the results as
/// JSON; `--dump-csv PATH` (where supported) writes per-job scheduler
/// decisions for byte-identical regression comparison.
struct BenchOptions {
  bool quick = false;
  std::string json_path;
  std::string csv_path;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        o.quick = true;
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        o.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--dump-csv") == 0 && i + 1 < argc) {
        o.csv_path = argv[++i];
      }
    }
    return o;
  }
};

/// Wall-clock stopwatch for throughput metrics.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Collects named metrics and tables and renders one JSON document:
/// {"suite": ..., "metrics": [{name, metric, value, unit}...],
///  "tables": {name: [row objects...]}}.
class JsonReporter {
 public:
  explicit JsonReporter(std::string suite) : suite_(std::move(suite)) {}

  void add(const std::string& name, const std::string& metric, double value,
           const std::string& unit) {
    std::ostringstream os;
    os << "{\"name\": \"" << name << "\", \"metric\": \"" << metric
       << "\", \"value\": ";
    // JSON has no inf/nan tokens; degrade to null rather than emit an
    // unparseable document.
    if (std::isfinite(value)) {
      os << value;
    } else {
      os << "null";
    }
    os << ", \"unit\": \"" << unit << "\"}";
    metrics_.push_back(os.str());
  }

  void add_table(const std::string& name, const util::Table& table) {
    tables_.push_back("\"" + name + "\": " + table.to_json());
  }

  std::string to_json() const {
    std::ostringstream os;
    os << "{\n  \"suite\": \"" << suite_ << "\",\n  \"metrics\": [";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      os << (i ? ",\n    " : "\n    ") << metrics_[i];
    }
    os << "\n  ],\n  \"tables\": {";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      os << (i ? ",\n    " : "\n    ") << tables_[i];
    }
    os << "\n  }\n}\n";
    return os.str();
  }

  /// Write to `path` if non-empty. Returns false on IO failure.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench: cannot write " << path << '\n';
      return false;
    }
    out << to_json();
    return bool(out);
  }

 private:
  std::string suite_;
  std::vector<std::string> metrics_;
  std::vector<std::string> tables_;
};

/// Dump completed-job decisions as CSV (sorted by id) — the regression
/// artifact for "same scheduler decisions" comparisons across refactors.
inline void write_decisions_csv(std::ostream& os,
                                std::vector<sim::CompletedJob> completed) {
  std::sort(completed.begin(), completed.end(),
            [](const sim::CompletedJob& a, const sim::CompletedJob& b) {
              return a.id < b.id;
            });
  os << "id,submit,start,end,procs,restarts\n";
  for (const auto& c : completed) {
    os << c.id << ',' << c.submit << ',' << c.start << ',' << c.end << ','
       << c.procs << ',' << c.restarts << '\n';
  }
}

/// Generate a model workload scaled to a target offered load.
inline swf::Trace make_workload(workload::ModelKind kind, std::size_t jobs,
                                std::int64_t nodes, double load,
                                std::uint64_t seed = kSeed) {
  util::Rng rng(seed);
  workload::ModelConfig config;
  config.jobs = jobs;
  config.machine_nodes = nodes;
  config.mean_interarrival = 300;
  auto trace = workload::generate(kind, config, rng);
  return workload::scale_to_load(trace, load, nodes);
}

/// Replay a trace under a named scheduler and aggregate metrics.
inline metrics::MetricsReport run_and_report(
    const swf::Trace& trace, const std::string& scheduler,
    const sim::SimulationSpec& spec = {}, const sim::ReplayHooks& hooks = {}) {
  sim::SimulationSpec resolved = spec;
  resolved.scheduler = scheduler;
  const auto result = sim::replay(trace, resolved, hooks);
  return metrics::compute_report(result.completed, result.stats);
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "=== " << experiment << " ===\n" << claim << "\n\n";
}

}  // namespace pjsb::bench
