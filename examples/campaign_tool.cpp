// campaign_tool: run a full evaluation campaign from a declarative
// spec file — the paper's standardized-comparison workflow in one
// command.
//
//   campaign_tool <spec-file> [options]
//   campaign_tool --demo      [options]
//   campaign_tool --schedulers
//
// Options:
//   --threads N   worker threads (default: hardware concurrency)
//   --out PREFIX  output prefix (default: "campaign"); writes
//                 PREFIX_cells.csv, PREFIX_summary.csv, PREFIX.json
//   --rank M      rank schedulers by metric M (overrides the spec's
//                 `rank =` line; see metrics::valid_metric_names)
//   --quiet       suppress per-cell progress
//   --schedulers  print the scheduler registry catalogue and exit
//
// `--demo` runs a built-in campaign (2 synthetic workloads x 4
// schedulers — including a parameterized EASY variant — x open/closed
// loop x 2 seed replications) and is also a living example of the spec
// format. See src/exp/campaign.hpp for the full grammar.
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>

#include "exp/campaign.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sched/registry.hpp"
#include "util/string_util.hpp"

namespace {

constexpr const char* kDemoSpec = R"(# Built-in demo campaign.
workload = lublin99 jobs=700 load=0.7
workload = jann97 jobs=700 load=0.7
scheduler = fcfs
scheduler = sjf
scheduler = easy
scheduler = easy reserve_depth=4
scheduler = conservative
config = open
config = closed
replications = 2
seed = 42
nodes = 128
rank = mean-bounded-slowdown
)";

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <spec-file>|--demo|--schedulers [--threads N] "
               "[--out PREFIX] [--rank METRIC] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pjsb;

  std::string spec_path;
  bool demo = false;
  bool quiet = false;
  int threads = 0;
  std::string prefix = "campaign";
  std::optional<metrics::MetricId> rank_override;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--schedulers") {
      std::cout << sched::Registry::global().help();
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--rank" && i + 1 < argc) {
      try {
        rank_override = metrics::metric_from_name(argv[++i]);
      } catch (const std::exception& e) {
        std::cerr << "--rank: " << e.what() << "\n";
        return 2;
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      const auto n = pjsb::util::parse_i64(argv[++i]);
      if (!n || *n < 0 || *n > std::numeric_limits<int>::max()) {
        std::cerr << "--threads needs a non-negative integer (0 = auto)\n";
        return 2;
      }
      threads = int(*n);
    } else if (arg == "--out" && i + 1 < argc) {
      prefix = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (demo ? !spec_path.empty() : spec_path.empty()) return usage(argv[0]);

  exp::CampaignSpec spec;
  try {
    if (demo) {
      spec = exp::parse_campaign_spec_string(kDemoSpec);
    } else {
      std::ifstream in(spec_path);
      if (!in) {
        std::cerr << "cannot open spec file: " << spec_path << "\n";
        return 1;
      }
      spec = exp::parse_campaign_spec(in);
    }
  } catch (const std::exception& e) {
    std::cerr << "spec error: " << e.what() << "\n";
    return 1;
  }
  if (rank_override) spec.rank_metric = *rank_override;

  std::cout << "campaign: " << spec.workloads.size() << " workload(s) x "
            << spec.schedulers.size() << " scheduler(s) x "
            << spec.configs.size() << " config(s) x " << spec.replications
            << " replication(s) = " << spec.cell_count() << " cells\n";

  exp::RunnerOptions options;
  options.threads = threads;
  if (!quiet) {
    // The runner skips replications it can prove identical, so the
    // progress total can be smaller than the announced cell count.
    options.progress = [](std::size_t done, std::size_t total) {
      std::cout << "  simulated cell " << done << "/" << total << " done\n";
    };
  }

  exp::CampaignRun run;
  try {
    run = exp::run_campaign(spec, options);
  } catch (const std::exception& e) {
    std::cerr << "campaign failed: " << e.what() << "\n";
    return 1;
  }

  const auto report = exp::aggregate(run);
  const auto write_file = [](const std::string& path,
                             const std::string& content) {
    std::ofstream out(path);
    out << content;
    out.flush();
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    return true;
  };
  const std::string cells_path = prefix + "_cells.csv";
  const std::string summary_path = prefix + "_summary.csv";
  const std::string json_path = prefix + ".json";
  if (!write_file(cells_path, exp::cells_csv(run)) ||
      !write_file(summary_path, exp::summary_csv(run, report)) ||
      !write_file(json_path, exp::to_json(run, report))) {
    return 1;
  }
  std::cout << "wrote " << cells_path << ", " << summary_path << ", "
            << json_path << "\n";
  if (!spec.telemetry_dir.empty()) {
    // Per-cell traces already landed in the telemetry dir during the
    // run; the rollup CSV joins them under the same roof.
    const std::string telemetry_path =
        spec.telemetry_dir + "/telemetry.csv";
    if (!write_file(telemetry_path, exp::telemetry_csv(run))) return 1;
    // Skipped deterministic replications share replication 0's trace
    // file, so the directory can hold fewer files than cells.
    std::cout << "wrote " << telemetry_path << " and per-cell traces in "
              << spec.telemetry_dir << "/\n";
  }
  std::cout << "\n";
  std::cout << exp::ranking_table(run, report, spec.rank_metric);
  return 0;
}
