// Feedback demonstration (paper section 2.2): infer user sessions from
// a trace, annotate fields 17/18, and compare open-loop vs closed-loop
// replay on schedulers of different quality.
#include <iostream>
#include <map>

#include "core/feedback/rewrite.hpp"
#include "core/feedback/session.hpp"
#include "metrics/aggregate.hpp"
#include "sim/replay.hpp"
#include "util/table.hpp"
#include "workload/model.hpp"
#include "workload/scale.hpp"

int main() {
  using namespace pjsb;

  // A workload with pronounced rerun behaviour (edit-compile-run).
  util::Rng rng(21);
  workload::ModelConfig config;
  config.jobs = 2000;
  config.machine_nodes = 64;
  config.users = 12;
  auto trace = workload::generate(workload::ModelKind::kFeitelson96,
                                  config, rng);
  trace = workload::scale_to_load(trace, 0.9, 64);

  // Observe a schedule to supply wait times, then infer sessions.
  {
    const auto base =
        sim::replay(trace, sim::SimulationSpec{}.with_scheduler("easy"));
    std::map<std::int64_t, std::int64_t> waits;
    for (const auto& c : base.completed) waits[c.id] = c.wait();
    for (auto& r : trace.records) {
      const auto it = waits.find(r.job_number);
      if (it != waits.end()) r.wait_time = it->second;
    }
  }
  feedback::InferenceOptions options;
  options.max_think_time = 3600;
  const auto deps = feedback::infer_dependencies(trace, options);
  const auto sessions = feedback::sessions_from_dependencies(trace, deps);
  std::cout << "inferred " << deps.size() << " dependencies forming "
            << sessions.size() << " user sessions\n";
  std::size_t longest = 0;
  for (const auto& s : sessions) {
    longest = std::max(longest, s.job_numbers.size());
  }
  std::cout << "longest session chain: " << longest << " jobs\n\n";

  feedback::apply_dependencies(trace, deps);

  util::Table table({"scheduler", "loop", "mean_wait_s", "mean_bsld",
                     "makespan_h"});
  for (const std::string scheduler : {"easy", "fcfs"}) {
    for (const bool closed : {false, true}) {
      const auto result = sim::replay(
          trace,
          sim::SimulationSpec{}.with_scheduler(scheduler).closed(closed));
      const auto report =
          metrics::compute_report(result.completed, result.stats);
      table.row()
          .cell(scheduler)
          .cell(closed ? "closed" : "open")
          .cell(report.mean_wait, 0)
          .cell(report.mean_bounded_slowdown, 2)
          .cell(double(report.makespan) / 3600.0, 1);
    }
  }
  std::cout << table.to_string();
  std::cout << "\nOpen-loop replay ignores fields 17/18 and overstates "
               "load on the slow scheduler;\nclosed-loop replay lets "
               "users wait for results before resubmitting.\n";
  return 0;
}
