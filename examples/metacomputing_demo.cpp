// Metacomputing walkthrough (paper sections 3-4, Figure 1).
//
// Builds the canonical 3-site metasystem, shows the information
// services each site exports (queue length, predicted wait, earliest
// reservation window), then lets the co-allocating meta-scheduler place
// a communication-intensive application across two sites with a common
// advance-reservation window.
#include <iostream>

#include "meta/warmstones.hpp"
#include "util/table.hpp"

int main() {
  using namespace pjsb;

  // The metasystem: heterogeneous sizes and scheduling policies.
  auto configs = meta::canonical_metasystem(/*seed=*/17);
  for (auto& c : configs) c.background_jobs = 800;
  std::vector<std::unique_ptr<meta::Site>> storage;
  std::vector<meta::Site*> sites;
  for (const auto& c : configs) {
    storage.push_back(std::make_unique<meta::Site>(c));
    sites.push_back(storage.back().get());
  }

  // Let some background load accumulate.
  for (auto* s : sites) s->engine().run_until(4 * 3600);

  util::Table info({"site", "nodes", "queue", "pred_wait(16p,1h)",
                    "earliest_res(16p,1h)"});
  for (auto* s : sites) {
    const auto wait = s->predicted_wait(16, 3600);
    const auto res = s->earliest_reservation(s->engine().now(), 3600, 16);
    info.row()
        .cell(s->name())
        .cell(s->nodes())
        .cell(s->queue_length())
        .cell(wait ? std::to_string(*wait) + "s" : "n/a")
        .cell(res ? "t=" + std::to_string(*res) : "n/a");
  }
  std::cout << "site information services (Fig. 1, lower half):\n"
            << info.to_string() << '\n';

  // A coupled application needing 24+24 processors simultaneously.
  util::Rng rng(3);
  const auto graph = meta::make_communication_intensive(2, 24, 1800, rng);
  const auto stages = meta::components_from_graph(graph);
  std::cout << "application: " << graph.name << ", "
            << graph.modules.size() << " coupled modules of 24 procs, "
            << "critical path " << graph.critical_path() << "s\n";

  auto coalloc = meta::make_coalloc_meta();
  const auto now = sites[0]->engine().now();
  const auto placement =
      coalloc->place(stages[0], /*coupled=*/true, sites, now);
  std::cout << "co-allocation "
            << (placement.co_allocated ? "SUCCEEDED" : "fell back")
            << "; placed " << placement.jobs.size() << " components:\n";
  for (const auto& [site_idx, job_id] : placement.jobs) {
    std::cout << "  component -> site " << sites[site_idx]->name()
              << " (job " << job_id << ")\n";
  }

  // Run everything to completion and report the components' schedule.
  util::Table done({"site", "job", "start", "end"});
  for (std::size_t s = 0; s < sites.size(); ++s) {
    sites[s]->set_meta_completion_observer(
        [&, s](const sim::CompletedJob& j) {
          done.row()
              .cell(sites[s]->name())
              .cell(j.id)
              .cell(j.start)
              .cell(j.end);
        });
  }
  for (auto* s : sites) s->engine().run();
  std::cout << '\n' << "component execution:\n" << done.to_string();
  std::cout << "\n(co-allocated components share the same start time — "
               "simultaneous access via reservations, section 3.1)\n";
  return 0;
}
