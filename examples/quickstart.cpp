// Quickstart: the five-minute tour of pjsb.
//
//   1. generate a standard workload (Lublin '99 model) as an SWF trace;
//   2. check it against the standard's consistency rules;
//   3. write it to disk in Standard Workload Format;
//   4. simulate it under EASY backfilling;
//   5. print the metric set.
//
// Build & run:  ./build/examples/quickstart [jobs] [nodes] [load]
#include <cstdlib>
#include <iostream>

#include "core/swf/validator.hpp"
#include "core/swf/writer.hpp"
#include "metrics/aggregate.hpp"
#include "sim/replay.hpp"
#include "util/table.hpp"
#include "workload/model.hpp"
#include "workload/scale.hpp"

int main(int argc, char** argv) {
  using namespace pjsb;
  const std::size_t jobs = argc > 1 ? std::size_t(std::atoll(argv[1])) : 2000;
  const std::int64_t nodes = argc > 2 ? std::atoll(argv[2]) : 128;
  const double load = argc > 3 ? std::atof(argv[3]) : 0.7;

  // 1. Generate.
  util::Rng rng(42);
  workload::ModelConfig config;
  config.jobs = jobs;
  config.machine_nodes = nodes;
  auto trace = workload::generate(workload::ModelKind::kLublin99, config,
                                  rng);
  trace = workload::scale_to_load(trace, load, nodes);
  std::cout << "generated " << trace.records.size()
            << " jobs with the Lublin '99 model, offered load "
            << workload::offered_load(trace, nodes) << "\n";

  // 2. Validate ("every datum must abide to strict consistency rules").
  const auto report = swf::validate(trace);
  std::cout << "validator: " << report.errors() << " errors, "
            << report.warnings() << " warnings\n";

  // 3. Persist as SWF.
  const std::string path = "quickstart.swf";
  if (swf::write_swf_file(path, trace)) {
    std::cout << "wrote " << path << "\n";
  }

  // 4. Simulate under EASY backfilling (any registry spec string works
  // here — try "easy reserve_depth=4" or "gang slots=2").
  const auto result =
      sim::replay(trace, sim::SimulationSpec{}.with_scheduler("easy"));

  // 5. Report.
  const auto metrics_report =
      metrics::compute_report(result.completed, result.stats);
  util::Table table({"metric", "value"});
  table.row().cell("jobs completed").cell(metrics_report.jobs);
  table.row().cell("mean wait (s)").cell(metrics_report.mean_wait, 1);
  table.row().cell("mean response (s)").cell(metrics_report.mean_response, 1);
  table.row().cell("mean bounded slowdown")
      .cell(metrics_report.mean_bounded_slowdown, 2);
  table.row().cell("utilization").cell(metrics_report.utilization, 3);
  table.row().cell("makespan").cell(
      util::format_duration(metrics_report.makespan));
  std::cout << '\n' << table.to_string();
  return 0;
}
