// serve_client — command-line client for the scheduling daemon.
//
// Modes (endpoint first, then the mode):
//   serve_client (--socket <path> | --port <n>) [--token <t>] <mode> ...
//
//   replay <file.swf> [--whatif-every <n>] [--query-every <n>] [--drain]
//       live-submit every record of the trace in file order, mirroring
//       the field normalization sim::SimJob::from_record applies, so
//       the daemon's decision stream is byte-identical to an offline
//       sim::replay of the same trace (the CI smoke test relies on
//       this). --whatif-every / --query-every interleave read-tier
//       queries between submissions to prove they do not perturb the
//       schedule; --drain runs the backlog dry afterwards.
//   cmd <raw request line ...>
//       send one raw protocol line and print the raw response.
//   barrage <threads> <queries-per-thread>
//       concurrent WHATIF load from independent connections; prints
//       aggregate queries/s.
//   status | drain | shutdown
//       one-shot lifecycle verbs.
//
// SWF traces list records in nondecreasing submit order; replay mode
// preserves file order, which is what makes the live stream reproduce
// the offline event ordering exactly.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/swf/reader.hpp"
#include "serve/client.hpp"
#include "sim/job.hpp"

namespace {

using namespace pjsb;

int usage() {
  std::cerr <<
      "usage: serve_client (--socket <path> | --port <n>) [--token <t>] "
      "<mode>\n"
      "  replay <file.swf> [--whatif-every <n>] [--query-every <n>] "
      "[--drain]\n"
      "  cmd <raw request line ...>\n"
      "  barrage <threads> <queries-per-thread>\n"
      "  status | drain | shutdown\n";
  return 2;
}

struct Endpoint {
  std::string socket_path;
  int port = 0;
  std::string token;
};

serve::Client connect(const Endpoint& endpoint) {
  auto client = endpoint.socket_path.empty()
                    ? serve::Client::connect_tcp(endpoint.port)
                    : serve::Client::connect_unix(endpoint.socket_path);
  client.handshake(endpoint.token, "serve_client");
  return client;
}

int fail(const serve::Response& response, const char* what) {
  std::cerr << what << ": ERR " << response.code << " "
            << response.message << "\n";
  return 1;
}

int cmd_replay(const Endpoint& endpoint, const std::string& path,
               std::int64_t whatif_every, std::int64_t query_every,
               bool drain) {
  auto result = swf::read_swf_file(path);
  if (!result.errors.empty()) {
    std::cerr << "replay: " << result.errors.size()
              << " malformed line(s) in " << path << "\n";
    return 1;
  }
  auto client = connect(endpoint);
  std::int64_t submitted = 0;
  std::int64_t last_id = 0;
  for (const auto& record : result.trace.records) {
    // Mirror SimJob::from_record so the daemon admits exactly the job
    // an offline replay would.
    const auto job = sim::SimJob::from_record(record);
    const auto response = client.submit(job.procs, job.estimate, job.submit,
                                        job.runtime, job.id, job.user_id);
    if (!response.ok) return fail(response, "SUBMIT");
    ++submitted;
    last_id = response.field_i64("id").value_or(job.id);
    if (whatif_every > 0 && submitted % whatif_every == 0) {
      const auto answer = client.whatif(job.procs, job.estimate);
      if (!answer.ok) return fail(answer, "WHATIF");
    }
    if (query_every > 0 && submitted % query_every == 0) {
      const auto answer = client.query(last_id);
      if (!answer.ok) return fail(answer, "QUERY");
    }
  }
  if (drain) {
    const auto response = client.drain();
    if (!response.ok) return fail(response, "DRAIN");
    std::cout << "drained: time="
              << response.field("time").value_or("?") << " decisions="
              << response.field("decisions").value_or("?") << "\n";
  }
  std::cout << "submitted " << submitted << " job(s) from " << path
            << "\n";
  return 0;
}

int cmd_raw(const Endpoint& endpoint, const std::string& line) {
  auto client = connect(endpoint);
  const auto response = client.request_line(line);
  std::cout << serve::serialize_response(response) << "\n";
  return response.ok ? 0 : 1;
}

int cmd_barrage(const Endpoint& endpoint, int threads,
                std::int64_t queries) {
  std::atomic<std::int64_t> answered{0};
  std::atomic<bool> failed{false};
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      try {
        auto client = connect(endpoint);
        for (std::int64_t q = 0; q < queries; ++q) {
          // Deterministic shape variety, distinct per thread.
          const std::int64_t procs = 1 + (t * 7 + q) % 16;
          const std::int64_t estimate = 60 * (1 + (q % 32));
          if (!client.whatif(procs, estimate).ok) {
            failed = true;
            return;
          }
          ++answered;
        }
      } catch (const std::exception& e) {
        std::cerr << "barrage thread " << t << ": " << e.what() << "\n";
        failed = true;
      }
    });
  }
  for (auto& thread : pool) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    begin)
          .count();
  std::cout << "answered " << answered.load() << " what-if queries in "
            << seconds << "s ("
            << (seconds > 0 ? double(answered.load()) / seconds : 0.0)
            << " qps)\n";
  return failed ? 1 : 0;
}

int one_shot(const Endpoint& endpoint, const std::string& verb) {
  auto client = connect(endpoint);
  const auto response = verb == "status"   ? client.status()
                        : verb == "drain"  ? client.drain()
                                           : client.shutdown();
  std::cout << serve::serialize_response(response) << "\n";
  return response.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Endpoint endpoint;
  int next = 1;
  while (next < argc && argv[next][0] == '-') {
    const std::string flag = argv[next];
    if (flag == "--socket" && next + 1 < argc) {
      endpoint.socket_path = argv[next + 1];
      next += 2;
    } else if (flag == "--port" && next + 1 < argc) {
      endpoint.port = std::atoi(argv[next + 1]);
      next += 2;
    } else if (flag == "--token" && next + 1 < argc) {
      endpoint.token = argv[next + 1];
      next += 2;
    } else {
      return usage();
    }
  }
  if (endpoint.socket_path.empty() && endpoint.port <= 0) return usage();
  if (next >= argc) return usage();
  const std::string mode = argv[next++];

  try {
    if (mode == "replay" && next < argc) {
      const std::string path = argv[next++];
      std::int64_t whatif_every = 0;
      std::int64_t query_every = 0;
      bool drain = false;
      while (next < argc) {
        const std::string flag = argv[next++];
        if (flag == "--drain") {
          drain = true;
        } else if (flag == "--whatif-every" && next < argc) {
          whatif_every = std::atoll(argv[next++]);
        } else if (flag == "--query-every" && next < argc) {
          query_every = std::atoll(argv[next++]);
        } else {
          return usage();
        }
      }
      return cmd_replay(endpoint, path, whatif_every, query_every, drain);
    }
    if (mode == "cmd" && next < argc) {
      std::string line;
      for (; next < argc; ++next) {
        if (!line.empty()) line += ' ';
        line += argv[next];
      }
      return cmd_raw(endpoint, line);
    }
    if (mode == "barrage" && next + 2 == argc) {
      const int threads = std::atoi(argv[next]);
      const std::int64_t queries = std::atoll(argv[next + 1]);
      if (threads < 1 || queries < 1) {
        std::cerr << "barrage: threads and queries must be positive\n";
        return 2;
      }
      return cmd_barrage(endpoint, threads, queries);
    }
    if ((mode == "status" || mode == "drain" || mode == "shutdown") &&
        next == argc) {
      return one_shot(endpoint, mode);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
