// The administrator's workflow the paper motivates (section 1.2):
// "having a representative workload may therefore allow the
// administrator of a parallel machine to determine the scheduler best
// suited for him."
//
// Loads the site's own trace (or generates a benchmark workload),
// replays every scheduler, and ranks them under a configurable
// owner/user objective blend.
//
// Usage: site_comparison [trace.swf] [lambda]
//   lambda in [0,1]: 0 = owner-centric (utilization), 1 = user-centric.
#include <iostream>

#include "core/swf/reader.hpp"
#include "metrics/objective.hpp"
#include "sim/replay.hpp"
#include "util/table.hpp"
#include "workload/model.hpp"
#include "workload/scale.hpp"

int main(int argc, char** argv) {
  using namespace pjsb;

  swf::Trace trace;
  if (argc > 1) {
    auto result = swf::read_swf_file(argv[1]);
    if (!result.ok() && result.trace.records.empty()) {
      std::cerr << "cannot read " << argv[1] << "\n";
      return 1;
    }
    trace = std::move(result.trace);
    std::cout << "loaded " << trace.records.size() << " jobs from "
              << argv[1] << "\n";
  } else {
    util::Rng rng(7);
    workload::ModelConfig config;
    config.jobs = 3000;
    config.machine_nodes = 128;
    trace = workload::generate(workload::ModelKind::kLublin99, config, rng);
    trace = workload::scale_to_load(trace, 0.8, 128);
    std::cout << "no trace given; generated a Lublin '99 benchmark "
                 "workload at load 0.8\n";
  }
  const double lambda = argc > 2 ? std::atof(argv[2]) : 0.5;

  // Registry spec strings — parameterized variants rank alongside the
  // classic policies.
  std::vector<std::string> schedulers = {
      "fcfs",         "sjf",  "sjf-fit", "easy", "easy reserve_depth=4",
      "conservative", "gang4"};
  std::vector<metrics::MetricsReport> reports;
  util::Table table({"scheduler", "mean_wait_s", "mean_bsld", "p95_wait_s",
                     "util", "throughput/h"});
  for (const auto& name : schedulers) {
    const auto result =
        sim::replay(trace, sim::SimulationSpec{}.with_scheduler(name));
    const auto report =
        metrics::compute_report(result.completed, result.stats);
    table.row()
        .cell(name)
        .cell(report.mean_wait, 0)
        .cell(report.mean_bounded_slowdown, 2)
        .cell(report.p95_wait, 0)
        .cell(report.utilization, 3)
        .cell(report.throughput_per_hour, 1);
    reports.push_back(report);
  }
  std::cout << '\n' << table.to_string() << '\n';

  const auto objective = metrics::owner_user_blend(lambda);
  const auto ranking = metrics::rank_by_objective(objective, reports);
  std::cout << "ranking under " << objective.name
            << " (best first):\n";
  for (std::size_t pos = 0; pos < ranking.size(); ++pos) {
    std::cout << "  " << pos + 1 << ". " << schedulers[ranking[pos]]
              << "  (cost " << objective.cost(reports[ranking[pos]])
              << ")\n";
  }
  std::cout << "\nrecommended scheduler: " << schedulers[ranking[0]]
            << "\n";
  return 0;
}
