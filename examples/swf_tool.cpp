// swf_tool — the archive maintainer's multitool.
//
// Subcommands:
//   validate <file.swf>              check the consistency rules
//   validate <file.swf> <scheduler-spec> <golden> [--bless] [flags]
//                                    replay under invariant checkers and
//                                    compare (or --bless: regenerate) the
//                                    golden decision-trace snapshot;
//                                    fault flags pin crashy goldens
//   fuzz [seed] [workloads] [jobs]   drive every registered scheduler
//                                    spec through seeded random
//                                    workloads + outages with all
//                                    invariant checkers attached
//   fuzz parse [seed] [cases]        differential parser fuzzing:
//                                    seeded byte-level mutations through
//                                    the legacy and fast SWF parsers,
//                                    asserting identical verdicts
//   stats <file.swf>                 print aggregate statistics
//   anonymize <in.swf> <out.swf>     renumber identities incrementally
//   generate <model> <jobs> <nodes> <load> <out.swf>
//                                    synthesize a model workload
//   convert-iacct <raw> <out.swf> <site>   convert hypercube accounting
//   convert-nqs <raw> <out.swf> <site>     convert NQS/PBS accounting
//   simulate <file.swf> <scheduler-spec> [rank-metric]
//                                    replay and print metrics
//   stream-simulate <file.swf> <scheduler-spec> [lookahead]
//                                    constant-memory streaming replay
//   generate-stream <model> <jobs> <nodes> <interarrival> <out.swf>
//                                    stream a synthetic trace to disk
//   trace-summary <trace.jsonl> [top-k]
//                                    summarize a JSONL event trace
//   snapshot <file.swf> <scheduler-spec> <time> <out.snap> [fault-flags]
//                                    run to sim-time <time>, freeze the
//                                    complete engine state into a
//                                    versioned binary snapshot; the
//                                    decisions made so far land in
//                                    <out.snap>.decisions
//   resume <file.snap> [--golden <file>]
//                                    restore a snapshot and run it to
//                                    completion; with --golden, diff the
//                                    combined (prefix + resumed)
//                                    decision trace against a golden
//   whatif <file.snap> <procs> <estimate> [--offset <s>] [--simulate]
//                                    answer "when would this job start?"
//                                    against the frozen state, without
//                                    perturbing it
//   serve <sim-spec> [--socket <path> | --port <n>] [serve-flags]
//                                    run the scheduling daemon: live
//                                    SUBMIT/KILL/QUERY/WHATIF sessions
//                                    over a Unix or loopback TCP socket
//                                    (README "Scheduling daemon")
//   schedulers                       print the policy registry catalogue
//
// simulate, stream-simulate and golden-mode validate accept trailing
// observability flags (all opt-in; see README "Observability"):
//   --trace <path>        JSONL event trace with provenance
//   --timeseries <path>   sim-time machine/queue time-series CSV
//   --sample-every <s>    time-series cadence in sim-seconds
//   --profile <path>      Chrome trace-event JSON (opens in Perfetto)
// plus ingest flags (README "Ingest pipeline"):
//   --parser stream|fast  trace parser backend (default stream)
//   --threads <n>         fast-parser worker threads (needs --parser fast)
// plus fault-injection & recovery flags (README "Failure & recovery"):
//   --faults <seed>       seeded per-node crash schedule (0 disables)
//   --mtbf <s> --repair <s>          crash-schedule distributions
//   --checkpoint <s> --dump <s> --read <s>   checkpoint/restart costs
//   --retry <n> --backoff <s>        drop after n kills, requeue delay
//   --overrun extend|kill|grace --grace <s>  walltime-overrun policy
// stream-simulate rejects --faults: the crash schedule needs the
// workload horizon up front, which a stream cannot provide.
//
// Scheduler arguments are registry spec strings — quote parameterized
// variants: swf_tool simulate kth.swf "easy reserve_depth=2".
//
// Malformed record lines are fatal: every offending line is reported
// with its physical line number and the tool exits nonzero, so a broken
// archive file cannot silently shrink an experiment's workload.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <string>

#include "core/swf/anonymize.hpp"
#include "core/swf/convert.hpp"
#include "core/swf/reader.hpp"
#include "core/swf/stream_reader.hpp"
#include "core/swf/validator.hpp"
#include "core/swf/writer.hpp"
#include "metrics/aggregate.hpp"
#include "metrics/online.hpp"
#include "obs/trace_read.hpp"
#include "sched/registry.hpp"
#include "serve/server.hpp"
#include "sim/fault/fault.hpp"
#include "sim/replay.hpp"
#include "sim/snapshot/snapshot.hpp"
#include "sim/snapshot/whatif.hpp"
#include "util/resource.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "validate/decisions.hpp"
#include "validate/fuzzer.hpp"
#include "validate/golden.hpp"
#include "validate/invariants.hpp"
#include "workload/model.hpp"
#include "workload/scale.hpp"
#include "workload/stream.hpp"

namespace {

using namespace pjsb;

int usage() {
  std::cerr <<
      "usage: swf_tool <command> ...\n"
      "  validate <file.swf>\n"
      "  validate <file.swf> <scheduler-spec> <golden-file> [--bless] "
      "[fault-flags]\n"
      "  fuzz [seed] [workloads] [jobs-per-workload]\n"
      "  fuzz parse [seed] [cases]\n"
      "  stats <file.swf>\n"
      "  anonymize <in.swf> <out.swf>\n"
      "  generate <feitelson96|jann97|lublin99|downey97> <jobs> <nodes> "
      "<load> <out.swf>\n"
      "  generate-stream <feitelson96|jann97|lublin99> <jobs> <nodes> "
      "<mean-interarrival-s> <out.swf>\n"
      "  convert-iacct <raw-log> <out.swf> <installation>\n"
      "  convert-nqs <raw-log> <out.swf> <installation>\n"
      "  simulate <file.swf> <scheduler-spec> [rank-metric] [sink-flags] "
      "[fault-flags]\n"
      "  stream-simulate <file.swf> <scheduler-spec> [lookahead] "
      "[sink-flags]\n"
      "  trace-summary <trace.jsonl> [top-k]\n"
      "  snapshot <file.swf> <scheduler-spec> <time> <out.snap> "
      "[fault-flags]\n"
      "  resume <file.snap> [--golden <golden-file>]\n"
      "  whatif <file.snap> <procs> <estimate-s> [--offset <s>] "
      "[--simulate]\n"
      "  serve <sim-spec> [--socket <path> | --port <n>] [--token <t>]\n"
      "        [--time-scale <x>] [--decisions <csv>]\n"
      "        [--snapshot-on-shutdown <snap>] [--resume <snap>]\n"
      "  schedulers\n"
      "scheduler-spec is a registry spec string, e.g. \"easy\" or\n"
      "\"easy reserve_depth=2\" (run `swf_tool schedulers` for the "
      "catalogue)\n"
      "sink-flags (all opt-in): --trace <path> --timeseries <path>\n"
      "  --sample-every <sim-seconds> --profile <path>\n"
      "ingest-flags: --parser stream|fast --threads <n>\n"
      "fault-flags (simulate/validate; see README \"Failure & "
      "recovery\"):\n"
      "  --faults <seed> --mtbf <s> --repair <s> --checkpoint <s>\n"
      "  --dump <s> --read <s> --retry <n> --backoff <s>\n"
      "  --overrun extend|kill|grace --grace <s>\n";
  return 2;
}

/// Load a trace or exit. Malformed records are fatal — each is reported
/// as `path:line: message` and the tool exits 1, rather than silently
/// running the experiment on a shrunken workload. The spec's parser=/
/// threads= keys select the backend (identical records either way).
swf::Trace load_or_die(const std::string& path,
                       const sim::SimulationSpec& spec = {}) {
  auto result = sim::load_trace(path, spec);
  if (!result.errors.empty()) {
    for (const auto& e : result.errors) {
      std::cerr << path << ":" << e.line << ": " << e.message << "\n";
    }
    std::cerr << "error: " << result.errors.size()
              << " malformed line(s) in " << path << "\n";
    std::exit(1);
  }
  return std::move(result.trace);
}

using util::peak_rss_mb;

int cmd_validate(const std::string& path) {
  const auto trace = load_or_die(path);
  const auto report = swf::validate(trace);
  std::cout << report.to_string();
  return report.clean() ? 0 : 1;
}

/// Trailing flags shared by simulate, stream-simulate and golden-mode
/// validate: observability sinks plus fault injection & recovery.
struct RunFlags {
  std::string trace;
  std::string timeseries;
  std::string profile;
  std::int64_t sample_every = 0;

  // Fault & recovery knobs mirror the SimulationSpec fields 1:1; the
  // spec's own validate() rejects inconsistent combinations (e.g.
  // --mtbf without --faults) with a precise message.
  std::uint64_t faults = 0;
  std::int64_t mtbf = -1;    ///< -1: keep the spec default
  std::int64_t repair = -1;  ///< -1: keep the spec default
  std::int64_t checkpoint = 0;
  std::int64_t dump = 0;
  std::int64_t read = 0;
  int retry = 0;
  std::int64_t backoff = 0;
  std::optional<sim::fault::OverrunPolicy> overrun;
  std::int64_t grace = 0;

  // Ingest knobs (README "Ingest pipeline").
  std::string parser = "stream";
  int threads = 1;

  /// --bless (golden-mode validate only; valueless).
  bool bless = false;

  bool any_faults() const { return faults != 0; }

  void apply(sim::SimulationSpec& spec) const {
    spec.parser = parser;
    spec.threads = threads;
    if (!trace.empty()) spec.with_trace(trace);
    if (!timeseries.empty()) spec.with_timeseries(timeseries, sample_every);
    if (!profile.empty()) spec.with_profile(profile);
    if (faults != 0) spec.faults = faults;
    // Set the distributions even without --faults, so spec.validate()
    // produces its "needs faults=<seed>" message instead of the flags
    // being silently ignored.
    if (mtbf > 0) spec.mtbf = mtbf;
    if (repair > 0) spec.repair = repair;
    spec.checkpoint = checkpoint;
    spec.dump = dump;
    spec.read = read;
    spec.retry_limit = retry;
    spec.backoff = backoff;
    if (overrun) spec.overrun = *overrun;
    spec.grace = grace;
  }
};

/// Parse trailing `--flag value` pairs from argv[first..). Returns
/// false (with a message on stderr) on an unknown flag, a missing
/// value, or a malformed number; the spec itself rejects the remaining
/// combinations (e.g. --sample-every without --timeseries, --grace
/// without --overrun grace) with its own message.
bool parse_run_flags(int argc, char** argv, int first, RunFlags& out) {
  // Non-negative integer flags that map straight onto a field.
  struct IntFlag {
    const char* name;
    std::int64_t* field;
    std::int64_t min;
  };
  const IntFlag int_flags[] = {
      {"--mtbf", &out.mtbf, 1},       {"--repair", &out.repair, 1},
      {"--checkpoint", &out.checkpoint, 0}, {"--dump", &out.dump, 0},
      {"--read", &out.read, 0},       {"--backoff", &out.backoff, 0},
      {"--grace", &out.grace, 0},
  };
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--bless") {
      out.bless = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a value\n";
      return false;
    }
    const std::string value = argv[++i];
    if (flag == "--parser") {
      if (value != "stream" && value != "fast") {
        std::cerr << "--parser must be stream or fast\n";
        return false;
      }
      out.parser = value;
    } else if (flag == "--threads") {
      const auto n = util::parse_i64(value);
      if (!n || *n < 1 || *n > 256) {
        std::cerr << "--threads must be in [1, 256]\n";
        return false;
      }
      out.threads = int(*n);
    } else if (flag == "--trace") {
      out.trace = value;
    } else if (flag == "--timeseries") {
      out.timeseries = value;
    } else if (flag == "--profile") {
      out.profile = value;
    } else if (flag == "--sample-every") {
      const auto n = util::parse_i64(value);
      if (!n || *n < 1) {
        std::cerr << "--sample-every must be a positive integer "
                     "(sim-seconds)\n";
        return false;
      }
      out.sample_every = *n;
    } else if (flag == "--faults") {
      const auto n = util::parse_i64(value);
      if (!n || *n < 1) {
        std::cerr << "--faults must be a positive seed (omit the flag "
                     "to disable injection)\n";
        return false;
      }
      out.faults = std::uint64_t(*n);
    } else if (flag == "--retry") {
      const auto n = util::parse_i64(value);
      if (!n || *n < 0) {
        std::cerr << "--retry must be a non-negative integer "
                     "(0 = retry forever)\n";
        return false;
      }
      out.retry = int(*n);
    } else if (flag == "--overrun") {
      const auto policy = sim::fault::overrun_policy_from_name(value);
      if (!policy) {
        std::cerr << "--overrun must be extend, kill or grace\n";
        return false;
      }
      out.overrun = *policy;
    } else {
      bool matched = false;
      for (const auto& f : int_flags) {
        if (flag != f.name) continue;
        const auto n = util::parse_i64(value);
        if (!n || *n < f.min) {
          std::cerr << f.name << " must be an integer >= " << f.min
                    << " (seconds)\n";
          return false;
        }
        *f.field = *n;
        matched = true;
        break;
      }
      if (!matched) {
        std::cerr << "unknown flag " << flag << "\n";
        return false;
      }
    }
  }
  return true;
}

/// Golden-trace mode: replay the trace under `scheduler` with every
/// invariant checker attached, then compare the decision trace against
/// the committed snapshot (or regenerate it with --bless). Fault flags
/// feed the same seeded crash schedule the golden was blessed with, so
/// crashy workloads can be pinned too.
int cmd_validate_golden(const std::string& path,
                        const std::string& scheduler,
                        const std::string& golden_path,
                        const RunFlags& flags) {
  sim::SimulationSpec spec;
  spec.scheduler = scheduler;
  flags.apply(spec);
  const auto trace = load_or_die(path, spec);
  const std::int64_t nodes =
      trace.header.max_nodes.value_or(sim::kDefaultNodes);

  auto instance = sched::make_scheduler(scheduler);
  validate::CheckerOptions checker_options;
  checker_options.nodes = nodes;
  checker_options.scheduler = scheduler;
  // Crash kills are expected interruptions, not invariant violations.
  checker_options.outages = flags.any_faults();
  validate::InvariantChecker checker(checker_options);
  checker.watch(*instance);
  validate::DecisionRecorder recorder;
  const bool bless = flags.bless;
  sim::replay(trace, std::move(instance), spec,
              sim::ReplayHooks{}.observe(checker).observe(recorder));

  if (!checker.clean()) {
    std::cerr << "invariant violations under " << scheduler << ":\n"
              << checker.summary() << "\n";
    if (bless) {
      // Never enshrine a broken run: blessing from a replay that
      // violated the invariants would make CI green on a regression.
      std::cerr << "refusing to bless " << golden_path
                << " from a dirty run\n";
    }
    return 1;
  }
  // The invariant-checked replay above already recorded the decision
  // trace; compare (or bless) that instead of simulating again.
  const auto csv = validate::decisions_to_csv(recorder.decisions());
  const auto result =
      bless ? validate::bless_golden_csv(csv, golden_path, scheduler)
            : validate::check_golden_csv(csv, golden_path, scheduler);
  std::cout << result.message << "\n";
  if (!result.ok) return 1;
  std::cout << "validate: " << recorder.decisions().size()
            << " decisions, invariants clean\n";
  return 0;
}

int cmd_fuzz(std::uint64_t seed, int workloads, std::size_t jobs) {
  validate::FuzzOptions options;
  options.seed = seed;
  options.workloads = workloads;
  options.jobs = jobs;
  const auto report = validate::run_fuzzer(options);
  std::cout << report.summary() << "\n";
  return report.clean() ? 0 : 1;
}

int cmd_fuzz_parse(std::uint64_t seed, int cases) {
  validate::ParserFuzzOptions options;
  options.seed = seed;
  options.cases = cases;
  const auto report = validate::run_parser_fuzzer(options);
  std::cout << report.summary() << "\n";
  return report.clean() ? 0 : 1;
}

int cmd_stats(const std::string& path) {
  const auto trace = load_or_die(path);
  const auto s = trace.stats();
  util::Table table({"statistic", "value"});
  table.row().cell("jobs").cell(s.jobs);
  table.row().cell("users").cell(s.users);
  table.row().cell("groups").cell(s.groups);
  table.row().cell("executables").cell(s.executables);
  table.row().cell("span").cell(util::format_duration(s.span_seconds));
  table.row().cell("mean procs").cell(s.mean_procs, 2);
  table.row().cell("mean runtime (s)").cell(s.mean_runtime, 1);
  table.row().cell("mean interarrival (s)").cell(s.mean_interarrival, 1);
  table.row().cell("power-of-2 sizes").cell(s.fraction_power_of_two, 3);
  table.row().cell("serial jobs").cell(s.fraction_serial, 3);
  table.row().cell("offered load").cell(s.offered_load, 3);
  table.row().cell("jobs with dependencies").cell(s.with_dependencies);
  std::cout << table.to_string();
  return 0;
}

int cmd_anonymize(const std::string& in, const std::string& out) {
  auto trace = load_or_die(in);
  const auto result = swf::anonymize(trace);
  std::cout << "remapped " << result.users << " users, " << result.groups
            << " groups, " << result.executables << " executables\n";
  return swf::write_swf_file(out, trace) ? 0 : 1;
}

int cmd_generate(const std::string& model, std::size_t jobs,
                 std::int64_t nodes, double load, const std::string& out) {
  workload::ModelKind kind;
  if (model == "feitelson96") kind = workload::ModelKind::kFeitelson96;
  else if (model == "jann97") kind = workload::ModelKind::kJann97;
  else if (model == "lublin99") kind = workload::ModelKind::kLublin99;
  else if (model == "downey97") kind = workload::ModelKind::kDowney97;
  else return usage();

  util::Rng rng(12345);
  workload::ModelConfig config;
  config.jobs = jobs;
  config.machine_nodes = nodes;
  auto trace = workload::generate(kind, config, rng);
  trace = workload::scale_to_load(trace, load, nodes);
  if (!swf::write_swf_file(out, trace)) return 1;
  std::cout << "wrote " << jobs << " " << model << " jobs at load " << load
            << " to " << out << "\n";
  return 0;
}

int cmd_convert(bool nqs, const std::string& in, const std::string& out,
                const std::string& site) {
  std::ifstream raw(in);
  if (!raw) {
    std::cerr << "cannot open " << in << "\n";
    return 1;
  }
  auto result = nqs ? swf::convert_nqsacct(raw, site)
                    : swf::convert_iacct(raw, site);
  for (const auto& e : result.errors) {
    std::cerr << in << ":" << e.line << ": " << e.message << "\n";
  }
  if (result.trace.records.empty()) {
    std::cerr << "no convertible records\n";
    return 1;
  }
  const auto report = swf::validate(result.trace);
  std::cout << "converted " << result.trace.records.size() << " jobs ("
            << report.errors() << " validation errors)\n";
  return swf::write_swf_file(out, result.trace) ? 0 : 1;
}

int cmd_generate_stream(const std::string& model, std::uint64_t jobs,
                        std::int64_t nodes, double interarrival,
                        const std::string& out_path) {
  const auto kind = workload::model_kind_from_name(model);
  if (!kind) return usage();

  workload::GeneratorSpec spec;
  spec.kind = *kind;
  spec.config.machine_nodes = nodes;
  if (interarrival > 0) spec.config.mean_interarrival = interarrival;
  spec.seed = 12345;
  spec.max_jobs = jobs;
  workload::ModelJobSource source(spec);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  const auto written = swf::write_swf_stream(out, source);
  if (!out) {
    std::cerr << "write failed: " << out_path << "\n";
    return 1;
  }
  std::cout << "streamed " << written << " " << model << " jobs to "
            << out_path << " (peak rss " << peak_rss_mb() << " MB)\n";
  return 0;
}

int cmd_trace_summary(const std::string& path, std::size_t top_k) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  const auto summary = obs::summarize_trace(in, top_k);
  std::cout << summary.to_string();
  // A trace with no header record is almost certainly not a pjsb
  // trace; report it in the exit code as well as the text.
  return summary.version >= 1 ? 0 : 1;
}

int cmd_stream_simulate(const std::string& path, const std::string& scheduler,
                        std::size_t lookahead, const RunFlags& flags) {
  if (flags.any_faults()) {
    std::cerr << "stream-simulate: --faults needs the workload horizon "
                 "up front; use simulate for fault injection\n";
    return 2;
  }
  // Constant memory (with --parser fast: O(file), GB/s): per-job
  // records are not retained; the metrics the report needs are
  // accumulated online by an attached observer.
  auto spec = sim::SimulationSpec{}
                  .with_scheduler(scheduler)
                  .with_lookahead(lookahead)
                  .streaming_memory();
  flags.apply(spec);
  const auto source = sim::open_trace_source(path, spec);
  if (source->open_failed()) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }

  metrics::OnlineMetricsObserver online;
  const auto result =
      sim::replay(*source, spec, sim::ReplayHooks{}.observe(online));

  // Malformed lines surface after the replay, exactly like load_or_die.
  if (source->error_count() > 0) {
    for (const auto& e : source->errors()) {
      std::cerr << path << ":" << e.line << ": " << e.message << "\n";
    }
    std::cerr << "error: " << source->error_count()
              << " malformed line(s) in " << path << "\n";
    return 1;
  }

  util::Table table({"metric", "value"});
  table.row().cell("scheduler").cell(scheduler);
  table.row().cell("jobs").cell(result.stats.jobs_completed);
  table.row().cell("mean wait (s)").cell(online.mean_wait(), 1);
  table.row().cell("mean bounded slowdown")
      .cell(online.mean_bounded_slowdown(), 2);
  table.row().cell("backfill ratio").cell(online.backfill_ratio(), 3);
  table.row().cell("utilization").cell(result.stats.utilization(), 3);
  table.row().cell("makespan (s)").cell(result.stats.makespan);
  table.row().cell("records streamed").cell(result.source_pulled);
  table.row().cell("peak rss (MB)").cell(peak_rss_mb(), 1);
  std::cout << table.to_string();
  return 0;
}

int cmd_simulate(const std::string& path, const std::string& scheduler,
                 const std::string& rank_metric, const RunFlags& flags) {
  // Resolve the metric name (same names campaign `rank =` lines use)
  // before the replay, so a typo fails fast instead of costing the
  // whole simulation; it throws with the valid list.
  std::optional<metrics::MetricId> rank;
  if (!rank_metric.empty()) {
    rank = metrics::metric_from_name(rank_metric);
  }
  auto spec = sim::SimulationSpec{}.with_scheduler(scheduler);
  flags.apply(spec);
  const auto trace = load_or_die(path, spec);
  const auto result = sim::replay(trace, spec);
  const auto report = metrics::compute_report(result.completed,
                                              result.stats);
  util::Table table({"metric", "value"});
  table.row().cell("scheduler").cell(scheduler);
  table.row().cell("jobs").cell(report.jobs);
  table.row().cell("mean wait (s)").cell(report.mean_wait, 1);
  table.row().cell("mean bounded slowdown")
      .cell(report.mean_bounded_slowdown, 2);
  table.row().cell("p95 wait (s)").cell(report.p95_wait, 1);
  table.row().cell("utilization").cell(report.utilization, 3);
  if (flags.any_faults() || report.jobs_killed > 0) {
    table.row().cell("jobs killed").cell(report.jobs_killed);
    table.row().cell("jobs dropped").cell(report.jobs_dropped);
    table.row().cell("mean restarts").cell(report.mean_restarts, 3);
    table.row().cell("wasted fraction").cell(report.wasted_fraction, 4);
  }
  if (rank) {
    table.row().cell(std::string("selected ") + metrics::metric_name(*rank))
        .cell(metrics::metric_value(report, *rank), 3);
  }
  std::cout << table.to_string();
  return 0;
}

/// Run `path` under `scheduler` up to sim-time `at_time`, then freeze
/// the engine into `out` (snapshot format v1). The decision prefix —
/// every decision made before the freeze — is written to
/// `<out>.decisions` so `resume --golden` can reconstruct the full
/// trace for comparison against an uninterrupted golden.
int cmd_snapshot(const std::string& path, const std::string& scheduler,
                 std::int64_t at_time, const std::string& out,
                 const RunFlags& flags) {
  const auto trace = load_or_die(path);
  auto spec = sim::SimulationSpec{}.with_scheduler(scheduler);
  flags.apply(spec);
  spec.validate();
  const auto config = sim::spec_engine_config(
      spec, trace.header.max_nodes.value_or(sim::kDefaultNodes));

  sim::Engine engine(config, sched::make_scheduler(scheduler));
  validate::DecisionRecorder recorder;
  engine.add_observer(recorder);
  // Same seeded crash schedule replay() would generate, so a resumed
  // crashy run matches the uninterrupted crashy golden.
  outage::OutageLog crashes;
  if (spec.faults != 0) {
    crashes = sim::fault::generate_crashes(spec.fault_model(),
                                           trace.horizon(), config.nodes);
    engine.add_outages(crashes);
  }
  engine.load_trace(trace);
  // Snapshots are legal only between steps: process whole event
  // timestamps until the next one would pass the snapshot point.
  while (true) {
    const auto t = engine.next_event_time();
    if (!t || *t > at_time) break;
    engine.step();
  }
  sim::snapshot::write_file(out, engine.snapshot());
  std::ofstream decisions(out + ".decisions");
  decisions << validate::decisions_to_csv(recorder.decisions());
  if (!decisions) {
    std::cerr << "cannot write " << out << ".decisions\n";
    return 1;
  }
  std::cout << "snapshot at t=" << engine.now() << " ("
            << recorder.decisions().size() << " decisions so far) -> "
            << out << "\n";
  return 0;
}

/// Concatenate the snapshot's decision prefix with the resumed run's
/// decisions: the prefix keeps its header line, the resumed CSV drops
/// its own. A missing prefix file means the snapshot was taken before
/// any decisions (or by another driver); the resumed CSV stands alone.
std::string combine_decision_csv(const std::string& prefix_path,
                                 const std::string& resumed_csv) {
  std::ifstream prefix(prefix_path);
  if (!prefix) return resumed_csv;
  std::string head((std::istreambuf_iterator<char>(prefix)),
                   std::istreambuf_iterator<char>());
  const auto nl = resumed_csv.find('\n');
  return head + resumed_csv.substr(nl == std::string::npos ? resumed_csv.size()
                                                           : nl + 1);
}

int cmd_resume(const std::string& snap_path,
               const std::string& golden_path) {
  auto engine = sim::Engine::restore(sim::snapshot::read_file(snap_path));
  if (engine->needs_job_source()) {
    std::cerr << "resume: snapshot has an active streaming job source; "
                 "the CLI can only resume self-contained (materialized-"
                 "trace) snapshots\n";
    return 2;
  }
  validate::DecisionRecorder recorder;
  engine->add_observer(recorder);
  engine->run();
  engine->notify_run_end();
  const auto stats = engine->stats();

  if (!golden_path.empty()) {
    const auto combined = combine_decision_csv(
        snap_path + ".decisions",
        validate::decisions_to_csv(recorder.decisions()));
    const auto result = validate::check_golden_csv(
        combined, golden_path, "resume " + snap_path);
    std::cout << result.message << "\n";
    if (!result.ok) return 1;
  }
  util::Table table({"metric", "value"});
  table.row().cell("resumed decisions")
      .cell(std::int64_t(recorder.decisions().size()));
  table.row().cell("jobs completed").cell(stats.jobs_completed);
  table.row().cell("utilization").cell(stats.utilization(), 3);
  table.row().cell("makespan (s)").cell(stats.makespan);
  std::cout << table.to_string();
  return 0;
}

int cmd_whatif(const std::string& snap_path, std::int64_t procs,
               std::int64_t estimate, std::int64_t offset, bool simulate) {
  sim::WhatIfService service(sim::snapshot::read_file(snap_path));
  sim::WhatIfQuery query;
  query.procs = procs;
  query.estimate = estimate;
  query.submit_offset = offset;
  query.simulate = simulate;
  const auto answer = service.query(query);

  util::Table table({"metric", "value"});
  table.row().cell("snapshot time").cell(service.snapshot_time());
  table.row().cell("submit time")
      .cell(service.snapshot_time() + std::max<std::int64_t>(0, offset));
  table.row().cell("mode").cell(answer.simulated ? "simulate" : "predict");
  if (answer.start) {
    table.row().cell("start time").cell(*answer.start);
    table.row().cell("wait (s)").cell(*answer.wait);
  } else {
    table.row().cell("start time")
        .cell(simulate ? "never (run drained)" : "unknown (policy cannot "
                                                 "predict; try --simulate)");
  }
  std::cout << table.to_string();
  return 0;
}

/// The scheduling daemon (README "Scheduling daemon"): build an engine
/// from a SimulationSpec string (or restore one from a snapshot), bind
/// the endpoint, and serve sessions until SHUTDOWN / SIGTERM / SIGINT.
int cmd_serve(const std::string& spec_text, int argc, char** argv,
              int first) {
  serve::ServerConfig config;
  config.handle_signals = true;
  std::string resume_path;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::cerr << "serve: " << flag << " needs a value\n";
      return 2;
    }
    const std::string value = argv[++i];
    if (flag == "--socket") {
      config.socket_path = value;
    } else if (flag == "--port") {
      const auto n = util::parse_i64(value);
      if (!n || *n < 0 || *n > 65535) {
        std::cerr << "serve: --port must be in [0, 65535] "
                     "(0 = ephemeral)\n";
        return 2;
      }
      config.tcp_port = int(*n);
    } else if (flag == "--token") {
      config.auth_token = value;
    } else if (flag == "--time-scale") {
      config.time_scale = std::atof(value.c_str());
      if (config.time_scale < 0) {
        std::cerr << "serve: --time-scale must be >= 0 "
                     "(0 = logical time)\n";
        return 2;
      }
    } else if (flag == "--decisions") {
      config.decisions_path = value;
    } else if (flag == "--snapshot-on-shutdown") {
      config.snapshot_on_shutdown = value;
    } else if (flag == "--resume") {
      resume_path = value;
    } else {
      std::cerr << "serve: unknown flag " << flag << "\n";
      return 2;
    }
  }

  std::unique_ptr<sim::Engine> engine;
  if (!resume_path.empty()) {
    engine = sim::Engine::restore(sim::snapshot::read_file(resume_path));
  } else if (spec_text.empty()) {
    std::cerr << "serve: need a sim-spec (e.g. \"scheduler=conservative "
                 "nodes=32\") or --resume <snap>\n";
    return 2;
  } else {
    auto spec = sim::SimulationSpec::parse(spec_text);
    spec.validate();
    engine = std::make_unique<sim::Engine>(
        sim::spec_engine_config(spec,
                                spec.nodes.value_or(sim::kDefaultNodes)),
        sched::make_scheduler(spec.scheduler));
  }

  serve::Server server(std::move(config), std::move(engine));
  server.start();
  if (server.port() > 0) {
    std::cout << "serving on 127.0.0.1:" << server.port() << "\n";
  }
  server.wait();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "validate" && argc == 3) return cmd_validate(argv[2]);
    if (cmd == "validate" && argc >= 5) {
      RunFlags flags;
      if (!parse_run_flags(argc, argv, 5, flags)) return 2;
      return cmd_validate_golden(argv[2], argv[3], argv[4], flags);
    }
    if (cmd == "fuzz" && argc >= 3 && std::string(argv[2]) == "parse" &&
        argc <= 5) {
      using OptI64 = std::optional<std::int64_t>;
      const OptI64 seed = argc > 3 ? util::parse_i64(argv[3]) : OptI64(1);
      const OptI64 cases = argc > 4 ? util::parse_i64(argv[4]) : OptI64(200);
      if (!seed || !cases || *seed < 0 || *cases <= 0) {
        std::cerr << "fuzz parse: seed must be a non-negative integer, "
                     "cases a positive integer\n";
        return 2;
      }
      return cmd_fuzz_parse(std::uint64_t(*seed), int(*cases));
    }
    if (cmd == "fuzz" && argc >= 2 && argc <= 5) {
      // atoll would map a mangled seed ("1e5", truncated paste) to 0
      // and silently fuzz the wrong stream; insist on clean integers
      // so a reported reproduction seed reproduces or errors.
      using OptI64 = std::optional<std::int64_t>;
      const OptI64 seed = argc > 2 ? util::parse_i64(argv[2]) : OptI64(1);
      const OptI64 workloads =
          argc > 3 ? util::parse_i64(argv[3]) : OptI64(3);
      const OptI64 jobs = argc > 4 ? util::parse_i64(argv[4]) : OptI64(120);
      if (!seed || !workloads || !jobs || *seed < 0 || *workloads <= 0 ||
          *jobs <= 0) {
        std::cerr << "fuzz: seed must be a non-negative integer, "
                     "workloads/jobs positive integers\n";
        return 2;
      }
      return cmd_fuzz(std::uint64_t(*seed), int(*workloads),
                      std::size_t(*jobs));
    }
    if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
    if (cmd == "anonymize" && argc == 4) {
      return cmd_anonymize(argv[2], argv[3]);
    }
    if (cmd == "generate" && argc == 7) {
      return cmd_generate(argv[2], std::size_t(std::atoll(argv[3])),
                          std::atoll(argv[4]), std::atof(argv[5]),
                          argv[6]);
    }
    if (cmd == "generate-stream" && argc == 7) {
      // atoll would turn a typo'd "-1" into an effectively unbounded
      // stream that fills the disk; insist on positive counts.
      const long long jobs = std::atoll(argv[3]);
      const long long nodes = std::atoll(argv[4]);
      if (jobs <= 0 || nodes <= 0) {
        std::cerr << "generate-stream: jobs and nodes must be positive\n";
        return 2;
      }
      return cmd_generate_stream(argv[2], std::uint64_t(jobs), nodes,
                                 std::atof(argv[5]), argv[6]);
    }
    if (cmd == "stream-simulate" && argc >= 4) {
      long long lookahead = 4096;
      int next = 4;
      // The optional lookahead is positional; anything starting with
      // "--" is a sink flag instead.
      if (next < argc && argv[next][0] != '-') {
        lookahead = std::atoll(argv[next++]);
        if (lookahead <= 0) {
          std::cerr << "stream-simulate: lookahead must be positive\n";
          return 2;
        }
      }
      RunFlags flags;
      if (!parse_run_flags(argc, argv, next, flags)) return 2;
      if (flags.bless) return usage();  // --bless is validate-only
      return cmd_stream_simulate(argv[2], argv[3], std::size_t(lookahead),
                                 flags);
    }
    if (cmd == "convert-iacct" && argc == 5) {
      return cmd_convert(false, argv[2], argv[3], argv[4]);
    }
    if (cmd == "convert-nqs" && argc == 5) {
      return cmd_convert(true, argv[2], argv[3], argv[4]);
    }
    if (cmd == "simulate" && argc >= 4) {
      std::string rank_metric;
      int next = 4;
      if (next < argc && argv[next][0] != '-') rank_metric = argv[next++];
      RunFlags flags;
      if (!parse_run_flags(argc, argv, next, flags)) return 2;
      if (flags.bless) return usage();  // --bless is validate-only
      return cmd_simulate(argv[2], argv[3], rank_metric, flags);
    }
    if (cmd == "trace-summary" && (argc == 3 || argc == 4)) {
      long long top_k = 10;
      if (argc == 4) {
        const auto n = util::parse_i64(argv[3]);
        if (!n || *n < 1) {
          std::cerr << "trace-summary: top-k must be a positive integer\n";
          return 2;
        }
        top_k = *n;
      }
      return cmd_trace_summary(argv[2], std::size_t(top_k));
    }
    if (cmd == "snapshot" && argc >= 6) {
      const auto at_time = util::parse_i64(argv[4]);
      if (!at_time || *at_time < 0) {
        std::cerr << "snapshot: time must be a non-negative integer "
                     "(sim-seconds)\n";
        return 2;
      }
      RunFlags flags;
      if (!parse_run_flags(argc, argv, 6, flags)) return 2;
      if (flags.bless) return usage();  // --bless is validate-only
      return cmd_snapshot(argv[2], argv[3], *at_time, argv[5], flags);
    }
    if (cmd == "resume" && (argc == 3 || argc == 5)) {
      std::string golden;
      if (argc == 5) {
        if (std::string(argv[3]) != "--golden") return usage();
        golden = argv[4];
      }
      return cmd_resume(argv[2], golden);
    }
    if (cmd == "whatif" && argc >= 5) {
      const auto procs = util::parse_i64(argv[3]);
      const auto estimate = util::parse_i64(argv[4]);
      if (!procs || *procs < 1 || !estimate || *estimate < 1) {
        std::cerr << "whatif: procs and estimate must be positive "
                     "integers\n";
        return 2;
      }
      std::int64_t offset = 0;
      bool simulate = false;
      for (int i = 5; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--simulate") {
          simulate = true;
        } else if (flag == "--offset" && i + 1 < argc) {
          const auto n = util::parse_i64(argv[++i]);
          if (!n) {
            std::cerr << "--offset must be an integer (sim-seconds)\n";
            return 2;
          }
          offset = *n;
        } else {
          std::cerr << "whatif: unknown flag " << flag << "\n";
          return 2;
        }
      }
      return cmd_whatif(argv[2], *procs, *estimate, offset, simulate);
    }
    if (cmd == "serve" && argc >= 3) {
      // The spec is positional, but `serve --resume x.snap` has no
      // spec: the snapshot carries the full engine configuration.
      const bool has_spec = argv[2][0] != '-';
      return cmd_serve(has_spec ? argv[2] : "", argc, argv,
                       has_spec ? 3 : 2);
    }
    if (cmd == "schedulers" && argc == 2) {
      std::cout << sched::Registry::global().help();
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  // Unknown subcommand or a known one with a malformed argument list:
  // name the offender, then print the full catalogue (exit 2 either
  // way, same as every other usage error).
  std::cerr << "swf_tool: unknown or malformed command '" << cmd << "'\n";
  return usage();
}
