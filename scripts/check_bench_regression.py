#!/usr/bin/env python3
"""CI bench-regression gate.

Compares freshly produced quick-mode bench JSON (bench_* --quick --json)
against the committed baseline in BENCH_3.json and FAILS (exit 1) when a
key metric regresses, instead of only uploading artifacts.

Usage:
    check_bench_regression.py --baseline BENCH_3.json --current DIR

The baseline file carries two sections this script reads:

    "quick_baseline": { "<suite>": <output of bench_<suite> --quick --json> }
    "gate": {
        "default_threshold": 0.25,
        "metrics": [ {"path": "suite.name.metric", ...checks} ]
    }

Per-metric checks (any combination):
    "exact_min": v   hard floor on the current value — for machine-
                     independent correctness bits (csv_identical).
    "max_abs":   v   hard ceiling on the current value — for machine-
                     independent quantities (peak RSS MB, flatness
                     ratios), sized with generous allocator headroom.
    "direction": "higher"|"lower" compare against the recorded baseline
                     value: a "higher"-is-better metric fails when it
                     drops more than `threshold` (default 25%) below
                     baseline; "lower" fails when it rises more than
                     `threshold` above. Wall-clock-sensitive entries
                     carry an explicit looser threshold because CI
                     runners are not the machine the baseline was
                     recorded on.
"""

import argparse
import json
import os
import sys


def metric_value(suite_json, name, metric):
    for entry in suite_json.get("metrics", []):
        if entry.get("name") == name and entry.get("metric") == metric:
            return entry.get("value")
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json with quick_baseline + gate")
    parser.add_argument("--current", required=True,
                        help="directory of freshly produced <suite>.json files")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    gate = baseline.get("gate", {})
    entries = gate.get("metrics", [])
    default_threshold = gate.get("default_threshold", 0.25)
    quick_baseline = baseline.get("quick_baseline", {})
    if not entries:
        print("gate: no metrics configured in", args.baseline)
        return 1

    current_cache = {}

    def current_suite(suite):
        if suite not in current_cache:
            path = os.path.join(args.current, suite + ".json")
            try:
                with open(path) as f:
                    current_cache[suite] = json.load(f)
            except OSError:
                current_cache[suite] = None
        return current_cache[suite]

    failures = []
    for entry in entries:
        path = entry["path"]
        suite, name, metric = path.split(".", 2)
        suite_json = current_suite(suite)
        if suite_json is None:
            failures.append(f"{path}: missing current results "
                            f"({suite}.json not found/parsable)")
            continue
        current = metric_value(suite_json, name, metric)
        if current is None:
            failures.append(f"{path}: metric absent from current run")
            continue

        checks = []
        if "exact_min" in entry:
            ok = current >= entry["exact_min"]
            checks.append((ok, f"must be >= {entry['exact_min']}"))
        if "max_abs" in entry:
            ok = current <= entry["max_abs"]
            checks.append((ok, f"must be <= {entry['max_abs']}"))
        if "direction" in entry:
            base = metric_value(quick_baseline.get(suite, {}), name, metric)
            if base is None:
                failures.append(f"{path}: no quick_baseline value recorded")
                continue
            threshold = entry.get("threshold", default_threshold)
            if entry["direction"] == "higher":
                bound = base * (1.0 - threshold)
                checks.append((current >= bound,
                               f"must be >= {bound:.4g} "
                               f"(baseline {base:.4g} - {threshold:.0%})"))
            else:
                bound = base * (1.0 + threshold)
                checks.append((current <= bound,
                               f"must be <= {bound:.4g} "
                               f"(baseline {base:.4g} + {threshold:.0%})"))

        for ok, describe in checks:
            status = "ok  " if ok else "FAIL"
            print(f"{status} {path} = {current:.6g} ({describe})")
            if not ok:
                failures.append(f"{path} = {current:.6g}: {describe}")

    if failures:
        print(f"\nbench regression gate FAILED ({len(failures)} problem(s)):")
        for f_ in failures:
            print("  -", f_)
        return 1
    print(f"\nbench regression gate passed ({len(entries)} key metric(s)).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
