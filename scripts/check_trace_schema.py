#!/usr/bin/env python3
"""Validate pjsb JSONL event traces against schema v1 or v2.

Usage:
    check_trace_schema.py trace.jsonl [more.jsonl ...]

Checks, per file (see README "Observability" for the schema):
  - every line parses as a flat JSON object with unique keys
  - line 1 is a header record with version 1 or 2 and source "pjsb"
  - every known record type carries its required fields with the
    right JSON types; unknown types are counted, not rejected
    (that's the documented forward-compatibility rule)
  - `why` on start records names a known provenance
  - timestamps of t-carrying records never go backwards
  - start.wait equals t - submit.t for jobs whose submit (or, v2,
    resubmit) is in the trace (wait is -1 only when the submit
    predates the trace)
  - no records after run_end, and end/kill/crash records never exceed
    start records per job id

Schema v2 (fault injection & recovery; README "Failure & recovery")
adds crash/resubmit/restore/drop records, a `reason` on kill, and a
`drops` count on run_end:
  - crash is the node-failure kill (replaces a v1 kill for outage
    deaths) and frees the job like end/kill do
  - resubmit marks a queue re-entry after a kill; its t re-anchors
    the wait check for the job's next start
  - restore only appears for a job that is currently started, with a
    positive resumed work amount
  - drop terminates a job that is NOT running (it was just killed or
    never restarted) with a known reason

Exits 0 when every file is clean, 1 otherwise, printing one line per
problem as `file:line: message`.
"""

import json
import sys

KNOWN_VERSIONS = {1, 2}
PROVENANCES = {"unspecified", "queue_head", "backfill", "reservation",
               "timeshare"}
OUTAGE_PHASES = {"announced", "started", "ended"}
KILL_REASONS = {"outage", "preempt", "walltime"}
DROP_REASONS = {"retry_limit", "walltime_overrun", "requeue_disabled",
                "cancelled"}

# type -> {field: required JSON type}
REQUIRED = {
    "header": {"version": int, "source": str},
    "submit": {"t": int, "job": int, "procs": int, "estimate": int},
    "start": {"t": int, "job": int, "procs": int, "wait": int, "why": str},
    "end": {"t": int, "job": int, "procs": int, "wait": int, "run": int,
            "restarts": int},
    "kill": {"t": int, "job": int, "procs": int},
    "blocked": {"t": int, "job": int, "predicted_start": int},
    "outage": {"phase": str, "start": int, "end": int, "nodes": int},
    "run_end": {"jobs": int, "kills": int, "makespan": int, "events": int,
                "util": float},
}

# v2-only record types and v2-only required fields on v1 types.
REQUIRED_V2 = {
    "crash": {"t": int, "job": int, "procs": int, "lost": int, "saved": int,
              "attempt": int},
    "resubmit": {"t": int, "job": int, "procs": int, "estimate": int,
                 "attempt": int},
    "restore": {"t": int, "job": int, "resumed": int, "read": int},
    "drop": {"t": int, "job": int, "procs": int, "reason": str,
             "attempt": int},
}
REQUIRED_V2_EXTRA = {
    "kill": {"reason": str},
    "run_end": {"drops": int},
}


def parse_object(line):
    """json.loads rejecting duplicate keys (the schema demands unique)."""
    def no_dupes(pairs):
        obj = {}
        for key, value in pairs:
            if key in obj:
                raise ValueError(f"duplicate key {key!r}")
            obj[key] = value
        return obj
    return json.loads(line, object_pairs_hook=no_dupes)


def field_type_ok(value, expected):
    if expected is int:
        # bool is an int subclass in Python; the schema has no booleans.
        return isinstance(value, int) and not isinstance(value, bool)
    if expected is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, expected)


def check_file(path):
    problems = []
    submit_time = {}      # job id -> last submit/resubmit t
    started = set()       # job ids with a start not yet ended/killed
    last_t = None
    saw_run_end = False
    counts = {}
    version = None        # from the header; gates the v2 rules

    try:
        fh = open(path, encoding="utf-8")
    except OSError as e:
        return [f"{path}: cannot open: {e}"]

    with fh:
        for lineno, raw in enumerate(fh, 1):
            raw = raw.rstrip("\n")
            if not raw:
                problems.append(f"{path}:{lineno}: empty line")
                continue
            try:
                rec = parse_object(raw)
            except ValueError as e:
                problems.append(f"{path}:{lineno}: bad JSON: {e}")
                continue
            if not isinstance(rec, dict):
                problems.append(f"{path}:{lineno}: not a JSON object")
                continue
            rtype = rec.get("type")
            if not isinstance(rtype, str):
                problems.append(f"{path}:{lineno}: missing \"type\"")
                continue
            if saw_run_end:
                problems.append(f"{path}:{lineno}: record after run_end")
            counts[rtype] = counts.get(rtype, 0) + 1

            if lineno == 1 and rtype != "header":
                problems.append(f"{path}:1: first record must be a header, "
                                f"got {rtype!r}")
            if lineno > 1 and rtype == "header":
                problems.append(f"{path}:{lineno}: header after line 1")

            spec = REQUIRED.get(rtype)
            if spec is None and version == 2:
                spec = REQUIRED_V2.get(rtype)
            if spec is not None and version == 2:
                spec = {**spec, **REQUIRED_V2_EXTRA.get(rtype, {})}
            if spec is None:
                continue  # unknown type: forward-compatible, skip
            bad = False
            for field, expected in spec.items():
                if field not in rec:
                    problems.append(
                        f"{path}:{lineno}: {rtype} missing {field!r}")
                    bad = True
                elif not field_type_ok(rec[field], expected):
                    problems.append(
                        f"{path}:{lineno}: {rtype}.{field} has type "
                        f"{type(rec[field]).__name__}, "
                        f"want {expected.__name__}")
                    bad = True
            if bad:
                continue

            if rtype == "header":
                version = rec["version"]
                if version not in KNOWN_VERSIONS:
                    problems.append(
                        f"{path}:{lineno}: schema version {version}, this "
                        f"checker knows {sorted(KNOWN_VERSIONS)}")
                if rec["source"] != "pjsb":
                    problems.append(
                        f"{path}:{lineno}: source {rec['source']!r}")
                continue

            t = rec.get("t")
            if isinstance(t, int):
                if last_t is not None and t < last_t:
                    problems.append(f"{path}:{lineno}: time went backwards "
                                    f"({t} after {last_t})")
                last_t = t

            if rtype in ("submit", "resubmit"):
                submit_time[rec["job"]] = rec["t"]
                if rtype == "resubmit" and rec["attempt"] < 1:
                    problems.append(
                        f"{path}:{lineno}: resubmit for job {rec['job']} "
                        f"with attempt {rec['attempt']} (must be >= 1)")
            elif rtype == "start":
                if rec["why"] not in PROVENANCES:
                    problems.append(f"{path}:{lineno}: unknown provenance "
                                    f"{rec['why']!r}")
                sub = submit_time.pop(rec["job"], None)
                if sub is not None and rec["wait"] != rec["t"] - sub:
                    problems.append(
                        f"{path}:{lineno}: job {rec['job']} wait "
                        f"{rec['wait']} != start {rec['t']} - "
                        f"submit {sub}")
                elif sub is None and rec["wait"] != -1:
                    problems.append(
                        f"{path}:{lineno}: job {rec['job']} started with "
                        f"wait {rec['wait']} but no submit in trace")
                started.add(rec["job"])
            elif rtype in ("end", "kill", "crash"):
                if rec["job"] in started:
                    started.discard(rec["job"])
                else:
                    problems.append(f"{path}:{lineno}: {rtype} for job "
                                    f"{rec['job']} without a start")
                if rtype == "kill" and version == 2 \
                        and rec["reason"] not in KILL_REASONS:
                    problems.append(f"{path}:{lineno}: unknown kill reason "
                                    f"{rec['reason']!r}")
                if rtype == "crash" and (rec["lost"] < 0 or rec["saved"] < 0):
                    problems.append(
                        f"{path}:{lineno}: crash for job {rec['job']} with "
                        f"negative lost/saved work")
            elif rtype == "restore":
                # Emitted right after the start that resumes the job, so
                # the job must be running, and resuming zero work would
                # have been a plain restart (no restore record).
                if rec["job"] not in started:
                    problems.append(f"{path}:{lineno}: restore for job "
                                    f"{rec['job']} that is not running")
                if rec["resumed"] < 1:
                    problems.append(
                        f"{path}:{lineno}: restore for job {rec['job']} "
                        f"resumed {rec['resumed']} (must be >= 1)")
            elif rtype == "drop":
                if rec["reason"] not in DROP_REASONS:
                    problems.append(f"{path}:{lineno}: unknown drop reason "
                                    f"{rec['reason']!r}")
                if rec["job"] in started:
                    problems.append(f"{path}:{lineno}: drop for job "
                                    f"{rec['job']} while it is running")
                submit_time.pop(rec["job"], None)
            elif rtype == "outage":
                if rec["phase"] not in OUTAGE_PHASES:
                    problems.append(f"{path}:{lineno}: unknown outage phase "
                                    f"{rec['phase']!r}")
            elif rtype == "run_end":
                saw_run_end = True

    if counts.get("header", 0) != 1:
        problems.append(f"{path}: expected exactly 1 header record, "
                        f"saw {counts.get('header', 0)}")
    if not saw_run_end:
        problems.append(f"{path}: no run_end record (truncated trace?)")
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    status = "FAIL" if problems else "ok"
    print(f"{status} {path}: {summary}")
    return problems


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip().splitlines()[0])
        print("usage: check_trace_schema.py trace.jsonl [more.jsonl ...]")
        return 2
    problems = []
    for path in sys.argv[1:]:
        problems.extend(check_file(path))
    for p in problems:
        print(p)
    if problems:
        print(f"trace schema check FAILED ({len(problems)} problem(s))")
        return 1
    print(f"trace schema check passed ({len(sys.argv) - 1} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
