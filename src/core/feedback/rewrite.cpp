#include "core/feedback/rewrite.hpp"

#include <unordered_map>

namespace pjsb::feedback {

std::size_t apply_dependencies(swf::Trace& trace,
                               const std::vector<Dependency>& deps) {
  std::unordered_map<std::int64_t, const Dependency*> by_job;
  for (const auto& d : deps) by_job[d.job] = &d;
  std::size_t applied = 0;
  for (auto& r : trace.records) {
    if (!r.is_summary()) continue;
    const auto it = by_job.find(r.job_number);
    if (it == by_job.end()) continue;
    r.preceding_job = it->second->preceding;
    r.think_time = it->second->think_time;
    ++applied;
  }
  return applied;
}

std::size_t strip_dependencies(swf::Trace& trace) {
  std::size_t stripped = 0;
  for (auto& r : trace.records) {
    if (r.preceding_job != swf::kUnknown || r.think_time != swf::kUnknown) {
      r.preceding_job = swf::kUnknown;
      r.think_time = swf::kUnknown;
      ++stripped;
    }
  }
  return stripped;
}

std::size_t annotate_trace(swf::Trace& trace,
                           const InferenceOptions& options) {
  return apply_dependencies(trace, infer_dependencies(trace, options));
}

}  // namespace pjsb::feedback
