// Applying / stripping feedback annotations on SWF traces.
//
// The paper's worked example: "for job number 123 we'll put 120 in its
// preceding job number field, and 10 in its think time from preceding
// job field" — rather than baking the dependency into the submit time,
// which "wouldn't be right — changing the scheduler might change the
// wait time of job 120 and spoil the connection."
#pragma once

#include <vector>

#include "core/feedback/session.hpp"
#include "core/swf/trace.hpp"

namespace pjsb::feedback {

/// Write inferred dependencies into fields 17/18 of the trace records.
/// Returns the number of records annotated. Existing annotations on
/// other records are left untouched.
std::size_t apply_dependencies(swf::Trace& trace,
                               const std::vector<Dependency>& deps);

/// Remove all feedback annotations (fields 17/18 back to -1).
std::size_t strip_dependencies(swf::Trace& trace);

/// Convenience: infer + apply in one step.
std::size_t annotate_trace(swf::Trace& trace,
                           const InferenceOptions& options = {});

}  // namespace pjsb::feedback
