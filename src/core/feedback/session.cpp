#include "core/feedback/session.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace pjsb::feedback {

std::vector<Dependency> infer_dependencies(const swf::Trace& trace,
                                           const InferenceOptions& options) {
  // Walk summary records in submit order per user, tracking the user's
  // most recent *terminated-before-submit* job.
  struct LastJob {
    std::int64_t number = swf::kUnknown;
    std::int64_t end = swf::kUnknown;
  };
  std::unordered_map<std::int64_t, LastJob> last_by_user;
  std::vector<Dependency> deps;

  auto jobs = trace.summary_records();
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const swf::JobRecord& a, const swf::JobRecord& b) {
                     return a.submit_time < b.submit_time;
                   });

  for (const auto& r : jobs) {
    if (r.user_id == swf::kUnknown || r.submit_time == swf::kUnknown) {
      continue;
    }
    const std::int64_t end = r.end_time();
    auto& last = last_by_user[r.user_id];

    if (last.number != swf::kUnknown && last.end != swf::kUnknown) {
      const std::int64_t gap = r.submit_time - last.end;
      const bool finished = gap >= 0;
      if ((finished || !options.require_predecessor_finished) &&
          gap <= options.max_think_time && last.number < r.job_number) {
        deps.push_back({r.job_number, last.number, std::max<std::int64_t>(
                                                       0, gap)});
      }
    }
    // This job becomes the user's latest candidate predecessor if its
    // end time is known and not before the current latest.
    if (end != swf::kUnknown && (last.end == swf::kUnknown || end >= last.end)) {
      last = {r.job_number, end};
    }
  }
  return deps;
}

std::vector<Session> sessions_from_dependencies(
    const swf::Trace& trace, const std::vector<Dependency>& deps) {
  std::unordered_map<std::int64_t, std::int64_t> user_of;
  for (const auto& r : trace.records) {
    if (r.is_summary()) user_of[r.job_number] = r.user_id;
  }
  // Chain via union of predecessor links: map each job to its chain head.
  std::unordered_map<std::int64_t, std::int64_t> pred;
  for (const auto& d : deps) pred[d.job] = d.preceding;

  // Jobs that are someone's predecessor.
  std::unordered_map<std::int64_t, bool> has_successor;
  for (const auto& d : deps) has_successor[d.preceding] = true;

  std::vector<Session> sessions;
  // A session ends at a job with no successor; walk back to the head.
  for (const auto& d : deps) {
    if (has_successor.count(d.job)) continue;  // not a chain tail
    Session s;
    std::vector<std::int64_t> chain;
    std::int64_t cur = d.job;
    chain.push_back(cur);
    while (true) {
      const auto it = pred.find(cur);
      if (it == pred.end()) break;
      cur = it->second;
      chain.push_back(cur);
    }
    std::reverse(chain.begin(), chain.end());
    s.job_numbers = std::move(chain);
    const auto uit = user_of.find(s.job_numbers.front());
    s.user_id = uit != user_of.end() ? uit->second : swf::kUnknown;
    sessions.push_back(std::move(s));
  }
  std::sort(sessions.begin(), sessions.end(),
            [](const Session& a, const Session& b) {
              return a.job_numbers.front() < b.job_numbers.front();
            });
  return sessions;
}

}  // namespace pjsb::feedback
