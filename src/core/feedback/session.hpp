// Feedback inference (paper section 2.2, "Including feedback").
//
// "The methodology is straight forward: we identify sequences of
// dependent jobs (e.g. all those submitted by the same user in rapid
// succession), and replace the absolute arrival times of jobs in the
// sequence with interarrival times relative to the previous job in the
// sequence." This module implements exactly that inference, producing
// the preceding-job / think-time pairs of SWF fields 17-18.
#pragma once

#include <cstdint>
#include <vector>

#include "core/swf/trace.hpp"

namespace pjsb::feedback {

/// One inferred dependency edge: `job` should be submitted `think_time`
/// seconds after `preceding` terminates.
struct Dependency {
  std::int64_t job = 0;
  std::int64_t preceding = 0;
  std::int64_t think_time = 0;
};

/// A user session: a maximal chain of dependent jobs by one user.
struct Session {
  std::int64_t user_id = swf::kUnknown;
  std::vector<std::int64_t> job_numbers;  ///< in dependency order
};

struct InferenceOptions {
  /// A job depends on the user's previous job only if it was submitted
  /// within this many seconds after that job terminated ("rapid
  /// succession"). 20 minutes is the classic session-boundary threshold
  /// from interactive-workload studies.
  std::int64_t max_think_time = 20 * 60;
  /// Jobs submitted while the candidate predecessor was still running
  /// are treated as independent (the user did not wait for the result).
  bool require_predecessor_finished = true;
};

/// Infer dependencies among the summary records of a trace. Records must
/// have known submit/wait/run times to participate; preceding jobs are
/// always earlier in job-number order, as the standard requires.
std::vector<Dependency> infer_dependencies(
    const swf::Trace& trace, const InferenceOptions& options = {});

/// Group inferred dependencies into per-user session chains.
std::vector<Session> sessions_from_dependencies(
    const swf::Trace& trace, const std::vector<Dependency>& deps);

}  // namespace pjsb::feedback
