#include "core/outage/generate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace pjsb::outage {

OutageLog generate_failures(const FailureModelParams& params,
                            std::int64_t horizon, std::int64_t total_nodes,
                            util::Rng& rng) {
  OutageLog log;
  log.comments.push_back(
      "Synthetic failure stream: exponential interarrival, lognormal "
      "repair");
  double t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / params.mtbf_seconds);
    const auto start = std::int64_t(t);
    if (start >= horizon) break;

    OutageRecord r;
    r.start_time = start;
    r.announce_time = start;  // surprise failure
    const double repair =
        rng.lognormal(params.repair_log_mean, params.repair_log_sigma);
    r.end_time = start + std::max<std::int64_t>(60, std::int64_t(repair));

    std::int64_t affected = 1;
    if (rng.bernoulli(params.multi_node_prob)) {
      r.type = OutageType::kNetworkFailure;
      affected = 1 + std::int64_t(rng.exponential(1.0 / params.multi_node_mean));
    } else {
      r.type = rng.bernoulli(0.8) ? OutageType::kCpuFailure
                                  : OutageType::kDiskFailure;
    }
    affected = std::clamp<std::int64_t>(affected, 1, total_nodes);
    r.nodes_affected = affected;

    // Choose distinct victim nodes.
    std::unordered_set<std::int64_t> chosen;
    while (std::int64_t(chosen.size()) < affected) {
      chosen.insert(rng.uniform_int(0, total_nodes - 1));
    }
    r.components.assign(chosen.begin(), chosen.end());
    std::sort(r.components.begin(), r.components.end());
    log.records.push_back(std::move(r));
  }
  log.sort_by_start();
  return log;
}

OutageLog generate_maintenance(const MaintenanceParams& params,
                               std::int64_t horizon,
                               std::int64_t total_nodes) {
  OutageLog log;
  log.comments.push_back("Synthetic scheduled-maintenance stream");
  for (std::int64_t start = params.first_start; start < horizon;
       start += params.period) {
    OutageRecord r;
    r.start_time = start;
    r.end_time = start + params.duration;
    r.announce_time = std::max<std::int64_t>(0, start - params.announce_lead);
    r.type = OutageType::kScheduledMaintenance;
    r.nodes_affected = total_nodes;
    r.components.resize(std::size_t(total_nodes));
    std::iota(r.components.begin(), r.components.end(), std::int64_t{0});
    log.records.push_back(std::move(r));
  }
  return log;
}

OutageLog merge(const OutageLog& a, const OutageLog& b) {
  OutageLog out;
  out.comments = a.comments;
  out.comments.insert(out.comments.end(), b.comments.begin(),
                      b.comments.end());
  out.records = a.records;
  out.records.insert(out.records.end(), b.records.begin(), b.records.end());
  out.sort_by_start();
  return out;
}

}  // namespace pjsb::outage
