// Outage stream generators.
//
// The paper distinguishes surprise failures ("the scheduler suddenly
// detect[s] that there were fewer nodes available") from human-generated
// outages ("all production systems are taken down for scheduled
// maintenance") that are announced in advance. We provide one generator
// per class; experiment E6 combines both.
#pragma once

#include <cstdint>

#include "core/outage/record.hpp"
#include "util/rng.hpp"

namespace pjsb::outage {

/// Random node failures: exponential time between failures (per
/// machine), log-normal repair durations, geometric blast radius
/// (usually one node, occasionally a network/facility event taking a
/// group down).
struct FailureModelParams {
  double mtbf_seconds = 7.0 * 86400;  ///< machine-level mean time between
                                      ///< failures
  double repair_log_mean = std::log(4.0 * 3600);  ///< ~4h median repair
  double repair_log_sigma = 0.8;
  /// Probability that a failure is a multi-node (network) event.
  double multi_node_prob = 0.15;
  /// Mean number of nodes in a multi-node event.
  double multi_node_mean = 8.0;
};

/// Generate a failure stream over [0, horizon) for a machine with
/// `total_nodes` nodes. Components are chosen uniformly without
/// replacement. announce_time == start_time (surprise failures).
OutageLog generate_failures(const FailureModelParams& params,
                            std::int64_t horizon, std::int64_t total_nodes,
                            util::Rng& rng);

/// Scheduled maintenance: a whole-machine window every `period` seconds,
/// of `duration` seconds, announced `announce_lead` seconds ahead.
struct MaintenanceParams {
  std::int64_t period = 7 * 86400;        ///< weekly
  std::int64_t duration = 4 * 3600;       ///< 4 hours
  std::int64_t announce_lead = 3 * 86400; ///< 3 days notice
  std::int64_t first_start = 5 * 86400;   ///< offset of the first window
};

OutageLog generate_maintenance(const MaintenanceParams& params,
                               std::int64_t horizon,
                               std::int64_t total_nodes);

/// Merge two outage logs (concatenate + sort by start).
OutageLog merge(const OutageLog& a, const OutageLog& b);

}  // namespace pjsb::outage
