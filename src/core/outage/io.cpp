#include "core/outage/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/string_util.hpp"

namespace pjsb::outage {

namespace {
using pjsb::util::parse_i64;
using pjsb::util::split_ws;
using pjsb::util::trim;
}  // namespace

OutageReadResult read_outages(std::istream& in) {
  OutageReadResult result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == ';') {
      result.log.comments.emplace_back(trimmed.substr(1));
      continue;
    }
    const auto tok = split_ws(trimmed);
    if (tok.size() < 6) {
      result.errors.push_back(
          {line_no, "expected at least 6 fields, got " +
                        std::to_string(tok.size())});
      continue;
    }
    std::vector<std::int64_t> values;
    values.reserve(tok.size());
    bool bad = false;
    for (const auto t : tok) {
      const auto v = parse_i64(t);
      if (!v) {
        result.errors.push_back(
            {line_no, "field is not an integer: '" + std::string(t) + "'"});
        bad = true;
        break;
      }
      values.push_back(*v);
    }
    if (bad) continue;

    OutageRecord r;
    r.announce_time = values[0];
    r.start_time = values[1];
    r.end_time = values[2];
    r.type = outage_type_from_code(values[3]);
    r.nodes_affected = values[4];
    const std::int64_t k = values[5];
    if (k < 0 || std::size_t(k) + 6 != values.size()) {
      result.errors.push_back(
          {line_no, "component count does not match trailing fields"});
      continue;
    }
    r.components.assign(values.begin() + 6, values.end());
    if (r.end_time < r.start_time) {
      result.errors.push_back({line_no, "end time before start time"});
      continue;
    }
    result.log.records.push_back(std::move(r));
  }
  return result;
}

OutageReadResult read_outages_string(const std::string& text) {
  std::istringstream is(text);
  return read_outages(is);
}

void write_outages(std::ostream& out, const OutageLog& log) {
  for (const auto& c : log.comments) out << ';' << c << '\n';
  for (const auto& r : log.records) out << r.to_line() << '\n';
}

std::string write_outages_string(const OutageLog& log) {
  std::ostringstream os;
  write_outages(os, log);
  return os.str();
}

}  // namespace pjsb::outage
