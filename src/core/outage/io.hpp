// Reader/writer for the standard outage format (see record.hpp for the
// line layout). Mirrors the SWF reader's contract: diagnostics for
// malformed lines, never silent coercion.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/outage/record.hpp"

namespace pjsb::outage {

struct OutageParseError {
  std::size_t line = 0;
  std::string message;
};

struct OutageReadResult {
  OutageLog log;
  std::vector<OutageParseError> errors;
  bool ok() const { return errors.empty(); }
};

OutageReadResult read_outages(std::istream& in);
OutageReadResult read_outages_string(const std::string& text);

void write_outages(std::ostream& out, const OutageLog& log);
std::string write_outages_string(const OutageLog& log);

}  // namespace pjsb::outage
