#include "core/outage/record.hpp"

#include <algorithm>
#include <sstream>

namespace pjsb::outage {

std::string outage_type_name(OutageType t) {
  switch (t) {
    case OutageType::kUnknown: return "unknown";
    case OutageType::kCpuFailure: return "cpu-failure";
    case OutageType::kNetworkFailure: return "network-failure";
    case OutageType::kDiskFailure: return "disk-failure";
    case OutageType::kFacility: return "facility";
    case OutageType::kScheduledMaintenance: return "scheduled-maintenance";
    case OutageType::kDedicatedTime: return "dedicated-time";
  }
  return "unknown";
}

OutageType outage_type_from_code(std::int64_t code) {
  if (code < 0 || code > 5) return OutageType::kUnknown;
  return static_cast<OutageType>(code);
}

std::string OutageRecord::to_line() const {
  std::ostringstream os;
  os << announce_time << ' ' << start_time << ' ' << end_time << ' '
     << static_cast<std::int64_t>(type) << ' ' << nodes_affected << ' '
     << components.size();
  for (std::int64_t c : components) os << ' ' << c;
  return os.str();
}

void OutageLog::sort_by_start() {
  std::stable_sort(records.begin(), records.end(),
                   [](const OutageRecord& a, const OutageRecord& b) {
                     return a.start_time < b.start_time;
                   });
}

std::int64_t OutageLog::total_node_seconds() const {
  std::int64_t total = 0;
  for (const auto& r : records) {
    total += r.duration() * r.nodes_affected;
  }
  return total;
}

}  // namespace pjsb::outage
