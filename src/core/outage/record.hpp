// Standard outage format (paper section 2.2, "Including outage
// information").
//
// The paper proposes recording, "for every outage that removes any
// portion of a system from operation": the announced time, start time,
// end time, type, number of nodes affected, and the specific affected
// components. We encode each outage as one line of space-separated
// integers (mirroring the SWF design rules: text, integers only,
// -1 for unknown, ';' comments):
//
//   announce_time start_time end_time type n_nodes k node_1 ... node_k
//
// where `type` is the OutageType code below, `n_nodes` is the number of
// nodes affected, and node_1..node_k (k may be 0, and may be < n_nodes
// when the components are unknown) identify the affected nodes. Times
// are seconds on the same clock as the companion workload trace — "the
// two datasets should be keyed to each other".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pjsb::outage {

/// Outage taxonomy from the paper: "Type of outage (CPU failure,
/// network failure, facility)" plus disk failures and the
/// human-generated classes (scheduled maintenance, dedicated time).
enum class OutageType : std::int64_t {
  kUnknown = -1,
  kCpuFailure = 0,
  kNetworkFailure = 1,
  kDiskFailure = 2,
  kFacility = 3,
  kScheduledMaintenance = 4,
  kDedicatedTime = 5,
};

inline constexpr std::int64_t kUnknown = -1;

std::string outage_type_name(OutageType t);
OutageType outage_type_from_code(std::int64_t code);

struct OutageRecord {
  /// When the outage became known to the scheduler. Equal to start_time
  /// for surprise failures; earlier for announced maintenance. -1 means
  /// "not announced" (treated as announce == start).
  std::int64_t announce_time = kUnknown;
  std::int64_t start_time = 0;
  std::int64_t end_time = 0;  ///< when resources were again schedulable
  OutageType type = OutageType::kUnknown;
  std::int64_t nodes_affected = 0;
  /// Specific affected node ids (0-based), possibly empty when unknown.
  std::vector<std::int64_t> components;

  bool operator==(const OutageRecord&) const = default;

  std::int64_t duration() const { return end_time - start_time; }
  /// True if the scheduler had advance notice.
  bool announced() const {
    return announce_time != kUnknown && announce_time < start_time;
  }

  std::string to_line() const;
};

/// An outage log: header comments plus records sorted by start time.
struct OutageLog {
  std::vector<std::string> comments;
  std::vector<OutageRecord> records;

  void sort_by_start();
  /// Total node-seconds removed from service.
  std::int64_t total_node_seconds() const;
};

}  // namespace pjsb::outage
