#include "core/swf/anonymize.hpp"

#include <unordered_map>

namespace pjsb::swf {

std::int64_t IdAssigner::id_for(const std::string& name) {
  auto [it, inserted] = ids_.try_emplace(name, next_);
  if (inserted) ++next_;
  return it->second;
}

std::map<std::int64_t, std::string> IdAssigner::reverse() const {
  std::map<std::int64_t, std::string> out;
  for (const auto& [name, id] : ids_) out.emplace(id, name);
  return out;
}

namespace {

/// Incremental remapper over int64 identity values, skipping kUnknown
/// and an optional pinned value (queue 0).
class IntRemap {
 public:
  explicit IntRemap(std::int64_t pinned = kUnknown) : pinned_(pinned) {}

  std::int64_t remap(std::int64_t value) {
    if (value == kUnknown || value == pinned_) return value;
    auto [it, inserted] = map_.try_emplace(value, next_);
    if (inserted) ++next_;
    return it->second;
  }

  std::int64_t count() const { return next_ - 1; }

 private:
  std::unordered_map<std::int64_t, std::int64_t> map_;
  std::int64_t next_ = 1;
  std::int64_t pinned_;
};

}  // namespace

AnonymizeResult anonymize(Trace& trace, const AnonymizeOptions& options) {
  IntRemap users, groups, apps, partitions;
  IntRemap queues(/*pinned=*/0);
  for (auto& r : trace.records) {
    if (options.remap_users) r.user_id = users.remap(r.user_id);
    if (options.remap_groups) r.group_id = groups.remap(r.group_id);
    if (options.remap_executables) {
      r.executable_id = apps.remap(r.executable_id);
    }
    if (options.remap_queues) r.queue_id = queues.remap(r.queue_id);
    if (options.remap_partitions) {
      r.partition_id = partitions.remap(r.partition_id);
    }
  }
  AnonymizeResult result;
  result.users = users.count();
  result.groups = groups.count();
  result.executables = apps.count();
  result.queues = queues.count();
  result.partitions = partitions.count();
  return result;
}

}  // namespace pjsb::swf
