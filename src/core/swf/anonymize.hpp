// Anonymization: "users and executables are given by incremental
// numbers, which makes their parsing easier ... hides administrative
// issues, and hides sensitive information" (section 2.3).
//
// The anonymizer remaps user / group / executable / queue / partition
// identifiers to natural numbers in order of first appearance. It is
// used both when converting raw logs (string identities -> integers)
// and when re-normalizing traces whose ids are sparse.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/swf/trace.hpp"

namespace pjsb::swf {

/// Maps arbitrary string identities to incremental ids (1-based), in
/// order of first appearance. One instance per identity namespace.
class IdAssigner {
 public:
  /// Id for `name`, assigning the next id on first sight.
  std::int64_t id_for(const std::string& name);
  /// Number of distinct identities seen so far.
  std::int64_t count() const { return next_ - 1; }
  /// Reverse map (id -> original name) for audit output.
  std::map<std::int64_t, std::string> reverse() const;

 private:
  std::map<std::string, std::int64_t> ids_;
  std::int64_t next_ = 1;
};

struct AnonymizeOptions {
  bool remap_users = true;
  bool remap_groups = true;
  bool remap_executables = true;
  bool remap_partitions = true;
  /// Queue 0 is the standard's convention for interactive jobs; keep it
  /// fixed and remap only queues >= 1.
  bool remap_queues = true;
};

/// Statistics of an anonymization pass.
struct AnonymizeResult {
  std::int64_t users = 0;
  std::int64_t groups = 0;
  std::int64_t executables = 0;
  std::int64_t queues = 0;
  std::int64_t partitions = 0;
};

/// Renumber identity fields in place to be incremental naturals in order
/// of first appearance, preserving -1 (unknown) and queue 0.
AnonymizeResult anonymize(Trace& trace, const AnonymizeOptions& options = {});

}  // namespace pjsb::swf
