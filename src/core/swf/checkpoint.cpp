#include "core/swf/checkpoint.hpp"

#include <unordered_map>
#include <unordered_set>

namespace pjsb::swf {

std::int64_t CheckpointedJob::total_run_time() const {
  std::int64_t total = 0;
  for (const auto& b : bursts) total += b.run_time;
  return total;
}

std::vector<JobRecord> encode_checkpointed(const CheckpointedJob& job) {
  std::vector<JobRecord> lines;
  lines.reserve(job.bursts.size() + 1);

  JobRecord summary = job.base;
  summary.run_time = job.total_run_time();
  // Summary status must be a whole-job code; default killed -> completed
  // mapping is the caller's choice via base.status.
  if (!is_summary_status(summary.status)) summary.status = Status::kCompleted;
  lines.push_back(summary);

  for (std::size_t i = 0; i < job.bursts.size(); ++i) {
    JobRecord burst = job.base;
    burst.wait_time = job.bursts[i].wait_time;
    burst.run_time = job.bursts[i].run_time;
    if (i == 0) {
      burst.submit_time = job.base.submit_time;
    } else {
      burst.submit_time = kUnknown;  // "only have a wait time since the
                                     // previous burst"
    }
    const bool last = (i + 1 == job.bursts.size());
    if (!last) {
      burst.status = Status::kPartial;
    } else {
      burst.status = (summary.status == Status::kKilled)
                         ? Status::kPartialLastKilled
                         : Status::kPartialLastOk;
    }
    lines.push_back(burst);
  }
  return lines;
}

CheckpointDecodeResult decode_checkpointed_checked(const Trace& trace) {
  CheckpointDecodeResult result;
  std::unordered_map<std::int64_t, const JobRecord*> summaries;
  for (const auto& r : trace.records) {
    if (r.is_summary()) summaries.emplace(r.job_number, &r);
  }
  // Preserve first-seen order of jobs with partial lines.
  std::vector<std::int64_t> order;
  std::unordered_map<std::int64_t, CheckpointedJob> building;
  std::unordered_set<std::int64_t> orphaned;
  for (const auto& r : trace.records) {
    if (!is_partial_status(r.status)) continue;
    auto it = building.find(r.job_number);
    if (it == building.end()) {
      const auto sit = summaries.find(r.job_number);
      if (sit == summaries.end()) {
        // No summary line: the group cannot be decoded. Report the job
        // number once, however many partial lines it has.
        if (orphaned.insert(r.job_number).second) {
          result.missing_summary.push_back(r.job_number);
        }
        continue;
      }
      CheckpointedJob job;
      job.base = *sit->second;
      it = building.emplace(r.job_number, std::move(job)).first;
      order.push_back(r.job_number);
    }
    it->second.bursts.push_back({r.wait_time, r.run_time});
  }
  result.jobs.reserve(order.size());
  for (std::int64_t id : order) {
    auto& job = building.at(id);
    // "its runtime is the sum of all partial runtimes" — flag groups
    // where the summary disagrees (unknown run times exempt a group:
    // there is nothing to sum against).
    std::int64_t sum = 0;
    bool all_known = job.base.run_time != kUnknown;
    for (const auto& b : job.bursts) {
      if (b.run_time == kUnknown) {
        all_known = false;
        break;
      }
      sum += b.run_time;
    }
    if (all_known && job.base.run_time != sum) {
      result.sum_mismatches.push_back({id, job.base.run_time, sum});
    }
    result.jobs.push_back(std::move(job));
  }
  return result;
}

std::vector<CheckpointedJob> decode_checkpointed(const Trace& trace) {
  return decode_checkpointed_checked(trace).jobs;
}

}  // namespace pjsb::swf
