// Multi-line (checkpointed / swapped) job encoding, section 2.3 field 11.
//
// "If a log contains information about checkpoints and swapping out of
// jobs, a job can have multiple lines in the log ... the job information
// appears twice": one summary line (status 0/1) whose run time is the
// sum of the partial run times, plus one line per partial execution
// (status 2 for all but the last, 3/4 for the last). This module builds
// and expands that encoding.
#pragma once

#include <cstdint>
#include <vector>

#include "core/swf/trace.hpp"

namespace pjsb::swf {

/// One burst of execution between swap-outs.
struct ExecutionBurst {
  std::int64_t wait_time = 0;  ///< since submit (first) or previous burst
  std::int64_t run_time = 0;
};

/// A checkpointed job in structured form.
struct CheckpointedJob {
  JobRecord base;  ///< template record (ids, sizes, submit time, status)
  std::vector<ExecutionBurst> bursts;

  /// Total run time over all bursts.
  std::int64_t total_run_time() const;
};

/// Render a checkpointed job as SWF lines: the summary line first (per
/// the standard), then one line per burst. All lines share the job
/// number. The first burst line carries the submit time; later bursts
/// have submit -1 and "only have a wait time since the previous burst".
std::vector<JobRecord> encode_checkpointed(const CheckpointedJob& job);

/// Reconstruct structured checkpoint jobs from a trace. Jobs without
/// partial lines are ignored. Malformed groups (no summary line) are
/// skipped — the validator reports them.
std::vector<CheckpointedJob> decode_checkpointed(const Trace& trace);

}  // namespace pjsb::swf
