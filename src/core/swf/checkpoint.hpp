// Multi-line (checkpointed / swapped) job encoding, section 2.3 field 11.
//
// "If a log contains information about checkpoints and swapping out of
// jobs, a job can have multiple lines in the log ... the job information
// appears twice": one summary line (status 0/1) whose run time is the
// sum of the partial run times, plus one line per partial execution
// (status 2 for all but the last, 3/4 for the last). This module builds
// and expands that encoding.
#pragma once

#include <cstdint>
#include <vector>

#include "core/swf/trace.hpp"

namespace pjsb::swf {

/// One burst of execution between swap-outs.
struct ExecutionBurst {
  std::int64_t wait_time = 0;  ///< since submit (first) or previous burst
  std::int64_t run_time = 0;
};

/// A checkpointed job in structured form.
struct CheckpointedJob {
  JobRecord base;  ///< template record (ids, sizes, submit time, status)
  std::vector<ExecutionBurst> bursts;

  /// Total run time over all bursts.
  std::int64_t total_run_time() const;
};

/// Render a checkpointed job as SWF lines: the summary line first (per
/// the standard), then one line per burst. All lines share the job
/// number. The first burst line carries the submit time; later bursts
/// have submit -1 and "only have a wait time since the previous burst".
std::vector<JobRecord> encode_checkpointed(const CheckpointedJob& job);

/// A burst group whose summary run time disagrees with the sum of its
/// partial run times ("its runtime is the sum of all partial runtimes").
struct BurstSumMismatch {
  std::int64_t job_number = kUnknown;
  std::int64_t summary_run_time = kUnknown;
  std::int64_t burst_sum = 0;
};

/// decode_checkpointed plus an account of every malformed group, so
/// callers cannot lose jobs without noticing. The same groups surface
/// as validator diagnostics (Rule::kPartialStructure /
/// Rule::kPartialRuntimeSum) with their job numbers.
struct CheckpointDecodeResult {
  std::vector<CheckpointedJob> jobs;
  /// Job numbers of partial-line groups with no summary line, in
  /// first-seen order. These groups have no base record and cannot be
  /// decoded; they do NOT appear in `jobs`.
  std::vector<std::int64_t> missing_summary;
  /// Groups whose partial run times do not sum to the summary run
  /// time. These decode fine structurally and DO appear in `jobs`;
  /// the mismatch is reported so callers can decide.
  std::vector<BurstSumMismatch> sum_mismatches;

  bool clean() const {
    return missing_summary.empty() && sum_mismatches.empty();
  }
};

/// Reconstruct structured checkpoint jobs from a trace, reporting every
/// group that had to be skipped (no summary line) or whose burst run
/// times disagree with the summary. Jobs without partial lines are
/// ignored (they are plain single-line jobs, not checkpoint groups).
CheckpointDecodeResult decode_checkpointed_checked(const Trace& trace);

/// Convenience form of decode_checkpointed_checked for callers that
/// only want the well-formed groups. Malformed groups are still
/// dropped here — use the checked variant (or swf::validate) to see
/// which job numbers were affected.
std::vector<CheckpointedJob> decode_checkpointed(const Trace& trace);

}  // namespace pjsb::swf
