// Raw accounting-log converters.
//
// The paper motivates the standard by the zoo of per-machine log
// formats ("these fields appear in different orders and formats"). We
// implement converters for two representative dialects, exercising the
// same pipeline a real archive conversion uses: parse native records,
// map string identities through the anonymizer, normalize times to
// trace-relative seconds, sort, renumber, and emit a clean SWF trace.
//
// Dialect 1 — "iacct" (hypercube accounting, iPSC/860 style):
//   one line per job, columns:
//     jobid user date_start time_start date_end time_end nodes
//     cpu_seconds status
//   dates are MM/DD/YY, times HH:MM:SS; status is "C" (completed) or
//   "K" (killed). Submit time is not recorded (wait time unknown).
//
// Dialect 2 — "nqsacct" (NQS/PBS batch accounting style):
//   one `key=value` record per line, keys:
//     job= user= group= queue= exe= qtime= start= end= ncpus=
//     mem_kb= req_walltime= req_ncpus= exit=
//   times are Unix timestamps; exit=0 means completed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/swf/trace.hpp"

namespace pjsb::swf {

/// A conversion problem attributed to a raw-log line.
struct ConvertError {
  std::size_t line = 0;
  std::string message;
};

struct ConvertResult {
  Trace trace;
  std::vector<ConvertError> errors;
  bool ok() const { return errors.empty(); }
};

/// Convert an iacct-dialect stream to SWF. `installation` is recorded in
/// the header; MaxNodes is taken as the largest node count seen unless
/// `max_nodes` > 0 is given.
ConvertResult convert_iacct(std::istream& in, const std::string& installation,
                            std::int64_t max_nodes = 0);
ConvertResult convert_iacct_string(const std::string& text,
                                   const std::string& installation,
                                   std::int64_t max_nodes = 0);

/// Convert an nqsacct-dialect stream to SWF.
ConvertResult convert_nqsacct(std::istream& in,
                              const std::string& installation,
                              std::int64_t max_nodes = 0);
ConvertResult convert_nqsacct_string(const std::string& text,
                                     const std::string& installation,
                                     std::int64_t max_nodes = 0);

}  // namespace pjsb::swf
