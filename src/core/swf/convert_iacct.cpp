#include <algorithm>
#include <istream>
#include <sstream>

#include "core/swf/anonymize.hpp"
#include "core/swf/convert.hpp"
#include "util/string_util.hpp"
#include "util/time_util.hpp"

namespace pjsb::swf {

namespace {

using pjsb::util::parse_i64;
using pjsb::util::split;
using pjsb::util::split_ws;
using pjsb::util::trim;

/// Parse "MM/DD/YY HH:MM:SS" (two-digit year, 70..99 -> 19xx, else 20xx).
std::optional<std::int64_t> parse_iacct_time(std::string_view date,
                                             std::string_view time) {
  const auto dparts = split(date, '/');
  const auto tparts = split(time, ':');
  if (dparts.size() != 3 || tparts.size() != 3) return std::nullopt;
  const auto mm = parse_i64(dparts[0]);
  const auto dd = parse_i64(dparts[1]);
  const auto yy = parse_i64(dparts[2]);
  const auto hh = parse_i64(tparts[0]);
  const auto mi = parse_i64(tparts[1]);
  const auto ss = parse_i64(tparts[2]);
  if (!mm || !dd || !yy || !hh || !mi || !ss) return std::nullopt;
  if (*mm < 1 || *mm > 12 || *dd < 1 || *dd > 31) return std::nullopt;
  const int year = *yy >= 70 ? int(1900 + *yy) : int(2000 + *yy);
  util::CivilTime ct{year, int(*mm), int(*dd), int(*hh), int(*mi), int(*ss)};
  return util::to_unix_seconds(ct);
}

struct RawJob {
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::int64_t nodes = 0;
  std::int64_t cpu_seconds = 0;
  bool completed = true;
  std::string user;
};

}  // namespace

ConvertResult convert_iacct(std::istream& in, const std::string& installation,
                            std::int64_t max_nodes) {
  ConvertResult result;
  std::vector<RawJob> raw;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto tok = split_ws(trimmed);
    if (tok.size() != 9) {
      result.errors.push_back({line_no, "expected 9 columns, got " +
                                            std::to_string(tok.size())});
      continue;
    }
    RawJob job;
    job.user = std::string(tok[1]);
    const auto start = parse_iacct_time(tok[2], tok[3]);
    const auto end = parse_iacct_time(tok[4], tok[5]);
    const auto nodes = parse_i64(tok[6]);
    const auto cpu = parse_i64(tok[7]);
    if (!start || !end || !nodes || !cpu) {
      result.errors.push_back({line_no, "malformed time or count column"});
      continue;
    }
    if (*end < *start) {
      result.errors.push_back({line_no, "end time before start time"});
      continue;
    }
    job.start = *start;
    job.end = *end;
    job.nodes = *nodes;
    job.cpu_seconds = *cpu;
    if (tok[8] == "C") {
      job.completed = true;
    } else if (tok[8] == "K") {
      job.completed = false;
    } else {
      result.errors.push_back(
          {line_no, "status must be C or K, got '" + std::string(tok[8]) +
                        "'"});
      continue;
    }
    raw.push_back(std::move(job));
  }

  if (raw.empty()) return result;

  // The dialect has no submit times: submit = start (wait unknown is
  // dishonest since 0 is a valid value; the archive convention for such
  // logs is wait = 0 with a Note).
  std::sort(raw.begin(), raw.end(),
            [](const RawJob& a, const RawJob& b) { return a.start < b.start; });
  const std::int64_t epoch = raw.front().start;

  IdAssigner users;
  std::int64_t seen_max_nodes = 0;
  auto& trace = result.trace;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const auto& j = raw[i];
    JobRecord r;
    r.job_number = std::int64_t(i + 1);
    r.submit_time = j.start - epoch;
    r.wait_time = 0;
    r.run_time = j.end - j.start;
    r.allocated_procs = j.nodes;
    // The log records total CPU seconds over all nodes; the standard
    // wants the per-processor average ("if a log contains the total CPU
    // time used by all the processors, it is divided by the number of
    // allocated processors").
    r.avg_cpu_time = j.nodes > 0 ? j.cpu_seconds / j.nodes : kUnknown;
    r.requested_procs = j.nodes;
    r.status = j.completed ? Status::kCompleted : Status::kKilled;
    r.user_id = users.id_for(j.user);
    seen_max_nodes = std::max(seen_max_nodes, j.nodes);
    trace.records.push_back(r);
  }

  trace.header.computer = "Hypercube (iacct dialect)";
  trace.header.installation = installation;
  trace.header.conversion = "pjsb convert_iacct";
  trace.header.version = 2;
  trace.header.start_time = epoch;
  trace.header.end_time = epoch + trace.horizon();
  trace.header.max_nodes = max_nodes > 0 ? max_nodes : seen_max_nodes;
  trace.header.notes.push_back(
      "Source log has no submit times; wait time recorded as 0.");
  return result;
}

ConvertResult convert_iacct_string(const std::string& text,
                                   const std::string& installation,
                                   std::int64_t max_nodes) {
  std::istringstream is(text);
  return convert_iacct(is, installation, max_nodes);
}

}  // namespace pjsb::swf
