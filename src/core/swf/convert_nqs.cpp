#include <algorithm>
#include <istream>
#include <map>
#include <sstream>

#include "core/swf/anonymize.hpp"
#include "core/swf/convert.hpp"
#include "util/string_util.hpp"

namespace pjsb::swf {

namespace {

using pjsb::util::parse_i64;
using pjsb::util::split_ws;
using pjsb::util::trim;

struct NqsJob {
  std::int64_t qtime = 0;
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::int64_t ncpus = 0;
  std::int64_t mem_kb = kUnknown;
  std::int64_t req_walltime = kUnknown;
  std::int64_t req_ncpus = kUnknown;
  std::int64_t exit_code = 0;
  std::string user, group, queue, exe;
};

}  // namespace

ConvertResult convert_nqsacct(std::istream& in,
                              const std::string& installation,
                              std::int64_t max_nodes) {
  ConvertResult result;
  std::vector<NqsJob> raw;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;

    std::map<std::string, std::string, std::less<>> kv;
    bool bad = false;
    for (const auto tok : split_ws(trimmed)) {
      const auto eq = tok.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        result.errors.push_back(
            {line_no, "token is not key=value: '" + std::string(tok) + "'"});
        bad = true;
        break;
      }
      kv.emplace(std::string(tok.substr(0, eq)),
                 std::string(tok.substr(eq + 1)));
    }
    if (bad) continue;

    auto get_int = [&](const char* key) -> std::optional<std::int64_t> {
      const auto it = kv.find(key);
      if (it == kv.end()) return std::nullopt;
      return parse_i64(it->second);
    };
    auto get_str = [&](const char* key) -> std::string {
      const auto it = kv.find(key);
      return it == kv.end() ? std::string() : it->second;
    };

    NqsJob job;
    const auto qtime = get_int("qtime");
    const auto start = get_int("start");
    const auto end = get_int("end");
    const auto ncpus = get_int("ncpus");
    if (!qtime || !start || !end || !ncpus) {
      result.errors.push_back(
          {line_no, "missing required key (qtime/start/end/ncpus)"});
      continue;
    }
    if (*start < *qtime || *end < *start) {
      result.errors.push_back({line_no, "times not ordered qtime<=start<=end"});
      continue;
    }
    job.qtime = *qtime;
    job.start = *start;
    job.end = *end;
    job.ncpus = *ncpus;
    job.mem_kb = get_int("mem_kb").value_or(kUnknown);
    job.req_walltime = get_int("req_walltime").value_or(kUnknown);
    job.req_ncpus = get_int("req_ncpus").value_or(kUnknown);
    job.exit_code = get_int("exit").value_or(0);
    job.user = get_str("user");
    job.group = get_str("group");
    job.queue = get_str("queue");
    job.exe = get_str("exe");
    raw.push_back(std::move(job));
  }

  if (raw.empty()) return result;

  std::sort(raw.begin(), raw.end(),
            [](const NqsJob& a, const NqsJob& b) { return a.qtime < b.qtime; });
  const std::int64_t epoch = raw.front().qtime;

  IdAssigner users, groups, queues, exes;
  std::int64_t seen_max_nodes = 0;
  auto& trace = result.trace;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const auto& j = raw[i];
    JobRecord r;
    r.job_number = std::int64_t(i + 1);
    r.submit_time = j.qtime - epoch;
    r.wait_time = j.start - j.qtime;
    r.run_time = j.end - j.start;
    r.allocated_procs = j.ncpus;
    r.used_memory_kb = j.mem_kb;
    r.requested_procs = j.req_ncpus != kUnknown ? j.req_ncpus : j.ncpus;
    r.requested_time = j.req_walltime;
    r.status = j.exit_code == 0 ? Status::kCompleted : Status::kKilled;
    if (!j.user.empty()) r.user_id = users.id_for(j.user);
    if (!j.group.empty()) r.group_id = groups.id_for(j.group);
    if (!j.exe.empty()) r.executable_id = exes.id_for(j.exe);
    if (!j.queue.empty()) r.queue_id = queues.id_for(j.queue);
    seen_max_nodes = std::max(seen_max_nodes, j.ncpus);
    trace.records.push_back(r);
  }

  trace.header.computer = "Batch cluster (nqsacct dialect)";
  trace.header.installation = installation;
  trace.header.conversion = "pjsb convert_nqsacct";
  trace.header.version = 2;
  trace.header.start_time = epoch;
  trace.header.end_time = epoch + trace.horizon();
  trace.header.max_nodes = max_nodes > 0 ? max_nodes : seen_max_nodes;
  trace.header.queues =
      "Queue ids assigned in order of first appearance in the source log; "
      "interactive jobs are not distinguished by this dialect.";
  return result;
}

ConvertResult convert_nqsacct_string(const std::string& text,
                                     const std::string& installation,
                                     std::int64_t max_nodes) {
  std::istringstream is(text);
  return convert_nqsacct(is, installation, max_nodes);
}

}  // namespace pjsb::swf
