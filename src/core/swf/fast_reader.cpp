#include "core/swf/fast_reader.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <thread>
#include <type_traits>
#include <utility>

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "core/swf/stream_reader.hpp"
#include "util/chunk.hpp"
#include "util/mmap_file.hpp"
#include "util/string_util.hpp"

namespace pjsb::swf {

namespace {

/// Post-header comments kept before counting only (same bound as
/// StreamReader's).
constexpr std::size_t kMaxStoredComments = 256;
/// Auto-chunking floor: below this, per-chunk overhead dominates.
constexpr std::size_t kMinAutoChunk = std::size_t(256) << 10;
/// Rough bytes-per-record guess for the reserve() ahead of a chunk.
constexpr std::size_t kBytesPerRecordGuess = 48;

/// Prepare a freshly reserved record buffer for bulk writes. A 1M-job
/// parse materializes ~144 MB of records; demand-faulted 4 KB pages
/// put ~35k page-fault traps on the critical path — a third of the
/// parse time. MADV_HUGEPAGE asks for 2 MB pages where THP is
/// available; MADV_POPULATE_WRITE (Linux 5.14+) prefaults the whole
/// range in one syscall either way. Both are advisory — on kernels
/// without them the parse is merely demand-faulted, not wrong.
void prefault_buffer(void* data, std::size_t bytes) {
#ifdef __linux__
  constexpr std::size_t kPage = 4096;
  constexpr std::size_t kMinBytes = std::size_t(8) << 20;
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t aligned = (addr + kPage - 1) & ~(kPage - 1);
  const std::size_t skipped = std::size_t(aligned - addr);
  if (bytes < kMinBytes + skipped) return;
  void* base = reinterpret_cast<void*>(aligned);
  const std::size_t len = bytes - skipped;
#ifdef MADV_HUGEPAGE
  ::madvise(base, len, MADV_HUGEPAGE);
#endif
#ifdef MADV_POPULATE_WRITE
  ::madvise(base, len, MADV_POPULATE_WRITE);
#endif
#else
  (void)data;
  (void)bytes;
#endif
}

/// Newline count, memchr-paced — sizes the record reserve exactly
/// instead of over-reserving from a bytes-per-record guess.
std::size_t count_newlines(std::string_view text) {
  std::size_t n = 0;
  const char* q = text.data();
  const char* const qe = q + text.size();
  while (q < qe) {
    const void* hit = std::memchr(q, '\n', std::size_t(qe - q));
    if (!hit) break;
    ++n;
    q = static_cast<const char*>(hit) + 1;
  }
  return n;
}

/// The fused scanner parses a line into int64 values[18] in SWF field
/// order and commits them to a JobRecord with ONE memcpy. That is only
/// sound because JobRecord lays its 18 fields out contiguously in
/// exactly that order (Status is int64-backed and values[10] is
/// range-checked to the enum's domain before the copy); these asserts
/// pin the layout so a reordered field breaks the build, not the data.
static_assert(sizeof(JobRecord) == kFieldCount * sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<JobRecord>);
static_assert(offsetof(JobRecord, job_number) == 0 * 8 &&
              offsetof(JobRecord, submit_time) == 1 * 8 &&
              offsetof(JobRecord, wait_time) == 2 * 8 &&
              offsetof(JobRecord, run_time) == 3 * 8 &&
              offsetof(JobRecord, allocated_procs) == 4 * 8 &&
              offsetof(JobRecord, avg_cpu_time) == 5 * 8 &&
              offsetof(JobRecord, used_memory_kb) == 6 * 8 &&
              offsetof(JobRecord, requested_procs) == 7 * 8 &&
              offsetof(JobRecord, requested_time) == 8 * 8 &&
              offsetof(JobRecord, requested_memory_kb) == 9 * 8 &&
              offsetof(JobRecord, status) == 10 * 8 &&
              offsetof(JobRecord, user_id) == 11 * 8 &&
              offsetof(JobRecord, group_id) == 12 * 8 &&
              offsetof(JobRecord, executable_id) == 13 * 8 &&
              offsetof(JobRecord, queue_id) == 14 * 8 &&
              offsetof(JobRecord, partition_id) == 15 * 8 &&
              offsetof(JobRecord, preceding_job) == 16 * 8 &&
              offsetof(JobRecord, think_time) == 17 * 8);
static_assert(std::is_same_v<std::underlying_type_t<Status>, std::int64_t>);

/// Everything one chunk produced, with chunk-local 1-based line
/// numbers; reassembly adds the prefix-summed offset.
struct ChunkResult {
  std::vector<JobRecord> records;  ///< all records, partials included
  std::vector<ParseError> errors;  ///< first max_errors, local lines
  std::size_t error_count = 0;     ///< exact
  std::vector<std::pair<std::size_t, std::string_view>> comments;
  std::size_t lines = 0;
  /// Local line of the first record-or-error line; 0 = none. The
  /// global header block ends at the first such line in any chunk.
  std::size_t first_data_line = 0;
  bool stopped = false;  ///< strict mode tripped on this chunk
};

ChunkResult parse_chunk(std::string_view chunk, bool strict,
                        bool allow_extra, std::size_t max_errors) {
  ChunkResult out;
  // Exact-size the reserve: one record per line is the ceiling (+1
  // for an unterminated tail). Counting newlines costs one streaming
  // memchr pass; growing or over-reserving costs far more in faults.
  const std::size_t guess =
      chunk.size() > kMinAutoChunk
          ? count_newlines(chunk) + 1
          : chunk.size() / kBytesPerRecordGuess + 1;
  out.records.reserve(guess);
  prefault_buffer(out.records.data(), guess * sizeof(JobRecord));
  const char* p = chunk.data();
  const char* const end = p + chunk.size();
  // Split the chunk at its last '\n': every line in [p, scan_end) is
  // newline-terminated, so the fused loop below can use '\n' as a
  // sentinel and skip per-character bounds checks entirely. The
  // unterminated tail (at most one line, usually empty) replays
  // through the shared scanner.
  const char* scan_end = end;
  while (scan_end > p && scan_end[-1] != '\n') --scan_end;
  // Any line the fast path rejects — comment, CR, junk byte, overlong
  // token, field-count or status problem — replays wholesale through
  // scan_swf_line, whose legacy fallback owns every verdict and every
  // diagnostic byte.
  const auto slow_line = [&](std::string_view line) {
    out.records.emplace_back();
    LineScan scan = scan_swf_line(line, allow_extra, out.records.back());
    switch (scan.kind) {
      case LineKind::kBlank:
        out.records.pop_back();
        break;
      case LineKind::kComment:
        out.records.pop_back();
        out.comments.emplace_back(out.lines, scan.comment);
        break;
      case LineKind::kRecord:
        if (out.first_data_line == 0) out.first_data_line = out.lines;
        break;
      case LineKind::kError:
        out.records.pop_back();
        if (out.first_data_line == 0) out.first_data_line = out.lines;
        ++out.error_count;
        if (out.errors.size() < max_errors) {
          out.errors.push_back({out.lines, std::move(scan.error)});
        }
        if (strict) out.stopped = true;
        break;
    }
    return out.stopped;
  };
  while (p < scan_end) {
    const char* const line_start = p;
    ++out.lines;
    // Fused fast path: split fields and find the line end in ONE pass
    // — no memchr-then-rescan, no trim, no bounds checks (the line's
    // own '\n' is the sentinel). Accepts exactly the lines made of 18
    // space/tab-separated optionally-negative <=18-digit decimal
    // fields; anything else rewinds to line_start for the slow path.
    // The field loop is fully unrolled so every field gets its own
    // branch sites: SWF columns have near-constant shapes (field 2 is
    // a 7-8 digit submit time, field 3 is usually "-1", ...), and
    // per-field branch history predicts those shapes far better than
    // one shared token loop aggregating all 18 patterns.
    std::int64_t values[kFieldCount];
    const char* q = p;
    bool deviated = false;
    bool blank = false;
#pragma GCC unroll 18
    for (int f = 0; f < kFieldCount; ++f) {
      char c = *q;
      while (c == ' ' || c == '\t') c = *++q;
      const bool neg = c == '-';
      if (neg) c = *++q;
      if (c < '0' || c > '9') {
        // '\n' before the first token is a blank (whitespace-only)
        // line; anything else is the slow path's call.
        blank = f == 0 && !neg && c == '\n';
        deviated = !blank;
        break;
      }
      std::uint64_t v = 0;
      int digits = 0;
      do {
        v = v * 10 + std::uint64_t(c - '0');
        ++digits;
        c = *++q;
      } while (c >= '0' && c <= '9');
      if (digits > 18 || (c != ' ' && c != '\t' && c != '\n')) {
        deviated = true;
        break;
      }
      values[f] = neg ? -std::int64_t(v) : std::int64_t(v);
    }
    if (blank) {
      p = q + 1;  // consume the '\n'
      continue;
    }
    if (!deviated) {
      char c = *q;
      while (c == ' ' || c == '\t') c = *++q;
      if (c == '\n' && values[10] >= -1 && values[10] <= 4) {
        // Layout-checked above: values[] IS the record, status
        // included (values[10] is range-checked, so the
        // representation is a valid Status). One 144-byte copy
        // instead of 18 field stores.
        out.records.emplace_back();
        std::memcpy(&out.records.back(), values, sizeof(JobRecord));
        if (out.first_data_line == 0) out.first_data_line = out.lines;
        p = q + 1;  // consume the '\n'
        continue;
      }
      // Extra fields (legal only with allow_extra), a junk
      // terminator, or an out-of-range status: slow path either way.
    }
    p = q;  // q never passes the line's '\n'
    const void* nl = std::memchr(p, '\n', std::size_t(scan_end - p));
    const char* const line_end = static_cast<const char*>(nl);
    p = line_end + 1;
    if (slow_line({line_start, std::size_t(line_end - line_start)})) {
      return out;
    }
  }
  if (p < end) {
    // Unterminated final line.
    ++out.lines;
    slow_line({p, std::size_t(end - p)});
  }
  return out;
}

struct ParsedFile {
  TraceHeader header;
  std::vector<JobRecord> records;
  std::vector<ParseError> errors;
  std::size_t error_count = 0;
  std::size_t lines = 0;
};

/// Stitch chunk results back together in file order: globalize error
/// line numbers, split comments into header block vs extras (the
/// header block ends at the first data line anywhere in the file,
/// exactly as the sequential readers see it), and honor strict mode by
/// dropping everything after the first stopped chunk.
ParsedFile assemble(std::vector<ChunkResult>& chunks, std::size_t max_errors,
                    std::size_t max_extra_comments) {
  ParsedFile out;
  // Single-chunk parses (threads=1, the common case) hand their record
  // vector over wholesale; only a parallel parse pays for stitching.
  if (chunks.size() == 1) {
    out.records = std::move(chunks.front().records);
  } else {
    std::size_t total = 0;
    for (const auto& c : chunks) total += c.records.size();
    out.records.reserve(total);
    prefault_buffer(out.records.data(), total * sizeof(JobRecord));
  }
  std::size_t line_offset = 0;
  std::size_t extra_stored = 0;
  bool in_header = true;
  for (auto& c : chunks) {
    for (auto& [line, body] : c.comments) {
      const bool header_comment =
          in_header && (c.first_data_line == 0 || line < c.first_data_line);
      if (header_comment) {
        absorb_header_line(out.header, std::string(body));
      } else if (extra_stored < max_extra_comments) {
        out.header.extra_comments.emplace_back(body);
        ++extra_stored;
      }
    }
    if (c.first_data_line != 0) in_header = false;
    for (auto& e : c.errors) {
      if (out.errors.size() < max_errors) {
        out.errors.push_back({line_offset + e.line, std::move(e.message)});
      }
    }
    out.error_count += c.error_count;
    if (chunks.size() > 1) {
      out.records.insert(out.records.end(), c.records.begin(),
                         c.records.end());
    }
    out.lines += c.lines;
    line_offset += c.lines;
    if (c.stopped) break;
  }
  return out;
}

ParsedFile parse_swf_buffer(std::string_view buffer,
                            const FastReaderOptions& options,
                            std::size_t max_errors,
                            std::size_t max_extra_comments) {
  const int threads = options.threads > 1 ? options.threads : 1;
  std::size_t target = options.chunk_bytes;
  if (target == 0) {
    target = threads == 1
                 ? buffer.size()
                 : std::max(buffer.size() / (std::size_t(threads) * 4),
                            kMinAutoChunk);
  }
  if (target == 0) target = 1;
  auto chunks = util::split_line_chunks(buffer, target);
  std::vector<ChunkResult> results(chunks.size());
  const std::size_t workers =
      std::min(std::size_t(threads), chunks.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      results[i] = parse_chunk(chunks[i], options.strict,
                               options.allow_extra_fields, max_errors);
      // In strict mode nothing after the first bad chunk is used.
      if (options.strict && results[i].stopped) break;
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto work = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= chunks.size()) return;
        results[i] = parse_chunk(chunks[i], options.strict,
                                 options.allow_extra_fields, max_errors);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t i = 0; i + 1 < workers; ++i) pool.emplace_back(work);
    work();
    for (auto& t : pool) t.join();
  }
  return assemble(results, max_errors, max_extra_comments);
}

}  // namespace

LineScan scan_swf_line(std::string_view raw, bool allow_extra,
                       JobRecord& out) {
  const std::string_view trimmed = util::trim(raw);
  LineScan scan;
  if (trimmed.empty()) {
    scan.kind = LineKind::kBlank;
    return scan;
  }
  if (trimmed.front() == ';') {
    scan.kind = LineKind::kComment;
    scan.comment = trimmed.substr(1);
    return scan;
  }
  // Fast path: space/tab-separated decimal fields, optionally negative,
  // at most 18 digits each (always within int64). One pass, no
  // allocation; the first deviation defers to the legacy grammar.
  const char* p = trimmed.data();
  const char* const e = p + trimmed.size();
  std::int64_t values[kFieldCount];
  int field = 0;
  bool fallback = false;
  while (p < e) {
    while (p < e && (*p == ' ' || *p == '\t')) ++p;
    if (p >= e) break;
    bool neg = false;
    if (*p == '-') {
      neg = true;
      ++p;
    }
    if (p >= e || *p < '0' || *p > '9') {
      fallback = true;
      break;
    }
    std::uint64_t v = 0;
    int digits = 0;
    do {
      v = v * 10 + std::uint64_t(*p - '0');
      ++digits;
      ++p;
    } while (p < e && *p >= '0' && *p <= '9');
    if (digits > 18 || (p < e && *p != ' ' && *p != '\t')) {
      fallback = true;
      break;
    }
    if (field < kFieldCount) {
      values[field] = neg ? -std::int64_t(v) : std::int64_t(v);
    } else if (!allow_extra) {
      fallback = true;
      break;
    }
    ++field;
  }
  if (!fallback && field >= kFieldCount && values[10] >= -1 &&
      values[10] <= 4) {
    out.job_number = values[0];
    out.submit_time = values[1];
    out.wait_time = values[2];
    out.run_time = values[3];
    out.allocated_procs = values[4];
    out.avg_cpu_time = values[5];
    out.used_memory_kb = values[6];
    out.requested_procs = values[7];
    out.requested_time = values[8];
    out.requested_memory_kb = values[9];
    // values[10] is already range-checked to [-1, 4]; the cast is
    // status_from_code's in-range mapping without the call.
    out.status = static_cast<Status>(values[10]);
    out.user_id = values[11];
    out.group_id = values[12];
    out.executable_id = values[13];
    out.queue_id = values[14];
    out.partition_id = values[15];
    out.preceding_job = values[16];
    out.think_time = values[17];
    scan.kind = LineKind::kRecord;
    return scan;
  }
  // Slow path: the legacy grammar is the authority for every verdict
  // and every diagnostic message.
  std::string err = parse_record_line(trimmed, allow_extra, out);
  if (err.empty()) {
    scan.kind = LineKind::kRecord;
  } else {
    scan.kind = LineKind::kError;
    scan.error = std::move(err);
  }
  return scan;
}

FastReader::FastReader(const std::string& path,
                       const FastReaderOptions& options)
    : options_(options), label_("trace:" + path) {
  util::MmapFile file(path);
  if (!file.ok()) {
    open_failed_ = true;
    errors_.push_back({0, "cannot open file: " + path});
    error_count_ = 1;
    return;
  }
  parse(file.view());
}

FastReader::FastReader(std::string content, std::string label,
                       const FastReaderOptions& options)
    : options_(options), label_(std::move(label)) {
  parse(content);
}

void FastReader::parse(std::string_view buffer) {
  ParsedFile parsed = parse_swf_buffer(buffer, options_,
                                       options_.max_stored_errors,
                                       kMaxStoredComments);
  header_ = std::move(parsed.header);
  errors_ = std::move(parsed.errors);
  error_count_ = parsed.error_count;
  lines_ = parsed.lines;
  records_ = std::move(parsed.records);
  // The JobSource contract yields whole-job summaries only. Scan for
  // the first partial before compacting: the common all-summaries case
  // then costs one read pass and zero copies.
  std::size_t w = 0;
  while (w < records_.size() && records_[w].is_summary()) ++w;
  if (w < records_.size()) {
    for (std::size_t i = w; i < records_.size(); ++i) {
      if (records_[i].is_summary()) {
        records_[w++] = records_[i];
      } else {
        ++partials_skipped_;
      }
    }
    records_.resize(w);
  }
}

std::optional<JobRecord> FastReader::next() {
  if (next_pos_ >= records_.size()) return std::nullopt;
  ++records_returned_;
  return records_[next_pos_++];
}

ReadResult fast_read_swf_string(const std::string& text,
                                const FastReaderOptions& options) {
  constexpr auto kUnbounded = std::size_t(-1);
  ParsedFile parsed = parse_swf_buffer(text, options, kUnbounded, kUnbounded);
  ReadResult result;
  result.trace.header = std::move(parsed.header);
  result.trace.records = std::move(parsed.records);
  result.errors = std::move(parsed.errors);
  return result;
}

ReadResult fast_read_swf_file(const std::string& path,
                              const FastReaderOptions& options) {
  util::MmapFile file(path);
  if (!file.ok()) {
    ReadResult result;
    result.errors.push_back({0, "cannot open file: " + path});
    return result;
  }
  constexpr auto kUnbounded = std::size_t(-1);
  ParsedFile parsed =
      parse_swf_buffer(file.view(), options, kUnbounded, kUnbounded);
  ReadResult result;
  result.trace.header = std::move(parsed.header);
  result.trace.records = std::move(parsed.records);
  result.errors = std::move(parsed.errors);
  return result;
}

std::unique_ptr<TraceReader> open_trace_source(const std::string& path,
                                               const IngestOptions& options) {
  if (options.fast) {
    FastReaderOptions fast;
    fast.strict = options.strict;
    fast.allow_extra_fields = options.allow_extra_fields;
    fast.threads = options.threads;
    return std::make_unique<FastReader>(path, fast);
  }
  StreamReaderOptions stream;
  stream.strict = options.strict;
  stream.allow_extra_fields = options.allow_extra_fields;
  return std::make_unique<StreamReader>(path, stream);
}

}  // namespace pjsb::swf
