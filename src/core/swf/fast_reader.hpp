// FastReader: mmap-backed, chunk-parallel SWF ingestion.
//
// The trace file is mapped read-only (util::MmapFile; pipes fall back
// to a read() slurp), carved by memchr into newline-aligned chunks
// (util::split_line_chunks), and each chunk is parsed independently on
// a small thread pool with a branch-light in-place field scanner — no
// per-line string copy, no per-line token vector, no istringstream.
// Chunk results are reassembled in file order with prefix-summed line
// numbers, so diagnostics carry the same 1-based physical line numbers
// the sequential readers report.
//
// Conformance is by construction: the fast scanner only accepts lines
// made of plain decimal fields, and hands anything unusual (stray
// bytes, field-count or range problems, 19+ digit tokens) to the
// legacy parse_record_line, so accept/reject verdicts and error
// messages are byte-identical to Reader/StreamReader at every thread
// count and chunk size. The same scanner is the StreamReader backend,
// keeping the two paths one grammar.
//
// Trade-off vs StreamReader: parsing is eager (the whole file is
// parsed at construction and records are materialized), so memory is
// O(file) — use StreamReader when O(1) memory matters more than
// throughput.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/swf/job_source.hpp"
#include "core/swf/reader.hpp"
#include "core/swf/trace_reader.hpp"

namespace pjsb::swf {

/// What one physical line turned out to be.
enum class LineKind { kBlank, kComment, kRecord, kError };

struct LineScan {
  LineKind kind = LineKind::kBlank;
  /// kComment: body after the ';' (view into the input line).
  std::string_view comment;
  /// kError: diagnostic, byte-identical to parse_record_line's.
  std::string error;
};

/// Classify and parse one physical line (newline already stripped, not
/// yet trimmed). The common all-digits case is a single pass over the
/// bytes; anything else falls back to parse_record_line so the verdict
/// and message match the legacy readers exactly.
LineScan scan_swf_line(std::string_view raw, bool allow_extra,
                       JobRecord& out);

struct FastReaderOptions {
  /// Stop at the first malformed line instead of skipping it.
  bool strict = false;
  /// Accept lines with more than 18 fields by ignoring the excess.
  bool allow_extra_fields = false;
  /// Worker threads for chunk parsing; 1 parses inline (no pool).
  int threads = 1;
  /// Keep at most this many ParseErrors (the total count stays exact).
  std::size_t max_stored_errors = 64;
  /// Chunk-size override for boundary tests; 0 picks a size from the
  /// file size and thread count.
  std::size_t chunk_bytes = 0;
};

class FastReader final : public TraceReader {
 public:
  /// Map and parse a file. Failure to open is not a throw: the source
  /// is empty, ok() is false and errors() holds a line-0 diagnostic,
  /// mirroring StreamReader.
  explicit FastReader(const std::string& path,
                      const FastReaderOptions& options = {});
  /// Parse an owned buffer (tests, pipes already slurped).
  FastReader(std::string content, std::string label,
             const FastReaderOptions& options = {});

  std::optional<JobRecord> next() override;
  const TraceHeader& header() const override { return header_; }
  std::string label() const override { return label_; }

  // Diagnostics are complete at construction (parsing is eager), so
  // unlike StreamReader they do not grow as records are consumed; the
  // two agree once a StreamReader is drained.
  bool ok() const override { return !open_failed_ && error_count_ == 0; }
  bool open_failed() const override { return open_failed_; }
  const std::vector<ParseError>& errors() const override { return errors_; }
  std::size_t error_count() const override { return error_count_; }
  std::size_t records_returned() const override { return records_returned_; }
  std::size_t partials_skipped() const override { return partials_skipped_; }
  std::size_t lines_read() const override { return lines_; }

 private:
  void parse(std::string_view buffer);

  FastReaderOptions options_;
  std::string label_;
  TraceHeader header_;
  bool open_failed_ = false;
  std::vector<JobRecord> records_;  ///< summaries only, file order
  std::size_t next_pos_ = 0;
  std::vector<ParseError> errors_;
  std::size_t error_count_ = 0;
  std::size_t records_returned_ = 0;
  std::size_t partials_skipped_ = 0;
  std::size_t lines_ = 0;
};

/// Batch facades, drop-in equivalents of read_swf_string/read_swf_file:
/// all records (partials included), unbounded error storage.
ReadResult fast_read_swf_string(const std::string& text,
                                const FastReaderOptions& options = {});
ReadResult fast_read_swf_file(const std::string& path,
                              const FastReaderOptions& options = {});

/// Which ingestion backend a trace consumer should use; built from a
/// SimulationSpec's parser=/threads= keys by sim::ingest_options.
struct IngestOptions {
  /// false: constant-memory StreamReader; true: mmap'd FastReader.
  bool fast = false;
  /// FastReader worker threads (ignored for the streaming backend).
  int threads = 1;
  bool strict = false;
  bool allow_extra_fields = false;
};

/// Open `path` with the selected backend behind the common reader
/// surface. Never throws; check open_failed()/error_count().
std::unique_ptr<TraceReader> open_trace_source(
    const std::string& path, const IngestOptions& options = {});

}  // namespace pjsb::swf
