#include "core/swf/header.hpp"

#include "util/string_util.hpp"
#include "util/time_util.hpp"

namespace pjsb::swf {

namespace {

using pjsb::util::parse_i64;
using pjsb::util::to_lower;
using pjsb::util::trim;

std::string label_line(const std::string& label, const std::string& value) {
  return ";" + label + ": " + value;
}

}  // namespace

std::vector<std::string> TraceHeader::to_comment_lines() const {
  std::vector<std::string> lines;
  if (computer) lines.push_back(label_line("Computer", *computer));
  if (installation) lines.push_back(label_line("Installation", *installation));
  if (acknowledge) lines.push_back(label_line("Acknowledge", *acknowledge));
  if (information) lines.push_back(label_line("Information", *information));
  if (conversion) lines.push_back(label_line("Conversion", *conversion));
  lines.push_back(label_line("Version", std::to_string(version)));
  if (start_time) {
    lines.push_back(
        label_line("StartTime", util::format_swf_time(*start_time)));
  }
  if (end_time) {
    lines.push_back(label_line("EndTime", util::format_swf_time(*end_time)));
  }
  if (max_nodes) {
    lines.push_back(label_line("MaxNodes", std::to_string(*max_nodes)));
  }
  if (max_runtime) {
    lines.push_back(label_line("MaxRuntime", std::to_string(*max_runtime)));
  }
  if (max_memory_kb) {
    lines.push_back(label_line("MaxMemory", std::to_string(*max_memory_kb)));
  }
  if (allow_overuse) {
    lines.push_back(label_line("AllowOveruse", *allow_overuse ? "Yes" : "No"));
  }
  if (queues) lines.push_back(label_line("Queues", *queues));
  if (partitions) lines.push_back(label_line("Partitions", *partitions));
  for (const auto& note : notes) lines.push_back(label_line("Note", note));
  for (const auto& extra : extra_comments) lines.push_back(";" + extra);
  return lines;
}

bool absorb_header_line(TraceHeader& header, const std::string& comment_body) {
  const auto colon = comment_body.find(':');
  if (colon == std::string::npos) {
    header.extra_comments.push_back(comment_body);
    return false;
  }
  const std::string label = to_lower(trim(comment_body.substr(0, colon)));
  const std::string value{trim(comment_body.substr(colon + 1))};

  if (label == "computer") {
    header.computer = value;
  } else if (label == "installation") {
    header.installation = value;
  } else if (label == "acknowledge") {
    header.acknowledge = value;
  } else if (label == "information") {
    header.information = value;
  } else if (label == "conversion") {
    header.conversion = value;
  } else if (label == "version") {
    if (auto v = parse_i64(value)) header.version = int(*v);
  } else if (label == "starttime") {
    if (auto t = util::parse_swf_time(value)) header.start_time = *t;
  } else if (label == "endtime") {
    if (auto t = util::parse_swf_time(value)) header.end_time = *t;
  } else if (label == "maxnodes") {
    // The standard allows "128 (4x32)" style values describing
    // partitions in parentheses; take the leading integer.
    const auto tokens = util::split_ws(value);
    if (!tokens.empty()) {
      if (auto v = parse_i64(tokens.front())) header.max_nodes = *v;
    }
  } else if (label == "maxruntime") {
    if (auto v = parse_i64(value)) header.max_runtime = *v;
  } else if (label == "maxmemory") {
    if (auto v = parse_i64(value)) header.max_memory_kb = *v;
  } else if (label == "allowoveruse") {
    const std::string lv = to_lower(value);
    if (lv == "yes" || lv == "true" || lv == "1") {
      header.allow_overuse = true;
    } else if (lv == "no" || lv == "false" || lv == "0") {
      header.allow_overuse = false;
    }
  } else if (label == "queues") {
    header.queues = value;
  } else if (label == "partitions") {
    header.partitions = value;
  } else if (label == "note") {
    header.notes.push_back(value);
  } else {
    header.extra_comments.push_back(comment_body);
    return false;
  }
  return true;
}

}  // namespace pjsb::swf
