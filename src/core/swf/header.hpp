// SWF header comments ("Header Comments", paper section 2.3).
//
// The first lines of a trace may be `;Label: Value` comments defining
// global aspects of the workload. All labels from the standard are
// supported; unknown labels and free-form comments are preserved
// verbatim so that converting a trace is lossless.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pjsb::swf {

/// Parsed header block. Optional fields are absent when the trace does
/// not carry them (every one is optional in practice; Version defaults
/// to 2, the version this paper defines).
struct TraceHeader {
  std::optional<std::string> computer;      ///< Computer: brand and model
  std::optional<std::string> installation;  ///< Installation: site name
  std::optional<std::string> acknowledge;   ///< Acknowledge: person(s)
  std::optional<std::string> information;   ///< Information: web/email
  std::optional<std::string> conversion;    ///< Conversion: who converted
  int version = 2;                          ///< Version: standard version
  std::optional<std::int64_t> start_time;   ///< StartTime (unix seconds)
  std::optional<std::int64_t> end_time;     ///< EndTime (unix seconds)
  std::optional<std::int64_t> max_nodes;    ///< MaxNodes: machine size
  std::optional<std::int64_t> max_runtime;  ///< MaxRuntime: seconds
  std::optional<std::int64_t> max_memory_kb;  ///< MaxMemory: kilobytes
  std::optional<bool> allow_overuse;          ///< AllowOveruse: Yes/No
  std::optional<std::string> queues;          ///< Queues: description
  std::optional<std::string> partitions;      ///< Partitions: description
  std::vector<std::string> notes;             ///< Note: may repeat
  /// Header comment lines that are not `;Label: Value` pairs, or carry
  /// labels outside the standard; preserved in order.
  std::vector<std::string> extra_comments;

  bool operator==(const TraceHeader&) const = default;

  /// Render as `;Label: Value` lines in the standard's order.
  std::vector<std::string> to_comment_lines() const;
};

/// Consume one comment line (without the leading ';'). Returns true if
/// the line was a recognized header label and absorbed into `header`;
/// otherwise records it in extra_comments and returns false.
bool absorb_header_line(TraceHeader& header, const std::string& comment_body);

}  // namespace pjsb::swf
