#include "core/swf/job_source.hpp"

namespace pjsb::swf {

std::optional<JobRecord> TraceSource::next() {
  while (index_ < trace_->records.size()) {
    const JobRecord& r = trace_->records[index_++];
    if (r.is_summary()) return r;
  }
  return std::nullopt;
}

}  // namespace pjsb::swf
