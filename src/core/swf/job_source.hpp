// JobSource: the pull-based ingestion abstraction.
//
// Everything that can feed jobs into the simulator — an in-memory
// trace, a multi-GB SWF log streamed from disk, an unbounded synthetic
// model stream — implements this one interface: a time-ordered sequence
// of whole-job summary records, delivered one at a time. Consumers
// (sim::Engine, sim::replay, exp campaigns) never see more than their
// lookahead window, so trace size stops being the memory ceiling.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "core/swf/header.hpp"
#include "core/swf/record.hpp"
#include "core/swf/trace.hpp"

namespace pjsb::swf {

/// A pull-based, time-ordered stream of whole-job summary records
/// (status -1/0/1 — "for workload studies, only the single-line summary
/// of the job should be used"). Implementations must deliver records in
/// ascending submit order, as the SWF standard requires of files; the
/// engine clamps (and counts) any violation rather than crashing.
class JobSource {
 public:
  virtual ~JobSource() = default;

  /// The next summary record, or nullopt when the source is exhausted.
  /// An unbounded source never returns nullopt — consumers bound the
  /// pull themselves (sim::JobSourceOptions::max_jobs).
  virtual std::optional<JobRecord> next() = 0;

  /// Header metadata. Complete from construction for every built-in
  /// source (the streaming reader parses the header block eagerly).
  virtual const TraceHeader& header() const = 0;

  /// Human-readable origin for diagnostics ("trace:logs/kth.swf",
  /// "model:lublin99", ...).
  virtual std::string label() const = 0;
};

/// Adapter exposing an in-memory Trace as a JobSource. Non-owning: the
/// trace must outlive the source (sim::replay drains it synchronously).
/// Skips non-summary (checkpoint/partial) lines, like the engine always
/// has.
class TraceSource final : public JobSource {
 public:
  explicit TraceSource(const Trace& trace) : trace_(&trace) {}

  std::optional<JobRecord> next() override;
  const TraceHeader& header() const override { return trace_->header; }
  std::string label() const override { return "trace:<memory>"; }

  /// Rewind to the first record (a trace can be replayed many times).
  void reset() { index_ = 0; }

 private:
  const Trace* trace_;
  std::size_t index_ = 0;
};

}  // namespace pjsb::swf
