#include "core/swf/reader.hpp"

#include <fstream>
#include <istream>
#include <sstream>

#include "util/string_util.hpp"

namespace pjsb::swf {

using pjsb::util::parse_i64;
using pjsb::util::split_ws;
using pjsb::util::trim;

std::string parse_record_line(std::string_view line, bool allow_extra,
                              JobRecord& out) {
  const auto tokens = split_ws(line);
  if (tokens.size() < std::size_t(kFieldCount)) {
    return "expected " + std::to_string(kFieldCount) + " fields, got " +
           std::to_string(tokens.size());
  }
  if (tokens.size() > std::size_t(kFieldCount) && !allow_extra) {
    return "expected " + std::to_string(kFieldCount) + " fields, got " +
           std::to_string(tokens.size());
  }
  std::int64_t values[kFieldCount];
  for (int i = 0; i < kFieldCount; ++i) {
    const auto v = parse_i64(tokens[std::size_t(i)]);
    if (!v) {
      return "field " + std::to_string(i + 1) + " is not an integer: '" +
             std::string(tokens[std::size_t(i)]) + "'";
    }
    values[i] = *v;
  }
  out.job_number = values[0];
  out.submit_time = values[1];
  out.wait_time = values[2];
  out.run_time = values[3];
  out.allocated_procs = values[4];
  out.avg_cpu_time = values[5];
  out.used_memory_kb = values[6];
  out.requested_procs = values[7];
  out.requested_time = values[8];
  out.requested_memory_kb = values[9];
  if (values[10] < -1 || values[10] > 4) {
    return "field 11 (status) out of range: " + std::to_string(values[10]);
  }
  out.status = status_from_code(values[10]);
  out.user_id = values[11];
  out.group_id = values[12];
  out.executable_id = values[13];
  out.queue_id = values[14];
  out.partition_id = values[15];
  out.preceding_job = values[16];
  out.think_time = values[17];
  return {};
}

ReadResult read_swf(std::istream& in, const ReaderOptions& options) {
  ReadResult result;
  std::string line;
  std::size_t line_no = 0;
  bool in_header = true;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == ';') {
      const std::string body{trimmed.substr(1)};
      if (in_header) {
        absorb_header_line(result.trace.header, body);
      } else {
        // Comments after the first record are preserved but cannot be
        // header directives per the standard ("the beginning of every
        // file contains several such lines").
        result.trace.header.extra_comments.push_back(body);
      }
      continue;
    }
    in_header = false;
    JobRecord record;
    const std::string err =
        parse_record_line(trimmed, options.allow_extra_fields, record);
    if (!err.empty()) {
      result.errors.push_back({line_no, err});
      if (options.strict) return result;
      continue;
    }
    result.trace.records.push_back(record);
  }
  return result;
}

ReadResult read_swf_string(const std::string& text,
                           const ReaderOptions& options) {
  std::istringstream is(text);
  return read_swf(is, options);
}

ReadResult read_swf_file(const std::string& path,
                         const ReaderOptions& options) {
  std::ifstream in(path);
  if (!in) {
    ReadResult r;
    r.errors.push_back({0, "cannot open file: " + path});
    return r;
  }
  return read_swf(in, options);
}

}  // namespace pjsb::swf
