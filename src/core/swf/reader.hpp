// SWF reader. "The file format is easy to parse and use: while it is a
// text file ... all data is in integers" — the reader enforces exactly
// that, producing a diagnostic (not a crash, not a silent coercion) for
// every malformed line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/swf/trace.hpp"

namespace pjsb::swf {

/// A parse-level problem, attributed to a physical line.
struct ParseError {
  std::size_t line = 0;       ///< 1-based physical line number
  std::string message;

  bool operator==(const ParseError&) const = default;
};

/// Result of reading a stream: the trace, plus any lines that could not
/// be parsed. In strict mode parsing stops at the first error.
struct ReadResult {
  Trace trace;
  std::vector<ParseError> errors;
  bool ok() const { return errors.empty(); }
};

struct ReaderOptions {
  /// Stop at the first malformed line instead of skipping it.
  bool strict = false;
  /// Accept lines with more than 18 fields by ignoring the excess
  /// (some archive tools append annotations). Lines with fewer than 18
  /// fields are always errors.
  bool allow_extra_fields = false;
};

/// Parse one 18-field record line (no comments, already trimmed).
/// Returns an error message, or an empty string on success. Shared by
/// the in-memory reader and the streaming reader so both enforce the
/// exact same grammar.
std::string parse_record_line(std::string_view line, bool allow_extra,
                              JobRecord& out);

/// Parse an SWF stream.
ReadResult read_swf(std::istream& in, const ReaderOptions& options = {});

/// Parse an SWF string (convenience for tests and converters).
ReadResult read_swf_string(const std::string& text,
                           const ReaderOptions& options = {});

/// Parse a file from disk; adds a synthetic error if it cannot be opened.
ReadResult read_swf_file(const std::string& path,
                         const ReaderOptions& options = {});

}  // namespace pjsb::swf
