#include "core/swf/record.hpp"

#include <charconv>

namespace pjsb::swf {

namespace {

void append_i64(std::string& out, std::int64_t v) {
  char buf[20];  // int64 min is 20 chars ("-9223372036854775808")
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

}  // namespace

bool is_summary_status(Status s) {
  return s == Status::kUnknown || s == Status::kKilled ||
         s == Status::kCompleted;
}

bool is_partial_status(Status s) {
  return s == Status::kPartial || s == Status::kPartialLastOk ||
         s == Status::kPartialLastKilled;
}

std::int64_t status_code(Status s) { return static_cast<std::int64_t>(s); }

Status status_from_code(std::int64_t code) {
  switch (code) {
    case -1: return Status::kUnknown;
    case 0: return Status::kKilled;
    case 1: return Status::kCompleted;
    case 2: return Status::kPartial;
    case 3: return Status::kPartialLastOk;
    case 4: return Status::kPartialLastKilled;
    default: return Status::kUnknown;
  }
}

std::int64_t JobRecord::start_time() const {
  if (submit_time == kUnknown || wait_time == kUnknown) return kUnknown;
  return submit_time + wait_time;
}

std::int64_t JobRecord::end_time() const {
  const std::int64_t start = start_time();
  if (start == kUnknown || run_time == kUnknown) return kUnknown;
  return start + run_time;
}

void JobRecord::append_line(std::string& out) const {
  const std::int64_t fields[kFieldCount] = {
      job_number,     submit_time,        wait_time,
      run_time,       allocated_procs,    avg_cpu_time,
      used_memory_kb, requested_procs,    requested_time,
      requested_memory_kb, status_code(status), user_id,
      group_id,       executable_id,      queue_id,
      partition_id,   preceding_job,      think_time};
  append_i64(out, fields[0]);
  for (int i = 1; i < kFieldCount; ++i) {
    out.push_back(' ');
    append_i64(out, fields[i]);
  }
}

std::string JobRecord::to_line() const {
  std::string out;
  out.reserve(64);
  append_line(out);
  return out;
}

}  // namespace pjsb::swf
