// The Standard Workload Format (SWF) version 2 job record — the paper's
// primary artifact (section 2.3, "The data fields").
//
// One record per line, 18 space-separated integer fields, in this order:
//   1 job number          2 submit time         3 wait time
//   4 run time            5 allocated procs     6 avg cpu time
//   7 used memory (KB)    8 requested procs     9 requested time
//  10 requested mem (KB) 11 status             12 user id
//  13 group id           14 executable id      15 queue id
//  16 partition id       17 preceding job      18 think time
//
// Missing values are -1 ("unknown values are part of the standard").
// Times are in seconds relative to the trace start; memory is KB per
// processor; user/group/executable/queue/partition ids are incremental
// natural numbers assigned by the anonymizer.
#pragma once

#include <cstdint>
#include <string>

namespace pjsb::swf {

/// Completion/status codes (field 11). Codes 2-4 implement the standard's
/// multi-line encoding for checkpointed/swapped jobs: a summary line
/// (code 0/1) followed by one line per partial execution, where the last
/// partial carries 3 (completed) or 4 (killed).
enum class Status : std::int64_t {
  kUnknown = -1,       ///< models, or logs without completion info
  kKilled = 0,         ///< whole job was killed / cancelled
  kCompleted = 1,      ///< whole job completed normally
  kPartial = 2,        ///< partial execution, "to be continued"
  kPartialLastOk = 3,  ///< last partial execution; job completed
  kPartialLastKilled = 4,  ///< last partial execution; job killed
};

/// Sentinel for "field not present in this log / not meaningful".
inline constexpr std::int64_t kUnknown = -1;

/// Number of fields in an SWF v2 record line.
inline constexpr int kFieldCount = 18;

/// True for codes that summarize a whole job (what workload studies use).
bool is_summary_status(Status s);
/// True for the multi-line partial-execution codes (2, 3, 4).
bool is_partial_status(Status s);
/// Render the status as its integer code.
std::int64_t status_code(Status s);
/// Parse an integer code (-1..4); anything else returns kUnknown and the
/// validator flags it.
Status status_from_code(std::int64_t code);

/// A single SWF record line. All fields are int64 seconds / counts / KB,
/// -1 where unknown, exactly as the standard prescribes.
struct JobRecord {
  std::int64_t job_number = kUnknown;   ///< field 1; 1-based line counter
  std::int64_t submit_time = kUnknown;  ///< field 2; seconds from trace start
  std::int64_t wait_time = kUnknown;    ///< field 3; start - submit
  std::int64_t run_time = kUnknown;     ///< field 4; wall-clock end - start
  std::int64_t allocated_procs = kUnknown;  ///< field 5
  std::int64_t avg_cpu_time = kUnknown;     ///< field 6; per-processor avg
  std::int64_t used_memory_kb = kUnknown;   ///< field 7; per-processor avg
  std::int64_t requested_procs = kUnknown;  ///< field 8
  std::int64_t requested_time = kUnknown;   ///< field 9; wallclock or avg cpu
  std::int64_t requested_memory_kb = kUnknown;  ///< field 10
  Status status = Status::kUnknown;             ///< field 11
  std::int64_t user_id = kUnknown;       ///< field 12; 1..#users
  std::int64_t group_id = kUnknown;      ///< field 13; 1..#groups
  std::int64_t executable_id = kUnknown; ///< field 14; 1..#apps
  std::int64_t queue_id = kUnknown;      ///< field 15; 0 = interactive
  std::int64_t partition_id = kUnknown;  ///< field 16
  std::int64_t preceding_job = kUnknown; ///< field 17; feedback dependency
  std::int64_t think_time = kUnknown;    ///< field 18; seconds after pred.

  bool operator==(const JobRecord&) const = default;

  /// Start time (submit + wait) or kUnknown if either part is unknown.
  std::int64_t start_time() const;
  /// End time (submit + wait + run) or kUnknown.
  std::int64_t end_time() const;
  /// Whether this line is a whole-job summary (status -1, 0 or 1).
  bool is_summary() const { return is_summary_status(status); }

  /// Append one SWF line (18 space-separated integers, no newline) to
  /// `out`. std::to_chars into the caller's buffer — the allocation-
  /// free emitter write_swf streams through.
  void append_line(std::string& out) const;
  /// Serialize as one SWF line (convenience over append_line).
  std::string to_line() const;
};

}  // namespace pjsb::swf
