#include "core/swf/stream_reader.hpp"

#include <cstring>
#include <fstream>

#include "core/swf/fast_reader.hpp"
#include "util/string_util.hpp"

namespace pjsb::swf {

namespace {

/// Comments kept after the header block before we start counting only.
constexpr std::size_t kMaxStoredComments = 256;

}  // namespace

StreamReader::StreamReader(const std::string& path,
                           const StreamReaderOptions& options)
    : options_(options), label_("trace:" + path) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*file) {
    open_failed_ = true;
    errors_.push_back({0, "cannot open file: " + path});
    error_count_ = 1;
    input_done_ = true;
    exhausted_ = true;
    return;
  }
  owned_in_ = std::move(file);
  in_ = owned_in_.get();
  read_header();
  if (options_.prefetch) start_prefetch();
}

StreamReader::StreamReader(std::unique_ptr<std::istream> in, std::string label,
                           const StreamReaderOptions& options)
    : options_(options), owned_in_(std::move(in)), label_(std::move(label)) {
  if (!owned_in_) {
    open_failed_ = true;
    errors_.push_back({0, "null input stream"});
    error_count_ = 1;
    input_done_ = true;
    exhausted_ = true;
    return;
  }
  in_ = owned_in_.get();
  read_header();
  if (options_.prefetch) start_prefetch();
}

StreamReader::~StreamReader() {
  if (producer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    can_produce_.notify_all();
    producer_.join();
  }
}

bool StreamReader::next_line(std::string_view& line) {
  carry_.clear();
  for (;;) {
    if (chunk_pos_ < chunk_.size()) {
      const char* base = chunk_.data();
      const void* nl = std::memchr(base + chunk_pos_, '\n',
                                   chunk_.size() - chunk_pos_);
      if (nl) {
        const auto end = std::size_t(static_cast<const char*>(nl) - base);
        if (carry_.empty()) {
          // Common case: the whole line sits in the current chunk —
          // hand out a view, no copy.
          line = std::string_view(base + chunk_pos_, end - chunk_pos_);
        } else {
          carry_.append(base + chunk_pos_, end - chunk_pos_);
          line = carry_;
        }
        chunk_pos_ = end + 1;
        return true;
      }
      carry_.append(base + chunk_pos_, chunk_.size() - chunk_pos_);
      chunk_pos_ = chunk_.size();
    }
    if (input_done_) {  // truncated final line
      line = carry_;
      return !carry_.empty();
    }
    chunk_.resize(options_.chunk_bytes);
    in_->read(chunk_.data(), std::streamsize(options_.chunk_bytes));
    chunk_.resize(std::size_t(in_->gcount()));
    chunk_pos_ = 0;
    if (chunk_.empty()) {
      input_done_ = true;
      line = carry_;
      return !carry_.empty();
    }
  }
}

void StreamReader::read_header() {
  // The header block is every `;` comment before the first non-comment
  // line ("the beginning of every file contains several such lines").
  // The first data line is stashed for parse_next to re-consume.
  std::string_view line;
  while (next_line(line)) {
    ++producer_line_no_;
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == ';') {
      absorb_header_line(header_, std::string(trimmed.substr(1)));
      continue;
    }
    --producer_line_no_;  // parse_next re-counts the stashed line
    pending_first_line_.assign(line);
    has_pending_first_line_ = true;
    break;
  }
  line_no_ = producer_line_no_;  // header lines are already consumed
}

std::optional<JobRecord> StreamReader::parse_next(Batch& sink) {
  if (stop_parsing_) return std::nullopt;
  for (;;) {
    std::string_view line;
    if (has_pending_first_line_) {
      line = pending_first_line_;
      has_pending_first_line_ = false;
    } else if (!next_line(line)) {
      return std::nullopt;
    }
    ++producer_line_no_;
    ++sink.lines;
    JobRecord record;
    LineScan scan =
        scan_swf_line(line, options_.allow_extra_fields, record);
    switch (scan.kind) {
      case LineKind::kBlank:
        continue;
      case LineKind::kComment:
        sink.comments.emplace_back(scan.comment);
        continue;
      case LineKind::kError:
        sink.errors.push_back({producer_line_no_, std::move(scan.error)});
        if (options_.strict) {
          stop_parsing_ = true;
          return std::nullopt;
        }
        continue;
      case LineKind::kRecord:
        if (!record.is_summary()) {
          ++sink.partials;
          continue;
        }
        return record;
    }
  }
}

void StreamReader::absorb(Batch& batch) {
  for (auto& e : batch.errors) {
    if (errors_.size() < options_.max_stored_errors) {
      errors_.push_back(std::move(e));
    }
  }
  error_count_ += batch.errors.size();
  partials_skipped_ += batch.partials;
  line_no_ += batch.lines;
  for (auto& c : batch.comments) {
    if (comments_stored_ < kMaxStoredComments) {
      header_.extra_comments.push_back(std::move(c));
      ++comments_stored_;
    }
  }
  batch.errors.clear();
  batch.comments.clear();
  batch.partials = 0;
  batch.lines = 0;
}

void StreamReader::start_prefetch() {
  producer_ = std::thread([this] {
    for (;;) {
      Batch batch;
      batch.records.reserve(options_.prefetch_batch);
      while (batch.records.size() < options_.prefetch_batch) {
        auto rec = parse_next(batch);
        if (!rec) {
          batch.last = true;
          break;
        }
        batch.records.push_back(*rec);
      }
      std::unique_lock<std::mutex> lock(mutex_);
      can_produce_.wait(lock, [this] {
        return shutdown_ || queue_.size() < options_.prefetch_depth;
      });
      if (shutdown_) return;
      const bool last = batch.last;
      queue_.push_back(std::move(batch));
      lock.unlock();
      can_consume_.notify_one();
      if (last) return;
    }
  });
}

std::optional<JobRecord> StreamReader::next() {
  if (exhausted_) return std::nullopt;

  if (!options_.prefetch) {
    auto rec = parse_next(sync_batch_);
    absorb(sync_batch_);
    if (!rec) {
      exhausted_ = true;
      return std::nullopt;
    }
    ++records_returned_;
    return rec;
  }

  while (current_pos_ >= current_.records.size()) {
    if (current_.last) {
      exhausted_ = true;
      return std::nullopt;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    can_consume_.wait(lock, [this] { return !queue_.empty(); });
    current_ = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    can_produce_.notify_one();
    current_pos_ = 0;
    absorb(current_);
  }
  ++records_returned_;
  return current_.records[current_pos_++];
}

}  // namespace pjsb::swf
