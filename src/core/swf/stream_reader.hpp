// StreamReader: constant-memory, single-pass SWF ingestion.
//
// The in-memory reader (reader.hpp) materializes the whole trace before
// anything can run, so trace size — not simulator speed — becomes the
// scale ceiling. StreamReader parses the same grammar (it shares
// parse_record_line with read_swf) but holds only one I/O chunk and one
// record at a time, so a multi-GB archive log replays in O(1) memory.
//
// Layout handled:
//   * header comment block (`;Label: Value`), parsed eagerly at
//     construction so header() is complete before the first next();
//   * comments after the first record (preserved, bounded);
//   * checkpoint/partial lines (status 2-4), skipped with a counter —
//     JobSource yields whole-job summaries only;
//   * malformed lines: recorded with their 1-based physical line number
//     (bounded storage, exact total count) and skipped, or fatal in
//     strict mode;
//   * a truncated final line (no trailing newline) still parses.
//
// With `prefetch = true` a background thread reads and parses ahead,
// handing batches of records across a bounded queue — I/O and parsing
// overlap simulation. Error/comment accounting then reflects the
// records consumed so far and is complete once next() returns nullopt.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/swf/job_source.hpp"
#include "core/swf/reader.hpp"
#include "core/swf/trace_reader.hpp"

namespace pjsb::swf {

struct StreamReaderOptions {
  /// Stop at the first malformed line instead of skipping it.
  bool strict = false;
  /// Accept lines with more than 18 fields by ignoring the excess.
  bool allow_extra_fields = false;
  /// I/O chunk size; the only O(bytes) allocation the reader makes.
  std::size_t chunk_bytes = std::size_t(1) << 20;
  /// Keep at most this many ParseErrors (the total count stays exact).
  std::size_t max_stored_errors = 64;
  /// Parse ahead on a background thread.
  bool prefetch = false;
  /// Records per prefetch batch and max batches in flight; the memory
  /// bound in prefetch mode is chunk_bytes + batch * (depth + 2) records.
  std::size_t prefetch_batch = 1024;
  std::size_t prefetch_depth = 4;
};

class StreamReader final : public TraceReader {
 public:
  /// Open a file. Failure to open is not a throw: the source is empty,
  /// ok() is false and errors() holds a line-0 diagnostic, mirroring
  /// read_swf_file.
  explicit StreamReader(const std::string& path,
                        const StreamReaderOptions& options = {});
  /// Read from an owned stream (tests, pipes).
  StreamReader(std::unique_ptr<std::istream> in, std::string label,
               const StreamReaderOptions& options = {});
  ~StreamReader() override;

  StreamReader(const StreamReader&) = delete;
  StreamReader& operator=(const StreamReader&) = delete;

  std::optional<JobRecord> next() override;
  const TraceHeader& header() const override { return header_; }
  std::string label() const override { return label_; }

  /// True while the stream opened and no parse error has surfaced.
  bool ok() const override { return !open_failed_ && error_count_ == 0; }
  bool open_failed() const override { return open_failed_; }
  /// First max_stored_errors diagnostics, in line order.
  const std::vector<ParseError>& errors() const override { return errors_; }
  /// Exact total, including diagnostics beyond the storage bound.
  std::size_t error_count() const override { return error_count_; }
  std::size_t records_returned() const override { return records_returned_; }
  /// Checkpoint/partial (status 2-4) lines skipped.
  std::size_t partials_skipped() const override { return partials_skipped_; }
  /// Physical lines consumed so far.
  std::size_t lines_read() const override { return line_no_; }

 private:
  /// One parsed unit handed from the producer side to the consumer.
  struct Batch {
    std::vector<JobRecord> records;
    std::vector<ParseError> errors;
    std::vector<std::string> comments;  ///< post-record comments
    std::size_t partials = 0;
    std::size_t lines = 0;
    bool last = false;
  };

  /// Read one physical line (without its newline) from the chunked
  /// stream. The view points into chunk_ (or carry_ when the line
  /// spans a chunk refill) and is valid until the next call. Returns
  /// false at end of input.
  bool next_line(std::string_view& line);
  /// Synchronously parse until one summary record is found; accounting
  /// goes into `sink`. Returns nullopt at end of input (or after an
  /// error in strict mode).
  std::optional<JobRecord> parse_next(Batch& sink);
  void absorb(Batch& batch);
  void start_prefetch();
  void read_header();

  StreamReaderOptions options_;
  std::unique_ptr<std::istream> owned_in_;
  std::istream* in_ = nullptr;
  std::string label_;
  TraceHeader header_;
  bool open_failed_ = false;

  // Chunked line scanning (producer side once prefetching).
  std::string chunk_;
  std::string carry_;  ///< spill for lines that span a chunk refill
  std::size_t chunk_pos_ = 0;
  bool input_done_ = false;
  std::size_t producer_line_no_ = 0;
  bool stop_parsing_ = false;  ///< strict mode tripped
  /// First data line, found while reading the header block.
  std::string pending_first_line_;
  bool has_pending_first_line_ = false;

  // Consumer-side accounting.
  std::vector<ParseError> errors_;
  std::size_t error_count_ = 0;
  std::size_t records_returned_ = 0;
  std::size_t partials_skipped_ = 0;
  std::size_t line_no_ = 0;
  std::size_t comments_stored_ = 0;

  // Synchronous mode: records flow straight through sync_batch_.
  Batch sync_batch_;

  // Prefetch mode.
  std::thread producer_;
  std::mutex mutex_;
  std::condition_variable can_produce_;
  std::condition_variable can_consume_;
  std::deque<Batch> queue_;
  bool producer_done_ = false;
  bool shutdown_ = false;
  Batch current_;
  std::size_t current_pos_ = 0;
  bool exhausted_ = false;
};

}  // namespace pjsb::swf
