#include "core/swf/trace.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace pjsb::swf {

namespace {

bool is_power_of_two(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

std::vector<JobRecord> Trace::summary_records() const {
  std::vector<JobRecord> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    if (r.is_summary()) out.push_back(r);
  }
  return out;
}

std::map<std::int64_t, std::vector<JobRecord>> Trace::partial_records() const {
  std::map<std::int64_t, std::vector<JobRecord>> out;
  for (const auto& r : records) {
    if (is_partial_status(r.status)) out[r.job_number].push_back(r);
  }
  return out;
}

void Trace::sort_by_submit() {
  std::stable_sort(records.begin(), records.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     if (a.submit_time != b.submit_time) {
                       // Unknown submit times (partial lines) stay put
                       // relative to their job number ordering.
                       if (a.submit_time == kUnknown) return false;
                       if (b.submit_time == kUnknown) return true;
                       return a.submit_time < b.submit_time;
                     }
                     return a.job_number < b.job_number;
                   });
}

void Trace::renumber() {
  std::unordered_map<std::int64_t, std::int64_t> remap;
  std::int64_t next = 1;
  for (auto& r : records) {
    // Partial lines share the job number of their summary line; only
    // assign a new number the first time we see each old number.
    auto [it, inserted] = remap.try_emplace(r.job_number, next);
    if (inserted) ++next;
    r.job_number = it->second;
  }
  for (auto& r : records) {
    if (r.preceding_job == kUnknown) continue;
    auto it = remap.find(r.preceding_job);
    if (it != remap.end() && it->second < r.job_number) {
      r.preceding_job = it->second;
    } else {
      r.preceding_job = kUnknown;
      r.think_time = kUnknown;
    }
  }
}

TraceStats Trace::stats() const {
  TraceStats s;
  const auto jobs = summary_records();
  s.jobs = jobs.size();
  if (jobs.empty()) return s;

  std::set<std::int64_t> users, groups, apps;
  double sum_procs = 0.0, sum_runtime = 0.0;
  std::size_t n_procs = 0, n_runtime = 0, n_pow2 = 0, n_serial = 0;
  double area = 0.0;
  std::int64_t first_submit = jobs.front().submit_time;
  std::int64_t last_end = 0;
  std::int64_t prev_submit = kUnknown;
  double sum_inter = 0.0;
  std::size_t n_inter = 0;

  for (const auto& r : jobs) {
    if (r.user_id != kUnknown) users.insert(r.user_id);
    if (r.group_id != kUnknown) groups.insert(r.group_id);
    if (r.executable_id != kUnknown) apps.insert(r.executable_id);
    if (r.allocated_procs != kUnknown) {
      sum_procs += double(r.allocated_procs);
      ++n_procs;
      if (is_power_of_two(r.allocated_procs)) ++n_pow2;
      if (r.allocated_procs == 1) ++n_serial;
    }
    if (r.run_time != kUnknown) {
      sum_runtime += double(r.run_time);
      ++n_runtime;
    }
    if (r.run_time != kUnknown && r.allocated_procs != kUnknown) {
      area += double(r.run_time) * double(r.allocated_procs);
    }
    if (r.submit_time != kUnknown) {
      if (prev_submit != kUnknown) {
        sum_inter += double(r.submit_time - prev_submit);
        ++n_inter;
      }
      prev_submit = r.submit_time;
      first_submit = std::min(first_submit, r.submit_time);
    }
    if (r.submit_time != kUnknown && r.run_time != kUnknown) {
      // Unknown wait counts as zero (synthetic traces have no waits).
      const std::int64_t wait = r.wait_time == kUnknown ? 0 : r.wait_time;
      last_end = std::max(last_end, r.submit_time + wait + r.run_time);
    }
  }

  s.users = users.size();
  s.groups = groups.size();
  s.executables = apps.size();
  s.span_seconds = std::max<std::int64_t>(0, last_end - first_submit);
  s.mean_procs = n_procs ? sum_procs / double(n_procs) : 0.0;
  s.mean_runtime = n_runtime ? sum_runtime / double(n_runtime) : 0.0;
  s.mean_interarrival = n_inter ? sum_inter / double(n_inter) : 0.0;
  s.fraction_power_of_two = n_procs ? double(n_pow2) / double(n_procs) : 0.0;
  s.fraction_serial = n_procs ? double(n_serial) / double(n_procs) : 0.0;
  if (header.max_nodes && *header.max_nodes > 0 && s.span_seconds > 0) {
    s.offered_load =
        area / (double(*header.max_nodes) * double(s.span_seconds));
  }
  for (const auto& r : jobs) {
    if (r.preceding_job != kUnknown) ++s.with_dependencies;
  }
  return s;
}

std::int64_t Trace::horizon() const {
  std::int64_t h = 0;
  for (const auto& r : records) {
    if (!r.is_summary()) continue;
    if (r.submit_time == kUnknown || r.run_time == kUnknown) continue;
    // Models carry no wait times; treat unknown wait as zero so the
    // horizon is still meaningful for synthetic traces.
    const std::int64_t wait = r.wait_time == kUnknown ? 0 : r.wait_time;
    h = std::max(h, r.submit_time + wait + r.run_time);
  }
  return h;
}

}  // namespace pjsb::swf
