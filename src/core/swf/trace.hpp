// Trace: an in-memory SWF workload (header + records) plus the
// derived views and statistics the evaluation stack needs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/swf/header.hpp"
#include "core/swf/record.hpp"

namespace pjsb::swf {

/// Aggregate statistics of a trace, as used by the model-comparison
/// experiments and the `swf_tool stats` subcommand.
struct TraceStats {
  std::size_t jobs = 0;          ///< summary records only
  std::size_t users = 0;
  std::size_t groups = 0;
  std::size_t executables = 0;
  std::int64_t span_seconds = 0;  ///< last end - first submit
  double mean_procs = 0.0;
  double mean_runtime = 0.0;
  double mean_interarrival = 0.0;
  double fraction_power_of_two = 0.0;  ///< jobs whose size is a power of 2
  double fraction_serial = 0.0;        ///< jobs with one processor
  /// Offered load: sum(procs*runtime) / (max_nodes * span). 0 when the
  /// trace has no MaxNodes header or zero span.
  double offered_load = 0.0;
  std::size_t with_dependencies = 0;   ///< records with field 17 set
};

/// An SWF workload. Records are kept in file order (ascending submit
/// time per the standard); helpers provide the summary-only view that
/// workload studies must use (status -1/0/1) and checkpoint detail lines.
struct Trace {
  TraceHeader header;
  std::vector<JobRecord> records;

  /// Records that summarize whole jobs (status -1, 0 or 1). Per the
  /// standard: "For workload studies, only the single-line summary of
  /// the job should be used".
  std::vector<JobRecord> summary_records() const;

  /// Partial-execution lines (status 2, 3, 4) grouped by job number.
  std::map<std::int64_t, std::vector<JobRecord>> partial_records() const;

  /// Sort records by (submit, job number) — the standard requires
  /// ascending submit order.
  void sort_by_submit();

  /// Reassign job numbers 1..N in current record order, remapping
  /// preceding-job references accordingly. Records whose predecessor is
  /// dropped lose their dependency (fields 17/18 reset to -1).
  void renumber();

  /// Compute aggregate statistics (summary records only).
  TraceStats stats() const;

  /// Max end time over summary records (trace-relative seconds).
  /// Unknown wait times count as zero, so model output has a horizon.
  std::int64_t horizon() const;
};

}  // namespace pjsb::swf
