// Common surface of the trace-file readers: a JobSource that also
// reports parse diagnostics. StreamReader (constant-memory, lazy) and
// FastReader (mmap'd, chunk-parallel, eager) both implement it, so
// callers can pick a backend at runtime (`parser=` spec key) and keep
// one error-handling path.
#pragma once

#include <cstddef>
#include <vector>

#include "core/swf/job_source.hpp"
#include "core/swf/reader.hpp"

namespace pjsb::swf {

class TraceReader : public JobSource {
 public:
  /// True while the input opened and no parse error has surfaced.
  virtual bool ok() const = 0;
  virtual bool open_failed() const = 0;
  /// Stored diagnostics, in line order (storage may be bounded).
  virtual const std::vector<ParseError>& errors() const = 0;
  /// Exact total, including diagnostics beyond the storage bound.
  virtual std::size_t error_count() const = 0;
  virtual std::size_t records_returned() const = 0;
  /// Checkpoint/partial (status 2-4) lines skipped.
  virtual std::size_t partials_skipped() const = 0;
  /// Physical lines consumed.
  virtual std::size_t lines_read() const = 0;
};

}  // namespace pjsb::swf
