#include "core/swf/validator.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace pjsb::swf {

namespace {

/// All fields of a record as (name, value) pairs for the negativity rule.
struct FieldRef {
  const char* name;
  std::int64_t value;
};

std::vector<FieldRef> record_fields(const JobRecord& r) {
  return {
      {"job_number", r.job_number},
      {"submit_time", r.submit_time},
      {"wait_time", r.wait_time},
      {"run_time", r.run_time},
      {"allocated_procs", r.allocated_procs},
      {"avg_cpu_time", r.avg_cpu_time},
      {"used_memory_kb", r.used_memory_kb},
      {"requested_procs", r.requested_procs},
      {"requested_time", r.requested_time},
      {"requested_memory_kb", r.requested_memory_kb},
      {"user_id", r.user_id},
      {"group_id", r.group_id},
      {"executable_id", r.executable_id},
      {"queue_id", r.queue_id},
      {"partition_id", r.partition_id},
      {"preceding_job", r.preceding_job},
      {"think_time", r.think_time},
  };
}

class Validator {
 public:
  Validator(const Trace& trace, const ValidatorOptions& options)
      : trace_(trace), options_(options) {}

  ValidationReport run() {
    check_sequence_and_order();
    for (std::size_t i = 0; i < trace_.records.size(); ++i) {
      check_record(i, trace_.records[i]);
    }
    check_dependencies();
    if (options_.check_partials) check_partials();
    return std::move(report_);
  }

 private:
  void add(Rule rule, std::size_t index, std::int64_t job, std::string msg,
           Severity severity = Severity::kError) {
    report_.diagnostics.push_back(
        {rule, severity, index, job, std::move(msg)});
  }

  void check_sequence_and_order() {
    std::int64_t expected = 1;
    std::int64_t prev_submit = kUnknown;
    std::unordered_set<std::int64_t> summary_seen;
    for (std::size_t i = 0; i < trace_.records.size(); ++i) {
      const auto& r = trace_.records[i];
      if (r.is_summary()) {
        if (!summary_seen.insert(r.job_number).second) {
          add(Rule::kDuplicateJobNumber, i, r.job_number,
              "job number appears on more than one summary line");
        }
        if (r.job_number != expected) {
          add(Rule::kJobNumberSequence, i, r.job_number,
              "expected job number " + std::to_string(expected) + ", got " +
                  std::to_string(r.job_number));
          // Resynchronize so one gap yields one diagnostic.
          expected = r.job_number + 1;
        } else {
          ++expected;
        }
        if (r.submit_time != kUnknown) {
          if (prev_submit != kUnknown && r.submit_time < prev_submit) {
            add(Rule::kSubmitOrder, i, r.job_number,
                "submit time " + std::to_string(r.submit_time) +
                    " is before previous " + std::to_string(prev_submit));
          }
          prev_submit = r.submit_time;
        }
      }
    }
  }

  void check_record(std::size_t i, const JobRecord& r) {
    for (const auto& f : record_fields(r)) {
      if (f.value < -1) {
        add(Rule::kNegativeValue, i, r.job_number,
            std::string(f.name) + " = " + std::to_string(f.value) +
                " (values must be >= 0, or -1 for unknown)");
      }
    }
    if (status_code(r.status) < -1 || status_code(r.status) > 4) {
      add(Rule::kStatusRange, i, r.job_number, "status out of range");
    }
    if (r.allocated_procs != kUnknown && r.allocated_procs < 1) {
      add(Rule::kProcsPositive, i, r.job_number,
          "allocated processors must be >= 1");
    }
    if (r.requested_procs != kUnknown && r.requested_procs < 1) {
      add(Rule::kProcsPositive, i, r.job_number,
          "requested processors must be >= 1");
    }
    if (r.avg_cpu_time != kUnknown && r.run_time != kUnknown &&
        r.avg_cpu_time > r.run_time) {
      add(Rule::kCpuExceedsWallclock, i, r.job_number,
          "average CPU time " + std::to_string(r.avg_cpu_time) +
              " exceeds wall-clock run time " + std::to_string(r.run_time));
    }

    const bool overuse_ok =
        options_.honor_allow_overuse &&
        trace_.header.allow_overuse.value_or(false);
    if (trace_.header.max_nodes && r.allocated_procs != kUnknown &&
        r.allocated_procs > *trace_.header.max_nodes) {
      add(Rule::kExceedsMaxNodes, i, r.job_number,
          "allocated " + std::to_string(r.allocated_procs) +
              " processors on a machine with MaxNodes " +
              std::to_string(*trace_.header.max_nodes));
    }
    if (!overuse_ok && trace_.header.max_runtime && r.run_time != kUnknown &&
        r.run_time > *trace_.header.max_runtime) {
      add(Rule::kExceedsMaxRuntime, i, r.job_number,
          "run time exceeds MaxRuntime and AllowOveruse is not set",
          Severity::kWarning);
    }
    if (!overuse_ok && trace_.header.max_memory_kb &&
        r.used_memory_kb != kUnknown &&
        r.used_memory_kb > *trace_.header.max_memory_kb) {
      add(Rule::kExceedsMaxMemory, i, r.job_number,
          "used memory exceeds MaxMemory and AllowOveruse is not set",
          Severity::kWarning);
    }
    if (!overuse_ok && r.requested_procs != kUnknown &&
        r.allocated_procs != kUnknown &&
        r.allocated_procs > r.requested_procs) {
      add(Rule::kRequestedUnderAlloc, i, r.job_number,
          "allocated more processors than requested", Severity::kWarning);
    }

    for (const auto& [name, value] :
         {std::pair<const char*, std::int64_t>{"user_id", r.user_id},
          {"group_id", r.group_id},
          {"executable_id", r.executable_id},
          {"partition_id", r.partition_id}}) {
      if (value != kUnknown && value < 1) {
        add(Rule::kIdRange, i, r.job_number,
            std::string(name) + " must be a natural number (>= 1)");
      }
    }
    if (r.queue_id != kUnknown && r.queue_id < 0) {
      add(Rule::kQueueRange, i, r.job_number,
          "queue id must be >= 0 (0 denotes interactive)");
    }
    if (r.think_time != kUnknown && r.preceding_job == kUnknown) {
      add(Rule::kThinkTimeWithoutPred, i, r.job_number,
          "think time set but preceding job is unknown");
    }
  }

  void check_dependencies() {
    std::unordered_set<std::int64_t> known;
    for (const auto& r : trace_.records) {
      if (r.is_summary()) known.insert(r.job_number);
    }
    for (std::size_t i = 0; i < trace_.records.size(); ++i) {
      const auto& r = trace_.records[i];
      if (r.preceding_job == kUnknown) continue;
      if (!known.count(r.preceding_job)) {
        add(Rule::kPrecedingJobInvalid, i, r.job_number,
            "preceding job " + std::to_string(r.preceding_job) +
                " does not exist");
      } else if (r.preceding_job >= r.job_number) {
        add(Rule::kPrecedingJobInvalid, i, r.job_number,
            "preceding job " + std::to_string(r.preceding_job) +
                " is not earlier than this job");
      }
    }
  }

  void check_partials() {
    // Group partial lines (status 2/3/4) under their job number, and
    // locate the matching summary line.
    std::unordered_map<std::int64_t, const JobRecord*> summaries;
    for (const auto& r : trace_.records) {
      if (r.is_summary()) summaries.emplace(r.job_number, &r);
    }
    std::unordered_map<std::int64_t, std::vector<std::size_t>> partials;
    for (std::size_t i = 0; i < trace_.records.size(); ++i) {
      const auto& r = trace_.records[i];
      if (is_partial_status(r.status)) partials[r.job_number].push_back(i);
    }
    for (const auto& [job, idxs] : partials) {
      const auto it = summaries.find(job);
      if (it == summaries.end()) {
        add(Rule::kPartialStructure, idxs.front(), job,
            "partial execution lines without a summary line");
        continue;
      }
      // All but the last must be code 2; the last must be 3 or 4 and
      // agree with the summary's completion status.
      for (std::size_t k = 0; k + 1 < idxs.size(); ++k) {
        if (trace_.records[idxs[k]].status != Status::kPartial) {
          add(Rule::kPartialStructure, idxs[k], job,
              "non-final partial line must carry status 2");
        }
      }
      const auto& last = trace_.records[idxs.back()];
      if (last.status == Status::kPartial) {
        add(Rule::kPartialStructure, idxs.back(), job,
            "last partial line must carry status 3 (completed) or 4 "
            "(killed)");
      } else {
        const Status summary_status = it->second->status;
        const bool summary_ok = summary_status == Status::kCompleted;
        const bool last_ok = last.status == Status::kPartialLastOk;
        if (summary_status != Status::kUnknown && summary_ok != last_ok) {
          add(Rule::kPartialStructure, idxs.back(), job,
              "last partial completion code disagrees with summary line");
        }
      }
      // "its runtime is the sum of all partial runtimes"
      std::int64_t sum = 0;
      bool all_known = true;
      for (std::size_t idx : idxs) {
        const auto rt = trace_.records[idx].run_time;
        if (rt == kUnknown) {
          all_known = false;
          break;
        }
        sum += rt;
      }
      if (all_known && it->second->run_time != kUnknown &&
          it->second->run_time != sum) {
        add(Rule::kPartialRuntimeSum, idxs.front(), job,
            "summary run time " + std::to_string(it->second->run_time) +
                " != sum of partial run times " + std::to_string(sum));
      }
    }
  }

  const Trace& trace_;
  ValidatorOptions options_;
  ValidationReport report_;
};

}  // namespace

std::string rule_name(Rule rule) {
  switch (rule) {
    case Rule::kJobNumberSequence: return "job-number-sequence";
    case Rule::kSubmitOrder: return "submit-order";
    case Rule::kNegativeValue: return "negative-value";
    case Rule::kStatusRange: return "status-range";
    case Rule::kProcsPositive: return "procs-positive";
    case Rule::kCpuExceedsWallclock: return "cpu-exceeds-wallclock";
    case Rule::kExceedsMaxNodes: return "exceeds-max-nodes";
    case Rule::kExceedsMaxRuntime: return "exceeds-max-runtime";
    case Rule::kExceedsMaxMemory: return "exceeds-max-memory";
    case Rule::kIdRange: return "id-range";
    case Rule::kQueueRange: return "queue-range";
    case Rule::kPrecedingJobInvalid: return "preceding-job-invalid";
    case Rule::kThinkTimeWithoutPred: return "think-time-without-pred";
    case Rule::kPartialStructure: return "partial-structure";
    case Rule::kPartialRuntimeSum: return "partial-runtime-sum";
    case Rule::kDuplicateJobNumber: return "duplicate-job-number";
    case Rule::kRequestedUnderAlloc: return "requested-under-alloc";
  }
  return "unknown-rule";
}

bool ValidationReport::clean() const { return errors() == 0; }

std::size_t ValidationReport::errors() const {
  return std::size_t(std::count_if(
      diagnostics.begin(), diagnostics.end(),
      [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

std::size_t ValidationReport::warnings() const {
  return diagnostics.size() - errors();
}

std::size_t ValidationReport::count(Rule rule) const {
  return std::size_t(std::count_if(
      diagnostics.begin(), diagnostics.end(),
      [rule](const Diagnostic& d) { return d.rule == rule; }));
}

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const auto& d : diagnostics) {
    os << (d.severity == Severity::kError ? "error" : "warning") << " ["
       << rule_name(d.rule) << "] job " << d.job_number << ": " << d.message
       << '\n';
  }
  os << errors() << " error(s), " << warnings() << " warning(s)\n";
  return os.str();
}

ValidationReport validate(const Trace& trace, const ValidatorOptions& options) {
  return Validator(trace, options).run();
}

}  // namespace pjsb::swf
