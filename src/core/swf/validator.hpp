// SWF consistency validator.
//
// The standard requires that "every datum must abide to strict
// consistency rules, that when checked ensure that the workload is
// always 'clean'". Each rule is an enumerated diagnostic so tools (and
// tests) can assert exactly which rule a dirty trace violates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/swf/trace.hpp"

namespace pjsb::swf {

/// Identifiers of the consistency rules derived from section 2.3.
enum class Rule {
  kJobNumberSequence,    ///< job numbers count 1..N in file order
  kSubmitOrder,          ///< submit times non-decreasing
  kNegativeValue,        ///< values must be >= 0 or exactly -1
  kStatusRange,          ///< status in {-1, 0, 1, 2, 3, 4}
  kProcsPositive,        ///< allocated/requested processors >= 1 if known
  kCpuExceedsWallclock,  ///< avg cpu time > run time (impossible)
  kExceedsMaxNodes,      ///< allocated procs > MaxNodes header
  kExceedsMaxRuntime,    ///< run time > MaxRuntime (unless AllowOveruse)
  kExceedsMaxMemory,     ///< used memory > MaxMemory (unless AllowOveruse)
  kIdRange,              ///< user/group/executable/partition ids >= 1
  kQueueRange,           ///< queue id >= 0 (0 denotes interactive)
  kPrecedingJobInvalid,  ///< field 17 references missing / later job
  kThinkTimeWithoutPred, ///< field 18 set while field 17 unknown
  kPartialStructure,     ///< partial lines without summary, bad last code
  kPartialRuntimeSum,    ///< partial runtimes do not sum to summary
  kDuplicateJobNumber,   ///< same job number on two summary lines
  kRequestedUnderAlloc,  ///< allocated > requested procs (no overuse)
};

/// Name of a rule (stable, for reports and tests).
std::string rule_name(Rule rule);

enum class Severity { kWarning, kError };

struct Diagnostic {
  Rule rule;
  Severity severity = Severity::kError;
  /// Record index within trace.records (SIZE_MAX for trace-level issues).
  std::size_t record_index = std::size_t(-1);
  std::int64_t job_number = kUnknown;
  std::string message;
};

struct ValidatorOptions {
  /// Treat AllowOveruse=Yes headers as permitting run/memory overuse.
  bool honor_allow_overuse = true;
  /// Check the multi-line (checkpoint) structure rules.
  bool check_partials = true;
};

struct ValidationReport {
  std::vector<Diagnostic> diagnostics;

  bool clean() const;  ///< no errors (warnings allowed)
  std::size_t errors() const;
  std::size_t warnings() const;
  /// Count of diagnostics for a given rule.
  std::size_t count(Rule rule) const;
  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

/// Validate a trace against all rules.
ValidationReport validate(const Trace& trace,
                          const ValidatorOptions& options = {});

}  // namespace pjsb::swf
