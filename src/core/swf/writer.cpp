#include "core/swf/writer.hpp"

#include <fstream>
#include <ostream>

namespace pjsb::swf {

namespace {

/// Records are rendered into this staging buffer and flushed to the
/// stream in ~1 MB slabs — one write() per slab instead of a dozen
/// formatted inserters per record.
constexpr std::size_t kFlushBytes = std::size_t(1) << 20;

void flush(std::ostream& out, std::string& buf) {
  out.write(buf.data(), std::streamsize(buf.size()));
  buf.clear();
}

void append_header(std::string& buf, const TraceHeader& header) {
  for (const auto& line : header.to_comment_lines()) {
    buf += line;
    buf += '\n';
  }
}

}  // namespace

void write_swf(std::ostream& out, const Trace& trace,
               const WriterOptions& options) {
  std::string buf;
  buf.reserve(kFlushBytes + 256);
  if (options.include_header) append_header(buf, trace.header);
  for (const auto& record : trace.records) {
    record.append_line(buf);
    buf += '\n';
    if (buf.size() >= kFlushBytes) flush(out, buf);
  }
  if (!buf.empty()) flush(out, buf);
}

std::string write_swf_string(const Trace& trace, const WriterOptions& options) {
  std::string buf;
  buf.reserve(trace.records.size() * 64 + 256);
  if (options.include_header) append_header(buf, trace.header);
  for (const auto& record : trace.records) {
    record.append_line(buf);
    buf += '\n';
  }
  return buf;
}

bool write_swf_file(const std::string& path, const Trace& trace,
                    const WriterOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  write_swf(out, trace, options);
  return bool(out);
}

std::uint64_t write_swf_stream(std::ostream& out, JobSource& source,
                               std::uint64_t max_records,
                               const WriterOptions& options) {
  std::string buf;
  buf.reserve(kFlushBytes + 256);
  if (options.include_header) append_header(buf, source.header());
  std::uint64_t written = 0;
  while (max_records == 0 || written < max_records) {
    const auto record = source.next();
    if (!record) break;
    record->append_line(buf);
    buf += '\n';
    ++written;
    if (buf.size() >= kFlushBytes) flush(out, buf);
  }
  if (!buf.empty()) flush(out, buf);
  return written;
}

}  // namespace pjsb::swf
