#include "core/swf/writer.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace pjsb::swf {

void write_swf(std::ostream& out, const Trace& trace,
               const WriterOptions& options) {
  if (options.include_header) {
    for (const auto& line : trace.header.to_comment_lines()) {
      out << line << '\n';
    }
  }
  for (const auto& record : trace.records) {
    out << record.to_line() << '\n';
  }
}

std::string write_swf_string(const Trace& trace, const WriterOptions& options) {
  std::ostringstream os;
  write_swf(os, trace, options);
  return os.str();
}

bool write_swf_file(const std::string& path, const Trace& trace,
                    const WriterOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  write_swf(out, trace, options);
  return bool(out);
}

std::uint64_t write_swf_stream(std::ostream& out, JobSource& source,
                               std::uint64_t max_records,
                               const WriterOptions& options) {
  if (options.include_header) {
    for (const auto& line : source.header().to_comment_lines()) {
      out << line << '\n';
    }
  }
  std::uint64_t written = 0;
  while (max_records == 0 || written < max_records) {
    const auto record = source.next();
    if (!record) break;
    out << record->to_line() << '\n';
    ++written;
  }
  return written;
}

}  // namespace pjsb::swf
