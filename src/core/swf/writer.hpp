// SWF writer: renders a Trace back to the standard text form, header
// comments first, one 18-field integer line per record.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/swf/job_source.hpp"
#include "core/swf/trace.hpp"

namespace pjsb::swf {

struct WriterOptions {
  /// Emit the header comment block (on by default; models generated on
  /// the fly may omit it).
  bool include_header = true;
};

/// Write a trace to a stream.
void write_swf(std::ostream& out, const Trace& trace,
               const WriterOptions& options = {});

/// Render a trace to a string.
std::string write_swf_string(const Trace& trace,
                             const WriterOptions& options = {});

/// Write to a file; returns false (and writes nothing) if the file
/// cannot be opened.
bool write_swf_file(const std::string& path, const Trace& trace,
                    const WriterOptions& options = {});

/// Drain a JobSource to SWF text, one record at a time — the constant-
/// memory counterpart of write_swf, used to materialize million-job
/// synthetic streams on disk. Writes at most `max_records` records
/// (0 = until the source is exhausted; required for unbounded
/// generator sources). Returns the number of records written.
std::uint64_t write_swf_stream(std::ostream& out, JobSource& source,
                               std::uint64_t max_records = 0,
                               const WriterOptions& options = {});

}  // namespace pjsb::swf
