#include "exp/campaign.hpp"

#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "sched/registry.hpp"
#include "util/keyval.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace pjsb::exp {

std::size_t CampaignSpec::cell_count() const {
  return workloads.size() * schedulers.size() * configs.size() *
         std::size_t(replications > 0 ? replications : 0);
}

void CampaignSpec::validate() const {
  if (workloads.empty()) {
    throw std::invalid_argument("campaign: no workloads");
  }
  if (schedulers.empty()) {
    throw std::invalid_argument("campaign: no schedulers");
  }
  if (configs.empty()) {
    throw std::invalid_argument("campaign: no configs");
  }
  if (replications < 1) {
    throw std::invalid_argument("campaign: replications must be >= 1");
  }
  if (nodes < 0 || nodes > kMaxNodes) {
    throw std::invalid_argument(
        "campaign: nodes must be in [1, " + std::to_string(kMaxNodes) +
        "], or 0 (auto)");
  }
  for (const auto& w : workloads) {
    if (w.label.empty()) {
      throw std::invalid_argument("campaign: workload has an empty label");
    }
    // Labels become bare CSV fields; keep them delimiter-clean rather
    // than teaching every consumer about quoting.
    if (w.label.find_first_of(",\"\n\r") != std::string::npos) {
      throw std::invalid_argument("campaign: workload label '" + w.label +
                                  "' must not contain commas, quotes or "
                                  "newlines");
    }
    if (!w.model && w.trace_path.empty()) {
      throw std::invalid_argument("campaign: workload '" + w.label +
                                  "' has neither a model nor a trace path");
    }
    if (w.model && !w.trace_path.empty()) {
      throw std::invalid_argument("campaign: workload '" + w.label +
                                  "' sets both a model and a trace path");
    }
    if (w.model && w.jobs == 0) {
      throw std::invalid_argument("campaign: workload '" + w.label +
                                  "' requests zero jobs");
    }
    if (!(w.load >= 0.0 && w.load <= 1.0)) {  // also rejects NaN
      throw std::invalid_argument("campaign: workload '" + w.label +
                                  "' load must be in [0, 1]");
    }
    if (w.parser != "stream" && w.parser != "fast") {
      throw std::invalid_argument("campaign: workload '" + w.label +
                                  "' parser must be stream or fast");
    }
    if (w.threads < 1) {
      throw std::invalid_argument("campaign: workload '" + w.label +
                                  "' threads must be >= 1");
    }
    if (w.threads > 1 && w.parser != "fast") {
      throw std::invalid_argument(
          "campaign: workload '" + w.label +
          "' sets threads > 1 but the stream parser is single-threaded "
          "(set parser=fast)");
    }
    if (w.stream) {
      if (w.load > 0.0) {
        throw std::invalid_argument(
            "campaign: workload '" + w.label +
            "' streams and cannot be rescaled (load=) — rescaling needs "
            "the whole trace");
      }
      if (w.model == workload::ModelKind::kDowney97) {
        throw std::invalid_argument(
            "campaign: workload '" + w.label +
            "' cannot stream: downey97 builds moldable chains from the "
            "whole trace");
      }
      if (w.lookahead == 0) {
        throw std::invalid_argument("campaign: workload '" + w.label +
                                    "' lookahead must be >= 1");
      }
      for (const auto& c : configs) {
        if (c.outages) {
          throw std::invalid_argument(
              "campaign: workload '" + w.label +
              "' streams but config '" + c.label +
              "' injects outages — generating a failure stream needs the "
              "trace horizon up front");
        }
        if (c.faults) {
          throw std::invalid_argument(
              "campaign: workload '" + w.label +
              "' streams but config '" + c.label +
              "' injects faults — generating a crash schedule needs the "
              "trace horizon up front");
        }
      }
    }
  }
  for (const auto& c : configs) {
    if (c.label.empty()) {
      throw std::invalid_argument("campaign: config has an empty label");
    }
    if (c.label.find_first_of(",\"\n\r") != std::string::npos) {
      throw std::invalid_argument("campaign: config label '" + c.label +
                                  "' must not contain commas, quotes or "
                                  "newlines");
    }
    const ConfigSpec defaults;
    if (!c.faults && (c.mtbf != defaults.mtbf || c.repair != defaults.repair)) {
      throw std::invalid_argument("campaign: config '" + c.label +
                                  "' tunes mtbf/repair without +faults");
    }
    if (c.mtbf < 1 || c.repair < 1) {
      throw std::invalid_argument("campaign: config '" + c.label +
                                  "' needs mtbf/repair >= 1");
    }
    if (c.checkpoint < 0 || c.dump < 0 || c.read < 0) {
      throw std::invalid_argument("campaign: config '" + c.label +
                                  "' has a negative checkpoint field");
    }
    if (c.checkpoint == 0 && (c.dump != 0 || c.read != 0)) {
      throw std::invalid_argument("campaign: config '" + c.label +
                                  "' sets dump/read without a checkpoint "
                                  "interval");
    }
    if (c.retry_limit < 0 || c.backoff < 0 || c.grace < 0) {
      throw std::invalid_argument("campaign: config '" + c.label +
                                  "' has a negative retry/backoff/grace");
    }
    if ((c.overrun == sim::fault::OverrunPolicy::kGrace) != (c.grace > 0)) {
      throw std::invalid_argument("campaign: config '" + c.label +
                                  "' pairs grace seconds and overrun:grace "
                                  "inconsistently");
    }
  }
  // Axis entries are identified by label/name in every report table;
  // duplicates would produce indistinguishable rows (and double-count a
  // policy in the ranking).
  std::set<std::string> seen;
  for (const auto& w : workloads) {
    if (!seen.insert(w.label).second) {
      throw std::invalid_argument("campaign: duplicate workload label '" +
                                  w.label + "'");
    }
  }
  seen.clear();
  for (const auto& name : schedulers) {
    // Instantiating canonicalizes aliases ("sjffit" == "sjf-fit",
    // "gang" == "gang4") and throws on unknown names.
    if (!seen.insert(sched::make_scheduler(name)->name()).second) {
      throw std::invalid_argument("campaign: duplicate scheduler '" + name +
                                  "'");
    }
  }
  seen.clear();
  using ConfigKey =
      std::tuple<bool, bool, bool, bool, bool, std::int64_t, std::int64_t,
                 std::int64_t, std::int64_t, std::int64_t, int, std::int64_t,
                 int, std::int64_t>;
  std::set<ConfigKey> seen_flags;
  for (const auto& c : configs) {
    if (!seen.insert(c.label).second) {
      throw std::invalid_argument("campaign: duplicate config label '" +
                                  c.label + "'");
    }
    // Dedup on semantics too: "closed+outages" and "outages+closed"
    // are the same engine configuration under different labels, "blind"
    // changes nothing without an outage stream to announce, and the
    // fault distributions only act when +faults is on.
    if (!seen_flags
             .insert({c.closed_loop, c.outages,
                      c.outages ? c.deliver_announcements : true, c.validate,
                      c.faults, c.faults ? c.mtbf : 0,
                      c.faults ? c.repair : 0, c.checkpoint, c.dump, c.read,
                      c.retry_limit, c.backoff, int(c.overrun), c.grace})
             .second) {
      throw std::invalid_argument(
          "campaign: config '" + c.label +
          "' has the same flags as an earlier config");
    }
  }
}

std::vector<CellSpec> expand(const CampaignSpec& spec) {
  std::vector<CellSpec> cells;
  cells.reserve(spec.cell_count());
  std::size_t index = 0;
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::size_t s = 0; s < spec.schedulers.size(); ++s) {
      for (std::size_t c = 0; c < spec.configs.size(); ++c) {
        for (int r = 0; r < spec.replications; ++r) {
          CellSpec cell;
          cell.index = index;
          cell.workload = w;
          cell.scheduler = s;
          cell.config = c;
          cell.replication = r;
          // Seed stream from (workload, replication) only: schedulers
          // and configs must see identical workloads/outage streams.
          cell.seed = util::derive_seed(
              spec.master_seed,
              w * std::size_t(spec.replications) + std::size_t(r));
          cells.push_back(cell);
          ++index;
        }
      }
    }
  }
  return cells;
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("campaign spec line " + std::to_string(line) +
                              ": " + message);
}

WorkloadSpec parse_workload(std::string_view value, std::size_t line) {
  // The shared spec tokenizer (util/keyval.hpp): head + key=value
  // options, with quoting for paths/labels containing spaces.
  util::SpecTokens tokens;
  try {
    tokens = util::parse_spec(value, /*allow_head=*/true);
  } catch (const std::invalid_argument& e) {
    fail(line, e.what());
  }
  if (tokens.head.empty()) fail(line, "empty workload");
  WorkloadSpec w;
  const std::string source = util::to_lower(tokens.head);
  if (util::starts_with(source, "trace:")) {
    w.trace_path = tokens.head.substr(6);  // paths keep their case
    if (w.trace_path.empty()) fail(line, "trace: needs a path");
    // Default label: file name without directories or extension. Keep
    // the extension when stripping it would leave nothing (dotfiles).
    std::string base = w.trace_path;
    if (const auto slash = base.find_last_of('/');
        slash != std::string::npos) {
      base = base.substr(slash + 1);
    }
    if (const auto dot = base.find_last_of('.');
        dot != std::string::npos && dot > 0) {
      base = base.substr(0, dot);
    }
    w.label = base;
  } else {
    w.model = workload::model_kind_from_name(source);
    if (!w.model) {
      std::string valid;
      for (const auto kind : workload::all_models()) {
        if (!valid.empty()) valid += ", ";
        valid += workload::model_name(kind);
      }
      fail(line, "unknown workload source '" + tokens.head +
                     "' (valid models: " + valid + "; or trace:<path>)");
    }
    w.label = source;
  }
  for (const auto& option : tokens.options) {
    const std::string& key = option.key;
    const std::string& val = option.value;
    if (key == "jobs") {
      if (!w.model) {
        fail(line, "jobs= applies only to model workloads; trace workloads "
                   "replay the whole file");
      }
      const auto n = util::parse_i64(val);
      if (!n || *n < 1) fail(line, "jobs must be a positive integer");
      w.jobs = std::size_t(*n);
    } else if (key == "load") {
      const auto f = util::parse_f64(val);
      if (!f) fail(line, "load must be a number");
      w.load = *f;
    } else if (key == "label") {
      w.label = val;
    } else if (key == "stream") {
      const auto b = util::parse_bool(val);
      if (!b) fail(line, "stream must be 0/1, true/false or yes/no");
      w.stream = *b;
    } else if (key == "lookahead") {
      const auto n = util::parse_i64(val);
      if (!n || *n < 1) fail(line, "lookahead must be a positive integer");
      w.lookahead = std::size_t(*n);
    } else if (key == "parser") {
      if (w.model) {
        fail(line, "parser= applies only to trace workloads; model "
                   "workloads generate records, nothing is parsed");
      }
      const std::string p = util::to_lower(val);
      if (p != "stream" && p != "fast") {
        fail(line, "parser must be stream or fast");
      }
      w.parser = p;
    } else if (key == "threads") {
      if (w.model) {
        fail(line, "threads= applies only to trace workloads; model "
                   "workloads generate records, nothing is parsed");
      }
      const auto n = util::parse_i64(val);
      if (!n || *n < 1 || *n > 256) {
        fail(line, "threads must be an integer in [1, 256]");
      }
      w.threads = int(*n);
    } else {
      fail(line, "unknown workload option '" + key + "'");
    }
  }
  return w;
}

ConfigSpec parse_config(std::string_view value, std::size_t line) {
  ConfigSpec c;
  c.label = std::string(util::trim(value));
  if (c.label.empty()) fail(line, "empty config");
  std::optional<bool> loop;  // set by open/closed; contradiction is an error
  // Valued tokens (`mtbf:86400`) parse through one helper so every
  // fault/recovery knob shares the same error shape.
  const auto valued = [&](const std::string& f, const char* name,
                          std::int64_t min) -> std::optional<std::int64_t> {
    const std::string prefix = std::string(name) + ":";
    if (!util::starts_with(f, prefix)) return std::nullopt;
    const auto n = util::parse_i64(f.substr(prefix.size()));
    if (!n || *n < min) {
      fail(line, std::string(name) + ": needs an integer >= " +
                     std::to_string(min));
    }
    return *n;
  };
  for (const auto flag : util::split(c.label, '+')) {
    const std::string f = util::to_lower(util::trim(flag));
    if (f == "open" || f == "closed") {
      const bool closed = (f == "closed");
      if (loop && *loop != closed) {
        fail(line, "config '" + c.label + "' is both open and closed");
      }
      loop = closed;
      c.closed_loop = closed;
    } else if (f == "outages") {
      c.outages = true;
    } else if (f == "blind") {
      c.deliver_announcements = false;
    } else if (f == "validate") {
      c.validate = true;
    } else if (f == "faults") {
      c.faults = true;
    } else if (const auto v = valued(f, "mtbf", 1)) {
      c.mtbf = *v;
    } else if (const auto v = valued(f, "repair", 1)) {
      c.repair = *v;
    } else if (const auto v = valued(f, "checkpoint", 1)) {
      c.checkpoint = *v;
    } else if (const auto v = valued(f, "dump", 0)) {
      c.dump = *v;
    } else if (const auto v = valued(f, "read", 0)) {
      c.read = *v;
    } else if (const auto v = valued(f, "retry", 1)) {
      c.retry_limit = int(std::min<std::int64_t>(
          *v, std::numeric_limits<int>::max()));
    } else if (const auto v = valued(f, "backoff", 1)) {
      c.backoff = *v;
    } else if (const auto v = valued(f, "grace", 1)) {
      c.grace = *v;
      c.overrun = sim::fault::OverrunPolicy::kGrace;
    } else if (util::starts_with(f, "overrun:")) {
      const auto policy =
          sim::fault::overrun_policy_from_name(f.substr(8));
      if (!policy) {
        fail(line, "overrun: must be extend, kill or grace");
      }
      c.overrun = *policy;
    } else {
      fail(line, "unknown config flag '" + f +
                     "' (valid: open, closed, outages, blind, validate, "
                     "faults, mtbf:N, repair:N, checkpoint:N, dump:N, "
                     "read:N, retry:N, backoff:N, overrun:P, grace:N)");
    }
  }
  if (c.overrun == sim::fault::OverrunPolicy::kGrace && c.grace == 0) {
    fail(line, "overrun:grace needs grace:N (grace 0 is overrun:kill)");
  }
  return c;
}

}  // namespace

CampaignSpec parse_campaign_spec(std::istream& in) {
  CampaignSpec spec;
  spec.configs.clear();  // spec files opt into configs explicitly
  std::string raw;
  std::size_t line_no = 0;
  bool seen_replications = false;
  bool seen_seed = false;
  bool seen_nodes = false;
  bool seen_rank = false;
  bool seen_telemetry = false;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = util::trim(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(line_no, "expected 'key = value'");
    }
    const std::string key = util::to_lower(util::trim(line.substr(0, eq)));
    const std::string_view value = util::trim(line.substr(eq + 1));
    if (key == "workload") {
      spec.workloads.push_back(parse_workload(value, line_no));
    } else if (key == "scheduler") {
      if (value.empty()) fail(line_no, "empty scheduler");
      spec.schedulers.emplace_back(value);
    } else if (key == "config") {
      spec.configs.push_back(parse_config(value, line_no));
    } else if (key == "replications") {
      // Scalar keys fail loud on re-assignment: last-wins would let a
      // pasted-together spec silently run the wrong experiment.
      if (seen_replications) fail(line_no, "replications set twice");
      seen_replications = true;
      const auto n = util::parse_i64(value);
      if (!n || *n < 1 || *n > std::numeric_limits<int>::max()) {
        fail(line_no, "replications must be >= 1");
      }
      spec.replications = int(*n);
    } else if (key == "seed") {
      if (seen_seed) fail(line_no, "seed set twice");
      seen_seed = true;
      const auto n = util::parse_i64(value);
      if (!n) fail(line_no, "seed must be an integer");
      spec.master_seed = std::uint64_t(*n);
    } else if (key == "nodes") {
      if (seen_nodes) fail(line_no, "nodes set twice");
      seen_nodes = true;
      if (util::to_lower(value) == "auto") {
        spec.nodes = 0;
      } else {
        const auto n = util::parse_i64(value);
        if (!n || *n < 1) fail(line_no, "nodes must be >= 1, or 'auto'");
        spec.nodes = *n;
      }
    } else if (key == "rank") {
      if (seen_rank) fail(line_no, "rank set twice");
      seen_rank = true;
      try {
        spec.rank_metric = metrics::metric_from_name(std::string(value));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (key == "telemetry") {
      if (seen_telemetry) fail(line_no, "telemetry set twice");
      seen_telemetry = true;
      if (value.empty()) fail(line_no, "telemetry needs a directory path");
      spec.telemetry_dir = std::string(value);
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (spec.configs.empty()) spec.configs.push_back(ConfigSpec{});
  spec.validate();
  return spec;
}

CampaignSpec parse_campaign_spec_string(const std::string& text) {
  std::istringstream in(text);
  return parse_campaign_spec(in);
}

}  // namespace pjsb::exp
