// Declarative experiment campaigns.
//
// The paper's thesis is standardized *comparison*: run the same
// workloads through many scheduling policies and judge them on equal
// footing. A `CampaignSpec` describes the full cross-product of an
// evaluation — workload sources x schedulers x engine configurations x
// seed replications — and expands into a flat list of `CellSpec`s that
// the runner (exp/runner.hpp) executes in parallel. Each cell's RNG
// seed is derived from (master_seed, workload, replication), so results
// are independent of execution order and thread count, and every
// scheduler/config sees the same sampled workloads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "metrics/aggregate.hpp"
#include "sim/fault/fault.hpp"
#include "workload/model.hpp"

namespace pjsb::exp {

/// One entry on the workload axis: a synthetic model or an SWF trace
/// file. Model workloads are regenerated per cell from the cell seed,
/// so replications see genuinely different (but reproducible) traces;
/// trace files are loaded once and shared read-only.
struct WorkloadSpec {
  std::string label;
  /// Synthetic model; nullopt means `trace_path` names an SWF file.
  std::optional<workload::ModelKind> model;
  std::string trace_path;
  /// Jobs to generate (model workloads only).
  std::size_t jobs = 2000;
  /// Target offered load; 0 keeps the natural load of the source.
  double load = 0.0;
  /// Feed the cell through a streaming JobSource instead of a
  /// materialized trace: trace files are re-read per cell by
  /// swf::StreamReader, models sampled by a ModelJobSource. The trace
  /// itself never resides in memory (per-job completion records are
  /// still kept, for exact metrics). Streaming workloads cannot be
  /// rescaled (`load=`) and cannot be crossed with outage configs —
  /// both need the full trace/horizon up front.
  bool stream = false;
  /// Ingestion window for streaming cells (records pulled ahead).
  std::size_t lookahead = 4096;
  /// Trace-file ingestion backend: "stream" (constant-memory
  /// StreamReader) or "fast" (mmap'd chunk-parallel FastReader).
  std::string parser = "stream";
  /// FastReader worker threads (parser=fast only).
  int threads = 1;
};

/// One entry on the engine-configuration axis.
struct ConfigSpec {
  std::string label = "open";
  /// Honor trace dependency fields 17/18 (closed-loop feedback).
  bool closed_loop = false;
  /// Inject a generated random-failure stream (seeded per cell).
  bool outages = false;
  /// Deliver outage announcements to the scheduler (outage-aware mode).
  bool deliver_announcements = true;
  /// Attach the validate::InvariantChecker to every cell replay; any
  /// violation fails the campaign (spelled `+validate` in spec files).
  bool validate = false;
  /// Inject a seeded per-node crash schedule (sim/fault): `+faults` in
  /// spec files. The per-cell fault seed derives from the cell seed, so
  /// every scheduler faces the identical crash stream and replications
  /// sample fresh ones. MTBF and checkpoint interval are first-class
  /// sweep axes: put several configs with different `faults:mtbf=` /
  /// `checkpoint=` values on the config axis.
  bool faults = false;
  std::int64_t mtbf = 7 * std::int64_t(86400);    ///< per-node MTBF
  std::int64_t repair = 4 * std::int64_t(3600);   ///< mean repair time
  /// Recovery knobs forwarded to the engine (meaningful with faults or
  /// outages; `checkpoint`/`overrun` also act alone on kill paths).
  std::int64_t checkpoint = 0;  ///< checkpoint interval (0: none)
  std::int64_t dump = 0;        ///< per-checkpoint dump cost
  std::int64_t read = 0;        ///< restart restore cost
  int retry_limit = 0;          ///< kills before dropping (0: unlimited)
  std::int64_t backoff = 0;     ///< requeue delay after a kill
  sim::fault::OverrunPolicy overrun = sim::fault::OverrunPolicy::kExtend;
  std::int64_t grace = 0;       ///< overrun=grace allowance
};

/// Upper bound on the simulated machine size: generous for any real
/// system while keeping per-node state allocations sane when a spec
/// fat-fingers `nodes =`.
inline constexpr std::int64_t kMaxNodes = 1 << 22;  // ~4M nodes

/// The declarative description of a full evaluation campaign.
struct CampaignSpec {
  std::vector<WorkloadSpec> workloads;
  /// Registry spec strings for sched::make_scheduler — parameterized
  /// variants welcome ("easy reserve_depth=2", "gang slots=8").
  std::vector<std::string> schedulers;
  std::vector<ConfigSpec> configs = {ConfigSpec{}};
  int replications = 1;
  std::uint64_t master_seed = 1;
  /// Metric the final ranking table is ordered by (`rank =` in spec
  /// files, metrics::metric_from_name names).
  metrics::MetricId rank_metric = metrics::MetricId::kMeanBoundedSlowdown;
  /// Simulated machine size. 0 means auto: trace workloads use their
  /// MaxNodes header, model workloads the workload::ModelConfig
  /// default — spec files accept `nodes = auto` for this.
  std::int64_t nodes = 128;
  /// Per-cell telemetry directory (`telemetry =` in spec files). When
  /// non-empty, every simulated cell writes a JSONL event trace to
  /// `<dir>/cell_<index>.trace.jsonl` and carries a telemetry summary
  /// in its CellResult (exp::telemetry_csv emits the rollup). Empty
  /// (the default) attaches no instrumentation — campaigns stay lean.
  /// Skipped deterministic replications share replication 0's trace
  /// file and copy its summary.
  std::string telemetry_dir;

  /// Total number of cells in the cross-product.
  std::size_t cell_count() const;

  /// Throws std::invalid_argument if the spec cannot be run (empty
  /// axes, unknown scheduler names, model-less workloads without a
  /// trace path, non-positive replications/nodes).
  void validate() const;
};

/// A fully resolved cell of the cross-product. `index` is the linear
/// position with replication innermost, then config, scheduler,
/// workload outermost. `seed` is derived from (workload, replication)
/// only — cells that differ just in scheduler or config share a seed,
/// so every policy is judged on the *same* generated workload and
/// outage stream (common random numbers; the paired comparison the
/// paper's standardized evaluation calls for).
struct CellSpec {
  std::size_t index = 0;
  std::size_t workload = 0;   ///< index into spec.workloads
  std::size_t scheduler = 0;  ///< index into spec.schedulers
  std::size_t config = 0;     ///< index into spec.configs
  int replication = 0;
  std::uint64_t seed = 0;
};

/// Expand a spec into its cells, in linear-index order. Callers are
/// expected to have run validate() (run_campaign and the spec parser
/// do); expand itself does not re-validate.
std::vector<CellSpec> expand(const CampaignSpec& spec);

/// Parse a campaign spec file. The format is line-oriented `key = value`
/// with `#`/`;` comments; repeated `workload`, `scheduler` and `config`
/// keys accumulate:
///
///   workload = lublin99 jobs=2000 load=0.7
///   workload = trace:logs/kth.swf label=kth
///   scheduler = fcfs
///   scheduler = easy
///   config = open
///   config = closed+outages
///   replications = 5
///   seed = 42
///   nodes = 128
///
/// Workload options: `jobs=N`, `load=F`, `label=S`, `stream=0|1`,
/// `lookahead=N` (streaming ingestion window), `parser=stream|fast` and
/// `threads=N` (trace-file ingestion backend). Config flags are
/// '+'-separated: `open` (default), `closed`, `outages`, `blind`
/// (outages not announced in advance), `faults` (seeded crash
/// schedule), plus valued tokens `mtbf:N`, `repair:N`, `checkpoint:N`,
/// `dump:N`, `read:N`, `retry:N`, `backoff:N`, `overrun:extend|kill|
/// grace`, `grace:N` — e.g. `config = open+faults+mtbf:86400+
/// checkpoint:3600+retry:3`. `rank = <metric>` selects the
/// ranking metric by name (metrics::metric_from_name).
/// `telemetry = <dir>` turns on per-cell telemetry. Scheduler lines
/// take full registry spec strings, and workload option lines share the
/// same key=value tokenizer (util/keyval.hpp). Throws
/// std::invalid_argument on malformed input; the result is validated
/// before being returned.
CampaignSpec parse_campaign_spec(std::istream& in);
CampaignSpec parse_campaign_spec_string(const std::string& text);

}  // namespace pjsb::exp
