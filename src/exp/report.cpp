#include "exp/report.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdio>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "sim/provenance.hpp"
#include "util/table.hpp"

namespace pjsb::exp {

namespace {

constexpr std::array<metrics::MetricId, 10> kReportMetrics = {
    metrics::MetricId::kMeanWait,
    metrics::MetricId::kMeanResponse,
    metrics::MetricId::kMeanSlowdown,
    metrics::MetricId::kMeanBoundedSlowdown,
    metrics::MetricId::kP95Wait,
    metrics::MetricId::kUtilization,
    metrics::MetricId::kThroughput,
    metrics::MetricId::kMakespan,
    metrics::MetricId::kMeanRestarts,
    metrics::MetricId::kWastedFraction,
};

/// Deterministic shortest round-trip formatting shared by the CSV and
/// JSON emitters: lossless, so rankings recomputed from report files
/// agree with the shipped ranking table even for near-ties.
std::string format_number(double x) {
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), x);
  return std::string(buf, result.ptr);
}

/// Group linear index: (workload, scheduler, config) — the single
/// definition of the group layout used by aggregation and ranking.
std::size_t group_index(const CampaignSpec& spec, std::size_t workload,
                        std::size_t scheduler, std::size_t config) {
  return (workload * spec.schedulers.size() + scheduler) *
             spec.configs.size() +
         config;
}

std::size_t group_index(const CampaignSpec& spec, const CellSpec& cell) {
  return group_index(spec, cell.workload, cell.scheduler, cell.config);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Mean metric *cost* of a group (smaller is better): cost is value or
/// -value, so the cost of the mean equals the mean cost.
double group_mean_cost(const GroupSummary& group, metrics::MetricId metric) {
  for (std::size_t m = 0; m < kReportMetrics.size(); ++m) {
    if (kReportMetrics[m] != metric) continue;
    // A group with no cells (possible with hand-built runs) must rank
    // worst, not best-by-zero-cost.
    if (group.metrics[m].count() == 0) {
      return std::numeric_limits<double>::infinity();
    }
    const double mean = group.metrics[m].mean();
    return metrics::metric_higher_is_better(metric) ? -mean : mean;
  }
  throw std::invalid_argument("ranking metric is not a report metric");
}

}  // namespace

std::span<const metrics::MetricId> report_metrics() {
  return kReportMetrics;
}

CampaignReport aggregate(const CampaignRun& run) {
  const auto& spec = run.spec;
  CampaignReport report;
  report.groups.resize(spec.workloads.size() * spec.schedulers.size() *
                       spec.configs.size());
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::size_t s = 0; s < spec.schedulers.size(); ++s) {
      for (std::size_t c = 0; c < spec.configs.size(); ++c) {
        auto& group = report.groups[group_index(spec, w, s, c)];
        group.workload = w;
        group.scheduler = s;
        group.config = c;
        group.metrics.resize(kReportMetrics.size());
      }
    }
  }
  for (const auto& cell : run.cells) {
    auto& group = report.groups.at(group_index(spec, cell.cell));
    group.replications += 1;
    for (std::size_t m = 0; m < kReportMetrics.size(); ++m) {
      group.metrics[m].add(
          metrics::metric_value(cell.metrics, kReportMetrics[m]));
    }
  }
  return report;
}

std::string cells_csv(const CampaignRun& run) {
  std::ostringstream out;
  out << "cell,workload,scheduler,config,replication,seed,jobs,kills,drops";
  for (const auto id : kReportMetrics) {
    out << ',' << metrics::metric_name(id);
  }
  out << '\n';
  for (const auto& cell : run.cells) {
    out << cell.cell.index << ','
        << run.spec.workloads[cell.cell.workload].label << ','
        << run.spec.schedulers[cell.cell.scheduler] << ','
        << run.spec.configs[cell.cell.config].label << ','
        << cell.cell.replication << ',' << cell.cell.seed << ','
        << cell.workload_jobs << ',' << cell.metrics.jobs_killed << ','
        << cell.metrics.jobs_dropped;
    for (const auto id : kReportMetrics) {
      out << ',' << format_number(metrics::metric_value(cell.metrics, id));
    }
    out << '\n';
  }
  return out.str();
}

std::string telemetry_csv(const CampaignRun& run) {
  std::ostringstream out;
  out << "cell,workload,scheduler,config,replication,submits,starts,"
         "completions,kills,steps";
  // One column per provenance kind, in enum order: their sum equals
  // `starts`, which consumers can (and the tests do) check.
  for (std::size_t p = 0; p < sim::kProvenanceCount; ++p) {
    out << ',' << sim::provenance_name(sim::StartProvenance(p));
  }
  out << ",backfill_ratio,mean_wait,wait_p95_bound,mean_bounded_slowdown,"
         "profile_steps_peak\n";
  for (const auto& cell : run.cells) {
    const auto& t = cell.telemetry;
    out << cell.cell.index << ','
        << run.spec.workloads[cell.cell.workload].label << ','
        << run.spec.schedulers[cell.cell.scheduler] << ','
        << run.spec.configs[cell.cell.config].label << ','
        << cell.cell.replication << ',' << t.submits << ',' << t.starts
        << ',' << t.completions << ',' << t.kills << ',' << t.steps;
    for (std::size_t p = 0; p < sim::kProvenanceCount; ++p) {
      out << ',' << t.starts_by_provenance[p];
    }
    out << ',' << format_number(t.backfill_ratio()) << ','
        << format_number(t.mean_wait()) << ',' << t.wait_p95_bound << ','
        << format_number(t.mean_bounded_slowdown()) << ','
        << t.profile_steps_peak << '\n';
  }
  return out.str();
}

std::string summary_csv(const CampaignRun& run,
                        const CampaignReport& report) {
  std::ostringstream out;
  out << "workload,scheduler,config,replications";
  for (const auto id : kReportMetrics) {
    const std::string name = metrics::metric_name(id);
    out << ',' << name << "-mean," << name << "-stddev," << name << "-ci95";
  }
  out << '\n';
  for (const auto& group : report.groups) {
    out << run.spec.workloads[group.workload].label << ','
        << run.spec.schedulers[group.scheduler] << ','
        << run.spec.configs[group.config].label << ','
        << group.replications;
    for (const auto& stats : group.metrics) {
      out << ',' << format_number(stats.mean()) << ','
          << format_number(stats.stddev()) << ','
          << format_number(stats.ci95_halfwidth());
    }
    out << '\n';
  }
  return out.str();
}

std::string to_json(const CampaignRun& run, const CampaignReport& report) {
  const auto& spec = run.spec;
  std::ostringstream out;
  out << "{\n  \"spec\": {\n";
  out << "    \"nodes\": " << spec.nodes << ",\n";
  out << "    \"replications\": " << spec.replications << ",\n";
  out << "    \"master_seed\": \"" << spec.master_seed << "\",\n";
  out << "    \"workloads\": [";
  for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
    const auto& w = spec.workloads[i];
    if (i) out << ", ";
    out << "{\"label\": \"" << json_escape(w.label) << "\", \"source\": \"";
    if (w.model) {
      // jobs is a model knob; traces replay whole files, so emitting
      // the default here would be meaningless metadata.
      out << workload::model_name(*w.model) << "\", \"jobs\": " << w.jobs;
    } else {
      out << "trace:" << json_escape(w.trace_path) << '"';
    }
    out << ", \"load\": " << format_number(w.load) << "}";
  }
  out << "],\n    \"schedulers\": [";
  for (std::size_t i = 0; i < spec.schedulers.size(); ++i) {
    if (i) out << ", ";
    out << '"' << json_escape(spec.schedulers[i]) << '"';
  }
  out << "],\n    \"configs\": [";
  for (std::size_t i = 0; i < spec.configs.size(); ++i) {
    const auto& c = spec.configs[i];
    if (i) out << ", ";
    out << "{\"label\": \"" << json_escape(c.label)
        << "\", \"closed_loop\": " << (c.closed_loop ? "true" : "false")
        << ", \"outages\": " << (c.outages ? "true" : "false")
        << ", \"deliver_announcements\": "
        << (c.deliver_announcements ? "true" : "false")
        << ", \"faults\": " << (c.faults ? "true" : "false");
    if (c.faults) {
      out << ", \"mtbf\": " << c.mtbf << ", \"repair\": " << c.repair;
    }
    if (c.checkpoint > 0) {
      out << ", \"checkpoint\": " << c.checkpoint << ", \"dump\": " << c.dump
          << ", \"read\": " << c.read;
    }
    if (c.retry_limit > 0) out << ", \"retry_limit\": " << c.retry_limit;
    if (c.backoff > 0) out << ", \"backoff\": " << c.backoff;
    if (c.overrun != sim::fault::OverrunPolicy::kExtend) {
      out << ", \"overrun\": \"" << sim::fault::overrun_policy_name(c.overrun)
          << '"';
      if (c.grace > 0) out << ", \"grace\": " << c.grace;
    }
    out << "}";
  }
  out << "]\n  },\n";

  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < run.cells.size(); ++i) {
    const auto& cell = run.cells[i];
    out << "    {\"cell\": " << cell.cell.index
        << ", \"workload\": " << cell.cell.workload
        << ", \"scheduler\": " << cell.cell.scheduler
        << ", \"config\": " << cell.cell.config
        << ", \"replication\": " << cell.cell.replication << ", \"seed\": \""
        << cell.cell.seed << "\", \"jobs\": " << cell.workload_jobs
        << ", \"metrics\": {";
    for (std::size_t m = 0; m < kReportMetrics.size(); ++m) {
      if (m) out << ", ";
      out << '"' << metrics::metric_name(kReportMetrics[m]) << "\": "
          << format_number(
                 metrics::metric_value(cell.metrics, kReportMetrics[m]));
    }
    out << "}}" << (i + 1 < run.cells.size() ? "," : "") << '\n';
  }
  out << "  ],\n";

  out << "  \"summary\": [\n";
  for (std::size_t g = 0; g < report.groups.size(); ++g) {
    const auto& group = report.groups[g];
    out << "    {\"workload\": \""
        << json_escape(spec.workloads[group.workload].label)
        << "\", \"scheduler\": \""
        << json_escape(spec.schedulers[group.scheduler])
        << "\", \"config\": \""
        << json_escape(spec.configs[group.config].label)
        << "\", \"replications\": " << group.replications
        << ", \"metrics\": {";
    for (std::size_t m = 0; m < kReportMetrics.size(); ++m) {
      if (m) out << ", ";
      const auto& stats = group.metrics[m];
      out << '"' << metrics::metric_name(kReportMetrics[m])
          << "\": {\"mean\": " << format_number(stats.mean())
          << ", \"stddev\": " << format_number(stats.stddev())
          << ", \"ci95\": " << format_number(stats.ci95_halfwidth()) << "}";
    }
    out << "}}" << (g + 1 < report.groups.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  return out.str();
}

std::vector<SchedulerRanking> rank_schedulers(const CampaignRun& run,
                                              const CampaignReport& report,
                                              metrics::MetricId metric) {
  const auto& spec = run.spec;
  const std::size_t n = spec.schedulers.size();
  std::vector<double> rank_sum(n, 0.0);
  std::vector<std::size_t> wins(n, 0);
  std::size_t pairs = 0;

  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::size_t c = 0; c < spec.configs.size(); ++c) {
      std::vector<double> costs(n, 0.0);
      for (std::size_t s = 0; s < n; ++s) {
        const auto& group = report.groups[group_index(spec, w, s, c)];
        costs[s] = group_mean_cost(group, metric);
      }
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return costs[a] < costs[b];
                       });
      // Tied schedulers share the average of the ranks they span, and
      // everyone tied for best gets the win — spec order must not
      // decide a comparison the metrics call even.
      for (std::size_t r = 0; r < n;) {
        std::size_t last = r;
        while (last + 1 < n && costs[order[last + 1]] == costs[order[r]]) {
          ++last;
        }
        const double shared_rank = (double(r + 1) + double(last + 1)) / 2.0;
        for (std::size_t k = r; k <= last; ++k) {
          rank_sum[order[k]] += shared_rank;
          if (r == 0) wins[order[k]] += 1;
        }
        r = last + 1;
      }
      ++pairs;
    }
  }

  std::vector<SchedulerRanking> rankings(n);
  for (std::size_t s = 0; s < n; ++s) {
    rankings[s].scheduler = s;
    rankings[s].mean_rank = pairs > 0 ? rank_sum[s] / double(pairs) : 0.0;
    rankings[s].wins = wins[s];
  }
  std::stable_sort(rankings.begin(), rankings.end(),
                   [](const SchedulerRanking& a, const SchedulerRanking& b) {
                     return a.mean_rank < b.mean_rank;
                   });
  return rankings;
}

std::string ranking_table(const CampaignRun& run,
                          const CampaignReport& report,
                          metrics::MetricId metric) {
  const auto rankings = rank_schedulers(run, report, metric);
  util::Table table({"rank", "scheduler", "mean rank", "wins"});
  for (std::size_t i = 0; i < rankings.size(); ++i) {
    table.row()
        .cell(std::int64_t(i + 1))
        .cell(run.spec.schedulers[rankings[i].scheduler])
        .cell(rankings[i].mean_rank, 2)
        .cell(rankings[i].wins);
  }
  std::ostringstream out;
  out << "scheduler ranking by " << metrics::metric_name(metric)
      << " (over " << run.spec.workloads.size() << " workload(s) x "
      << run.spec.configs.size() << " config(s)):\n"
      << table.to_string();
  return out.str();
}

}  // namespace pjsb::exp
