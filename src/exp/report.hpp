// Campaign reporting: replicated-seed aggregation and table emission.
//
// Per-cell metrics are aggregated across seed replications with
// util::OnlineStats (mean, stddev, ~95% confidence halfwidth) per
// (workload, scheduler, config) group, then emitted as CSV and JSON
// tables plus a ranked scheduler comparison — the "equal footing"
// artifact the paper's standardized-evaluation program calls for. All
// emitters format numbers deterministically, so identical campaigns
// produce byte-identical files regardless of runner thread count.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "metrics/aggregate.hpp"
#include "util/stats.hpp"

namespace pjsb::exp {

/// Metrics reported for every cell/group, in column order.
std::span<const metrics::MetricId> report_metrics();

/// Cross-replication aggregate of one (workload, scheduler, config)
/// group. `metrics` is parallel to report_metrics().
struct GroupSummary {
  std::size_t workload = 0;
  std::size_t scheduler = 0;
  std::size_t config = 0;
  std::size_t replications = 0;
  std::vector<util::OnlineStats> metrics;
};

struct CampaignReport {
  /// Groups ordered by (workload, scheduler, config) index.
  std::vector<GroupSummary> groups;
};

/// Aggregate a finished run across its seed replications.
CampaignReport aggregate(const CampaignRun& run);

/// Per-cell table: one row per cell with every report metric.
std::string cells_csv(const CampaignRun& run);

/// Per-cell telemetry table (counters, provenance breakdown, histogram
/// rollups) — one row per cell, in cell-index order. Only meaningful
/// when the campaign ran with `telemetry =`; without it every counter
/// column is zero. Deterministic like every other emitter.
std::string telemetry_csv(const CampaignRun& run);

/// Aggregated table: one row per group with mean/stddev/ci95 columns
/// for every report metric.
std::string summary_csv(const CampaignRun& run,
                        const CampaignReport& report);

/// Full machine-readable dump: spec, per-cell metrics and group
/// summaries as one JSON document.
std::string to_json(const CampaignRun& run, const CampaignReport& report);

/// One scheduler's standing in the ranked comparison.
struct SchedulerRanking {
  std::size_t scheduler = 0;  ///< index into spec.schedulers
  double mean_rank = 0.0;     ///< average rank over (workload, config) groups
  /// Groups where this scheduler achieved the best (possibly tied) cost.
  std::size_t wins = 0;
};

/// Rank schedulers within every (workload, config) pair by mean metric
/// cost (smaller is better, metrics::metric_cost orientation), then
/// order them by average rank across pairs. Exact cost ties share the
/// average of the spanned ranks and each tied scheduler counts the
/// win, so spec order never decides an even comparison; the final
/// ordering breaks residual mean-rank ties by spec order.
std::vector<SchedulerRanking> rank_schedulers(const CampaignRun& run,
                                              const CampaignReport& report,
                                              metrics::MetricId metric);

/// Human-readable ranked comparison (ASCII table).
std::string ranking_table(const CampaignRun& run,
                          const CampaignReport& report,
                          metrics::MetricId metric);

}  // namespace pjsb::exp
