#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/outage/generate.hpp"
#include "core/swf/fast_reader.hpp"
#include "core/swf/reader.hpp"
#include "core/swf/stream_reader.hpp"
#include "sched/registry.hpp"
#include "sim/replay.hpp"
#include "util/rng.hpp"
#include "validate/invariants.hpp"
#include "workload/scale.hpp"
#include "workload/stream.hpp"

namespace pjsb::exp {

namespace {

/// Resolve the simulated machine size for one workload: an explicit
/// spec.nodes wins; auto (0) defers to the trace's MaxNodes header or
/// the model-config default, matching sim::replay's behavior.
std::int64_t effective_nodes(const CampaignSpec& spec,
                             const WorkloadSpec& wspec,
                             const swf::Trace* preloaded) {
  if (spec.nodes > 0) return spec.nodes;
  if (!wspec.model && preloaded) {
    return preloaded->header.max_nodes.value_or(sim::kDefaultNodes);
  }
  return workload::ModelConfig{}.machine_nodes;
}

std::size_t count_summary_jobs(const swf::Trace& trace) {
  return std::size_t(std::count_if(
      trace.records.begin(), trace.records.end(),
      [](const swf::JobRecord& r) { return r.is_summary(); }));
}

/// `validate=1` cells ride an InvariantChecker on the replay; a dirty
/// run fails the campaign with the first violations spelled out (a
/// report whose cells broke the simulation's ground rules is worse
/// than no report).
validate::CheckerOptions checker_options_for(const std::string& scheduler,
                                             std::int64_t nodes,
                                             const ConfigSpec& cspec) {
  validate::CheckerOptions options;
  options.nodes = nodes;
  options.scheduler = scheduler;
  // Crashes ride the outage mechanism, so they slip promises the same
  // way scheduled outages do.
  options.outages = cspec.outages || cspec.faults;
  return options;
}

/// Copy a config's recovery knobs onto a simulation spec. The fault
/// seed itself is per-cell (derived from the cell seed) and set by the
/// materialized path only; streaming workloads reject fault configs at
/// validate().
void apply_recovery(const ConfigSpec& cspec, sim::SimulationSpec& sim_spec) {
  sim_spec.checkpoint = cspec.checkpoint;
  sim_spec.dump = cspec.dump;
  sim_spec.read = cspec.read;
  sim_spec.retry_limit = cspec.retry_limit;
  sim_spec.backoff = cspec.backoff;
  sim_spec.overrun = cspec.overrun;
  sim_spec.grace = cspec.grace;
}

[[noreturn]] void throw_validation_failure(
    const std::string& scheduler, const validate::InvariantChecker& checker) {
  throw std::runtime_error("campaign: invariant violations under '" +
                           scheduler + "': " + checker.summary());
}

/// Deterministic per-cell trace path: keyed by the cell's linear index
/// only, so the file set is identical at any thread count (the
/// trace-determinism test diffs these byte-for-byte across runs).
std::string cell_trace_path(const CampaignSpec& spec, const CellSpec& cell) {
  return spec.telemetry_dir + "/cell_" + std::to_string(cell.index) +
         ".trace.jsonl";
}

/// Run one streaming cell: build the per-cell JobSource (StreamReader
/// for trace files, ModelJobSource for models) and replay it through
/// the bounded-memory engine path. Per-job completion records are kept
/// for exact metric aggregation. Open-loop streamed cells make the
/// same decisions as a materialized run of the same workload;
/// closed-loop cells resolve fields 17/18 within the lookahead window
/// and can diverge from a materialized run when a dependent is pulled
/// after its predecessor terminated (see README, "closed-loop caveat")
/// — raise `lookahead` to cover the trace's dependency spans when
/// comparing stream=0 against stream=1 cells.
sim::ReplayResult run_stream_cell(const CampaignSpec& spec,
                                  const CellSpec& cell,
                                  const WorkloadSpec& wspec,
                                  const ConfigSpec& cspec,
                                  obs::TelemetryRegistry* telemetry) {
  sim::SimulationSpec sim_spec;
  sim_spec.scheduler = spec.schedulers.at(cell.scheduler);
  sim_spec.closed_loop = cspec.closed_loop;
  sim_spec.deliver_announcements = cspec.deliver_announcements;
  sim_spec.lookahead = wspec.lookahead;
  sim_spec.recycle_slots = true;
  apply_recovery(cspec, sim_spec);
  if (telemetry) sim_spec.with_trace(cell_trace_path(spec, cell));
  // Node resolution is replay()'s: the source header's MaxNodes (the
  // generator writes machine_nodes there) or kDefaultNodes, unless the
  // spec pins a size.
  if (spec.nodes > 0) sim_spec.nodes = spec.nodes;

  const auto replay_source = [&](swf::JobSource& source) {
    if (!cspec.validate && !telemetry) return sim::replay(source, sim_spec);
    // Both the invariant checker and the telemetry observer need the
    // scheduler instance in hand (to watch its profile), so these
    // paths build it themselves instead of letting replay() resolve
    // the spec string.
    auto scheduler = sched::make_scheduler(sim_spec.scheduler);
    sim::ReplayHooks hooks;
    std::optional<obs::TelemetryObserver> telemetry_observer;
    if (telemetry) {
      telemetry_observer.emplace(*telemetry);
      telemetry_observer->watch(*scheduler);
      hooks.observe(*telemetry_observer);
    }
    std::optional<validate::InvariantChecker> checker;
    if (cspec.validate) {
      const std::int64_t nodes = sim_spec.nodes.value_or(
          source.header().max_nodes.value_or(sim::kDefaultNodes));
      checker.emplace(checker_options_for(sim_spec.scheduler, nodes, cspec));
      checker->watch(*scheduler);
      hooks.observe(*checker);
    }
    auto result = sim::replay(source, std::move(scheduler), sim_spec, hooks);
    if (checker && !checker->clean()) {
      throw_validation_failure(sim_spec.scheduler, *checker);
    }
    return result;
  };

  if (wspec.model) {
    workload::GeneratorSpec gen;
    gen.kind = *wspec.model;
    gen.config.jobs = wspec.jobs;
    gen.config.machine_nodes = spec.nodes > 0
                                   ? spec.nodes
                                   : workload::ModelConfig{}.machine_nodes;
    gen.seed = cell.seed;
    gen.max_jobs = wspec.jobs;
    workload::ModelJobSource source(gen);
    return replay_source(source);
  }

  // The workload picks its ingestion backend: the constant-memory
  // StreamReader (default) or the mmap'd chunk-parallel FastReader.
  swf::IngestOptions ingest;
  ingest.fast = wspec.parser == "fast";
  ingest.threads = wspec.threads;
  const auto source = swf::open_trace_source(wspec.trace_path, ingest);
  if (source->open_failed()) {
    throw std::runtime_error("campaign: cannot open trace '" +
                             wspec.trace_path + "'");
  }
  auto result = replay_source(*source);
  // Malformed lines are fatal, exactly like the preload path: a report
  // over a silently shrunken workload is worse than failing.
  if (source->error_count() > 0 || result.source_pulled == 0) {
    std::string detail = source->error_count() > 0
                             ? std::to_string(source->error_count()) +
                                   " malformed line(s)"
                             : "no job records";
    if (!source->errors().empty()) {
      detail += "; line " + std::to_string(source->errors().front().line) +
                ": " + source->errors().front().message;
    }
    throw std::runtime_error("campaign: trace '" + wspec.trace_path +
                             "': " + detail);
  }
  return result;
}

/// Load the trace-file workloads once, up front, applying any load
/// rescaling here (it is deterministic, so the result is shared by all
/// cells); model and streamed workloads get an empty placeholder so
/// the vector stays index-aligned.
std::vector<PreloadedWorkload> preload_traces(const CampaignSpec& spec) {
  std::vector<PreloadedWorkload> traces(spec.workloads.size());
  for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
    const auto& w = spec.workloads[i];
    if (w.model || w.stream) continue;
    swf::FastReaderOptions fast_options;
    fast_options.threads = w.threads;
    auto result = w.parser == "fast"
                      ? swf::fast_read_swf_file(w.trace_path, fast_options)
                      : swf::read_swf_file(w.trace_path);
    // Malformed lines are fatal (matching swf_tool): an experiment on a
    // silently shrunken workload would misreport every metric.
    if (!result.ok()) {
      std::string detail;
      const std::size_t shown = std::min<std::size_t>(result.errors.size(), 5);
      for (std::size_t e = 0; e < shown; ++e) {
        if (e) detail += "; ";
        detail += "line " + std::to_string(result.errors[e].line) + ": " +
                  result.errors[e].message;
      }
      if (result.errors.size() > shown) {
        detail += "; ... (" + std::to_string(result.errors.size() - shown) +
                  " more)";
      }
      throw std::runtime_error("campaign: cannot load trace '" +
                               w.trace_path + "': " + detail);
    }
    if (result.trace.records.empty()) {
      // An empty or header-only file parses "cleanly" but would fill
      // the reports with all-zero rows.
      throw std::runtime_error("campaign: trace '" + w.trace_path +
                               "' contains no job records");
    }
    traces[i].trace = std::move(result.trace);
    if (w.load > 0.0) {
      const auto nodes = effective_nodes(spec, w, &traces[i].trace);
      // scale_to_load silently returns degenerate traces unchanged; a
      // report claiming a load the run never had would be worse than
      // failing here.
      if (workload::offered_load(traces[i].trace, nodes) <= 0.0) {
        throw std::runtime_error(
            "campaign: trace '" + w.trace_path +
            "' has degenerate offered load and cannot be rescaled");
      }
      traces[i].trace =
          workload::scale_to_load(traces[i].trace, w.load, nodes);
    }
    traces[i].summary_jobs = count_summary_jobs(traces[i].trace);
  }
  return traces;
}

}  // namespace

CellResult run_cell(const CampaignSpec& spec, const CellSpec& cell,
                    const std::vector<PreloadedWorkload>& preloaded) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto& wspec = spec.workloads.at(cell.workload);
  const auto& cspec = spec.configs.at(cell.config);
  util::Rng rng(cell.seed);
  // One registry per cell: summaries must not bleed across cells, and
  // a per-cell instance keeps the increments contention-free.
  const bool want_telemetry = !spec.telemetry_dir.empty();
  obs::TelemetryRegistry telemetry;

  if (wspec.stream) {
    const auto replay_result = run_stream_cell(
        spec, cell, wspec, cspec, want_telemetry ? &telemetry : nullptr);
    CellResult result;
    result.cell = cell;
    result.metrics =
        metrics::compute_report(replay_result.completed, replay_result.stats);
    result.workload_jobs = std::size_t(replay_result.source_pulled);
    result.telemetry = telemetry.summary();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  }

  // 1. Workload: regenerate (and rescale) from the cell seed, or use
  // the shared preloaded trace, which is already rescaled — no per-cell
  // copy of trace-file workloads. Cells sharing a (workload,
  // replication) seed regenerate identical synthetic traces rather
  // than sharing a cached one: generation is cheap next to simulation,
  // and this keeps worker memory bounded for large campaigns.
  swf::Trace generated;
  const swf::Trace* trace;
  std::int64_t nodes;
  std::size_t summary_jobs;
  if (wspec.model) {
    nodes = effective_nodes(spec, wspec, nullptr);
    workload::ModelConfig mconfig;
    mconfig.jobs = wspec.jobs;
    mconfig.machine_nodes = nodes;
    generated = workload::generate(*wspec.model, mconfig, rng);
    if (wspec.load > 0.0) {
      if (workload::offered_load(generated, nodes) <= 0.0) {
        throw std::runtime_error("campaign: workload '" + wspec.label +
                                 "' has degenerate offered load and cannot "
                                 "be rescaled");
      }
      generated = workload::scale_to_load(generated, wspec.load, nodes);
    }
    trace = &generated;
    summary_jobs = count_summary_jobs(generated);
  } else {
    const auto& loaded = preloaded.at(cell.workload);
    trace = &loaded.trace;
    summary_jobs = loaded.summary_jobs;
    nodes = effective_nodes(spec, wspec, trace);
  }

  // 2. Engine configuration, including a per-cell outage stream (a
  // runtime attachment, so it rides in the hooks, not the spec).
  sim::SimulationSpec sim_spec;
  sim_spec.scheduler = spec.schedulers.at(cell.scheduler);
  sim_spec.nodes = nodes;
  sim_spec.closed_loop = cspec.closed_loop;
  sim_spec.deliver_announcements = cspec.deliver_announcements;
  apply_recovery(cspec, sim_spec);
  if (cspec.faults) {
    // Per-cell crash stream: pure function of the cell seed, so every
    // scheduler/config faces the same crashes (common random numbers)
    // and replications sample fresh ones — at any thread count.
    const std::uint64_t fault_seed = util::derive_seed(cell.seed, 0xFA);
    sim_spec.faults = fault_seed != 0 ? fault_seed : 1;
    sim_spec.mtbf = cspec.mtbf;
    sim_spec.repair = cspec.repair;
  }
  sim::ReplayHooks hooks;
  outage::OutageLog outages;
  if (cspec.outages) {
    outages = outage::generate_failures(outage::FailureModelParams{},
                                        trace->horizon(), nodes, rng);
    hooks.with_outages(outages);
  }

  // 3. Replay and aggregate (validate cells ride an invariant checker,
  // telemetry cells a registry observer + per-cell trace sink).
  if (want_telemetry) sim_spec.with_trace(cell_trace_path(spec, cell));
  sim::ReplayResult replay_result;
  if (cspec.validate || want_telemetry) {
    auto scheduler = sched::make_scheduler(sim_spec.scheduler);
    std::optional<obs::TelemetryObserver> telemetry_observer;
    if (want_telemetry) {
      telemetry_observer.emplace(telemetry);
      telemetry_observer->watch(*scheduler);
      hooks.observe(*telemetry_observer);
    }
    std::optional<validate::InvariantChecker> checker;
    if (cspec.validate) {
      checker.emplace(checker_options_for(sim_spec.scheduler, nodes, cspec));
      checker->watch(*scheduler);
      hooks.observe(*checker);
    }
    replay_result = sim::replay(*trace, std::move(scheduler), sim_spec, hooks);
    if (checker && !checker->clean()) {
      throw_validation_failure(sim_spec.scheduler, *checker);
    }
  } else {
    replay_result = sim::replay(*trace, sim_spec, hooks);
  }

  CellResult result;
  result.cell = cell;
  result.metrics =
      metrics::compute_report(replay_result.completed, replay_result.stats);
  result.workload_jobs = summary_jobs;
  result.telemetry = telemetry.summary();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

CampaignRun run_campaign(const CampaignSpec& spec,
                         const RunnerOptions& options) {
  spec.validate();
  const auto cells = expand(spec);
  const auto traces = preload_traces(spec);

  // Cell workers open `<dir>/cell_N.trace.jsonl` with plain ofstream;
  // make the directory exist before any of them race to the first open.
  if (!spec.telemetry_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spec.telemetry_dir, ec);
    if (ec) {
      throw std::runtime_error("campaign: cannot create telemetry "
                               "directory '" + spec.telemetry_dir +
                               "': " + ec.message());
    }
  }

  CampaignRun run;
  run.spec = spec;
  run.cells.resize(cells.size());

  // Trace-file workloads without a generated outage or crash stream
  // never touch the cell RNG: their replications would be
  // byte-identical re-runs. Simulate replication 0 only and materialize
  // the copies afterwards.
  const auto seed_independent = [&](const CellSpec& cell) {
    return !spec.workloads[cell.workload].model &&
           !spec.configs[cell.config].outages &&
           !spec.configs[cell.config].faults;
  };
  std::vector<std::size_t> work;
  work.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!(seed_independent(cells[i]) && cells[i].replication > 0)) {
      work.push_back(i);
    }
  }

  int threads = options.threads;
  if (threads <= 0) {
    threads = int(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = int(std::min<std::size_t>(std::size_t(threads),
                                      std::max<std::size_t>(work.size(), 1)));

  std::atomic<std::size_t> next{0};
  std::mutex mutex;  // guards first_error, done, progress callback
  std::size_t done = 0;
  std::exception_ptr first_error;

  auto worker = [&]() {
    for (;;) {
      const std::size_t w = next.fetch_add(1, std::memory_order_relaxed);
      if (w >= work.size()) return;
      const std::size_t i = work[w];
      try {
        run.cells[i] = run_cell(spec, cells[i], traces);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
        // Stop handing out new cells; in-flight cells still finish.
        next.store(work.size(), std::memory_order_relaxed);
        continue;
      }
      if (options.progress) {
        std::lock_guard<std::mutex> lock(mutex);
        try {
          options.progress(++done, work.size());
        } catch (...) {
          // A throwing observer must not escape a std::thread body.
          if (!first_error) first_error = std::current_exception();
          next.store(work.size(), std::memory_order_relaxed);
        }
      }
    }
  };

  if (threads == 1) {
    worker();  // run inline: simpler stacks, and what the tests exercise
  } else {
    std::vector<std::thread> pool;
    pool.reserve(std::size_t(threads));
    try {
      for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    } catch (...) {
      // Thread creation failed (e.g. EAGAIN): stop the queue and join
      // what spawned — destroying joinable threads would terminate().
      next.store(work.size(), std::memory_order_relaxed);
      for (auto& thread : pool) thread.join();
      throw;
    }
    for (auto& thread : pool) thread.join();
  }

  if (first_error) std::rethrow_exception(first_error);

  // Materialize the skipped deterministic replications from their
  // replication-0 sibling (replication is the innermost axis, so the
  // sibling sits `replication` slots earlier).
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (seed_independent(cells[i]) && cells[i].replication > 0) {
      run.cells[i] = run.cells[i - std::size_t(cells[i].replication)];
      run.cells[i].cell = cells[i];
      run.cells[i].wall_seconds = 0.0;
    }
  }
  return run;
}

}  // namespace pjsb::exp
