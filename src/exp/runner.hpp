// Parallel campaign execution.
//
// A work-queue thread pool drains the cell list produced by
// exp/campaign.hpp. Every cell is self-contained — its workload,
// outage stream and scheduler are built from the cell seed alone, and
// its result lands in a preallocated slot indexed by the cell's linear
// index — so the output is byte-identical at any thread count (the
// determinism regression test in tests/exp/ holds the runner to that).
#pragma once

#include <functional>
#include <vector>

#include "exp/campaign.hpp"
#include "metrics/aggregate.hpp"
#include "obs/telemetry.hpp"

namespace pjsb::exp {

struct RunnerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int threads = 0;
  /// Progress observer, invoked serially (under the runner's mutex)
  /// after each *simulated* cell. `total` counts simulated cells: the
  /// runner skips replications that provably cannot differ (trace-file
  /// workload, no outage stream) and copies replication 0 instead.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// The outcome of one cell.
struct CellResult {
  CellSpec cell;
  metrics::MetricsReport metrics;
  /// Jobs in the replayed workload (before any were lost to the run).
  std::size_t workload_jobs = 0;
  /// Wall-clock cost of the cell. Informational only — never written
  /// to CSV/JSON reports, which must be deterministic.
  double wall_seconds = 0.0;
  /// Per-cell counters/histograms rollup. All zeros unless the
  /// campaign set `telemetry =` (exp::telemetry_csv emits it).
  obs::TelemetrySummary telemetry;
};

/// A completed campaign: the spec plus one result per cell, in linear
/// cell-index order.
struct CampaignRun {
  CampaignSpec spec;
  std::vector<CellResult> cells;
};

/// Execute every cell of `spec`. Trace-file workloads are loaded once
/// up front (std::runtime_error if unreadable); synthetic workloads are
/// generated per cell from the cell seed. Exceptions thrown by cells
/// are rethrown after all workers finish.
CampaignRun run_campaign(const CampaignSpec& spec,
                         const RunnerOptions& options = {});

/// A trace-file workload loaded (and rescaled) once for all its cells.
/// Model workloads use an empty placeholder to keep the vector aligned
/// with spec.workloads.
struct PreloadedWorkload {
  swf::Trace trace;
  std::size_t summary_jobs = 0;  ///< precomputed whole-job record count
};

/// Execute a single cell (the unit the pool workers run). Exposed for
/// tests and for embedding in custom drivers. `preloaded` holds one
/// entry per spec.workloads index, already rescaled to the workload's
/// target load; entries for model workloads are ignored.
CellResult run_cell(const CampaignSpec& spec, const CellSpec& cell,
                    const std::vector<PreloadedWorkload>& preloaded);

}  // namespace pjsb::exp
