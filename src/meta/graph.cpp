#include "meta/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace pjsb::meta {

std::int64_t ProgramGraph::total_work() const {
  std::int64_t w = 0;
  for (const auto& m : modules) w += m.procs * m.runtime;
  return w;
}

std::int64_t ProgramGraph::max_module_procs() const {
  std::int64_t p = 0;
  for (const auto& m : modules) p = std::max(p, m.procs);
  return p;
}

std::int64_t ProgramGraph::total_procs() const {
  std::int64_t p = 0;
  for (const auto& m : modules) p += m.procs;
  return p;
}

std::int64_t ProgramGraph::total_bytes() const {
  std::int64_t b = 0;
  for (const auto& e : edges) b += e.bytes;
  return b;
}

std::vector<std::vector<std::size_t>> ProgramGraph::stages() const {
  if (coupled) {
    std::vector<std::size_t> all(modules.size());
    for (std::size_t i = 0; i < modules.size(); ++i) all[i] = i;
    return {all};
  }
  // Longest-path leveling (Kahn) over the DAG.
  const std::size_t n = modules.size();
  std::vector<std::size_t> indeg(n, 0);
  std::vector<std::vector<std::size_t>> succ(n);
  for (const auto& e : edges) {
    if (e.from >= n || e.to >= n) {
      throw std::invalid_argument("ProgramGraph: edge index out of range");
    }
    ++indeg[e.to];
    succ[e.from].push_back(e.to);
  }
  std::vector<std::size_t> level(n, 0);
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  std::size_t processed = 0;
  std::size_t max_level = 0;
  while (!ready.empty()) {
    const std::size_t u = ready.back();
    ready.pop_back();
    ++processed;
    for (std::size_t v : succ[u]) {
      level[v] = std::max(level[v], level[u] + 1);
      max_level = std::max(max_level, level[v]);
      if (--indeg[v] == 0) ready.push_back(v);
    }
  }
  if (processed != n) throw std::invalid_argument("ProgramGraph: cycle");
  std::vector<std::vector<std::size_t>> out(max_level + 1);
  for (std::size_t i = 0; i < n; ++i) out[level[i]].push_back(i);
  return out;
}

std::int64_t ProgramGraph::critical_path() const {
  std::int64_t cp = 0;
  for (const auto& stage : stages()) {
    std::int64_t longest = 0;
    for (std::size_t i : stage) longest = std::max(longest,
                                                   modules[i].runtime);
    cp += longest;
  }
  return cp;
}

ProgramGraph make_compute_intensive(std::int64_t total_procs,
                                    std::int64_t runtime, util::Rng& rng) {
  // "A compute-intensive meta-application that can use all the cycles
  // from all the machines it can get": a bag of large independent
  // chunks with negligible communication.
  ProgramGraph g;
  g.name = "compute-intensive";
  const int chunks = int(rng.uniform_int(2, 4));
  const std::int64_t per = std::max<std::int64_t>(1, total_procs / chunks);
  for (int i = 0; i < chunks; ++i) {
    g.modules.push_back({per, runtime, -1});
  }
  g.coupled = false;
  return g;
}

ProgramGraph make_communication_intensive(std::size_t n_modules,
                                          std::int64_t procs_per_module,
                                          std::int64_t runtime,
                                          util::Rng& rng) {
  // "A communication-intensive meta application that requires extensive
  // data transfers between its parts": tightly coupled, all-to-all
  // heavy edges, must be co-allocated.
  ProgramGraph g;
  g.name = "communication-intensive";
  g.coupled = true;
  for (std::size_t i = 0; i < n_modules; ++i) {
    g.modules.push_back({procs_per_module, runtime, -1});
  }
  for (std::size_t i = 0; i < n_modules; ++i) {
    for (std::size_t j = i + 1; j < n_modules; ++j) {
      g.edges.push_back({i, j, rng.uniform_int(1 << 20, 1 << 26)});
    }
  }
  return g;
}

ProgramGraph make_parameter_sweep(std::size_t n_tasks,
                                  std::int64_t procs_per_task,
                                  std::int64_t mean_runtime,
                                  util::Rng& rng) {
  ProgramGraph g;
  g.name = "parameter-sweep";
  g.coupled = false;
  for (std::size_t i = 0; i < n_tasks; ++i) {
    const auto rt = std::max<std::int64_t>(
        1, std::int64_t(rng.exponential(1.0 / double(mean_runtime))));
    g.modules.push_back({procs_per_task, rt, -1});
  }
  return g;
}

ProgramGraph make_pipeline(std::size_t n_stages, std::int64_t procs,
                           std::int64_t stage_runtime, util::Rng& rng) {
  ProgramGraph g;
  g.name = "pipeline";
  g.coupled = false;
  for (std::size_t i = 0; i < n_stages; ++i) {
    g.modules.push_back({procs, stage_runtime, -1});
    if (i > 0) {
      g.edges.push_back({i - 1, i, rng.uniform_int(1 << 16, 1 << 22)});
    }
  }
  return g;
}

ProgramGraph make_device_constrained(std::int64_t procs,
                                     std::int64_t runtime,
                                     std::int64_t device_site,
                                     util::Rng& rng) {
  // "A meta-application that requires a specific set of devices from
  // different locations": a compute module plus a module pinned to the
  // site hosting the device (e.g. a visualization engine).
  ProgramGraph g;
  g.name = "device-constrained";
  g.coupled = false;
  g.modules.push_back({procs, runtime, -1});
  g.modules.push_back({1, std::max<std::int64_t>(1, runtime / 4),
                       device_site});
  g.edges.push_back({0, 1, rng.uniform_int(1 << 20, 1 << 24)});
  return g;
}

}  // namespace pjsb::meta
