// Annotated program graphs (section 4.3: "we will represent
// [benchmark applications] using annotated graphs, and simulate the
// execution by interpreting the graphs. Legion program graphs are
// well-suited to this purpose.")
//
// A module is a rigid computation (procs, runtime on dedicated procs);
// edges carry data volumes and impose precedence. `coupled` graphs are
// single-phase tightly-coupled applications whose modules must execute
// simultaneously (the co-allocation case); uncoupled graphs are DAGs
// executed stage by stage.
//
// The micro-benchmark generators below are the paper's own list
// (section 3.2): compute-intensive, communication-intensive, and
// device-constrained meta-applications, plus a parameter-sweep
// bag-of-tasks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pjsb::meta {

struct Module {
  std::int64_t procs = 1;
  std::int64_t runtime = 1;   ///< on dedicated processors
  std::int64_t device_id = -1;  ///< required device/site (-1 = any)
};

struct Edge {
  std::size_t from = 0;
  std::size_t to = 0;
  std::int64_t bytes = 0;
};

struct ProgramGraph {
  std::string name;
  std::vector<Module> modules;
  std::vector<Edge> edges;
  /// Tightly coupled: all modules run simultaneously and communicate
  /// throughout; placement requires co-allocation (or folding onto one
  /// machine).
  bool coupled = false;

  std::int64_t total_work() const;      ///< sum procs * runtime
  std::int64_t critical_path() const;   ///< longest runtime path (DAG)
  std::int64_t max_module_procs() const;
  std::int64_t total_procs() const;     ///< sum of module procs
  std::int64_t total_bytes() const;

  /// Topological stages: modules grouped by DAG depth. Coupled graphs
  /// return a single stage with every module. Throws on cycles.
  std::vector<std::vector<std::size_t>> stages() const;
};

/// Micro-benchmark generators (section 3.2).
ProgramGraph make_compute_intensive(std::int64_t total_procs,
                                    std::int64_t runtime, util::Rng& rng);
ProgramGraph make_communication_intensive(std::size_t n_modules,
                                          std::int64_t procs_per_module,
                                          std::int64_t runtime,
                                          util::Rng& rng);
ProgramGraph make_parameter_sweep(std::size_t n_tasks,
                                  std::int64_t procs_per_task,
                                  std::int64_t mean_runtime,
                                  util::Rng& rng);
ProgramGraph make_pipeline(std::size_t n_stages, std::int64_t procs,
                           std::int64_t stage_runtime, util::Rng& rng);
ProgramGraph make_device_constrained(std::int64_t procs,
                                     std::int64_t runtime,
                                     std::int64_t device_site,
                                     util::Rng& rng);

}  // namespace pjsb::meta
