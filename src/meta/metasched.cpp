#include "meta/metasched.hpp"

#include <algorithm>
#include <limits>

#include "sched/profile.hpp"
#include "sched/reservation.hpp"
#include "util/rng.hpp"

namespace pjsb::meta {

Component fold_coupled(std::span<const Component> components) {
  Component folded;
  folded.procs = 0;
  folded.runtime = 0;
  folded.estimate = 0;
  for (const auto& c : components) {
    folded.procs += c.procs;
    folded.runtime = std::max(folded.runtime, c.runtime);
    folded.estimate = std::max(folded.estimate, c.estimate);
    folded.device_site = std::max(folded.device_site, c.device_site);
  }
  return folded;
}

std::vector<std::vector<Component>> components_from_graph(
    const ProgramGraph& graph) {
  std::vector<std::vector<Component>> out;
  for (const auto& stage : graph.stages()) {
    std::vector<Component> comps;
    comps.reserve(stage.size());
    for (std::size_t i : stage) {
      const auto& m = graph.modules[i];
      Component c;
      c.procs = m.procs;
      c.runtime = m.runtime;
      c.estimate = m.runtime * 2;  // meta apps carry loose estimates too
      c.device_site = m.device_id;
      comps.push_back(c);
    }
    out.push_back(std::move(comps));
  }
  return out;
}

namespace {

/// Sites a component may run on (device pinning + size fit).
std::vector<std::size_t> eligible_sites(const Component& c,
                                        std::span<Site* const> sites) {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < sites.size(); ++s) {
    if (c.device_site >= 0 && std::int64_t(s) != c.device_site) continue;
    if (c.procs > sites[s]->nodes()) continue;
    out.push_back(s);
  }
  return out;
}

/// Submit every component of an (uncoupled) stage to the site chosen by
/// `pick`; coupled stages are folded onto one site.
template <typename PickFn>
Placement place_by(std::span<const Component> components, bool coupled,
                   std::span<Site* const> sites, std::int64_t now,
                   PickFn&& pick) {
  Placement p;
  if (coupled && components.size() > 1) {
    const Component folded = fold_coupled(components);
    const auto eligible = eligible_sites(folded, sites);
    if (!eligible.empty()) {
      const std::size_t s = pick(folded, eligible);
      const std::int64_t id = sites[s]->submit_meta_job(
          now, folded.procs, folded.runtime, folded.estimate);
      p.jobs.emplace_back(s, id);
      return p;
    }
    // No single site can fold it; fall through and submit components
    // independently (losing coupling — recorded as not co-allocated).
  }
  for (const auto& c : components) {
    const auto eligible = eligible_sites(c, sites);
    if (eligible.empty()) continue;  // unsatisfiable component
    const std::size_t s = pick(c, eligible);
    const std::int64_t id =
        sites[s]->submit_meta_job(now, c.procs, c.runtime, c.estimate);
    p.jobs.emplace_back(s, id);
  }
  return p;
}

class RandomMeta final : public MetaScheduler {
 public:
  explicit RandomMeta(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }

  Placement place(std::span<const Component> components, bool coupled,
                  std::span<Site* const> sites, std::int64_t now) override {
    return place_by(components, coupled, sites, now,
                    [this](const Component&,
                           const std::vector<std::size_t>& eligible) {
                      const auto i = rng_.uniform_int(
                          0, std::int64_t(eligible.size()) - 1);
                      return eligible[std::size_t(i)];
                    });
  }

 private:
  util::Rng rng_;
};

class LeastQueuedMeta final : public MetaScheduler {
 public:
  std::string name() const override { return "least-queued"; }

  Placement place(std::span<const Component> components, bool coupled,
                  std::span<Site* const> sites, std::int64_t now) override {
    return place_by(components, coupled, sites, now,
                    [&sites](const Component&,
                             const std::vector<std::size_t>& eligible) {
                      std::size_t best = eligible.front();
                      for (std::size_t s : eligible) {
                        if (sites[s]->queue_length() <
                            sites[best]->queue_length()) {
                          best = s;
                        }
                      }
                      return best;
                    });
  }
};

class MinWaitMeta final : public MetaScheduler {
 public:
  std::string name() const override { return "min-wait"; }

  Placement place(std::span<const Component> components, bool coupled,
                  std::span<Site* const> sites, std::int64_t now) override {
    return place_by(
        components, coupled, sites, now,
        [&sites](const Component& c,
                 const std::vector<std::size_t>& eligible) {
          std::size_t best = eligible.front();
          double best_wait = std::numeric_limits<double>::infinity();
          for (std::size_t s : eligible) {
            const auto w = sites[s]->predicted_wait(c.procs, c.estimate);
            // Fall back to queue length scaled to seconds-ish.
            const double wait =
                w ? double(*w)
                  : 600.0 * double(sites[s]->queue_length());
            if (wait < best_wait) {
              best_wait = wait;
              best = s;
            }
          }
          return best;
        });
  }
};

class CoAllocMeta final : public MetaScheduler {
 public:
  std::string name() const override { return "co-alloc"; }

  Placement place(std::span<const Component> components, bool coupled,
                  std::span<Site* const> sites, std::int64_t now) override {
    if (!coupled || components.size() < 2) {
      return MinWaitMeta{}.place(components, coupled, sites, now);
    }
    Placement p;
    p.attempted_co_allocation = true;

    // Assign components to distinct sites, biggest component to the
    // biggest eligible site first.
    std::vector<std::size_t> order(components.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return components[a].procs > components[b].procs;
    });
    std::vector<int> assigned(components.size(), -1);
    std::vector<bool> site_used(sites.size(), false);
    for (std::size_t i : order) {
      const auto eligible = eligible_sites(components[i], sites);
      std::int64_t best_nodes = -1;
      for (std::size_t s : eligible) {
        if (site_used[s]) continue;
        if (sites[s]->nodes() > best_nodes) {
          best_nodes = sites[s]->nodes();
          assigned[i] = int(s);
        }
      }
      if (assigned[i] >= 0) site_used[std::size_t(assigned[i])] = true;
    }
    const bool all_assigned =
        std::none_of(assigned.begin(), assigned.end(),
                     [](int s) { return s < 0; });

    if (all_assigned) {
      // Fixpoint over per-site earliest reservation queries.
      std::vector<sched::EarliestStartFn> queries;
      queries.reserve(components.size());
      for (std::size_t i = 0; i < components.size(); ++i) {
        const auto& c = components[i];
        Site* site = sites[std::size_t(assigned[i])];
        const std::int64_t duration = std::max(c.estimate, c.runtime);
        queries.push_back([site, duration, procs = c.procs](
                              std::int64_t from) -> std::int64_t {
          const auto t = site->earliest_reservation(from, duration, procs);
          return t ? *t : sched::kForever;
        });
      }
      const auto window =
          sched::find_common_window(queries, now + 1);
      if (window) {
        std::vector<std::pair<std::size_t, std::int64_t>> jobs;
        bool ok = true;
        for (std::size_t i = 0; i < components.size(); ++i) {
          const auto& c = components[i];
          const std::size_t s = std::size_t(assigned[i]);
          const auto id = sites[s]->reserve_meta_job(*window, c.procs,
                                                     c.runtime, c.estimate);
          if (!id) {
            ok = false;
            break;
          }
          jobs.emplace_back(s, *id);
        }
        if (ok) {
          p.jobs = std::move(jobs);
          p.co_allocated = true;
          return p;
        }
        // Partial failure: the committed components will still run;
        // submit the rest unreserved below so the app completes.
        p.jobs = std::move(jobs);
      }
    }

    // Fallback: fold onto the min-wait site (or independent submission
    // when folding is impossible).
    auto rest = MinWaitMeta{}.place(
        components.subspan(p.jobs.size()), coupled,
        sites, now);
    p.jobs.insert(p.jobs.end(), rest.jobs.begin(), rest.jobs.end());
    return p;
  }
};

}  // namespace

std::unique_ptr<MetaScheduler> make_random_meta(std::uint64_t seed) {
  return std::make_unique<RandomMeta>(seed);
}
std::unique_ptr<MetaScheduler> make_least_queued_meta() {
  return std::make_unique<LeastQueuedMeta>();
}
std::unique_ptr<MetaScheduler> make_min_wait_meta() {
  return std::make_unique<MinWaitMeta>();
}
std::unique_ptr<MetaScheduler> make_coalloc_meta() {
  return std::make_unique<CoAllocMeta>();
}

}  // namespace pjsb::meta
