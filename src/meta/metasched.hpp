// Meta-schedulers (top of the paper's Figure 1): policies that pick
// which machine scheduler(s) should serve an application, using the
// information services the sites export.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "meta/graph.hpp"
#include "meta/site.hpp"

namespace pjsb::meta {

/// One schedulable component of an application stage.
struct Component {
  std::int64_t procs = 1;
  std::int64_t runtime = 1;
  std::int64_t estimate = 1;
  std::int64_t device_site = -1;  ///< pinned site index, or -1 = any
};

/// Placement outcome for one stage.
struct Placement {
  /// Submitted job ids, parallel to the component list, as
  /// (site index, job id) pairs.
  std::vector<std::pair<std::size_t, std::int64_t>> jobs;
  bool co_allocated = false;
  bool attempted_co_allocation = false;
};

class MetaScheduler {
 public:
  virtual ~MetaScheduler() = default;
  virtual std::string name() const = 0;

  /// Place one stage of an application at time `now`. `coupled` stages
  /// require simultaneous execution of all components. Implementations
  /// must submit the jobs (via the sites) and report what they did.
  virtual Placement place(std::span<const Component> components,
                          bool coupled, std::span<Site* const> sites,
                          std::int64_t now) = 0;
};

/// Uniform-random site choice; coupled stages are folded onto the
/// chosen site as one merged job. The "no information" baseline.
std::unique_ptr<MetaScheduler> make_random_meta(std::uint64_t seed);

/// Pick the site with the shortest local queue.
std::unique_ptr<MetaScheduler> make_least_queued_meta();

/// Pick the site with the smallest scheduler-predicted wait (falls back
/// to queue length where prediction is unavailable).
std::unique_ptr<MetaScheduler> make_min_wait_meta();

/// Co-allocating policy: coupled multi-component stages are spread over
/// sites and granted a common advance-reservation window (fixpoint over
/// per-site earliest-start queries); falls back to single-site folding
/// when reservations cannot be obtained. Uncoupled components go to the
/// min-predicted-wait site.
std::unique_ptr<MetaScheduler> make_coalloc_meta();

/// Fold a coupled stage into one rigid job (sum of procs, max runtime).
Component fold_coupled(std::span<const Component> components);

/// Derive stage components from a program graph.
std::vector<std::vector<Component>> components_from_graph(
    const ProgramGraph& graph);

}  // namespace pjsb::meta
