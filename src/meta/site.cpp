#include "meta/site.hpp"

#include "sched/registry.hpp"
#include "workload/scale.hpp"

namespace pjsb::meta {

Site::Site(const SiteConfig& config) : config_(config) {
  auto scheduler = sched::make_scheduler(config.scheduler);
  backfill_ = dynamic_cast<const sched::BackfillBase*>(scheduler.get());

  sim::EngineConfig ec;
  ec.nodes = config.nodes;
  engine_ = std::make_unique<sim::Engine>(ec, std::move(scheduler));

  // Background workload at the configured offered load.
  util::Rng rng(config.seed);
  workload::ModelConfig mc;
  mc.jobs = config.background_jobs;
  mc.machine_nodes = config.nodes;
  auto trace = workload::generate(config.background_model, mc, rng);
  trace = workload::scale_to_load(trace, config.background_load,
                                  config.nodes);
  engine_->load_trace(trace);

  completion_filter_.job_complete = [this](const sim::CompletedJob& job) {
    if (meta_observer_ && meta_jobs_.count(job.id)) meta_observer_(job);
  };
  engine_->add_observer(completion_filter_);
}

std::optional<std::int64_t> Site::predicted_wait(
    std::int64_t procs, std::int64_t estimate) const {
  const auto start = engine_->scheduler().predict_start(engine_->now(),
                                                        procs, estimate);
  if (!start) return std::nullopt;
  return *start - engine_->now();
}

std::optional<std::int64_t> Site::earliest_reservation(
    std::int64_t from, std::int64_t duration, std::int64_t procs) const {
  if (!backfill_ || procs > config_.nodes) return std::nullopt;
  const std::int64_t t = backfill_->earliest_reservation_start(
      engine_->now(), from, duration, procs, config_.nodes);
  if (t >= sched::kForever) return std::nullopt;
  return t;
}

std::int64_t Site::submit_meta_job(std::int64_t submit_time,
                                   std::int64_t procs, std::int64_t runtime,
                                   std::int64_t estimate) {
  sim::SimJob job;
  job.id = next_meta_id_++;
  job.submit = std::max(submit_time, engine_->now());
  job.procs = procs;
  job.runtime = runtime;
  job.estimate = std::max(estimate, runtime);
  job.queue_id = 2;  // convention: meta queue
  const std::int64_t id = engine_->submit_job(job);
  meta_jobs_.insert(id);
  return id;
}

std::optional<std::int64_t> Site::reserve_meta_job(std::int64_t start,
                                                   std::int64_t procs,
                                                   std::int64_t runtime,
                                                   std::int64_t estimate) {
  // All-or-nothing: commit the reservation first, only then submit the
  // attached job (timed to enter the queue exactly when the window
  // opens — the engine orders submissions before reservation starts).
  const std::int64_t id = next_meta_id_;
  sched::AdvanceReservation res;
  res.start = start;
  res.duration = std::max(estimate, runtime);
  res.procs = procs;
  res.job_id = id;
  if (!engine_->request_reservation(res)) return std::nullopt;
  ++next_meta_id_;

  sim::SimJob job;
  job.id = id;
  job.submit = std::max(start, engine_->now());
  job.procs = procs;
  job.runtime = runtime;
  job.estimate = std::max(estimate, runtime);
  job.queue_id = 2;
  engine_->submit_job(job);
  meta_jobs_.insert(id);
  return id;
}

void Site::set_meta_completion_observer(
    std::function<void(const sim::CompletedJob&)> fn) {
  meta_observer_ = std::move(fn);
}

}  // namespace pjsb::meta
