// A site in the metasystem: one machine + machine scheduler + local
// background workload + the information services a meta-scheduler uses
// (queue length, wait prediction, reservation queries) — the lower half
// of the paper's Figure 1.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "sched/backfill.hpp"
#include "sim/engine.hpp"
#include "workload/model.hpp"

namespace pjsb::meta {

struct SiteConfig {
  std::string name = "site";
  std::int64_t nodes = 128;
  /// Scheduler name for sched::make_scheduler ("easy", "conservative",
  /// "fcfs", ...). Reservations need a profile-based scheduler.
  std::string scheduler = "easy";
  /// Background (locally submitted) workload.
  workload::ModelKind background_model = workload::ModelKind::kLublin99;
  std::size_t background_jobs = 2000;
  double background_load = 0.6;
  std::uint64_t seed = 1;
};

/// Meta job ids live in a reserved range so sites can tell them apart
/// from background jobs.
inline constexpr std::int64_t kMetaJobIdBase = 1'000'000;

class Site {
 public:
  explicit Site(const SiteConfig& config);

  const std::string& name() const { return config_.name; }
  std::int64_t nodes() const { return config_.nodes; }
  sim::Engine& engine() { return *engine_; }
  const sim::Engine& engine() const { return *engine_; }

  /// Current queue length (jobs waiting locally).
  std::size_t queue_length() const { return engine_->queued_jobs(); }

  /// Predicted wait for a (procs, estimate) request submitted now, via
  /// the scheduler's profile if available.
  std::optional<std::int64_t> predicted_wait(std::int64_t procs,
                                             std::int64_t estimate) const;

  /// Earliest feasible advance-reservation start >= from, if the
  /// scheduler supports reservations.
  std::optional<std::int64_t> earliest_reservation(std::int64_t from,
                                                   std::int64_t duration,
                                                   std::int64_t procs) const;

  /// Submit a meta job (starts whenever the local scheduler decides).
  /// Returns its engine job id.
  std::int64_t submit_meta_job(std::int64_t submit_time, std::int64_t procs,
                               std::int64_t runtime, std::int64_t estimate);

  /// Reserve (procs, duration) at `start` and attach a meta job that
  /// will run in the window. Returns the job id, or nullopt if the
  /// reservation was rejected.
  std::optional<std::int64_t> reserve_meta_job(std::int64_t start,
                                               std::int64_t procs,
                                               std::int64_t runtime,
                                               std::int64_t estimate);

  /// True if `job_id` is a meta job of this site.
  bool is_meta_job(std::int64_t job_id) const {
    return meta_jobs_.count(job_id) > 0;
  }

  /// Observer invoked for every completed *meta* job on this site.
  void set_meta_completion_observer(
      std::function<void(const sim::CompletedJob&)> fn);

 private:
  SiteConfig config_;
  std::unique_ptr<sim::Engine> engine_;
  /// Borrowed view of the scheduler, non-null when profile-based.
  const sched::BackfillBase* backfill_ = nullptr;
  std::int64_t next_meta_id_ = kMetaJobIdBase;
  std::unordered_set<std::int64_t> meta_jobs_;
  std::function<void(const sim::CompletedJob&)> meta_observer_;
  /// Filters the engine's completion stream down to meta jobs and
  /// forwards them to meta_observer_ (attached via add_observer).
  sim::FunctionObserver completion_filter_;
};

}  // namespace pjsb::meta
