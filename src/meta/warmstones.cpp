#include "meta/warmstones.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "util/rng.hpp"

namespace pjsb::meta {

std::vector<SiteConfig> canonical_metasystem(std::uint64_t seed) {
  std::vector<SiteConfig> sites(3);
  sites[0].name = "alpha";
  sites[0].nodes = 256;
  sites[0].scheduler = "easy";
  sites[0].background_load = 0.55;
  sites[0].seed = util::derive_seed(seed, 1);
  sites[1].name = "beta";
  sites[1].nodes = 128;
  sites[1].scheduler = "conservative";
  sites[1].background_load = 0.5;
  sites[1].seed = util::derive_seed(seed, 2);
  sites[2].name = "gamma";
  sites[2].nodes = 64;
  sites[2].scheduler = "easy";
  sites[2].background_load = 0.45;
  sites[2].seed = util::derive_seed(seed, 3);
  for (auto& s : sites) s.background_jobs = 1500;
  return sites;
}

std::vector<AppSpec> generate_suite(const WarmstonesConfig& config) {
  util::Rng rng(util::derive_seed(config.seed, 99));
  std::vector<AppSpec> suite;
  suite.reserve(config.apps);
  double t = 0.0;
  for (std::size_t i = 0; i < config.apps; ++i) {
    t += rng.exponential(1.0 / config.mean_interarrival);
    AppSpec app;
    app.arrival = std::int64_t(t);
    switch (rng.uniform_int(0, 4)) {
      case 0:
        app.graph = make_compute_intensive(
            rng.uniform_int(32, 128), rng.uniform_int(600, 7200), rng);
        break;
      case 1:
        app.graph = make_communication_intensive(
            std::size_t(rng.uniform_int(2, 3)), rng.uniform_int(16, 48),
            rng.uniform_int(600, 3600), rng);
        break;
      case 2:
        app.graph = make_parameter_sweep(
            std::size_t(rng.uniform_int(4, 10)), rng.uniform_int(1, 4),
            rng.uniform_int(300, 1800), rng);
        break;
      case 3:
        app.graph = make_pipeline(std::size_t(rng.uniform_int(2, 4)),
                                  rng.uniform_int(8, 32),
                                  rng.uniform_int(300, 2400), rng);
        break;
      default:
        app.graph = make_device_constrained(
            rng.uniform_int(8, 64), rng.uniform_int(600, 3600),
            rng.uniform_int(0, std::int64_t(config.sites.size()) - 1), rng);
        break;
    }
    suite.push_back(std::move(app));
  }
  return suite;
}

namespace {

/// Per-application progress tracking inside the coordinator.
struct AppState {
  std::vector<std::vector<Component>> stages;
  bool coupled = false;
  std::size_t next_stage = 0;
  /// Outstanding (site, job) pairs of the current stage.
  std::set<std::pair<std::size_t, std::int64_t>> outstanding;
  std::int64_t last_completion = 0;
  bool failed = false;
};

struct Action {
  std::int64_t time = 0;
  std::int64_t seq = 0;
  std::size_t app = 0;
};
struct ActionOrder {
  bool operator()(const Action& a, const Action& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

MetaReport evaluate(const WarmstonesConfig& config, MetaScheduler& meta,
                    const std::vector<AppSpec>& suite) {
  // Fresh sites per evaluation so every meta-scheduler sees identical
  // background workloads.
  std::vector<std::unique_ptr<Site>> site_storage;
  std::vector<Site*> sites;
  for (const auto& sc : config.sites) {
    site_storage.push_back(std::make_unique<Site>(sc));
    sites.push_back(site_storage.back().get());
  }

  MetaReport report;
  report.metascheduler = meta.name();
  report.apps.resize(suite.size());
  std::vector<AppState> states(suite.size());

  std::priority_queue<Action, std::vector<Action>, ActionOrder> actions;
  std::int64_t action_seq = 0;

  for (std::size_t i = 0; i < suite.size(); ++i) {
    auto& out = report.apps[i];
    out.index = i;
    out.graph_name = suite[i].graph.name;
    out.arrival = suite[i].arrival;
    out.coupled = suite[i].graph.coupled;
    states[i].stages = components_from_graph(suite[i].graph);
    states[i].coupled = suite[i].graph.coupled;
    actions.push({suite[i].arrival, action_seq++, i});
  }

  // (site, job id) -> app index, for completion routing.
  std::map<std::pair<std::size_t, std::int64_t>, std::size_t> job_owner;

  for (std::size_t s = 0; s < sites.size(); ++s) {
    sites[s]->set_meta_completion_observer(
        [&, s](const sim::CompletedJob& job) {
          const auto key = std::make_pair(s, job.id);
          const auto it = job_owner.find(key);
          if (it == job_owner.end()) return;
          const std::size_t app = it->second;
          auto& st = states[app];
          st.outstanding.erase(key);
          st.last_completion = std::max(st.last_completion, job.end);
          if (st.outstanding.empty()) {
            if (st.next_stage < st.stages.size()) {
              actions.push({st.last_completion, action_seq++, app});
            } else {
              report.apps[app].completion = st.last_completion;
            }
          }
        });
  }

  auto place_next_stage = [&](std::size_t app, std::int64_t when) {
    auto& st = states[app];
    auto& out = report.apps[app];
    if (st.next_stage >= st.stages.size()) return;
    const auto& comps = st.stages[st.next_stage];
    ++st.next_stage;
    const bool coupled_stage = st.coupled && comps.size() > 1;
    Placement p = meta.place(comps, coupled_stage, sites, when);
    if (st.next_stage == 1) {
      out.attempted_co_allocation = p.attempted_co_allocation;
      out.co_allocated = p.co_allocated;
    }
    if (p.jobs.empty()) {
      st.failed = true;
      return;
    }
    for (const auto& [site_idx, job_id] : p.jobs) {
      st.outstanding.insert({site_idx, job_id});
      job_owner[{site_idx, job_id}] = app;
    }
  };

  auto apps_pending = [&]() {
    return std::any_of(report.apps.begin(), report.apps.end(),
                       [&](const AppOutcome& a) {
                         return !a.completed() &&
                                !states[a.index].failed;
                       });
  };

  // Global coordination loop: interleave meta actions and site events in
  // timestamp order.
  while (apps_pending()) {
    const std::int64_t ta =
        actions.empty() ? std::numeric_limits<std::int64_t>::max()
                        : actions.top().time;
    std::int64_t ts = std::numeric_limits<std::int64_t>::max();
    std::size_t next_site = 0;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      const auto t = sites[s]->engine().next_event_time();
      if (t && *t < ts) {
        ts = *t;
        next_site = s;
      }
    }
    if (ta == std::numeric_limits<std::int64_t>::max() &&
        ts == std::numeric_limits<std::int64_t>::max()) {
      break;  // deadlock safeguard: nothing can make progress
    }
    if (ta <= ts) {
      const Action a = actions.top();
      actions.pop();
      // Bring every site up to the action time so queue lengths and
      // predictions reflect the same instant.
      for (auto* site : sites) site->engine().run_until(a.time);
      place_next_stage(a.app, a.time);
    } else {
      sites[next_site]->engine().step();
    }
  }

  // Summarize.
  double turnaround_sum = 0.0, stretch_sum = 0.0;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& out = report.apps[i];
    if (out.attempted_co_allocation) ++report.coalloc_attempts;
    if (out.co_allocated) ++report.coalloc_successes;
    if (!out.completed()) continue;
    ++completed;
    turnaround_sum += double(out.turnaround());
    const auto cp = std::max<std::int64_t>(1, suite[i].graph.critical_path());
    stretch_sum += double(out.turnaround()) / double(cp);
  }
  report.completed_apps = completed;
  if (completed > 0) {
    report.mean_turnaround = turnaround_sum / double(completed);
    report.mean_stretch = stretch_sum / double(completed);
  }
  for (auto* site : sites) {
    report.site_utilization.push_back(site->engine().stats().utilization());
  }
  return report;
}

}  // namespace pjsb::meta
