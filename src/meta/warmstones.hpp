// The WARMstones evaluation environment (paper section 4.3).
//
// "The primary components of WARMstones include a benchmark suite, an
// implementation toolkit for schedulers, a canonical representation of
// metasystems, and a simulation engine to evaluate execution of a suite
// of applications on a metasystem using a particular scheduler."
//
// Mapping onto pjsb: the benchmark suite is a mix of program graphs
// (meta/graph), the implementation toolkit is the MetaScheduler
// interface, the canonical representation is the SiteConfig list, and
// the simulation engine coordinates the per-site DES engines on a
// global clock.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "meta/graph.hpp"
#include "meta/metasched.hpp"
#include "meta/site.hpp"

namespace pjsb::meta {

/// One benchmark application instance with its arrival time.
struct AppSpec {
  std::int64_t arrival = 0;
  ProgramGraph graph;
};

/// Outcome of one application run.
struct AppOutcome {
  std::size_t index = 0;
  std::string graph_name;
  std::int64_t arrival = 0;
  std::int64_t completion = -1;  ///< -1 = never completed (unsatisfiable)
  bool coupled = false;
  bool attempted_co_allocation = false;
  bool co_allocated = false;

  bool completed() const { return completion >= 0; }
  std::int64_t turnaround() const { return completion - arrival; }
};

struct WarmstonesConfig {
  std::vector<SiteConfig> sites;
  std::size_t apps = 40;
  double mean_interarrival = 1800.0;
  std::uint64_t seed = 42;
};

struct MetaReport {
  std::string metascheduler;
  std::vector<AppOutcome> apps;
  double mean_turnaround = 0.0;
  double mean_stretch = 0.0;  ///< turnaround / graph critical path
  std::size_t coalloc_attempts = 0;
  std::size_t coalloc_successes = 0;
  std::size_t completed_apps = 0;
  std::vector<double> site_utilization;
};

/// A canonical 3-site heterogeneous metasystem (different sizes and
/// schedulers), for the experiments and examples.
std::vector<SiteConfig> canonical_metasystem(std::uint64_t seed = 7);

/// Generate the benchmark suite: a seeded mix of the section 3.2
/// micro-benchmarks arriving as a Poisson stream.
std::vector<AppSpec> generate_suite(const WarmstonesConfig& config);

/// Run one meta-scheduler over a suite on fresh sites built from the
/// config. Each call reconstructs the sites (same seeds), so different
/// meta-schedulers face identical backgrounds.
MetaReport evaluate(const WarmstonesConfig& config, MetaScheduler& meta,
                    const std::vector<AppSpec>& suite);

}  // namespace pjsb::meta
