#include "metrics/aggregate.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/string_util.hpp"

namespace pjsb::metrics {

double slowdown(const sim::CompletedJob& job) {
  const double rt = double(std::max<std::int64_t>(1, job.runtime));
  return double(job.response()) / rt;
}

double bounded_slowdown(const sim::CompletedJob& job, std::int64_t tau) {
  const double rt = double(std::max(tau, job.runtime));
  return std::max(1.0, double(job.response()) / rt);
}

MetricsReport compute_report(std::span<const sim::CompletedJob> jobs,
                             const sim::EngineStats& stats) {
  MetricsReport r;
  r.jobs = jobs.size();
  r.jobs_killed = stats.jobs_killed;
  r.jobs_dropped = stats.jobs_dropped;
  if (stats.capacity_node_seconds > 0) {
    r.wasted_fraction = double(stats.wasted_node_seconds) /
                        double(stats.capacity_node_seconds);
  }
  if (jobs.empty()) return r;

  std::vector<double> waits, responses, slowdowns, bslowdowns;
  waits.reserve(jobs.size());
  responses.reserve(jobs.size());
  slowdowns.reserve(jobs.size());
  bslowdowns.reserve(jobs.size());
  double restarts = 0.0;
  for (const auto& j : jobs) {
    waits.push_back(double(j.wait()));
    responses.push_back(double(j.response()));
    slowdowns.push_back(slowdown(j));
    bslowdowns.push_back(bounded_slowdown(j));
    restarts += double(j.restarts);
  }
  const auto wait_summary = util::summarize(waits);
  const auto resp_summary = util::summarize(responses);
  r.mean_wait = wait_summary.mean;
  r.median_wait = wait_summary.median;
  r.p95_wait = wait_summary.p95;
  r.mean_response = resp_summary.mean;
  r.median_response = resp_summary.median;
  r.mean_slowdown = util::summarize(slowdowns).mean;
  r.mean_bounded_slowdown = util::summarize(bslowdowns).mean;
  r.utilization = stats.utilization();
  r.makespan = stats.makespan;
  r.mean_restarts = restarts / double(jobs.size());
  if (stats.makespan > 0) {
    r.throughput_per_hour =
        double(jobs.size()) / (double(stats.makespan) / 3600.0);
  }
  return r;
}

std::vector<MetricId> all_metric_ids() {
  return {MetricId::kMeanWait,          MetricId::kMeanResponse,
          MetricId::kMeanSlowdown,      MetricId::kMeanBoundedSlowdown,
          MetricId::kP95Wait,           MetricId::kUtilization,
          MetricId::kThroughput,        MetricId::kMakespan,
          MetricId::kMeanRestarts,      MetricId::kWastedFraction};
}

std::string valid_metric_names() {
  std::string names;
  for (const auto id : all_metric_ids()) {
    if (!names.empty()) names += ", ";
    names += metric_name(id);
  }
  return names;
}

MetricId metric_from_name(const std::string& name) {
  // Case-insensitive, matching scheduler-name lookup: "Mean-Wait"
  // must work identically in a spec file and on the CLI.
  const std::string n = util::to_lower(name);
  for (const auto id : all_metric_ids()) {
    if (n == metric_name(id)) return id;
  }
  throw std::invalid_argument("unknown metric '" + name +
                              "'; valid metrics: " + valid_metric_names());
}

const char* metric_name(MetricId id) {
  switch (id) {
    case MetricId::kMeanWait: return "mean-wait";
    case MetricId::kMeanResponse: return "mean-response";
    case MetricId::kMeanSlowdown: return "mean-slowdown";
    case MetricId::kMeanBoundedSlowdown: return "mean-bounded-slowdown";
    case MetricId::kP95Wait: return "p95-wait";
    case MetricId::kUtilization: return "utilization";
    case MetricId::kThroughput: return "throughput";
    case MetricId::kMakespan: return "makespan";
    case MetricId::kMeanRestarts: return "mean-restarts";
    case MetricId::kWastedFraction: return "wasted-fraction";
  }
  return "unknown";
}

double metric_value(const MetricsReport& report, MetricId id) {
  switch (id) {
    case MetricId::kMeanWait: return report.mean_wait;
    case MetricId::kMeanResponse: return report.mean_response;
    case MetricId::kMeanSlowdown: return report.mean_slowdown;
    case MetricId::kMeanBoundedSlowdown:
      return report.mean_bounded_slowdown;
    case MetricId::kP95Wait: return report.p95_wait;
    case MetricId::kUtilization: return report.utilization;
    case MetricId::kThroughput: return report.throughput_per_hour;
    case MetricId::kMakespan: return double(report.makespan);
    case MetricId::kMeanRestarts: return report.mean_restarts;
    case MetricId::kWastedFraction: return report.wasted_fraction;
  }
  return 0.0;
}

bool metric_higher_is_better(MetricId id) {
  switch (id) {
    case MetricId::kUtilization:
    case MetricId::kThroughput:
      return true;
    default:
      return false;
  }
}

double metric_cost(const MetricsReport& report, MetricId id) {
  const double v = metric_value(report, id);
  return metric_higher_is_better(id) ? -v : v;
}

}  // namespace pjsb::metrics
