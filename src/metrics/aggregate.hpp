// Aggregate performance metrics.
//
// "The measured performance of a system depends not only on the system
// and workload, but also on the metrics used to gauge performance"
// (section 1.2). We compute every metric the paper names — response
// time, wait time, slowdown (and bounded slowdown), utilization,
// throughput — so the conflict experiments (E3/E4) can rank schedulers
// under each.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/job.hpp"

namespace pjsb::metrics {

/// Threshold for bounded slowdown: runtimes below tau are clamped so
/// trivially short jobs do not dominate the mean (Feitelson & Rudolph's
// recommended form).
inline constexpr std::int64_t kBoundedSlowdownTau = 10;

/// Per-job derived metrics.
double slowdown(const sim::CompletedJob& job);
double bounded_slowdown(const sim::CompletedJob& job,
                        std::int64_t tau = kBoundedSlowdownTau);

/// The metric set of a simulation run.
struct MetricsReport {
  std::size_t jobs = 0;
  double mean_wait = 0.0;
  double median_wait = 0.0;
  double p95_wait = 0.0;
  double mean_response = 0.0;
  double median_response = 0.0;
  double mean_slowdown = 0.0;
  double mean_bounded_slowdown = 0.0;
  double utilization = 0.0;     ///< work / available capacity
  double throughput_per_hour = 0.0;
  std::int64_t makespan = 0;
  double mean_restarts = 0.0;   ///< outage-induced restarts per job
  double wasted_fraction = 0.0; ///< wasted work / capacity
  std::int64_t jobs_killed = 0;   ///< kill events (crash, preempt, overrun)
  std::int64_t jobs_dropped = 0;  ///< abandoned without completing
};

/// Compute a report from completed jobs + engine accounting.
MetricsReport compute_report(std::span<const sim::CompletedJob> jobs,
                             const sim::EngineStats& stats);

/// Scalar metric identifiers, for ranking experiments.
enum class MetricId {
  kMeanWait,
  kMeanResponse,
  kMeanSlowdown,
  kMeanBoundedSlowdown,
  kP95Wait,
  kUtilization,   ///< higher is better (negated when ranking)
  kThroughput,    ///< higher is better (negated when ranking)
  kMakespan,
  kMeanRestarts,    ///< kill/requeue churn per completed job
  kWastedFraction,  ///< killed work (net of checkpoints) / capacity
};

/// All metric ids, in canonical presentation order.
std::vector<MetricId> all_metric_ids();

const char* metric_name(MetricId id);

/// Human-readable list of accepted metric names, for error messages
/// and CLI help text.
std::string valid_metric_names();

/// Parse a metric name (round-trips with metric_name); throws
/// std::invalid_argument naming the valid metrics on unknown input,
/// mirroring the scheduler registry's behavior.
MetricId metric_from_name(const std::string& name);

/// True for metrics where larger values are better (utilization,
/// throughput); ranking code negates these to get a cost.
bool metric_higher_is_better(MetricId id);
/// Value of the metric in the report.
double metric_value(const MetricsReport& report, MetricId id);
/// Value oriented so that *smaller is better* for every metric.
double metric_cost(const MetricsReport& report, MetricId id);

}  // namespace pjsb::metrics
