#include "metrics/objective.hpp"

#include "util/stats.hpp"

namespace pjsb::metrics {

double WeightedObjective::cost(const MetricsReport& report) const {
  double total = 0.0;
  for (const auto& term : terms) {
    total += term.weight * metric_cost(report, term.metric) / term.scale;
  }
  return total;
}

WeightedObjective owner_user_blend(double lambda) {
  WeightedObjective obj;
  obj.name = "blend(lambda=" + std::to_string(lambda) + ")";
  // Owner side: idle capacity fraction = 1 - utilization. metric_cost
  // for utilization is -utilization, so add the constant 1 implicitly
  // (constants do not change rankings) and weight by (1 - lambda).
  obj.terms.push_back({MetricId::kUtilization, 1.0 - lambda, 1.0});
  // User side: mean bounded slowdown, scaled by a nominal 10 so that
  // both terms live on comparable magnitudes.
  obj.terms.push_back({MetricId::kMeanBoundedSlowdown, lambda, 10.0});
  return obj;
}

std::vector<std::size_t> rank_by_objective(
    const WeightedObjective& objective,
    std::span<const MetricsReport> reports) {
  std::vector<double> costs;
  costs.reserve(reports.size());
  for (const auto& r : reports) costs.push_back(objective.cost(r));
  return util::ranking_of(costs);
}

std::vector<std::size_t> rank_by_metric(
    MetricId metric, std::span<const MetricsReport> reports) {
  std::vector<double> costs;
  costs.reserve(reports.size());
  for (const auto& r : reports) costs.push_back(metric_cost(r, metric));
  return util::ranking_of(costs);
}

}  // namespace pjsb::metrics
