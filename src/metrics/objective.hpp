// Weighted objective functions ("owner defined policy rules", [41]).
//
// The paper notes that [41] "showed significant differences in the
// ranking of various scheduling algorithms if applied to objective
// functions that only differ in the selection of a weight". We
// implement exactly that construction: a linear blend of a user-centric
// cost (slowdown) and an owner-centric cost (unused capacity), with a
// sweepable weight — plus a general weighted form over all metrics.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "metrics/aggregate.hpp"

namespace pjsb::metrics {

/// General linear objective: cost = sum over terms of
/// weight * metric_cost(report, metric). Smaller is better.
struct ObjectiveTerm {
  MetricId metric;
  double weight = 1.0;
  /// Normalization divisor applied to the metric before weighting, so
  /// terms with different units can be mixed meaningfully.
  double scale = 1.0;
};

struct WeightedObjective {
  std::string name;
  std::vector<ObjectiveTerm> terms;

  double cost(const MetricsReport& report) const;
};

/// The two-sided family of [41]: lambda in [0,1] blends the
/// owner-centric term (idle capacity, i.e. 1 - utilization) with the
/// user-centric term (mean bounded slowdown, scaled).
WeightedObjective owner_user_blend(double lambda);

/// Rank schedulers (index order) by objective cost, ascending.
std::vector<std::size_t> rank_by_objective(
    const WeightedObjective& objective,
    std::span<const MetricsReport> reports);

/// Rank schedulers by a single metric's cost, ascending.
std::vector<std::size_t> rank_by_metric(
    MetricId metric, std::span<const MetricsReport> reports);

}  // namespace pjsb::metrics
