#include "metrics/online.hpp"

namespace pjsb::metrics {

void OnlineMetricsObserver::on_decision(const sim::Decision& decision) {
  ++total_starts_;
  ++starts_by_provenance_[std::size_t(decision.provenance)];
}

double OnlineMetricsObserver::backfill_ratio() const {
  const auto b =
      starts_by_provenance_[std::size_t(sim::StartProvenance::kBackfill)];
  return total_starts_ ? double(b) / double(total_starts_) : 0.0;
}

void OnlineMetricsObserver::on_job_complete(const sim::CompletedJob& job) {
  ++jobs_;
  wait_.add(double(job.wait()));
  response_.add(double(job.response()));
  bounded_slowdown_.add(bounded_slowdown(job));
}

void OnlineMetricsObserver::on_end(const sim::EngineStats& stats) {
  end_stats_ = stats;
}

}  // namespace pjsb::metrics
