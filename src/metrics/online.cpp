#include "metrics/online.hpp"

namespace pjsb::metrics {

void OnlineMetricsObserver::on_job_complete(const sim::CompletedJob& job) {
  ++jobs_;
  wait_.add(double(job.wait()));
  response_.add(double(job.response()));
  bounded_slowdown_.add(bounded_slowdown(job));
}

void OnlineMetricsObserver::on_end(const sim::EngineStats& stats) {
  end_stats_ = stats;
}

}  // namespace pjsb::metrics
