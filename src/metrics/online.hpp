// Online (constant-memory) metric accumulation over a replay.
//
// Streaming runs drop per-job records, so the aggregate layer cannot
// post-process a completed[] vector; this observer accumulates the
// headline metrics incrementally from completion events instead, and
// captures the engine accounting at end-of-run. The mean wait /
// bounded-slowdown it reports are exact; percentile metrics need the
// full sample and are deliberately absent.
#pragma once

#include "metrics/aggregate.hpp"
#include "sim/observer.hpp"
#include "util/stats.hpp"

namespace pjsb::metrics {

class OnlineMetricsObserver final : public sim::SimObserver {
 public:
  void on_job_complete(const sim::CompletedJob& job) override;
  void on_end(const sim::EngineStats& stats) override;

  std::size_t jobs() const { return jobs_; }
  double mean_wait() const { return wait_.mean(); }
  double mean_response() const { return response_.mean(); }
  double mean_bounded_slowdown() const { return bounded_slowdown_.mean(); }
  /// Engine accounting captured by on_end (zeros before the run ends).
  const sim::EngineStats& end_stats() const { return end_stats_; }

 private:
  std::size_t jobs_ = 0;
  util::OnlineStats wait_;
  util::OnlineStats response_;
  util::OnlineStats bounded_slowdown_;
  sim::EngineStats end_stats_;
};

}  // namespace pjsb::metrics
