// Online (constant-memory) metric accumulation over a replay.
//
// Streaming runs drop per-job records, so the aggregate layer cannot
// post-process a completed[] vector; this observer accumulates the
// headline metrics incrementally from completion events instead, and
// captures the engine accounting at end-of-run. The mean wait /
// bounded-slowdown it reports are exact; percentile metrics need the
// full sample and are deliberately absent.
#pragma once

#include <array>

#include "metrics/aggregate.hpp"
#include "sim/observer.hpp"
#include "sim/provenance.hpp"
#include "util/stats.hpp"

namespace pjsb::metrics {

class OnlineMetricsObserver final : public sim::SimObserver {
 public:
  void on_decision(const sim::Decision& decision) override;
  void on_job_complete(const sim::CompletedJob& job) override;
  void on_end(const sim::EngineStats& stats) override;

  std::size_t jobs() const { return jobs_; }
  double mean_wait() const { return wait_.mean(); }
  double mean_response() const { return response_.mean(); }
  double mean_bounded_slowdown() const { return bounded_slowdown_.mean(); }
  /// Starts tallied by provenance annotation (sim/provenance.hpp) —
  /// the constant-memory form of the trace's `why` breakdown.
  std::uint64_t starts(sim::StartProvenance why) const {
    return starts_by_provenance_[std::size_t(why)];
  }
  /// Fraction of starts that were backfill moves (0 when no starts).
  double backfill_ratio() const;
  /// Engine accounting captured by on_end (zeros before the run ends).
  const sim::EngineStats& end_stats() const { return end_stats_; }
  /// Kill/recovery churn promoted from the engine accounting, so fault
  /// sweeps can rank streaming runs without per-job records.
  std::int64_t jobs_killed() const { return end_stats_.jobs_killed; }
  std::int64_t jobs_dropped() const { return end_stats_.jobs_dropped; }
  std::int64_t wasted_node_seconds() const {
    return end_stats_.wasted_node_seconds;
  }
  std::int64_t recovered_node_seconds() const {
    return end_stats_.recovered_node_seconds;
  }
  /// Killed work (net of checkpoint salvage) over available capacity.
  double wasted_fraction() const {
    return end_stats_.capacity_node_seconds > 0
               ? double(end_stats_.wasted_node_seconds) /
                     double(end_stats_.capacity_node_seconds)
               : 0.0;
  }

 private:
  std::size_t jobs_ = 0;
  std::uint64_t total_starts_ = 0;
  std::array<std::uint64_t, sim::kProvenanceCount> starts_by_provenance_{};
  util::OnlineStats wait_;
  util::OnlineStats response_;
  util::OnlineStats bounded_slowdown_;
  sim::EngineStats end_stats_;
};

}  // namespace pjsb::metrics
