#include "obs/profiler.hpp"

#include <charconv>
#include <ostream>

namespace pjsb::obs {

PassProfiler::PassProfiler(std::size_t max_slices)
    : max_slices_(max_slices) {
  slices_.reserve(max_slices_ < 4096 ? max_slices_ : 4096);
}

void PassProfiler::on_phase(sim::EnginePhase phase, std::int64_t sim_time,
                            std::uint64_t wall_ns) {
  auto& s = stats_[std::size_t(phase)];
  ++s.count;
  s.total_ns += wall_ns;
  if (wall_ns > s.max_ns) s.max_ns = wall_ns;
  if (slices_.size() < max_slices_) {
    slices_.push_back({phase, sim_time, cursor_ns_, wall_ns});
  } else {
    ++dropped_;
  }
  cursor_ns_ += wall_ns;
}

namespace {

void write_us(std::ostream& os, std::uint64_t ns) {
  // Microseconds with nanosecond resolution, without float rounding.
  os << (ns / 1000) << '.';
  const auto frac = ns % 1000;
  if (frac < 100) os << '0';
  if (frac < 10) os << '0';
  os << frac;
}

}  // namespace

void PassProfiler::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Slice& s : slices_) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"" << sim::phase_name(s.phase)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    write_us(os, s.start_ns);
    os << ",\"dur\":";
    write_us(os, s.dur_ns);
    os << ",\"args\":{\"sim_time\":" << s.sim_time << "}}";
  }
  // Name the track so Perfetto's UI reads "pjsb replay" not "1".
  if (!first) os << ',';
  os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"pjsb replay\"}}";
  os << "\n]}\n";
  os.flush();
}

std::string PassProfiler::summary() const {
  std::string out = "phase            passes    total_ms      max_us\n";
  for (std::size_t i = 0; i < sim::kEnginePhaseCount; ++i) {
    const auto& s = stats_[i];
    std::string name = sim::phase_name(sim::EnginePhase(i));
    name.resize(16, ' ');
    char buf[64];
    out += name;
    std::string count = std::to_string(s.count);
    out += std::string(count.size() < 6 ? 6 - count.size() : 0, ' ') + count;
    auto res = std::to_chars(buf, buf + sizeof(buf),
                             double(s.total_ns) / 1e6, std::chars_format::fixed,
                             3);
    std::string total(buf, res.ptr);
    out += std::string(total.size() < 12 ? 12 - total.size() : 0, ' ') + total;
    res = std::to_chars(buf, buf + sizeof(buf), double(s.max_ns) / 1e3,
                        std::chars_format::fixed, 3);
    std::string mx(buf, res.ptr);
    out += std::string(mx.size() < 12 ? 12 - mx.size() : 0, ' ') + mx;
    out += '\n';
  }
  if (dropped_ > 0) {
    out += "(+" + std::to_string(dropped_) +
           " slices dropped from the export buffer; aggregates are exact)\n";
  }
  return out;
}

}  // namespace pjsb::obs
