// Pass profiling: wall-clock timing of engine phases, Perfetto-ready.
//
// Implements sim::PhaseListener, aggregating per-phase wall-clock
// statistics (pass counts, total and max durations) and recording a
// bounded buffer of individual slices. Slices export as Chrome
// trace-event JSON ("X" complete events on one track), so a replay's
// profile opens directly in Perfetto / chrome://tracing; each slice's
// args carry the *simulated* time it ran at, linking the wall-clock
// view back to the trace and time-series streams. The exported
// timeline concatenates timed sections — idle gaps between engine
// steps (caller time) are compressed out.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/phase.hpp"

namespace pjsb::obs {

class PassProfiler final : public sim::PhaseListener {
 public:
  struct PhaseStats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };

  struct Slice {
    sim::EnginePhase phase = sim::EnginePhase::kEvents;
    std::int64_t sim_time = 0;
    std::uint64_t start_ns = 0;  ///< offset on the concatenated timeline
    std::uint64_t dur_ns = 0;
  };

  /// `max_slices` bounds the slice buffer; aggregation continues after
  /// it fills (dropped_slices() reports how many detail records were
  /// lost). The default holds a ~100k-job replay comfortably.
  explicit PassProfiler(std::size_t max_slices = std::size_t(1) << 19);

  void on_phase(sim::EnginePhase phase, std::int64_t sim_time,
                std::uint64_t wall_ns) override;

  const PhaseStats& stats(sim::EnginePhase phase) const {
    return stats_[std::size_t(phase)];
  }
  /// Scheduler passes observed (the per-scheduler pass count).
  std::uint64_t passes() const {
    return stats(sim::EnginePhase::kSchedulerPass).count;
  }
  std::uint64_t total_ns() const { return cursor_ns_; }
  const std::vector<Slice>& slices() const { return slices_; }
  std::uint64_t dropped_slices() const { return dropped_; }

  /// Chrome trace-event JSON ({"traceEvents": [...]}); ts/dur in
  /// fractional microseconds. Loads in Perfetto and chrome://tracing.
  void write_chrome_trace(std::ostream& os) const;

  /// Small human-readable per-phase table for CLI output.
  std::string summary() const;

 private:
  std::array<PhaseStats, sim::kEnginePhaseCount> stats_{};
  std::vector<Slice> slices_;
  std::size_t max_slices_;
  std::uint64_t cursor_ns_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace pjsb::obs
