#include "obs/sinks.hpp"

#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/spec.hpp"

namespace pjsb::obs {

namespace {

std::unique_ptr<std::ofstream> open_or_throw(const std::string& path,
                                             const char* what) {
  auto os = std::make_unique<std::ofstream>(path,
                                            std::ios::out | std::ios::trunc);
  if (!*os) {
    throw std::runtime_error(std::string("cannot open ") + what +
                             " output file: " + path);
  }
  return os;
}

}  // namespace

void SinkSet::open(const sim::SimulationSpec& spec) {
  if (!spec.trace.empty()) {
    trace_os_ = open_or_throw(spec.trace, "trace");
  }
  if (!spec.timeseries.empty()) {
    timeseries_os_ = open_or_throw(spec.timeseries, "timeseries");
    TimeSeriesOptions options;
    if (spec.sample_every > 0) options.sample_every = spec.sample_every;
    sampler_ = std::make_unique<TimeSeriesSampler>(options);
  }
  if (!spec.profile.empty()) {
    profile_os_ = open_or_throw(spec.profile, "profile");
    profiler_ = std::make_unique<PassProfiler>();
  }
}

void SinkSet::attach(sim::Engine& engine) {
  if (trace_os_) {
    TraceWriterOptions options;
    options.scheduler = engine.scheduler().name();
    options.nodes = engine.machine().total_nodes();
    trace_ = std::make_unique<JsonlTraceWriter>(*trace_os_, options);
    trace_->watch(engine.scheduler());
    engine.add_observer(*trace_);
  }
  if (sampler_) engine.add_observer(*sampler_);
  if (profiler_) engine.set_phase_listener(profiler_.get());
}

void SinkSet::finish() {
  if (trace_os_) trace_os_->flush();
  if (sampler_ && timeseries_os_) {
    sampler_->write_csv(*timeseries_os_);
    timeseries_os_->flush();
  }
  if (profiler_ && profile_os_) {
    profiler_->write_chrome_trace(*profile_os_);
  }
}

}  // namespace pjsb::obs
