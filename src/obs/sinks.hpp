// The observability sinks a SimulationSpec requests, as one bundle.
//
// A spec can name a JSONL trace (trace=…), a time-series CSV
// (timeseries=… sample_every=…) and a Chrome trace-event profile
// (profile=…). SinkSet owns the streams and observers for all three,
// with one lifecycle: open(spec) opens every named file (failing
// before the run, not after), attach(engine) constructs the observers
// against the resolved machine/scheduler and hooks them in, and
// finish() writes the deferred outputs after the run drains. A spec
// naming no sinks costs nothing — open() is three empty-string checks
// and attach()/finish() no-ops.
#pragma once

#include <fstream>
#include <memory>
#include <string>

#include "obs/profiler.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace pjsb::sim {
class Engine;
struct SimulationSpec;
}  // namespace pjsb::sim

namespace pjsb::obs {

class SinkSet {
 public:
  SinkSet() = default;
  // Observers are address-pinned once attached to an engine.
  SinkSet(const SinkSet&) = delete;
  SinkSet& operator=(const SinkSet&) = delete;

  /// Open every sink `spec` names, truncating existing files. Throws
  /// std::runtime_error naming the path when one cannot be opened.
  void open(const sim::SimulationSpec& spec);

  bool any() const {
    return trace_os_ != nullptr || sampler_ != nullptr ||
           profiler_ != nullptr;
  }

  /// Construct the observers against the engine's resolved scheduler
  /// and machine, and attach them (plus the phase listener). Call
  /// after open(), before the run.
  void attach(sim::Engine& engine);

  /// Write the deferred outputs (time-series CSV, Chrome trace) and
  /// flush everything. Call after the run (and notify_run_end).
  void finish();

  const PassProfiler* profiler() const { return profiler_.get(); }
  const TimeSeriesSampler* sampler() const { return sampler_.get(); }

 private:
  std::unique_ptr<std::ofstream> trace_os_;
  std::unique_ptr<JsonlTraceWriter> trace_;
  std::unique_ptr<std::ofstream> timeseries_os_;
  std::unique_ptr<TimeSeriesSampler> sampler_;
  std::unique_ptr<std::ofstream> profile_os_;
  std::unique_ptr<PassProfiler> profiler_;
};

}  // namespace pjsb::obs
