#include "obs/telemetry.hpp"

#include <bit>
#include <charconv>
#include <cmath>

#include "metrics/aggregate.hpp"
#include "sched/backfill.hpp"

namespace pjsb::obs {

void Log2Histogram::add(std::int64_t x) {
  const std::uint64_t v = x > 0 ? std::uint64_t(x) : 0;
  const std::size_t b = std::size_t(std::bit_width(v));  // 0 for v == 0
  buckets_[b < kBuckets ? b : kBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Log2Histogram::merge(const Log2Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

double Log2Histogram::mean() const {
  const std::uint64_t n = count();
  return n ? double(sum()) / double(n) : 0.0;
}

std::uint64_t Log2Histogram::bucket_low(std::size_t i) {
  if (i == 0) return 0;
  return std::uint64_t(1) << (i - 1);
}

std::uint64_t Log2Histogram::bucket_high(std::size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return ~std::uint64_t(0);
  return (std::uint64_t(1) << i) - 1;
}

std::uint64_t Log2Histogram::quantile_bound(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank = std::uint64_t(std::ceil(q * double(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) return bucket_high(i);
  }
  return bucket_high(kBuckets - 1);
}

double TelemetrySummary::backfill_ratio() const {
  const auto backfills =
      starts_by_provenance[std::size_t(sim::StartProvenance::kBackfill)];
  return starts ? double(backfills) / double(starts) : 0.0;
}

void TelemetrySummary::merge(const TelemetrySummary& other) {
  submits += other.submits;
  starts += other.starts;
  completions += other.completions;
  kills += other.kills;
  steps += other.steps;
  for (std::size_t i = 0; i < starts_by_provenance.size(); ++i) {
    starts_by_provenance[i] += other.starts_by_provenance[i];
  }
  wait_count += other.wait_count;
  wait_sum += other.wait_sum;
  wait_p95_bound = std::max(wait_p95_bound, other.wait_p95_bound);
  slowdown_count += other.slowdown_count;
  slowdown_sum += other.slowdown_sum;
  profile_steps_peak = std::max(profile_steps_peak, other.profile_steps_peak);
}

void TelemetryRegistry::note_profile_steps(std::uint64_t n) {
  std::uint64_t cur = profile_steps_peak_.load(std::memory_order_relaxed);
  while (n > cur && !profile_steps_peak_.compare_exchange_weak(
                        cur, n, std::memory_order_relaxed)) {
  }
}

void TelemetryRegistry::merge(const TelemetryRegistry& other) {
  submits.merge(other.submits);
  completions.merge(other.completions);
  kills.merge(other.kills);
  steps.merge(other.steps);
  for (std::size_t i = 0; i < starts_by_provenance.size(); ++i) {
    starts_by_provenance[i].merge(other.starts_by_provenance[i]);
  }
  wait_seconds.merge(other.wait_seconds);
  bounded_slowdown.merge(other.bounded_slowdown);
  note_profile_steps(other.profile_steps_peak());
}

TelemetrySummary TelemetryRegistry::summary() const {
  TelemetrySummary s;
  s.submits = submits.value();
  s.completions = completions.value();
  s.kills = kills.value();
  s.steps = steps.value();
  for (std::size_t i = 0; i < starts_by_provenance.size(); ++i) {
    s.starts_by_provenance[i] = starts_by_provenance[i].value();
    s.starts += s.starts_by_provenance[i];
  }
  s.wait_count = wait_seconds.count();
  s.wait_sum = wait_seconds.sum();
  s.wait_p95_bound = wait_seconds.quantile_bound(0.95);
  s.slowdown_count = bounded_slowdown.count();
  s.slowdown_sum = bounded_slowdown.sum();
  s.profile_steps_peak = profile_steps_peak();
  return s;
}

namespace {

std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

std::string TelemetryRegistry::to_json() const {
  const TelemetrySummary s = summary();
  std::string out = "{";
  const auto field = [&out](const char* key, std::uint64_t v, bool first =
                                                                  false) {
    if (!first) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(v);
  };
  field("submits", s.submits, /*first=*/true);
  field("starts", s.starts);
  field("completions", s.completions);
  field("kills", s.kills);
  field("steps", s.steps);
  for (std::size_t i = 0; i < s.starts_by_provenance.size(); ++i) {
    field(sim::provenance_name(sim::StartProvenance(i)),
          s.starts_by_provenance[i]);
  }
  out += ",\"backfill_ratio\":" + format_double(s.backfill_ratio());
  out += ",\"mean_wait\":" + format_double(s.mean_wait());
  field("wait_p95_bound", s.wait_p95_bound);
  out += ",\"mean_bounded_slowdown\":" +
         format_double(s.mean_bounded_slowdown());
  field("profile_steps_peak", s.profile_steps_peak);
  out += '}';
  return out;
}

void TelemetryObserver::watch(const sched::Scheduler& scheduler) {
  profile_owner_ = dynamic_cast<const sched::BackfillBase*>(&scheduler);
}

void TelemetryObserver::on_job_submit(std::int64_t /*time*/,
                                      const sim::SimJob& /*job*/) {
  registry_.submits.inc();
}

void TelemetryObserver::on_decision(const sim::Decision& decision) {
  const auto i = std::size_t(decision.provenance);
  registry_
      .starts_by_provenance[i < sim::kProvenanceCount ? i : 0]
      .inc();
}

void TelemetryObserver::on_job_complete(const sim::CompletedJob& job) {
  registry_.completions.inc();
  registry_.wait_seconds.add(job.wait());
  registry_.bounded_slowdown.add(
      std::int64_t(std::llround(metrics::bounded_slowdown(job))));
}

void TelemetryObserver::on_job_kill(std::int64_t /*time*/,
                                    const sim::SimJob& /*job*/,
                                    const sim::KillInfo& /*info*/) {
  registry_.kills.inc();
}

void TelemetryObserver::on_step(const sim::StepSnapshot& /*snapshot*/) {
  registry_.steps.inc();
  if (profile_owner_) {
    registry_.note_profile_steps(
        static_cast<const sched::BackfillBase*>(profile_owner_)
            ->profile()
            .step_count());
  }
}

}  // namespace pjsb::obs
