// Lock-free telemetry: counters and histograms for per-cell rollups.
//
// Campaigns run one simulation per worker thread; per-cell telemetry
// must therefore be (a) cheap enough to ride the hot observer path —
// relaxed atomic increments, no locks, no allocation after
// construction — and (b) mergeable, so a campaign can aggregate every
// cell's registry into one report. The histogram buckets by power of
// two (bit width), which is the right shape for the heavy-tailed wait
// and slowdown distributions scheduler workloads produce: exact small
// values, bounded 64-bucket memory for arbitrarily large tails.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "sim/observer.hpp"
#include "sim/provenance.hpp"

namespace pjsb::sched {
class Scheduler;
}

namespace pjsb::obs {

/// Relaxed atomic counter. Single-writer per simulation; atomicity is
/// for cross-thread reads (a campaign progress poller) and merge().
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void merge(const Counter& other) { inc(other.value()); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Power-of-two histogram: sample x >= 0 lands in bucket bit_width(x)
/// (bucket 0 holds x == 0, bucket b holds [2^(b-1), 2^b - 1]).
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  Log2Histogram() = default;
  Log2Histogram(const Log2Histogram&) = delete;
  Log2Histogram& operator=(const Log2Histogram&) = delete;

  /// Negative samples clamp to 0 (waits and slowdowns are >= 0 by
  /// construction; clamping keeps the histogram total exact anyway).
  void add(std::int64_t x);
  void merge(const Log2Histogram& other);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive value range of bucket i.
  static std::uint64_t bucket_low(std::size_t i);
  static std::uint64_t bucket_high(std::size_t i);
  /// Upper bound of the bucket containing the q-quantile (q in [0,1]);
  /// 0 when empty. Power-of-two resolution, exact bucket membership.
  std::uint64_t quantile_bound(double q) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Plain-value snapshot of a registry — copyable, so campaign cell
/// results can carry it and reports can aggregate it.
struct TelemetrySummary {
  std::uint64_t submits = 0;
  std::uint64_t starts = 0;
  std::uint64_t completions = 0;
  std::uint64_t kills = 0;
  std::uint64_t steps = 0;  ///< event timestamps processed
  std::array<std::uint64_t, sim::kProvenanceCount> starts_by_provenance{};
  std::uint64_t wait_count = 0;
  std::uint64_t wait_sum = 0;           ///< seconds
  std::uint64_t wait_p95_bound = 0;     ///< power-of-two upper bound
  std::uint64_t slowdown_count = 0;
  std::uint64_t slowdown_sum = 0;       ///< bounded slowdown, rounded
  std::uint64_t profile_steps_peak = 0; ///< capacity-profile high-water

  double mean_wait() const {
    return wait_count ? double(wait_sum) / double(wait_count) : 0.0;
  }
  double mean_bounded_slowdown() const {
    return slowdown_count ? double(slowdown_sum) / double(slowdown_count)
                          : 0.0;
  }
  /// Fraction of starts that were backfill moves (0 when no starts).
  double backfill_ratio() const;
  void merge(const TelemetrySummary& other);
};

/// The registry: one per simulation (or one shared across a campaign —
/// increments are lock-free either way).
class TelemetryRegistry {
 public:
  TelemetryRegistry() = default;
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  Counter submits;
  Counter completions;
  Counter kills;
  Counter steps;
  std::array<Counter, sim::kProvenanceCount> starts_by_provenance;
  Log2Histogram wait_seconds;
  Log2Histogram bounded_slowdown;  ///< rounded to integer

  /// Record a capacity-profile step count observation (high-water
  /// gauge; see TelemetryObserver::watch).
  void note_profile_steps(std::uint64_t n);
  std::uint64_t profile_steps_peak() const {
    return profile_steps_peak_.load(std::memory_order_relaxed);
  }

  void merge(const TelemetryRegistry& other);
  TelemetrySummary summary() const;
  /// Single-line JSON object (counters + histogram means/quantiles) —
  /// the per-cell telemetry file format.
  std::string to_json() const;

 private:
  std::atomic<std::uint64_t> profile_steps_peak_{0};
};

/// Observer feeding a registry from one simulation's event stream.
class TelemetryObserver final : public sim::SimObserver {
 public:
  explicit TelemetryObserver(TelemetryRegistry& registry)
      : registry_(registry) {}

  /// Watch a scheduler: when it is profile-based (BackfillBase), the
  /// observer polls its CapacityProfile step count every step and
  /// records the high-water mark. No-op for other policies.
  void watch(const sched::Scheduler& scheduler);

  void on_job_submit(std::int64_t time, const sim::SimJob& job) override;
  void on_decision(const sim::Decision& decision) override;
  void on_job_complete(const sim::CompletedJob& job) override;
  void on_job_kill(std::int64_t time, const sim::SimJob& job,
                   const sim::KillInfo& info) override;
  void on_step(const sim::StepSnapshot& snapshot) override;

 private:
  TelemetryRegistry& registry_;
  const void* profile_owner_ = nullptr;  ///< BackfillBase*, if watching one
};

}  // namespace pjsb::obs
