#include "obs/timeseries.hpp"

#include <charconv>
#include <ostream>
#include <stdexcept>

namespace pjsb::obs {

TimeSeriesSampler::TimeSeriesSampler(const TimeSeriesOptions& options)
    : options_(options), every_(options.sample_every) {
  if (options_.sample_every < 1) {
    throw std::invalid_argument("TimeSeriesSampler: sample_every must be >= 1");
  }
  if (options_.max_samples < 2) {
    throw std::invalid_argument("TimeSeriesSampler: max_samples must be >= 2");
  }
  samples_.reserve(options_.max_samples);
}

void TimeSeriesSampler::on_decision(const sim::Decision& decision) {
  ++pending_starts_;
  if (decision.provenance == sim::StartProvenance::kBackfill) {
    ++pending_backfills_;
  }
}

void TimeSeriesSampler::on_step(const sim::StepSnapshot& snapshot) {
  if (armed_ && snapshot.time < next_due_) return;
  TimeSample s;
  s.time = snapshot.time;
  s.free_nodes = snapshot.free_nodes;
  s.busy_nodes = snapshot.busy_nodes;
  s.down_nodes = snapshot.down_nodes;
  s.queued = snapshot.queued_jobs;
  s.running = snapshot.running_jobs;
  s.starts = pending_starts_;
  s.backfill_starts = pending_backfills_;
  pending_starts_ = 0;
  pending_backfills_ = 0;
  samples_.push_back(s);
  // Samples land on event times, so spacing is >= every_ but never
  // exactly periodic; the next due time advances from the actual
  // sample, keeping timestamps strictly increasing.
  next_due_ = snapshot.time + every_;
  armed_ = true;
  if (samples_.size() >= options_.max_samples) downsample();
}

void TimeSeriesSampler::downsample() {
  // Keep even indices; a dropped sample's interval counts fold into
  // the next retained sample (its interval absorbs the dropped one).
  // The newest sample survives regardless of parity — the tail is what
  // a live consumer looks at.
  std::vector<TimeSample> kept;
  kept.reserve(samples_.size() / 2 + 1);
  std::uint64_t carry_starts = 0;
  std::uint64_t carry_backfills = 0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const bool keep = (i % 2 == 0) || (i + 1 == samples_.size());
    if (keep) {
      TimeSample s = samples_[i];
      s.starts += carry_starts;
      s.backfill_starts += carry_backfills;
      carry_starts = 0;
      carry_backfills = 0;
      kept.push_back(s);
    } else {
      carry_starts += samples_[i].starts;
      carry_backfills += samples_[i].backfill_starts;
    }
  }
  samples_ = std::move(kept);
  every_ *= 2;
  next_due_ = samples_.back().time + every_;
  ++rounds_;
}

void TimeSeriesSampler::write_csv(std::ostream& os) const {
  os << "time,free,busy,down,queued,running,starts,backfill_starts,util\n";
  char buf[64];
  for (const TimeSample& s : samples_) {
    os << s.time << ',' << s.free_nodes << ',' << s.busy_nodes << ','
       << s.down_nodes << ',' << s.queued << ',' << s.running << ','
       << s.starts << ',' << s.backfill_starts << ',';
    const auto res = std::to_chars(buf, buf + sizeof(buf), s.utilization());
    os.write(buf, res.ptr - buf);
    os << '\n';
  }
}

}  // namespace pjsb::obs
