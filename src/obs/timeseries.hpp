// Sim-time time-series sampling with bounded-memory downsampling.
//
// Records machine and queue state against *simulated* time at a
// configurable cadence, riding sim::StepSnapshot (PR 5). A sample also
// carries the number of starts (and backfill starts) since the
// previous retained sample, so a backfill *rate* falls out of the CSV
// directly. Memory is bounded for million-job streams: when the sample
// buffer fills, the cadence doubles and every other sample is folded
// away — dropped samples donate their interval counts to the next
// retained one, so start totals are conserved exactly and timestamps
// stay a strictly increasing subsequence of the full series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/observer.hpp"

namespace pjsb::obs {

struct TimeSeriesOptions {
  /// Sim-seconds between samples (>= 1). The *initial* cadence;
  /// downsampling doubles it as needed.
  std::int64_t sample_every = 60;
  /// Retained-sample bound (>= 2). Hitting it halves the series and
  /// doubles the cadence.
  std::size_t max_samples = 4096;
};

struct TimeSample {
  std::int64_t time = 0;
  std::int64_t free_nodes = 0;
  std::int64_t busy_nodes = 0;
  std::int64_t down_nodes = 0;
  std::uint64_t queued = 0;
  std::uint64_t running = 0;
  /// Starts since the previous retained sample (all / backfill-only).
  std::uint64_t starts = 0;
  std::uint64_t backfill_starts = 0;

  /// Utilization of up capacity at the sample instant.
  double utilization() const {
    const auto up = free_nodes + busy_nodes;
    return up > 0 ? double(busy_nodes) / double(up) : 0.0;
  }
};

class TimeSeriesSampler final : public sim::SimObserver {
 public:
  explicit TimeSeriesSampler(const TimeSeriesOptions& options = {});

  const std::vector<TimeSample>& samples() const { return samples_; }
  /// Current cadence (initial sample_every, doubled per downsample).
  std::int64_t effective_cadence() const { return every_; }
  std::size_t downsample_rounds() const { return rounds_; }

  /// CSV: time,free,busy,down,queued,running,starts,backfill_starts,util
  void write_csv(std::ostream& os) const;

  void on_decision(const sim::Decision& decision) override;
  void on_step(const sim::StepSnapshot& snapshot) override;

 private:
  void downsample();

  TimeSeriesOptions options_;
  std::vector<TimeSample> samples_;
  std::int64_t every_ = 60;
  std::int64_t next_due_ = 0;
  bool armed_ = false;  ///< first step primes next_due_
  std::uint64_t pending_starts_ = 0;
  std::uint64_t pending_backfills_ = 0;
  std::size_t rounds_ = 0;
};

}  // namespace pjsb::obs
