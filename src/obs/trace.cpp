#include "obs/trace.hpp"

#include <charconv>
#include <ostream>

#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace pjsb::obs {

namespace {

const char* kill_reason_name(sim::KillReason reason) {
  switch (reason) {
    case sim::KillReason::kOutage:
      return "outage";
    case sim::KillReason::kPreempt:
      return "preempt";
    case sim::KillReason::kWalltime:
      return "walltime";
  }
  return "unknown";
}

const char* drop_reason_name(sim::DropReason reason) {
  switch (reason) {
    case sim::DropReason::kRetryLimit:
      return "retry_limit";
    case sim::DropReason::kWalltimeOverrun:
      return "walltime_overrun";
    case sim::DropReason::kRequeueDisabled:
      return "requeue_disabled";
    case sim::DropReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const char* outage_phase_name(sim::OutagePhase phase) {
  switch (phase) {
    case sim::OutagePhase::kAnnounced:
      return "announced";
    case sim::OutagePhase::kStarted:
      return "started";
    case sim::OutagePhase::kEnded:
      return "ended";
  }
  return "unknown";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // control characters cannot appear in our inputs
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

JsonlTraceWriter::JsonlTraceWriter(std::ostream& os,
                                   const TraceWriterOptions& options)
    : os_(os), options_(options) {
  write_header();
}

void JsonlTraceWriter::write_header() {
  os_ << "{\"type\":\"header\",\"version\":" << kTraceSchemaVersion
      << ",\"source\":\"pjsb\"";
  if (!options_.scheduler.empty()) {
    os_ << ",\"scheduler\":\"" << json_escape(options_.scheduler) << '"';
  }
  if (options_.nodes > 0) os_ << ",\"nodes\":" << options_.nodes;
  os_ << "}\n";
  ++lines_;
}

void JsonlTraceWriter::on_job_submit(std::int64_t time,
                                     const sim::SimJob& job) {
  submit_time_[job.id] = time;
  if (options_.blocked_records && scheduler_) {
    pending_blocked_.push_back({job.id, job.procs, job.estimate});
  }
  if (job.restarts > 0) {
    // A queue re-entry after a kill, not a fresh arrival.
    os_ << "{\"type\":\"resubmit\",\"t\":" << time << ",\"job\":" << job.id
        << ",\"procs\":" << job.procs << ",\"estimate\":" << job.estimate
        << ",\"attempt\":" << job.restarts << "}\n";
  } else {
    os_ << "{\"type\":\"submit\",\"t\":" << time << ",\"job\":" << job.id
        << ",\"procs\":" << job.procs << ",\"estimate\":" << job.estimate
        << "}\n";
  }
  ++lines_;
}

void JsonlTraceWriter::on_decision(const sim::Decision& decision) {
  std::int64_t wait = -1;
  const auto it = submit_time_.find(decision.job_id);
  if (it != submit_time_.end()) {
    wait = decision.time - it->second;
    submit_time_.erase(it);
  }
  os_ << "{\"type\":\"start\",\"t\":" << decision.time
      << ",\"job\":" << decision.job_id << ",\"procs\":" << decision.procs
      << ",\"wait\":" << wait << ",\"why\":\""
      << sim::provenance_name(decision.provenance) << '"';
  if (decision.virtual_start) os_ << ",\"virtual\":1";
  if (decision.reserved_start >= 0) {
    os_ << ",\"reserved_start\":" << decision.reserved_start;
  }
  os_ << "}\n";
  ++lines_;
}

void JsonlTraceWriter::on_job_complete(const sim::CompletedJob& job) {
  os_ << "{\"type\":\"end\",\"t\":" << job.end << ",\"job\":" << job.id
      << ",\"procs\":" << job.procs << ",\"wait\":" << job.wait()
      << ",\"run\":" << (job.end - job.start)
      << ",\"restarts\":" << job.restarts << "}\n";
  ++lines_;
}

void JsonlTraceWriter::on_job_kill(std::int64_t time, const sim::SimJob& job,
                                   const sim::KillInfo& info) {
  // The queue re-entry (if the engine requeues) arrives as a resubmit
  // record; drop the stale submit stamp either way.
  submit_time_.erase(job.id);
  if (info.reason == sim::KillReason::kOutage) {
    os_ << "{\"type\":\"crash\",\"t\":" << time << ",\"job\":" << job.id
        << ",\"procs\":" << job.procs << ",\"lost\":" << info.lost_node_seconds
        << ",\"saved\":" << info.saved_work << ",\"attempt\":" << info.attempt
        << "}\n";
  } else {
    os_ << "{\"type\":\"kill\",\"t\":" << time << ",\"job\":" << job.id
        << ",\"procs\":" << job.procs << ",\"reason\":\""
        << kill_reason_name(info.reason) << "\"}\n";
  }
  ++lines_;
}

void JsonlTraceWriter::on_job_restore(std::int64_t time,
                                      const sim::SimJob& job,
                                      std::int64_t resumed_work) {
  os_ << "{\"type\":\"restore\",\"t\":" << time << ",\"job\":" << job.id
      << ",\"resumed\":" << resumed_work << ",\"read\":" << job.read_time
      << "}\n";
  ++lines_;
}

void JsonlTraceWriter::on_job_drop(std::int64_t time, const sim::SimJob& job,
                                   sim::DropReason reason) {
  submit_time_.erase(job.id);
  os_ << "{\"type\":\"drop\",\"t\":" << time << ",\"job\":" << job.id
      << ",\"procs\":" << job.procs << ",\"reason\":\""
      << drop_reason_name(reason) << "\",\"attempt\":" << job.restarts
      << "}\n";
  ++lines_;
}

void JsonlTraceWriter::on_outage(const outage::OutageRecord& rec,
                                 sim::OutagePhase phase) {
  os_ << "{\"type\":\"outage\",\"phase\":\"" << outage_phase_name(phase)
      << "\",\"start\":" << rec.start_time << ",\"end\":" << rec.end_time
      << ",\"nodes\":" << rec.components.size() << "}\n";
  ++lines_;
}

void JsonlTraceWriter::on_step(const sim::StepSnapshot& snapshot) {
  if (pending_blocked_.empty()) return;
  for (const PendingJob& p : pending_blocked_) {
    // Still queued after the pass (starting erased the submit stamp)?
    if (!submit_time_.contains(p.id)) continue;
    const auto predicted =
        scheduler_->predict_start(snapshot.time, p.procs, p.estimate);
    if (!predicted) continue;
    os_ << "{\"type\":\"blocked\",\"t\":" << snapshot.time
        << ",\"job\":" << p.id << ",\"predicted_start\":" << *predicted
        << "}\n";
    ++lines_;
  }
  pending_blocked_.clear();
}

void JsonlTraceWriter::on_end(const sim::EngineStats& stats) {
  os_ << "{\"type\":\"run_end\",\"jobs\":" << stats.jobs_completed
      << ",\"kills\":" << stats.jobs_killed
      << ",\"drops\":" << stats.jobs_dropped
      << ",\"makespan\":" << stats.makespan
      << ",\"events\":" << stats.events_processed
      << ",\"util\":" << format_double(stats.utilization()) << "}\n";
  ++lines_;
  os_.flush();
}

}  // namespace pjsb::obs
