// Structured JSONL event traces with decision provenance.
//
// One self-describing line per simulation event — submit, start (with
// the scheduler-supplied provenance annotation), blocked-job
// prediction, completion, kill, outage phase, run end — preceded by a
// versioned header record. The schema (see README "Observability") is
// deliberately flat: integer fields, one object per line, no nesting,
// so a trace greps well, diffs byte-stably across runs, and parses
// with nothing fancier than obs/trace_read.hpp or a five-line Python
// loop. Times are simulated seconds on the workload's clock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/observer.hpp"

namespace pjsb::sched {
class Scheduler;
}

namespace pjsb::obs {

/// Trace schema version, recorded in the header line. Bump when a
/// field changes meaning; adding fields is backward compatible
/// (readers ignore unknown keys).
///
/// v2: fault/recovery events. Outage-caused kills are `crash` records
/// (with lost/saved node-second accounting and the attempt number),
/// requeues after a kill are `resubmit` records (not bare submits),
/// checkpoint resumes are `restore` records, abandoned jobs are `drop`
/// records, and `kill` (now preempt/walltime only) and `run_end` carry
/// a reason / drop counter respectively.
inline constexpr int kTraceSchemaVersion = 2;

struct TraceWriterOptions {
  /// Registry spec of the scheduler driving the run (header metadata).
  std::string scheduler;
  /// Machine size (header metadata; 0 = unknown).
  std::int64_t nodes = 0;
  /// Emit a "blocked" record for every job still queued after the
  /// scheduler pass of its submission step, carrying the scheduler's
  /// predicted start (needs watch(); predict-incapable schedulers emit
  /// nothing). The poll is once per job per submission — O(1) amortized.
  bool blocked_records = true;
};

/// SimObserver writing the JSONL trace to a caller-owned stream. The
/// stream must outlive the run; the writer never seeks, so any
/// ostream (file, pipe, string) works. Memory is O(queue depth): the
/// only retained state is submit times of still-queued jobs.
class JsonlTraceWriter final : public sim::SimObserver {
 public:
  explicit JsonlTraceWriter(std::ostream& os,
                            const TraceWriterOptions& options = {});

  /// Watch the scheduler driving the run: enables blocked-job records
  /// (predict_start polls). Call before the run starts.
  void watch(const sched::Scheduler& scheduler) { scheduler_ = &scheduler; }

  std::uint64_t lines_written() const { return lines_; }

  void on_job_submit(std::int64_t time, const sim::SimJob& job) override;
  void on_decision(const sim::Decision& decision) override;
  void on_job_complete(const sim::CompletedJob& job) override;
  void on_job_kill(std::int64_t time, const sim::SimJob& job,
                   const sim::KillInfo& info) override;
  void on_job_restore(std::int64_t time, const sim::SimJob& job,
                      std::int64_t resumed_work) override;
  void on_job_drop(std::int64_t time, const sim::SimJob& job,
                   sim::DropReason reason) override;
  void on_outage(const outage::OutageRecord& rec,
                 sim::OutagePhase phase) override;
  void on_step(const sim::StepSnapshot& snapshot) override;
  void on_end(const sim::EngineStats& stats) override;

 private:
  struct PendingJob {
    std::int64_t id = 0;
    std::int64_t procs = 0;
    std::int64_t estimate = 0;
  };

  void write_header();

  std::ostream& os_;
  TraceWriterOptions options_;
  const sched::Scheduler* scheduler_ = nullptr;
  /// id -> last queue-entry time, for wait stamps on start records.
  std::unordered_map<std::int64_t, std::int64_t> submit_time_;
  /// Jobs submitted during the current step, polled once for a
  /// blocked record after the scheduler pass.
  std::vector<PendingJob> pending_blocked_;
  std::uint64_t lines_ = 0;
};

}  // namespace pjsb::obs
