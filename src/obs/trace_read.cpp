#include "obs/trace_read.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>
#include <stdexcept>

namespace pjsb::obs {

namespace {

/// Position just past `"key":`, or npos.
std::size_t find_key(std::string_view line, std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::string_view::npos;
  return pos + needle.size();
}

}  // namespace

std::optional<std::int64_t> trace_field_int(std::string_view line,
                                            std::string_view key) {
  const auto pos = find_key(line, key);
  if (pos == std::string_view::npos) return std::nullopt;
  std::int64_t value = 0;
  const char* first = line.data() + pos;
  const char* last = line.data() + line.size();
  const auto res = std::from_chars(first, last, value);
  if (res.ec != std::errc() || res.ptr == first) return std::nullopt;
  return value;
}

std::optional<std::string> trace_field_string(std::string_view line,
                                              std::string_view key) {
  auto pos = find_key(line, key);
  if (pos == std::string_view::npos) return std::nullopt;
  if (pos >= line.size() || line[pos] != '"') return std::nullopt;
  ++pos;
  const auto end = line.find('"', pos);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(line.substr(pos, end - pos));
}

TraceSummary summarize_trace(std::istream& in, std::size_t top_k) {
  TraceSummary s;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ++s.lines;
    const auto type = trace_field_string(line, "type");
    if (!type) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": no \"type\" field");
    }
    if (*type == "header") {
      s.version = int(trace_field_int(line, "version").value_or(-1));
      s.scheduler = trace_field_string(line, "scheduler").value_or("");
      s.nodes = trace_field_int(line, "nodes").value_or(0);
    } else if (*type == "submit") {
      ++s.submits;
    } else if (*type == "start") {
      ++s.starts;
      const auto why = trace_field_string(line, "why").value_or("");
      ++s.starts_by_provenance[std::size_t(sim::provenance_from_name(why))];
      const std::int64_t wait = trace_field_int(line, "wait").value_or(-1);
      if (wait >= 0 && top_k > 0) {
        TraceSummary::WaitEntry e;
        e.job = trace_field_int(line, "job").value_or(-1);
        e.wait = wait;
        e.start = trace_field_int(line, "t").value_or(-1);
        const auto before = [](const TraceSummary::WaitEntry& a,
                               const TraceSummary::WaitEntry& b) {
          if (a.wait != b.wait) return a.wait > b.wait;
          if (a.start != b.start) return a.start < b.start;
          return a.job < b.job;
        };
        const auto pos = std::upper_bound(s.top_waits.begin(),
                                          s.top_waits.end(), e, before);
        if (pos != s.top_waits.end() || s.top_waits.size() < top_k) {
          s.top_waits.insert(pos, e);
          if (s.top_waits.size() > top_k) s.top_waits.pop_back();
        }
      }
    } else if (*type == "end") {
      ++s.ends;
    } else if (*type == "kill") {
      ++s.kills;
    } else if (*type == "crash") {
      ++s.kills;
      ++s.crashes;
    } else if (*type == "resubmit") {
      ++s.resubmits;
    } else if (*type == "restore") {
      ++s.restores;
    } else if (*type == "drop") {
      ++s.drops;
    } else if (*type == "blocked") {
      ++s.blocked;
    } else if (*type == "outage") {
      ++s.outages;
    } else if (*type == "run_end") {
      s.makespan = trace_field_int(line, "makespan").value_or(0);
      s.jobs_completed =
          std::uint64_t(trace_field_int(line, "jobs").value_or(0));
    } else {
      // Unknown record types are forward compatibility, not errors.
      ++s.unknown_records;
    }
  }
  return s;
}

std::string TraceSummary::to_string() const {
  std::string out;
  out += "trace summary (schema v" + std::to_string(version) + ")\n";
  if (!scheduler.empty()) out += "  scheduler:  " + scheduler + "\n";
  if (nodes > 0) out += "  nodes:      " + std::to_string(nodes) + "\n";
  out += "  records:    " + std::to_string(lines) + " (" +
         std::to_string(submits) + " submits, " + std::to_string(starts) +
         " starts, " + std::to_string(ends) + " ends, " +
         std::to_string(kills) + " kills, " + std::to_string(blocked) +
         " blocked, " + std::to_string(outages) + " outage)\n";
  if (crashes + resubmits + restores + drops > 0) {
    out += "  recovery:   " + std::to_string(crashes) + " crashes, " +
           std::to_string(resubmits) + " resubmits, " +
           std::to_string(restores) + " restores, " + std::to_string(drops) +
           " drops\n";
  }
  if (jobs_completed > 0) {
    out += "  completed:  " + std::to_string(jobs_completed) +
           " jobs, makespan " + std::to_string(makespan) + "\n";
  }
  out += "  starts by provenance:\n";
  for (std::size_t i = 0; i < starts_by_provenance.size(); ++i) {
    if (starts_by_provenance[i] == 0) continue;
    out += "    ";
    out += sim::provenance_name(sim::StartProvenance(i));
    out += ": " + std::to_string(starts_by_provenance[i]) + "\n";
  }
  // Two-decimal percentage without pulling in iostream formatting.
  const long pct = std::lround(backfill_ratio() * 10000.0);
  out += "  backfill ratio: " + std::to_string(pct / 100) + "." +
         (pct % 100 < 10 ? "0" : "") + std::to_string(pct % 100) + "%\n";
  if (!top_waits.empty()) {
    out += "  longest waits:\n";
    for (const auto& e : top_waits) {
      out += "    job " + std::to_string(e.job) + ": waited " +
             std::to_string(e.wait) + "s, started at t=" +
             std::to_string(e.start) + "\n";
    }
  }
  return out;
}

}  // namespace pjsb::obs
