// Minimal reader for pjsb JSONL traces (obs/trace.hpp) and the
// trace-summary smoke consumer.
//
// The trace schema is flat by design — one object per line, unique
// keys, integer values, short quoted tokens — so this reader is a
// field scanner, not a JSON parser. It proves the schema is
// self-sufficient: everything `swf_tool trace-summary` reports (top-k
// waits, backfill ratio, provenance breakdown) is recovered from the
// trace alone, with no access to the workload or the simulator.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/provenance.hpp"

namespace pjsb::obs {

/// Extract the integer value of `"key":<int>` from one trace line.
/// nullopt when the key is absent or not an integer.
std::optional<std::int64_t> trace_field_int(std::string_view line,
                                            std::string_view key);

/// Extract the string value of `"key":"<token>"` from one trace line.
/// Tokens in our schema never contain escapes; nullopt when absent.
std::optional<std::string> trace_field_string(std::string_view line,
                                              std::string_view key);

/// Aggregate view of one trace, built in a single streaming pass.
struct TraceSummary {
  int version = -1;  ///< -1: no header record seen
  std::string scheduler;
  std::int64_t nodes = 0;

  std::uint64_t lines = 0;
  std::uint64_t submits = 0;
  std::uint64_t starts = 0;
  std::uint64_t ends = 0;
  std::uint64_t kills = 0;     ///< kill + crash records
  std::uint64_t crashes = 0;   ///< outage-caused kills (schema v2)
  std::uint64_t resubmits = 0; ///< queue re-entries after a kill (v2)
  std::uint64_t restores = 0;  ///< checkpoint resumes (v2)
  std::uint64_t drops = 0;     ///< abandoned jobs (v2)
  std::uint64_t blocked = 0;
  std::uint64_t outages = 0;
  std::uint64_t unknown_records = 0;  ///< unrecognized "type" values

  std::array<std::uint64_t, sim::kProvenanceCount> starts_by_provenance{};

  /// Longest-waiting starts, descending by wait (ties: earlier start,
  /// then smaller id, first) — at most `top_k` entries.
  struct WaitEntry {
    std::int64_t job = 0;
    std::int64_t wait = 0;
    std::int64_t start = 0;
  };
  std::vector<WaitEntry> top_waits;

  std::int64_t makespan = 0;   ///< from the run_end record (0 if none)
  std::uint64_t jobs_completed = 0;

  double backfill_ratio() const {
    const auto b =
        starts_by_provenance[std::size_t(sim::StartProvenance::kBackfill)];
    return starts ? double(b) / double(starts) : 0.0;
  }

  /// Human-readable report (the trace-summary subcommand's output).
  std::string to_string() const;
};

/// Stream one trace and summarize it. Throws std::invalid_argument on
/// a malformed line (no "type" field) so corrupt traces fail loudly.
TraceSummary summarize_trace(std::istream& in, std::size_t top_k = 10);

}  // namespace pjsb::obs
