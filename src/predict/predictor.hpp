// Queue-wait-time prediction (paper section 3.1).
//
// "In order to make reasonable decisions, the meta-scheduler needs
// information on how the machine schedulers are going to deal with its
// requests ... work on supercomputer queue time prediction [15,57,31]
// could be used to provide this information." We implement the three
// predictor families the experiments compare: a naive recent-mean, a
// Smith/Taylor/Foster-style template predictor over job categories, and
// a scheduler-assisted predictor that queries the scheduler's own
// reservation profile.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace pjsb::predict {

/// The features of a submission a predictor may condition on.
struct JobFeatures {
  std::int64_t submit = 0;
  std::int64_t procs = 1;
  std::int64_t estimate = 1;
  std::int64_t user_id = -1;
  std::int64_t executable_id = -1;
  std::int64_t queue_id = -1;
};

class WaitTimePredictor {
 public:
  virtual ~WaitTimePredictor() = default;

  virtual std::string name() const = 0;
  /// Learn from a completed wait observation.
  virtual void observe(const JobFeatures& features,
                       std::int64_t actual_wait) = 0;
  /// Predicted wait in seconds, or nullopt if the predictor has no
  /// basis yet (cold start).
  virtual std::optional<std::int64_t> predict(
      const JobFeatures& features) const = 0;
};

}  // namespace pjsb::predict
