#include "predict/recent_mean.hpp"

#include <stdexcept>

namespace pjsb::predict {

RecentMeanPredictor::RecentMeanPredictor(std::size_t window)
    : window_(window) {
  if (window == 0) {
    throw std::invalid_argument("RecentMeanPredictor: window >= 1");
  }
}

void RecentMeanPredictor::observe(const JobFeatures& /*features*/,
                                  std::int64_t actual_wait) {
  waits_.push_back(actual_wait);
  sum_ += actual_wait;
  if (waits_.size() > window_) {
    sum_ -= waits_.front();
    waits_.pop_front();
  }
}

std::optional<std::int64_t> RecentMeanPredictor::predict(
    const JobFeatures& /*features*/) const {
  if (waits_.empty()) return std::nullopt;
  return sum_ / std::int64_t(waits_.size());
}

}  // namespace pjsb::predict
