// Baseline predictor: the mean wait of the last k completed jobs,
// regardless of their shape. What a user watching the queue would guess.
#pragma once

#include <deque>

#include "predict/predictor.hpp"

namespace pjsb::predict {

class RecentMeanPredictor final : public WaitTimePredictor {
 public:
  explicit RecentMeanPredictor(std::size_t window = 32);

  std::string name() const override { return "recent-mean"; }
  void observe(const JobFeatures& features,
               std::int64_t actual_wait) override;
  std::optional<std::int64_t> predict(
      const JobFeatures& features) const override;

 private:
  std::size_t window_;
  std::deque<std::int64_t> waits_;
  std::int64_t sum_ = 0;
};

}  // namespace pjsb::predict
