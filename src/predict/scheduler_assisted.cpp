#include "predict/scheduler_assisted.hpp"

namespace pjsb::predict {

SchedulerAssistedPredictor::SchedulerAssistedPredictor(
    const sched::Scheduler& scheduler)
    : scheduler_(scheduler) {}

void SchedulerAssistedPredictor::observe(const JobFeatures& /*features*/,
                                         std::int64_t /*actual_wait*/) {
  // Stateless: the scheduler's live profile is the model.
}

std::optional<std::int64_t> SchedulerAssistedPredictor::predict(
    const JobFeatures& f) const {
  const auto start =
      scheduler_.predict_start(f.submit, f.procs, f.estimate);
  if (!start) return std::nullopt;
  return *start - f.submit;
}

}  // namespace pjsb::predict
