// Scheduler-assisted predictor: queries the scheduler's own reservation
// profile (section 3.1's wish — machine schedulers "enhanced" so meta
// schedulers can obtain wait information directly). Exact when the
// scheduler is conservative, an approximation for EASY.
#pragma once

#include "predict/predictor.hpp"
#include "sched/scheduler.hpp"

namespace pjsb::predict {

class SchedulerAssistedPredictor final : public WaitTimePredictor {
 public:
  /// Does not own the scheduler; it must outlive the predictor.
  explicit SchedulerAssistedPredictor(const sched::Scheduler& scheduler);

  std::string name() const override { return "scheduler-assisted"; }
  void observe(const JobFeatures& features,
               std::int64_t actual_wait) override;
  std::optional<std::int64_t> predict(
      const JobFeatures& features) const override;

 private:
  const sched::Scheduler& scheduler_;
};

}  // namespace pjsb::predict
