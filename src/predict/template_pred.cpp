#include "predict/template_pred.hpp"

#include <cmath>

namespace pjsb::predict {

TemplatePredictor::TemplatePredictor(std::size_t min_samples)
    : min_samples_(std::max<std::size_t>(1, min_samples)) {}

int TemplatePredictor::procs_bucket(std::int64_t procs) {
  int b = 0;
  while (procs > 1) {
    procs >>= 1;
    ++b;
  }
  return b;
}

int TemplatePredictor::estimate_bucket(std::int64_t estimate) {
  // Buckets: <1m, <10m, <1h, <4h, <12h, >=12h
  if (estimate < 60) return 0;
  if (estimate < 600) return 1;
  if (estimate < 3600) return 2;
  if (estimate < 4 * 3600) return 3;
  if (estimate < 12 * 3600) return 4;
  return 5;
}

void TemplatePredictor::observe(const JobFeatures& f,
                                std::int64_t actual_wait) {
  const int pb = procs_bucket(f.procs);
  const int eb = estimate_bucket(f.estimate);
  by_user_shape_[{f.user_id, pb, eb}].add(double(actual_wait));
  by_shape_[{pb, eb}].add(double(actual_wait));
  by_estimate_[eb].add(double(actual_wait));
  global_.add(double(actual_wait));
}

std::optional<std::int64_t> TemplatePredictor::predict(
    const JobFeatures& f) const {
  const int pb = procs_bucket(f.procs);
  const int eb = estimate_bucket(f.estimate);
  if (const auto it = by_user_shape_.find({f.user_id, pb, eb});
      it != by_user_shape_.end() && it->second.count() >= min_samples_) {
    return std::int64_t(it->second.mean());
  }
  if (const auto it = by_shape_.find({pb, eb});
      it != by_shape_.end() && it->second.count() >= min_samples_) {
    return std::int64_t(it->second.mean());
  }
  if (const auto it = by_estimate_.find(eb);
      it != by_estimate_.end() && it->second.count() >= min_samples_) {
    return std::int64_t(it->second.mean());
  }
  if (global_.count() >= 1) return std::int64_t(global_.mean());
  return std::nullopt;
}

}  // namespace pjsb::predict
