// Template-based predictor after Smith, Taylor & Foster [57] / Gibbons
// [31]: categorize jobs by discretized features, keep running
// statistics per category, and predict from the most specific category
// with enough observations, falling back to coarser templates.
#pragma once

#include <map>
#include <tuple>

#include "predict/predictor.hpp"
#include "util/stats.hpp"

namespace pjsb::predict {

class TemplatePredictor final : public WaitTimePredictor {
 public:
  /// `min_samples`: observations a template needs before it is trusted.
  explicit TemplatePredictor(std::size_t min_samples = 3);

  std::string name() const override { return "template"; }
  void observe(const JobFeatures& features,
               std::int64_t actual_wait) override;
  std::optional<std::int64_t> predict(
      const JobFeatures& features) const override;

  /// Discretization used for the templates (exposed for tests):
  /// log2 bucket of processor count and log10-ish bucket of estimate.
  static int procs_bucket(std::int64_t procs);
  static int estimate_bucket(std::int64_t estimate);

 private:
  /// Template hierarchy, most specific first:
  ///   (user, procs bucket, estimate bucket)
  ///   (procs bucket, estimate bucket)
  ///   (estimate bucket)
  ///   ()                                  — global fallback
  using KeyFull = std::tuple<std::int64_t, int, int>;
  using KeyShape = std::tuple<int, int>;

  std::size_t min_samples_;
  std::map<KeyFull, util::OnlineStats> by_user_shape_;
  std::map<KeyShape, util::OnlineStats> by_shape_;
  std::map<int, util::OnlineStats> by_estimate_;
  util::OnlineStats global_;
};

}  // namespace pjsb::predict
