// Online predictor training as a composable replay observer.
//
// Queue-wait predictors (section 3.1) learn from completed-job wait
// observations. This adapter feeds a replay's completion stream into
// any WaitTimePredictor, so training rides the same sim::SimObserver
// channel as CSV dumps and online metrics — attach it via
// ReplayHooks::observe (or Engine::add_observer) instead of hijacking
// the engine's single deprecated completion callback.
#pragma once

#include "predict/predictor.hpp"
#include "sim/observer.hpp"

namespace pjsb::predict {

class PredictorTrainer final : public sim::SimObserver {
 public:
  /// Non-owning: the predictor must outlive the run.
  explicit PredictorTrainer(WaitTimePredictor& predictor)
      : predictor_(predictor) {}

  void on_job_complete(const sim::CompletedJob& job) override {
    JobFeatures features;
    features.submit = job.submit;
    features.procs = job.procs;
    features.estimate = job.estimate;
    features.user_id = job.user_id;
    features.executable_id = job.executable_id;
    features.queue_id = job.queue_id;
    predictor_.observe(features, job.wait());
  }

 private:
  WaitTimePredictor& predictor_;
};

}  // namespace pjsb::predict
