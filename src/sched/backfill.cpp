#include "sched/backfill.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/snapshot/codec.hpp"

namespace pjsb::sched {

void BackfillBase::on_attach(SchedulerContext& ctx) {
  total_nodes_ = ctx.machine().total_nodes();
  profile_ = CapacityProfile(total_nodes_);
  base_changed_ = true;
}

void BackfillBase::on_submit(SchedulerContext& ctx, std::int64_t job_id) {
  queue_.push_back(job_id);
  const auto& j = ctx.job(job_id);
  queued_info_[job_id] = {j.procs, j.estimate};
}

void BackfillBase::release_running(std::int64_t job_id, std::int64_t now) {
  const auto it = running_.find(job_id);
  if (it == running_.end()) return;  // started externally, never tracked
  const auto& rj = it->second;
  // The job's capacity is free from `now` on; its history stays in the
  // profile until the next compaction.
  if (rj.profile_end > now) {
    profile_.remove_usage(now, rj.profile_end, rj.procs);
  }
  running_.erase(it);
  base_changed_ = true;
}

void BackfillBase::on_job_end(SchedulerContext& ctx, std::int64_t job_id) {
  release_running(job_id, ctx.now());
}

void BackfillBase::on_job_killed(SchedulerContext& ctx,
                                 std::int64_t job_id) {
  release_running(job_id, ctx.now());
}

void BackfillBase::note_outage(std::int64_t now,
                               const outage::OutageRecord& rec) {
  // Deduplicate: an announced outage is seen at announce AND start.
  for (const auto& w : outages_) {
    if (w.start == rec.start_time && w.end == rec.end_time &&
        w.nodes == rec.nodes_affected) {
      return;
    }
  }
  outages_.push_back({rec.start_time, rec.end_time, rec.nodes_affected});
  if (rec.end_time > now) {
    profile_.add_usage(std::max(rec.start_time, now), rec.end_time,
                       rec.nodes_affected);
  }
  base_changed_ = true;
}

void BackfillBase::on_outage_announce(SchedulerContext& ctx,
                                      const outage::OutageRecord& rec) {
  note_outage(ctx.now(), rec);
}

void BackfillBase::on_outage_start(SchedulerContext& ctx,
                                   const outage::OutageRecord& rec) {
  note_outage(ctx.now(), rec);
}

void BackfillBase::on_outage_end(SchedulerContext& ctx,
                                 const outage::OutageRecord& rec) {
  // Capacity is back; drop the window (it may end early in principle).
  const std::int64_t now = ctx.now();
  std::erase_if(outages_, [&](const OutageWindow& w) {
    const bool drop = w.end <= now || (w.start == rec.start_time &&
                                       w.nodes == rec.nodes_affected);
    if (drop && w.end > now) {
      profile_.remove_usage(std::max(w.start, now), w.end, w.nodes);
      base_changed_ = true;
    }
    return drop;
  });
}

void BackfillBase::note_started(std::int64_t id, std::int64_t now,
                                std::int64_t estimate, std::int64_t procs) {
  const std::int64_t end = now + estimate;
  running_[id] = {id, end, procs, end};
  profile_.add_usage(now, end, procs);
  expiry_heap_.push({end, id});
}

void BackfillBase::refresh_profile(std::int64_t now) {
  // Jobs that outlive their estimate keep occupying the machine: mirror
  // base_profile()'s end clamp by extending their usage one tick at a
  // time (rare — estimates are lower-bounded by runtimes in traces).
  while (!expiry_heap_.empty() && expiry_heap_.top().first <= now) {
    const auto [end, id] = expiry_heap_.top();
    expiry_heap_.pop();
    const auto it = running_.find(id);
    if (it == running_.end() || it->second.profile_end != end) continue;
    it->second.profile_end = now + 1;
    profile_.add_usage(now, now + 1, it->second.procs);
    expiry_heap_.push({now + 1, id});
    base_changed_ = true;
  }

  // Committed reservations whose window has passed no longer influence
  // any query from `now` on; drop them so the list stays bounded.
  std::erase_if(reservations_, [&](const AdvanceReservation& res) {
    return res.start + res.duration <= now;
  });

  // Fold history into the base so the step count stays O(running +
  // reservations + outages) over million-job traces.
  profile_.compact_before(now);

  if (cross_check_) {
    const CapacityProfile rebuilt = base_profile(now, total_nodes_);
    if (!profile_.same_from(rebuilt, now)) {
      std::ostringstream os;
      os << "BackfillBase: incremental profile diverged from rebuild at t="
         << now << "\nincremental:\n"
         << profile_.to_string() << "rebuilt:\n"
         << rebuilt.to_string();
      throw std::logic_error(os.str());
    }
  }
}

CapacityProfile BackfillBase::base_profile(std::int64_t now,
                                           std::int64_t total_nodes) const {
  CapacityProfile profile(total_nodes);
  for (const auto& [id, rj] : running_) {
    const std::int64_t end = std::max(rj.expected_end, now + 1);
    profile.add_usage(now, end, rj.procs);
  }
  for (const auto& res : reservations_) {
    const std::int64_t end = res.start + res.duration;
    if (end <= now) continue;
    profile.add_usage(std::max(res.start, now), end, res.procs);
  }
  for (const auto& w : outages_) {
    if (w.end <= now) continue;
    profile.add_usage(std::max(w.start, now), w.end, w.nodes);
  }
  return profile;
}

void BackfillBase::prune_queue(SchedulerContext& ctx) {
  std::erase_if(queue_, [&](std::int64_t id) {
    if (ctx.job(id).state != sim::JobState::kQueued) {
      queued_info_.erase(id);
      return true;
    }
    return false;
  });
}

std::int64_t BackfillBase::earliest_reservation_start(
    std::int64_t now, std::int64_t from, std::int64_t duration,
    std::int64_t procs, std::int64_t /*total_nodes*/) const {
  return profile_.earliest_start(std::max(from, now), duration, procs);
}

bool BackfillBase::try_reserve(SchedulerContext& ctx,
                               const AdvanceReservation& reservation) {
  const std::int64_t now = ctx.now();
  const std::int64_t end = reservation.start + reservation.duration;
  const std::int64_t from = std::max(reservation.start, now);
  if (!profile_.fits(from, end - from, reservation.procs)) {
    return false;
  }
  reservations_.push_back(reservation);
  profile_.add_usage(from, end, reservation.procs);
  base_changed_ = true;
  return true;
}

void BackfillBase::write_profile(sim::snapshot::Writer& w,
                                 const CapacityProfile& profile) {
  w.i64(profile.base_capacity());
  w.u64(profile.step_count());
  for (std::size_t i = 0; i < profile.step_count(); ++i) {
    const auto [time, avail] = profile.step_at(i);
    w.i64(time);
    w.i64(avail);
  }
}

CapacityProfile BackfillBase::read_profile(sim::snapshot::Reader& r) {
  const std::int64_t base = r.i64();
  const std::uint64_t n = r.u64();
  std::vector<std::pair<std::int64_t, std::int64_t>> steps;
  steps.reserve(std::size_t(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t time = r.i64();
    const std::int64_t avail = r.i64();
    steps.emplace_back(time, avail);
  }
  return CapacityProfile::from_steps(base, steps);
}

void BackfillBase::save_state(sim::snapshot::Writer& w) const {
  w.u64(queue_.size());
  for (std::int64_t id : queue_) w.i64(id);

  // Hash maps are serialized in sorted-key order so the byte stream is
  // independent of hashing/insertion history; lookups don't care.
  std::vector<std::int64_t> ids;
  ids.reserve(queued_info_.size());
  for (const auto& [id, info] : queued_info_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.u64(ids.size());
  for (std::int64_t id : ids) {
    const auto& info = queued_info_.at(id);
    w.i64(id);
    w.i64(info.procs);
    w.i64(info.estimate);
  }

  ids.clear();
  for (const auto& [id, rj] : running_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.u64(ids.size());
  for (std::int64_t id : ids) {
    const auto& rj = running_.at(id);
    w.i64(rj.id);
    w.i64(rj.expected_end);
    w.i64(rj.procs);
    w.i64(rj.profile_end);
  }

  w.u64(reservations_.size());
  for (const auto& res : reservations_) {
    w.i64(res.id);
    w.i64(res.start);
    w.i64(res.duration);
    w.i64(res.procs);
    w.boolean(res.job_id.has_value());
    if (res.job_id) w.i64(*res.job_id);
  }

  w.u64(outages_.size());
  for (const auto& o : outages_) {
    w.i64(o.start);
    w.i64(o.end);
    w.i64(o.nodes);
  }

  w.i64(total_nodes_);
  write_profile(w, profile_);

  // Drain a copy of the overrun heap in pop order; equal entries are
  // identical pairs, so re-pushing in this order rebuilds a heap with
  // the same pop sequence.
  auto heap = expiry_heap_;
  w.u64(heap.size());
  while (!heap.empty()) {
    const auto [end, id] = heap.top();
    heap.pop();
    w.i64(end);
    w.i64(id);
  }

  w.boolean(base_changed_);
  // cross_check_ is a build/debug setting of the restoring process,
  // not simulation state; it is deliberately not serialized.
}

void BackfillBase::load_state(sim::snapshot::Reader& r) {
  queue_.clear();
  std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) queue_.push_back(r.i64());

  queued_info_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t id = r.i64();
    QueuedInfo info;
    info.procs = r.i64();
    info.estimate = r.i64();
    queued_info_.emplace(id, info);
  }

  running_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    RunningJob rj;
    rj.id = r.i64();
    rj.expected_end = r.i64();
    rj.procs = r.i64();
    rj.profile_end = r.i64();
    running_.emplace(rj.id, rj);
  }

  reservations_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    AdvanceReservation res;
    res.id = r.i64();
    res.start = r.i64();
    res.duration = r.i64();
    res.procs = r.i64();
    if (r.boolean()) res.job_id = r.i64();
    reservations_.push_back(res);
  }

  outages_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    OutageWindow o;
    o.start = r.i64();
    o.end = r.i64();
    o.nodes = r.i64();
    outages_.push_back(o);
  }

  total_nodes_ = r.i64();
  profile_ = read_profile(r);

  expiry_heap_ = {};
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t end = r.i64();
    const std::int64_t id = r.i64();
    expiry_heap_.push({end, id});
  }

  base_changed_ = r.boolean();
}

}  // namespace pjsb::sched
