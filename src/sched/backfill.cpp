#include "sched/backfill.hpp"

#include <algorithm>

namespace pjsb::sched {

void BackfillBase::on_attach(SchedulerContext& ctx) {
  total_nodes_ = ctx.machine().total_nodes();
}

void BackfillBase::on_submit(SchedulerContext& ctx, std::int64_t job_id) {
  queue_.push_back(job_id);
  const auto& j = ctx.job(job_id);
  queued_info_[job_id] = {j.procs, j.estimate};
}

void BackfillBase::on_job_end(SchedulerContext& /*ctx*/,
                              std::int64_t job_id) {
  running_.erase(job_id);
}

void BackfillBase::on_job_killed(SchedulerContext& /*ctx*/,
                                 std::int64_t job_id) {
  running_.erase(job_id);
}

void BackfillBase::note_outage(const outage::OutageRecord& rec) {
  // Deduplicate: an announced outage is seen at announce AND start.
  for (const auto& w : outages_) {
    if (w.start == rec.start_time && w.end == rec.end_time &&
        w.nodes == rec.nodes_affected) {
      return;
    }
  }
  outages_.push_back({rec.start_time, rec.end_time, rec.nodes_affected});
}

void BackfillBase::on_outage_announce(SchedulerContext& /*ctx*/,
                                      const outage::OutageRecord& rec) {
  note_outage(rec);
}

void BackfillBase::on_outage_start(SchedulerContext& /*ctx*/,
                                   const outage::OutageRecord& rec) {
  note_outage(rec);
}

void BackfillBase::on_outage_end(SchedulerContext& ctx,
                                 const outage::OutageRecord& rec) {
  // Capacity is back; drop the window (it may end early in principle).
  std::erase_if(outages_, [&](const OutageWindow& w) {
    return w.end <= ctx.now() ||
           (w.start == rec.start_time && w.nodes == rec.nodes_affected);
  });
}

CapacityProfile BackfillBase::base_profile(std::int64_t now,
                                           std::int64_t total_nodes) const {
  CapacityProfile profile(total_nodes);
  for (const auto& [id, rj] : running_) {
    const std::int64_t end = std::max(rj.expected_end, now + 1);
    profile.add_usage(now, end, rj.procs);
  }
  for (const auto& res : reservations_) {
    const std::int64_t end = res.start + res.duration;
    if (end <= now) continue;
    profile.add_usage(std::max(res.start, now), end, res.procs);
  }
  for (const auto& w : outages_) {
    if (w.end <= now) continue;
    profile.add_usage(std::max(w.start, now), w.end, w.nodes);
  }
  return profile;
}

void BackfillBase::prune_queue(SchedulerContext& ctx) {
  std::erase_if(queue_, [&](std::int64_t id) {
    if (ctx.job(id).state != sim::JobState::kQueued) {
      queued_info_.erase(id);
      return true;
    }
    return false;
  });
}

std::int64_t BackfillBase::earliest_reservation_start(
    std::int64_t now, std::int64_t from, std::int64_t duration,
    std::int64_t procs, std::int64_t total_nodes) const {
  const CapacityProfile profile = base_profile(now, total_nodes);
  return profile.earliest_start(std::max(from, now), duration, procs);
}

bool BackfillBase::try_reserve(SchedulerContext& ctx,
                               const AdvanceReservation& reservation) {
  const CapacityProfile profile =
      base_profile(ctx.now(), ctx.machine().total_nodes());
  if (!profile.fits(reservation.start, reservation.duration,
                    reservation.procs)) {
    return false;
  }
  reservations_.push_back(reservation);
  return true;
}

}  // namespace pjsb::sched
