#include "sched/backfill.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pjsb::sched {

void BackfillBase::on_attach(SchedulerContext& ctx) {
  total_nodes_ = ctx.machine().total_nodes();
  profile_ = CapacityProfile(total_nodes_);
  base_changed_ = true;
}

void BackfillBase::on_submit(SchedulerContext& ctx, std::int64_t job_id) {
  queue_.push_back(job_id);
  const auto& j = ctx.job(job_id);
  queued_info_[job_id] = {j.procs, j.estimate};
}

void BackfillBase::release_running(std::int64_t job_id, std::int64_t now) {
  const auto it = running_.find(job_id);
  if (it == running_.end()) return;  // started externally, never tracked
  const auto& rj = it->second;
  // The job's capacity is free from `now` on; its history stays in the
  // profile until the next compaction.
  if (rj.profile_end > now) {
    profile_.remove_usage(now, rj.profile_end, rj.procs);
  }
  running_.erase(it);
  base_changed_ = true;
}

void BackfillBase::on_job_end(SchedulerContext& ctx, std::int64_t job_id) {
  release_running(job_id, ctx.now());
}

void BackfillBase::on_job_killed(SchedulerContext& ctx,
                                 std::int64_t job_id) {
  release_running(job_id, ctx.now());
}

void BackfillBase::note_outage(std::int64_t now,
                               const outage::OutageRecord& rec) {
  // Deduplicate: an announced outage is seen at announce AND start.
  for (const auto& w : outages_) {
    if (w.start == rec.start_time && w.end == rec.end_time &&
        w.nodes == rec.nodes_affected) {
      return;
    }
  }
  outages_.push_back({rec.start_time, rec.end_time, rec.nodes_affected});
  if (rec.end_time > now) {
    profile_.add_usage(std::max(rec.start_time, now), rec.end_time,
                       rec.nodes_affected);
  }
  base_changed_ = true;
}

void BackfillBase::on_outage_announce(SchedulerContext& ctx,
                                      const outage::OutageRecord& rec) {
  note_outage(ctx.now(), rec);
}

void BackfillBase::on_outage_start(SchedulerContext& ctx,
                                   const outage::OutageRecord& rec) {
  note_outage(ctx.now(), rec);
}

void BackfillBase::on_outage_end(SchedulerContext& ctx,
                                 const outage::OutageRecord& rec) {
  // Capacity is back; drop the window (it may end early in principle).
  const std::int64_t now = ctx.now();
  std::erase_if(outages_, [&](const OutageWindow& w) {
    const bool drop = w.end <= now || (w.start == rec.start_time &&
                                       w.nodes == rec.nodes_affected);
    if (drop && w.end > now) {
      profile_.remove_usage(std::max(w.start, now), w.end, w.nodes);
      base_changed_ = true;
    }
    return drop;
  });
}

void BackfillBase::note_started(std::int64_t id, std::int64_t now,
                                std::int64_t estimate, std::int64_t procs) {
  const std::int64_t end = now + estimate;
  running_[id] = {id, end, procs, end};
  profile_.add_usage(now, end, procs);
  expiry_heap_.push({end, id});
}

void BackfillBase::refresh_profile(std::int64_t now) {
  // Jobs that outlive their estimate keep occupying the machine: mirror
  // base_profile()'s end clamp by extending their usage one tick at a
  // time (rare — estimates are lower-bounded by runtimes in traces).
  while (!expiry_heap_.empty() && expiry_heap_.top().first <= now) {
    const auto [end, id] = expiry_heap_.top();
    expiry_heap_.pop();
    const auto it = running_.find(id);
    if (it == running_.end() || it->second.profile_end != end) continue;
    it->second.profile_end = now + 1;
    profile_.add_usage(now, now + 1, it->second.procs);
    expiry_heap_.push({now + 1, id});
    base_changed_ = true;
  }

  // Committed reservations whose window has passed no longer influence
  // any query from `now` on; drop them so the list stays bounded.
  std::erase_if(reservations_, [&](const AdvanceReservation& res) {
    return res.start + res.duration <= now;
  });

  // Fold history into the base so the step count stays O(running +
  // reservations + outages) over million-job traces.
  profile_.compact_before(now);

  if (cross_check_) {
    const CapacityProfile rebuilt = base_profile(now, total_nodes_);
    if (!profile_.same_from(rebuilt, now)) {
      std::ostringstream os;
      os << "BackfillBase: incremental profile diverged from rebuild at t="
         << now << "\nincremental:\n"
         << profile_.to_string() << "rebuilt:\n"
         << rebuilt.to_string();
      throw std::logic_error(os.str());
    }
  }
}

CapacityProfile BackfillBase::base_profile(std::int64_t now,
                                           std::int64_t total_nodes) const {
  CapacityProfile profile(total_nodes);
  for (const auto& [id, rj] : running_) {
    const std::int64_t end = std::max(rj.expected_end, now + 1);
    profile.add_usage(now, end, rj.procs);
  }
  for (const auto& res : reservations_) {
    const std::int64_t end = res.start + res.duration;
    if (end <= now) continue;
    profile.add_usage(std::max(res.start, now), end, res.procs);
  }
  for (const auto& w : outages_) {
    if (w.end <= now) continue;
    profile.add_usage(std::max(w.start, now), w.end, w.nodes);
  }
  return profile;
}

void BackfillBase::prune_queue(SchedulerContext& ctx) {
  std::erase_if(queue_, [&](std::int64_t id) {
    if (ctx.job(id).state != sim::JobState::kQueued) {
      queued_info_.erase(id);
      return true;
    }
    return false;
  });
}

std::int64_t BackfillBase::earliest_reservation_start(
    std::int64_t now, std::int64_t from, std::int64_t duration,
    std::int64_t procs, std::int64_t /*total_nodes*/) const {
  return profile_.earliest_start(std::max(from, now), duration, procs);
}

bool BackfillBase::try_reserve(SchedulerContext& ctx,
                               const AdvanceReservation& reservation) {
  const std::int64_t now = ctx.now();
  const std::int64_t end = reservation.start + reservation.duration;
  const std::int64_t from = std::max(reservation.start, now);
  if (!profile_.fits(from, end - from, reservation.procs)) {
    return false;
  }
  reservations_.push_back(reservation);
  profile_.add_usage(from, end, reservation.procs);
  base_changed_ = true;
  return true;
}

}  // namespace pjsb::sched
