// Shared machinery for profile-based (backfilling) schedulers.
//
// EASY and conservative backfilling both reason about the future with a
// capacity profile built from: running jobs (until their *estimated*
// ends), committed advance reservations (section 3's metacomputing
// requirement), and known outage windows (section 2.2's drain-around-
// maintenance behaviour). This base class owns that state; subclasses
// implement the queueing discipline.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "sched/profile.hpp"
#include "sched/scheduler.hpp"

namespace pjsb::sched {

class BackfillBase : public Scheduler {
 public:
  void on_attach(SchedulerContext& ctx) override;
  void on_submit(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_job_end(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_job_killed(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_outage_announce(SchedulerContext& ctx,
                          const outage::OutageRecord& rec) override;
  void on_outage_start(SchedulerContext& ctx,
                       const outage::OutageRecord& rec) override;
  void on_outage_end(SchedulerContext& ctx,
                     const outage::OutageRecord& rec) override;
  bool try_reserve(SchedulerContext& ctx,
                   const AdvanceReservation& reservation) override;

  /// Earliest feasible window start for an external reservation of
  /// (procs, duration) not before `from`, against running jobs +
  /// existing reservations + outages (queued jobs are not protected —
  /// reservations have priority, which is the tension experiment E8
  /// measures). kForever if impossible.
  std::int64_t earliest_reservation_start(std::int64_t now,
                                          std::int64_t from,
                                          std::int64_t duration,
                                          std::int64_t procs,
                                          std::int64_t total_nodes) const;

  std::size_t queue_length() const { return queue_.size(); }

 protected:
  struct RunningJob {
    std::int64_t id = 0;
    std::int64_t expected_end = 0;
    std::int64_t procs = 0;
  };
  struct QueuedInfo {
    std::int64_t procs = 0;
    std::int64_t estimate = 0;
  };
  struct OutageWindow {
    std::int64_t start = 0;
    std::int64_t end = 0;
    std::int64_t nodes = 0;
  };

  /// Base profile: running jobs + reservations + outage windows, over
  /// `total_nodes`. `now` clamps estimated ends into the future.
  CapacityProfile base_profile(std::int64_t now,
                               std::int64_t total_nodes) const;

  /// Drop queue entries that are no longer queued (externally started).
  void prune_queue(SchedulerContext& ctx);

  std::deque<std::int64_t> queue_;
  std::unordered_map<std::int64_t, QueuedInfo> queued_info_;
  std::unordered_map<std::int64_t, RunningJob> running_;
  std::vector<AdvanceReservation> reservations_;
  std::vector<OutageWindow> outages_;
  /// Machine size, learned at attach time.
  std::int64_t total_nodes_ = 0;

 private:
  void note_outage(const outage::OutageRecord& rec);
};

}  // namespace pjsb::sched
