// Shared machinery for profile-based (backfilling) schedulers.
//
// EASY and conservative backfilling both reason about the future with a
// capacity profile built from: running jobs (until their *estimated*
// ends), committed advance reservations (section 3's metacomputing
// requirement), and known outage windows (section 2.2's drain-around-
// maintenance behaviour). This base class owns that state; subclasses
// implement the queueing discipline.
//
// The profile is maintained *incrementally* across events: starting a
// job adds its usage once, an (early) completion removes the remaining
// usage, outage/reservation changes patch their windows, and the past
// is compacted away every pass — no O(running + reservations) rebuild
// per event. `base_profile()` still builds the same profile from
// scratch; with cross-checking enabled (default in debug builds, see
// set_cross_check) every schedule() pass verifies the incremental and
// rebuilt profiles agree from now on.
#pragma once

#include <deque>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sched/profile.hpp"
#include "sched/scheduler.hpp"

namespace pjsb::sched {

class BackfillBase : public Scheduler {
 public:
  void on_attach(SchedulerContext& ctx) override;
  void on_submit(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_job_end(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_job_killed(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_outage_announce(SchedulerContext& ctx,
                          const outage::OutageRecord& rec) override;
  void on_outage_start(SchedulerContext& ctx,
                       const outage::OutageRecord& rec) override;
  void on_outage_end(SchedulerContext& ctx,
                     const outage::OutageRecord& rec) override;
  bool try_reserve(SchedulerContext& ctx,
                   const AdvanceReservation& reservation) override;

  /// Serialize / restore the shared backfilling state (queue, running
  /// set, reservations, outage windows, incremental profile, overrun
  /// heap). Subclasses with extra state override, call the base, then
  /// append their own fields.
  void save_state(sim::snapshot::Writer& w) const override;
  void load_state(sim::snapshot::Reader& r) override;

  /// Earliest feasible window start for an external reservation of
  /// (procs, duration) not before `from`, against running jobs +
  /// existing reservations + outages (queued jobs are not protected —
  /// reservations have priority, which is the tension experiment E8
  /// measures). kForever if impossible.
  std::int64_t earliest_reservation_start(std::int64_t now,
                                          std::int64_t from,
                                          std::int64_t duration,
                                          std::int64_t procs,
                                          std::int64_t total_nodes) const;

  std::size_t queue_length() const { return queue_.size(); }

  /// The incrementally maintained base profile (running jobs +
  /// reservations + outages). Exposed for tests and diagnostics.
  const CapacityProfile& profile() const { return profile_; }

  /// Verify the incremental profile against a from-scratch rebuild on
  /// every schedule() pass (throws std::logic_error on divergence). On
  /// by default in debug builds; tests can force it on in Release.
  void set_cross_check(bool on) { cross_check_ = on; }

 protected:
  struct RunningJob {
    std::int64_t id = 0;
    std::int64_t expected_end = 0;
    std::int64_t procs = 0;
    /// End of the usage currently recorded in profile_ for this job
    /// (expected_end, or now+1 ticks while the job overruns it).
    std::int64_t profile_end = 0;
  };
  struct QueuedInfo {
    std::int64_t procs = 0;
    std::int64_t estimate = 0;
  };
  struct OutageWindow {
    std::int64_t start = 0;
    std::int64_t end = 0;
    std::int64_t nodes = 0;
  };

  /// Reference rebuild: running jobs + reservations + outage windows,
  /// over `total_nodes`, with estimated ends clamped into the future.
  /// Used by the cross-check; the hot path uses profile_.
  CapacityProfile base_profile(std::int64_t now,
                               std::int64_t total_nodes) const;

  /// Drop queue entries that are no longer queued (externally started).
  void prune_queue(SchedulerContext& ctx);

  /// Per-pass profile upkeep, called at the top of schedule(): extend
  /// usages of jobs overrunning their estimate, compact the past, and
  /// run the optional cross-check.
  void refresh_profile(std::int64_t now);

  /// True when the base profile's *semantics* changed since the last
  /// consume_base_change() — a job ended/was killed, an outage window
  /// appeared/cleared, a reservation was committed, or an overrun
  /// extension fired. Pure submissions and compaction do not set it.
  /// Lets subclasses that cache placements against the base (the
  /// conservative compression pass) skip recomputation on
  /// submission-only events.
  bool consume_base_change() {
    const bool changed = base_changed_;
    base_changed_ = false;
    return changed;
  }

  /// Record a job started now: running-set entry + profile usage.
  void note_started(std::int64_t id, std::int64_t now,
                    std::int64_t estimate, std::int64_t procs);

  /// Profile (de)serialization helpers shared with subclasses.
  static void write_profile(sim::snapshot::Writer& w,
                            const CapacityProfile& profile);
  static CapacityProfile read_profile(sim::snapshot::Reader& r);

  std::deque<std::int64_t> queue_;
  std::unordered_map<std::int64_t, QueuedInfo> queued_info_;
  std::unordered_map<std::int64_t, RunningJob> running_;
  std::vector<AdvanceReservation> reservations_;
  std::vector<OutageWindow> outages_;
  /// Machine size, learned at attach time.
  std::int64_t total_nodes_ = 0;
  /// Incrementally maintained base profile (see class comment).
  CapacityProfile profile_{0};

 private:
  void note_outage(std::int64_t now, const outage::OutageRecord& rec);
  /// Remove a running job's remaining profile usage (end or kill).
  void release_running(std::int64_t job_id, std::int64_t now);

  /// (profile_end, job id) min-heap driving overrun extension; entries
  /// are validated against running_ when popped.
  std::priority_queue<std::pair<std::int64_t, std::int64_t>,
                      std::vector<std::pair<std::int64_t, std::int64_t>>,
                      std::greater<>>
      expiry_heap_;
  /// See consume_base_change(); starts true so the first pass after
  /// attach always recomputes from scratch.
  bool base_changed_ = true;
#ifndef NDEBUG
  bool cross_check_ = true;
#else
  bool cross_check_ = false;
#endif
};

}  // namespace pjsb::sched
