#include "sched/conservative.hpp"

#include <algorithm>
#include <vector>

#include "sched/registry.hpp"
#include "sim/snapshot/codec.hpp"

namespace pjsb::sched {

SchedulerInfo conservative_scheduler_info() {
  SchedulerInfo info;
  info.name = "conservative";
  info.description =
      "conservative backfilling: every queued job holds a reservation";
  info.aliases = {"cons"};
  info.params = {ParamSpec::integer(
      "reserve_depth",
      "queued jobs granted reservations; jobs beyond the depth backfill "
      "opportunistically (0 = all jobs, the classic policy)",
      0, 0, 1 << 20)};
  info.make = +[](const ParamValues& values) -> std::unique_ptr<Scheduler> {
    return std::make_unique<ConservativeScheduler>(
        int(values.get_int("reserve_depth")));
  };
  return info;
}

std::string ConservativeScheduler::name() const {
  if (reserve_depth_ == 0) return "conservative";
  return "conservative reserve_depth=" + std::to_string(reserve_depth_);
}

void ConservativeScheduler::on_attach(SchedulerContext& ctx) {
  BackfillBase::on_attach(ctx);
  full_profile_ = profile_;
}

std::optional<std::int64_t> ConservativeScheduler::reserved_start(
    std::int64_t job_id) const {
  const auto it = placed_.find(job_id);
  if (it == placed_.end()) return std::nullopt;
  return it->second;
}

void ConservativeScheduler::schedule(SchedulerContext& ctx) {
  const std::int64_t now = ctx.now();
  total_nodes_ = ctx.machine().total_nodes();
  const std::size_t before_prune = queue_.size();
  prune_queue(ctx);
  const bool externally_started = queue_.size() != before_prune;
  refresh_profile(now);  // may flag an overrun extension

  // Annotate-and-start: stamp the reason onto the emitted decision.
  const auto start_as = [&ctx](std::int64_t id, sim::StartProvenance why,
                               std::int64_t detail = -1) {
    ctx.annotate_start(why, detail);
    return ctx.start_job(id);
  };

  // Submission-only fast path: when the base profile's semantics did
  // not change since the last pass, standing reservations can neither
  // improve nor break — only reservations that came due need starting
  // and only unplaced (new / beyond-depth) jobs need work, against the
  // maintained base+claims profile. This is the common case on a
  // backfill-heavy replay (every job contributes one submit event).
  if (!consume_base_change() && !externally_started &&
      !full_profile_stale_) {
    std::size_t reserved = placed_.size();
    for (auto it = queue_.begin(); it != queue_.end();) {
      const auto& j = ctx.job(*it);
      const auto placed = placed_.find(*it);
      if (placed != placed_.end()) {
        // A standing reservation: due (the clock reached its slot —
        // e.g. a submission event landing exactly on it) means start.
        if (placed->second <= now &&
            start_as(*it, sim::StartProvenance::kReservation,
                     placed->second)) {
          full_profile_.remove_usage(placed->second,
                                     placed->second + j.estimate, j.procs);
          full_profile_.add_usage(now, now + j.estimate, j.procs);
          note_started(j.id, now, j.estimate, j.procs);
          queued_info_.erase(j.id);
          placed_.erase(placed);
          it = queue_.erase(it);
          --reserved;  // a started job frees its depth slot
          continue;
        }
        ++it;
        continue;
      }
      const bool in_depth =
          reserve_depth_ == 0 || reserved < std::size_t(reserve_depth_);
      if (in_depth) {
        const std::int64_t t =
            full_profile_.earliest_start(now, j.estimate, j.procs);
        // An immediate first placement is a queue-order start at the
        // front, a backfill move (ahead of earlier queued jobs) behind.
        if (t == now &&
            start_as(*it, it == queue_.begin()
                              ? sim::StartProvenance::kQueueHead
                              : sim::StartProvenance::kBackfill)) {
          full_profile_.add_usage(now, now + j.estimate, j.procs);
          note_started(j.id, now, j.estimate, j.procs);
          queued_info_.erase(j.id);
          it = queue_.erase(it);
          continue;
        }
        if (t < kForever) {
          full_profile_.add_usage(t, t + j.estimate, j.procs);
          placed_[j.id] = t;
        }
        ++reserved;
        ++it;
      } else if (full_profile_.fits(now, j.estimate, j.procs) &&
                 start_as(*it, sim::StartProvenance::kBackfill)) {
        full_profile_.add_usage(now, now + j.estimate, j.procs);
        note_started(j.id, now, j.estimate, j.procs);
        queued_info_.erase(j.id);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    full_profile_.compact_before(now);
    return;
  }

  // Build the full profile: the maintained base plus every standing
  // reservation. Claims are added up front so that compressing one job
  // can never move it into capacity promised to another — the
  // improvement-only rule that keeps every promise (see header).
  CapacityProfile profile = profile_;
  std::size_t claims = 0;
  for (const std::int64_t id : queue_) {
    const auto it = placed_.find(id);
    if (it == placed_.end()) continue;
    // A slot that slipped into the past is a promise already void (the
    // start at the reserved time failed on a shrunken machine, or no
    // event landed on the slot at all — possible once kills requeue
    // jobs). A void claim must not stand in the profile: with several
    // stale full-machine claims, each would block the others from
    // compressing to `now` and the run could drain its events with the
    // machine idle and jobs still queued. Drop it; the holder is
    // re-placed below as a fresh job.
    if (it->second < now) {
      placed_.erase(it);
      continue;
    }
    const auto& j = ctx.job(id);
    profile.add_usage(it->second, it->second + j.estimate, j.procs);
    ++claims;
  }
  // Placements of jobs that left the queue between passes (externally
  // started via an attached reservation) were not added above; drop
  // them so they cannot linger.
  if (placed_.size() != claims) {
    std::unordered_map<std::int64_t, std::int64_t> live;
    for (const std::int64_t id : queue_) {
      const auto it = placed_.find(id);
      if (it != placed_.end()) live.emplace(*it);
    }
    placed_ = std::move(live);
  }

  std::size_t reserved = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const auto& j = ctx.job(*it);
    const bool in_depth =
        reserve_depth_ == 0 || reserved < std::size_t(reserve_depth_);
    if (in_depth) {
      // Compress (or first-place) this job's reservation with every
      // other claim standing.
      std::int64_t slot = kForever;
      const auto placed = placed_.find(*it);
      const std::int64_t prior_slot =
          placed != placed_.end() ? placed->second : kForever;
      if (placed != placed_.end()) {
        slot = placed->second;
        profile.remove_usage(slot, slot + j.estimate, j.procs);
      }
      const std::int64_t t = profile.earliest_start(now, j.estimate, j.procs);
      if (t <= slot) {
        slot = t;  // improvement (or first placement)
      } else if (slot < now || !profile.fits(slot, j.estimate, j.procs)) {
        // The promised slot is gone — it slipped into the past (the
        // start at the reserved time failed on a shrunken machine), an
        // outage window opened over it, an accepted external
        // reservation claimed it, or an overrunning job ate it. Only
        // then is the promise void and the job re-placed later.
        slot = t;
      }
      // Starting from a held reservation (possibly compressed to now)
      // is a reservation start carrying the prior promised slot; a
      // first placement that lands on "now" is a queue-order start at
      // the front, a backfill move behind it.
      if (slot == now &&
          start_as(*it,
                   prior_slot < kForever ? sim::StartProvenance::kReservation
                   : it == queue_.begin()
                       ? sim::StartProvenance::kQueueHead
                       : sim::StartProvenance::kBackfill,
                   prior_slot < kForever ? prior_slot : -1)) {
        profile.add_usage(now, now + j.estimate, j.procs);
        note_started(j.id, now, j.estimate, j.procs);
        queued_info_.erase(j.id);
        placed_.erase(j.id);
        it = queue_.erase(it);
        continue;
      }
      if (slot < kForever) {
        profile.add_usage(slot, slot + j.estimate, j.procs);
        placed_[j.id] = slot;
      } else {
        placed_.erase(j.id);
      }
      ++reserved;  // a started job holds no reservation
      ++it;
    } else if (profile.fits(now, j.estimate, j.procs) &&
               start_as(*it, sim::StartProvenance::kBackfill)) {
      profile.add_usage(now, now + j.estimate, j.procs);
      note_started(j.id, now, j.estimate, j.procs);
      queued_info_.erase(j.id);
      placed_.erase(j.id);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  full_profile_ = std::move(profile);
  full_profile_stale_ = false;
}

bool ConservativeScheduler::try_reserve(
    SchedulerContext& ctx, const AdvanceReservation& reservation) {
  const bool accepted = BackfillBase::try_reserve(ctx, reservation);
  // The base profile changed without a schedule() pass: queue
  // placements in full_profile_ no longer account for the new window.
  if (accepted) full_profile_stale_ = true;
  return accepted;
}

std::optional<std::int64_t> ConservativeScheduler::predict_start(
    std::int64_t now, std::int64_t procs, std::int64_t estimate) const {
  if (total_nodes_ <= 0) return std::nullopt;
  if (full_profile_stale_) {
    // Rebuild base + standing placements (placements themselves do not
    // move between events; the next schedule() pass compresses them).
    CapacityProfile profile = profile_;
    for (const std::int64_t id : queue_) {
      const auto placed = placed_.find(id);
      if (placed == placed_.end()) continue;
      const auto info = queued_info_.find(id);
      if (info == queued_info_.end()) continue;
      profile.add_usage(placed->second,
                        placed->second + info->second.estimate,
                        info->second.procs);
    }
    full_profile_ = std::move(profile);
    full_profile_stale_ = false;
  }
  // Query against the maintained base + queue placements; the
  // hypothetical job only needs one earliest-start sweep.
  const std::int64_t t = full_profile_.earliest_start(now, estimate, procs);
  if (t >= kForever) return std::nullopt;
  return t;
}

void ConservativeScheduler::save_state(sim::snapshot::Writer& w) const {
  BackfillBase::save_state(w);
  std::vector<std::int64_t> ids;
  ids.reserve(placed_.size());
  for (const auto& [id, slot] : placed_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.u64(ids.size());
  for (std::int64_t id : ids) {
    w.i64(id);
    w.i64(placed_.at(id));
  }
  write_profile(w, full_profile_);
  w.boolean(full_profile_stale_);
}

void ConservativeScheduler::load_state(sim::snapshot::Reader& r) {
  BackfillBase::load_state(r);
  placed_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t id = r.i64();
    placed_.emplace(id, r.i64());
  }
  full_profile_ = read_profile(r);
  full_profile_stale_ = r.boolean();
}

}  // namespace pjsb::sched
