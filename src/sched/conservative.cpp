#include "sched/conservative.hpp"

#include "sched/registry.hpp"

namespace pjsb::sched {

SchedulerInfo conservative_scheduler_info() {
  SchedulerInfo info;
  info.name = "conservative";
  info.description =
      "conservative backfilling: every queued job holds a reservation";
  info.aliases = {"cons"};
  info.params = {ParamSpec::integer(
      "reserve_depth",
      "queued jobs granted reservations; jobs beyond the depth backfill "
      "opportunistically (0 = all jobs, the classic policy)",
      0, 0, 1 << 20)};
  info.make = +[](const ParamValues& values) -> std::unique_ptr<Scheduler> {
    return std::make_unique<ConservativeScheduler>(
        int(values.get_int("reserve_depth")));
  };
  return info;
}

std::string ConservativeScheduler::name() const {
  if (reserve_depth_ == 0) return "conservative";
  return "conservative reserve_depth=" + std::to_string(reserve_depth_);
}

void ConservativeScheduler::on_attach(SchedulerContext& ctx) {
  BackfillBase::on_attach(ctx);
  full_profile_ = profile_;
}

void ConservativeScheduler::schedule(SchedulerContext& ctx) {
  const std::int64_t now = ctx.now();
  total_nodes_ = ctx.machine().total_nodes();
  prune_queue(ctx);
  refresh_profile(now);

  // Re-place each queued job (FIFO order) at its earliest feasible
  // start on a copy of the maintained base profile; start those whose
  // reservation is "now". Re-placing per event keeps the profile
  // consistent after early completions (jobs finishing before their
  // estimate compress everyone's reservations); the base itself is
  // never rebuilt, and earliest_start is a single O(steps) sweep.
  // Jobs beyond reserve_depth_ hold no reservation: they start only
  // when they fit immediately without delaying a placed reservation.
  CapacityProfile profile = profile_;

  std::size_t placed = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const auto& j = ctx.job(*it);
    if (reserve_depth_ == 0 || placed < std::size_t(reserve_depth_)) {
      const std::int64_t t = profile.earliest_start(now, j.estimate, j.procs);
      if (t == now && ctx.start_job(*it)) {
        profile.add_usage(now, now + j.estimate, j.procs);
        note_started(j.id, now, j.estimate, j.procs);
        queued_info_.erase(j.id);
        it = queue_.erase(it);
      } else {
        if (t < kForever) profile.add_usage(t, t + j.estimate, j.procs);
        ++placed;  // a started job holds no reservation
        ++it;
      }
    } else if (profile.fits(now, j.estimate, j.procs) &&
               ctx.start_job(*it)) {
      profile.add_usage(now, now + j.estimate, j.procs);
      note_started(j.id, now, j.estimate, j.procs);
      queued_info_.erase(j.id);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  full_profile_ = std::move(profile);
  full_profile_stale_ = false;
}

bool ConservativeScheduler::try_reserve(
    SchedulerContext& ctx, const AdvanceReservation& reservation) {
  const bool accepted = BackfillBase::try_reserve(ctx, reservation);
  // The base profile changed without a schedule() pass: queue
  // placements in full_profile_ no longer account for the new window.
  if (accepted) full_profile_stale_ = true;
  return accepted;
}

std::optional<std::int64_t> ConservativeScheduler::predict_start(
    std::int64_t now, std::int64_t procs, std::int64_t estimate) const {
  if (total_nodes_ <= 0) return std::nullopt;
  if (full_profile_stale_) {
    // Re-place the queue on the maintained base (same FIFO pass as
    // schedule(), minus the starts — nothing can start between events).
    CapacityProfile profile = profile_;
    std::size_t placed = 0;
    for (const std::int64_t id : queue_) {
      if (reserve_depth_ != 0 && placed >= std::size_t(reserve_depth_)) {
        break;  // jobs beyond the depth hold no reservation
      }
      const auto it = queued_info_.find(id);
      if (it == queued_info_.end()) continue;
      const auto& q = it->second;
      const std::int64_t t =
          profile.earliest_start(now, q.estimate, q.procs);
      if (t < kForever) profile.add_usage(t, t + q.estimate, q.procs);
      ++placed;
    }
    full_profile_ = std::move(profile);
    full_profile_stale_ = false;
  }
  // Query against the maintained base + queue placements; the
  // hypothetical job only needs one earliest-start sweep.
  const std::int64_t t = full_profile_.earliest_start(now, estimate, procs);
  if (t >= kForever) return std::nullopt;
  return t;
}

}  // namespace pjsb::sched
