#include "sched/conservative.hpp"

namespace pjsb::sched {

void ConservativeScheduler::schedule(SchedulerContext& ctx) {
  const std::int64_t now = ctx.now();
  total_nodes_ = ctx.machine().total_nodes();
  prune_queue(ctx);

  // Rebuild the full reservation profile from scratch on every pass:
  // place each queued job (FIFO order) at its earliest feasible start;
  // start those whose reservation is "now". Rebuilding keeps the
  // profile consistent after early completions (jobs finishing before
  // their estimate compress everyone's reservations).
  CapacityProfile profile = base_profile(now, total_nodes_);

  for (auto it = queue_.begin(); it != queue_.end();) {
    const auto& j = ctx.job(*it);
    const std::int64_t t = profile.earliest_start(now, j.estimate, j.procs);
    if (t == now && ctx.start_job(*it)) {
      profile.add_usage(now, now + j.estimate, j.procs);
      running_[j.id] = {j.id, now + j.estimate, j.procs};
      queued_info_.erase(j.id);
      it = queue_.erase(it);
    } else {
      if (t < kForever) profile.add_usage(t, t + j.estimate, j.procs);
      ++it;
    }
  }
}

std::optional<std::int64_t> ConservativeScheduler::predict_start(
    std::int64_t now, std::int64_t procs, std::int64_t estimate) const {
  if (total_nodes_ <= 0) return std::nullopt;
  CapacityProfile profile = base_profile(now, total_nodes_);
  for (const std::int64_t id : queue_) {
    const auto it = queued_info_.find(id);
    if (it == queued_info_.end()) continue;
    const auto& q = it->second;
    const std::int64_t t = profile.earliest_start(now, q.estimate, q.procs);
    if (t < kForever) profile.add_usage(t, t + q.estimate, q.procs);
  }
  const std::int64_t t = profile.earliest_start(now, estimate, procs);
  if (t >= kForever) return std::nullopt;
  return t;
}

}  // namespace pjsb::sched
