// Conservative backfilling: every queued job holds a reservation at its
// earliest feasible start, and backfilling may never delay *any* queued
// job (vs. EASY, which protects only the head). The aggressiveness gap
// between the two is a standing ablation in the literature the paper
// standardizes (experiments E2/E8).
//
// Reservations are *persistent* and compressed one at a time: when
// capacity frees (a job ends early), each queued job is re-placed with
// every other job's claim still standing, and moves only if the new
// slot is earlier. This is the published compression rule — wholesale
// re-placement looks equivalent but is not: an earlier job compressed
// into a later job's window can push that job past its promised start,
// which the validation fuzzer caught as a broken-promise invariant
// violation. A reservation is abandoned (re-placed unconditionally)
// only when its slot became infeasible through a base-profile
// regression — an outage, an accepted external reservation, or a
// running job overrunning its estimate — the documented cases where
// the guarantee cannot hold.
//
// `reserve_depth` caps how many queued jobs hold reservations (0 =
// every job, the classic policy): jobs beyond the depth backfill
// opportunistically, sliding the policy toward EASY from the other end
// of the aggressiveness axis.
#pragma once

#include <unordered_map>

#include "sched/backfill.hpp"

namespace pjsb::sched {

class ConservativeScheduler final : public BackfillBase {
 public:
  /// `reserve_depth`: queued jobs (FIFO order) granted reservations;
  /// 0 means all of them (classic conservative backfilling).
  explicit ConservativeScheduler(int reserve_depth = 0)
      : reserve_depth_(reserve_depth < 0 ? 0 : reserve_depth) {}

  std::string name() const override;
  void on_attach(SchedulerContext& ctx) override;
  void schedule(SchedulerContext& ctx) override;
  bool try_reserve(SchedulerContext& ctx,
                   const AdvanceReservation& reservation) override;
  std::optional<std::int64_t> predict_start(
      std::int64_t now, std::int64_t procs, std::int64_t estimate) const override;
  void save_state(sim::snapshot::Writer& w) const override;
  void load_state(sim::snapshot::Reader& r) override;

  int reserve_depth() const { return reserve_depth_; }

  /// The reservation currently held by a queued job (engine time), or
  /// nullopt when the job holds none (beyond reserve_depth, unknown, or
  /// not yet placeable). Exposed for tests and diagnostics.
  std::optional<std::int64_t> reserved_start(std::int64_t job_id) const;

 private:
  int reserve_depth_ = 0;

  /// Persistent FIFO reservations: job id -> promised start time, as
  /// granted at submission and only ever compressed earlier (see class
  /// comment). Entries are dropped when the job starts or leaves the
  /// queue.
  std::unordered_map<std::int64_t, std::int64_t> placed_;

  /// Base profile + the queue's reservation placements, as left by the
  /// last schedule() pass; predict_start queries it directly instead of
  /// replaying the whole queue per call. An accepted reservation
  /// between events marks it stale (the base changed under the
  /// placements), and the next predict_start rebuilds lazily.
  mutable CapacityProfile full_profile_{0};
  mutable bool full_profile_stale_ = false;
};

}  // namespace pjsb::sched
