// Conservative backfilling: every queued job holds a reservation at its
// earliest feasible start, and backfilling may never delay *any* queued
// job (vs. EASY, which protects only the head). The aggressiveness gap
// between the two is a standing ablation in the literature the paper
// standardizes (experiments E2/E8).
#pragma once

#include "sched/backfill.hpp"

namespace pjsb::sched {

class ConservativeScheduler final : public BackfillBase {
 public:
  std::string name() const override { return "conservative"; }
  void schedule(SchedulerContext& ctx) override;
  std::optional<std::int64_t> predict_start(
      std::int64_t now, std::int64_t procs,
      std::int64_t estimate) const override;
};

}  // namespace pjsb::sched
