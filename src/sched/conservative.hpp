// Conservative backfilling: every queued job holds a reservation at its
// earliest feasible start, and backfilling may never delay *any* queued
// job (vs. EASY, which protects only the head). The aggressiveness gap
// between the two is a standing ablation in the literature the paper
// standardizes (experiments E2/E8).
//
// `reserve_depth` caps how many queued jobs hold reservations (0 =
// every job, the classic policy): jobs beyond the depth backfill
// opportunistically, sliding the policy toward EASY from the other end
// of the aggressiveness axis.
#pragma once

#include "sched/backfill.hpp"

namespace pjsb::sched {

class ConservativeScheduler final : public BackfillBase {
 public:
  /// `reserve_depth`: queued jobs (FIFO order) granted reservations;
  /// 0 means all of them (classic conservative backfilling).
  explicit ConservativeScheduler(int reserve_depth = 0)
      : reserve_depth_(reserve_depth < 0 ? 0 : reserve_depth) {}

  std::string name() const override;
  void on_attach(SchedulerContext& ctx) override;
  void schedule(SchedulerContext& ctx) override;
  bool try_reserve(SchedulerContext& ctx,
                   const AdvanceReservation& reservation) override;
  std::optional<std::int64_t> predict_start(
      std::int64_t now, std::int64_t procs,
      std::int64_t estimate) const override;

  int reserve_depth() const { return reserve_depth_; }

 private:
  int reserve_depth_ = 0;

  /// Base profile + the FIFO reservation placements of every queued
  /// job, as left by the last schedule() pass; predict_start queries it
  /// directly instead of replaying the whole queue per call. An
  /// accepted reservation between events marks it stale (the queue
  /// placements must shift around the new window), and the next
  /// predict_start re-places lazily.
  mutable CapacityProfile full_profile_{0};
  mutable bool full_profile_stale_ = false;
};

}  // namespace pjsb::sched
