#include "sched/easy.hpp"

#include "sched/registry.hpp"

namespace pjsb::sched {

SchedulerInfo easy_scheduler_info() {
  SchedulerInfo info;
  info.name = "easy";
  info.description =
      "EASY backfilling: FIFO with shadow reservations for the queue head";
  info.params = {ParamSpec::integer(
      "reserve_depth",
      "queue-head jobs protected by shadow reservations backfill may not "
      "delay (1 = classic EASY)",
      1, 1, 1 << 20)};
  info.make = +[](const ParamValues& values) -> std::unique_ptr<Scheduler> {
    return std::make_unique<EasyScheduler>(
        int(values.get_int("reserve_depth")));
  };
  return info;
}

std::string EasyScheduler::name() const {
  if (reserve_depth_ == 1) return "easy";
  return "easy reserve_depth=" + std::to_string(reserve_depth_);
}

void EasyScheduler::schedule(SchedulerContext& ctx) {
  const std::int64_t now = ctx.now();
  total_nodes_ = ctx.machine().total_nodes();
  prune_queue(ctx);
  refresh_profile(now);

  // Annotate-and-start: stamp the reason onto the emitted decision.
  const auto start_as = [&ctx](std::int64_t id, sim::StartProvenance why,
                               std::int64_t detail = -1) {
    ctx.annotate_start(why, detail);
    return ctx.start_job(id);
  };

  // Work on a copy of the maintained base profile; tentative shadow /
  // backfill placements stay local to this pass.
  CapacityProfile profile = profile_;

  // Start jobs in FIFO order while the head fits immediately.
  while (!queue_.empty()) {
    const std::int64_t id = queue_.front();
    const auto& j = ctx.job(id);
    if (profile.fits(now, j.estimate, j.procs) &&
        start_as(id, sim::StartProvenance::kQueueHead)) {
      profile.add_usage(now, now + j.estimate, j.procs);
      note_started(id, now, j.estimate, j.procs);
      queued_info_.erase(id);
      queue_.pop_front();
      continue;
    }
    break;
  }
  if (queue_.empty()) return;

  // Shadow reservations for the first reserve_depth_ blocked jobs, each
  // at its earliest feasible start given the reservations before it. A
  // protected job behind the head may start outright when its earliest
  // start is now (with depth 1 only the head is protected, and the head
  // is blocked, so this loop reduces to the classic single shadow).
  auto it = queue_.begin();
  std::size_t placed = 0;
  while (placed < std::size_t(reserve_depth_) && it != queue_.end()) {
    const auto& j = ctx.job(*it);
    const std::int64_t t = profile.earliest_start(now, j.estimate, j.procs);
    // A protected job starting at its shadow slot is a promoted
    // reservation, not a backfill move.
    if (t == now && start_as(*it, sim::StartProvenance::kReservation, t)) {
      profile.add_usage(now, now + j.estimate, j.procs);
      note_started(j.id, now, j.estimate, j.procs);
      queued_info_.erase(j.id);
      it = queue_.erase(it);
      continue;  // a started job holds no reservation
    }
    if (t < kForever) profile.add_usage(t, t + j.estimate, j.procs);
    ++placed;
    ++it;
  }

  // Backfill: any later job that fits now without delaying a shadow.
  while (it != queue_.end()) {
    const auto& j = ctx.job(*it);
    if (profile.fits(now, j.estimate, j.procs) &&
        start_as(*it, sim::StartProvenance::kBackfill)) {
      profile.add_usage(now, now + j.estimate, j.procs);
      note_started(j.id, now, j.estimate, j.procs);
      queued_info_.erase(j.id);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<std::int64_t> EasyScheduler::predict_start(
    std::int64_t now, std::int64_t procs, std::int64_t estimate) const {
  if (total_nodes_ <= 0) return std::nullopt;
  // Approximate the EASY queue conservatively: place every queued job
  // at its earliest start in FIFO order, then place the hypothetical
  // job. This is the scheduler-assisted wait-time estimate a
  // metacomputing directory service would export (section 3.1). The
  // placements replay on a copy of the maintained base profile — no
  // rebuild per query.
  CapacityProfile profile = profile_;
  for (const std::int64_t id : queue_) {
    const auto it = queued_info_.find(id);
    if (it == queued_info_.end()) continue;
    const auto& q = it->second;
    const std::int64_t t =
        profile.earliest_start(now, q.estimate, q.procs);
    if (t < kForever) profile.add_usage(t, t + q.estimate, q.procs);
  }
  const std::int64_t t = profile.earliest_start(now, estimate, procs);
  if (t >= kForever) return std::nullopt;
  return t;
}

}  // namespace pjsb::sched
