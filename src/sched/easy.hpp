// EASY backfilling (Lifka's Extensible Argonne Scheduling sYstem), the
// de-facto production policy on the machines whose logs the paper
// canonizes. FIFO order with one guarantee: the queue head receives a
// shadow reservation at its earliest feasible start, and later jobs may
// backfill only if they do not delay that reservation.
//
// `reserve_depth` generalizes the guarantee to the first K queued jobs
// (K=1 is classic EASY): deeper protection trades backfilling
// aggressiveness for starvation resistance, sliding the policy toward
// conservative backfilling — the ablation axis of experiments E2/E8.
#pragma once

#include "sched/backfill.hpp"

namespace pjsb::sched {

class EasyScheduler final : public BackfillBase {
 public:
  /// `reserve_depth`: number of queue-head jobs protected by shadow
  /// reservations that backfilled jobs may not delay (>= 1).
  explicit EasyScheduler(int reserve_depth = 1)
      : reserve_depth_(reserve_depth < 1 ? 1 : reserve_depth) {}

  std::string name() const override;
  void schedule(SchedulerContext& ctx) override;
  std::optional<std::int64_t> predict_start(
      std::int64_t now, std::int64_t procs,
      std::int64_t estimate) const override;

  int reserve_depth() const { return reserve_depth_; }

  /// Total nodes of the machine this scheduler is attached to (needed
  /// by predict_start, which has no context access).
  std::int64_t last_total_nodes() const { return total_nodes_; }

 private:
  int reserve_depth_ = 1;
};

}  // namespace pjsb::sched
