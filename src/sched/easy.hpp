// EASY backfilling (Lifka's Extensible Argonne Scheduling sYstem), the
// de-facto production policy on the machines whose logs the paper
// canonizes. FIFO order with one guarantee: the queue head receives a
// shadow reservation at its earliest feasible start, and later jobs may
// backfill only if they do not delay that reservation.
#pragma once

#include "sched/backfill.hpp"

namespace pjsb::sched {

class EasyScheduler final : public BackfillBase {
 public:
  std::string name() const override { return "easy"; }
  void schedule(SchedulerContext& ctx) override;
  std::optional<std::int64_t> predict_start(
      std::int64_t now, std::int64_t procs,
      std::int64_t estimate) const override;

  /// Total nodes of the machine this scheduler is attached to (needed
  /// by predict_start, which has no context access).
  std::int64_t last_total_nodes() const { return total_nodes_; }
};

}  // namespace pjsb::sched
