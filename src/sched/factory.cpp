#include "sched/factory.hpp"

#include <stdexcept>

namespace pjsb::sched {

namespace {

SchedulerKind kind_from_canonical(const std::string& canonical) {
  if (canonical == "fcfs") return SchedulerKind::kFcfs;
  if (canonical == "sjf") return SchedulerKind::kSjf;
  if (canonical == "sjf-fit") return SchedulerKind::kSjfFit;
  if (canonical == "easy") return SchedulerKind::kEasy;
  if (canonical == "conservative") return SchedulerKind::kConservative;
  if (canonical == "gang") return SchedulerKind::kGang;
  throw std::invalid_argument("scheduler '" + canonical +
                              "' has no legacy SchedulerKind");
}

}  // namespace

std::vector<SchedulerKind> all_scheduler_kinds() {
  return {SchedulerKind::kFcfs, SchedulerKind::kSjf, SchedulerKind::kSjfFit,
          SchedulerKind::kEasy, SchedulerKind::kConservative,
          SchedulerKind::kGang};
}

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kSjf: return "sjf";
    case SchedulerKind::kSjfFit: return "sjf-fit";
    case SchedulerKind::kEasy: return "easy";
    case SchedulerKind::kConservative: return "conservative";
    case SchedulerKind::kGang: return "gang";
  }
  return "unknown";
}

std::string valid_scheduler_names() {
  return Registry::global().valid_names();
}

SchedulerKind scheduler_kind_from_name(const std::string& name) {
  return kind_from_canonical(Registry::global().parse(name).info->name);
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const SchedulerParams& params) {
  if (kind == SchedulerKind::kGang) {
    return Registry::global().make("gang slots=" +
                                   std::to_string(params.gang_slots));
  }
  return Registry::global().make(scheduler_kind_name(kind));
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerParams& params) {
  const auto parsed = Registry::global().parse(name);
  // The one legacy knob: an explicit slots= (or gangN suffix) wins over
  // the params struct, matching the old factory's precedence.
  if (parsed.info->name == "gang" && !parsed.values.is_set("slots")) {
    return Registry::global().make(name + " slots=" +
                                   std::to_string(params.gang_slots));
  }
  return parsed.info->make(parsed.values);
}

}  // namespace pjsb::sched
