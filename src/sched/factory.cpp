#include "sched/factory.hpp"

#include <optional>
#include <stdexcept>

#include "sched/conservative.hpp"
#include "sched/easy.hpp"
#include "sched/fcfs.hpp"
#include "sched/gang.hpp"
#include "sched/sjf.hpp"
#include "util/string_util.hpp"

namespace pjsb::sched {

namespace {

/// Upper bound on gang time-sharing slots: far beyond any published
/// multiprogramming level, and small enough that the per-slot machine
/// state cannot blow up from a fat-fingered spec.
constexpr std::int64_t kMaxGangSlots = 1024;

/// Parse the slot suffix of a lowercase "gangN" name; nullopt when the
/// name is bare "gang". Throws on a malformed, non-positive or absurd
/// suffix so "gang-4" / "gang0x8" / "gang100000000" cannot silently
/// run with default slots or OOM mid-campaign.
std::optional<int> parse_gang_slots(const std::string& lower_name) {
  if (lower_name.size() <= 4) return std::nullopt;
  const std::string suffix = lower_name.substr(4);
  // parse_i64 trims its token; "gang 8" must stay invalid regardless.
  const bool has_space =
      suffix.find_first_of(" \t\r\n\f\v") != std::string::npos;
  const auto slots = util::parse_i64(suffix);
  if (has_space || !slots || *slots < 1 || *slots > kMaxGangSlots) {
    throw std::invalid_argument("bad gang slot count in '" + lower_name +
                                "'; expected gangN with 1 <= N <= " +
                                std::to_string(kMaxGangSlots));
  }
  return int(*slots);
}

}  // namespace

std::vector<SchedulerKind> all_scheduler_kinds() {
  return {SchedulerKind::kFcfs, SchedulerKind::kSjf, SchedulerKind::kSjfFit,
          SchedulerKind::kEasy, SchedulerKind::kConservative,
          SchedulerKind::kGang};
}

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kSjf: return "sjf";
    case SchedulerKind::kSjfFit: return "sjf-fit";
    case SchedulerKind::kEasy: return "easy";
    case SchedulerKind::kConservative: return "conservative";
    case SchedulerKind::kGang: return "gang";
  }
  return "unknown";
}

std::string valid_scheduler_names() {
  std::string names;
  for (const auto kind : all_scheduler_kinds()) {
    if (!names.empty()) names += ", ";
    names += scheduler_kind_name(kind);
  }
  names += " (gang accepts a slot count suffix, e.g. gang8)";
  return names;
}

SchedulerKind scheduler_kind_from_name(const std::string& name) {
  const std::string n = util::to_lower(name);
  if (n == "fcfs") return SchedulerKind::kFcfs;
  if (n == "sjf") return SchedulerKind::kSjf;
  if (n == "sjf-fit" || n == "sjffit") return SchedulerKind::kSjfFit;
  if (n == "easy") return SchedulerKind::kEasy;
  if (n == "conservative" || n == "cons") return SchedulerKind::kConservative;
  if (n.rfind("gang", 0) == 0) {
    parse_gang_slots(n);  // validates the suffix
    return SchedulerKind::kGang;
  }
  throw std::invalid_argument("unknown scheduler '" + name +
                              "'; valid names: " + valid_scheduler_names());
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const SchedulerParams& params) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kSjf:
      return std::make_unique<SjfScheduler>(false);
    case SchedulerKind::kSjfFit:
      return std::make_unique<SjfScheduler>(true);
    case SchedulerKind::kEasy:
      return std::make_unique<EasyScheduler>();
    case SchedulerKind::kConservative:
      return std::make_unique<ConservativeScheduler>();
    case SchedulerKind::kGang:
      return std::make_unique<GangScheduler>(params.gang_slots);
  }
  throw std::invalid_argument("make_scheduler: unknown kind");
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerParams& params) {
  SchedulerParams p = params;
  const std::string n = util::to_lower(name);
  if (n.rfind("gang", 0) == 0) {
    // Parse (and validate) the slot suffix exactly once.
    if (const auto slots = parse_gang_slots(n)) p.gang_slots = *slots;
    return make_scheduler(SchedulerKind::kGang, p);
  }
  return make_scheduler(scheduler_kind_from_name(name), p);
}

}  // namespace pjsb::sched
