#include "sched/factory.hpp"

#include <stdexcept>

#include "sched/conservative.hpp"
#include "sched/easy.hpp"
#include "sched/fcfs.hpp"
#include "sched/gang.hpp"
#include "sched/sjf.hpp"
#include "util/string_util.hpp"

namespace pjsb::sched {

std::vector<SchedulerKind> all_scheduler_kinds() {
  return {SchedulerKind::kFcfs, SchedulerKind::kSjf, SchedulerKind::kSjfFit,
          SchedulerKind::kEasy, SchedulerKind::kConservative,
          SchedulerKind::kGang};
}

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kSjf: return "sjf";
    case SchedulerKind::kSjfFit: return "sjf-fit";
    case SchedulerKind::kEasy: return "easy";
    case SchedulerKind::kConservative: return "conservative";
    case SchedulerKind::kGang: return "gang";
  }
  return "unknown";
}

SchedulerKind scheduler_kind_from_name(const std::string& name) {
  const std::string n = util::to_lower(name);
  if (n == "fcfs") return SchedulerKind::kFcfs;
  if (n == "sjf") return SchedulerKind::kSjf;
  if (n == "sjf-fit" || n == "sjffit") return SchedulerKind::kSjfFit;
  if (n == "easy") return SchedulerKind::kEasy;
  if (n == "conservative" || n == "cons") return SchedulerKind::kConservative;
  if (n.rfind("gang", 0) == 0) return SchedulerKind::kGang;
  throw std::invalid_argument("unknown scheduler: " + name);
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const SchedulerParams& params) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kSjf:
      return std::make_unique<SjfScheduler>(false);
    case SchedulerKind::kSjfFit:
      return std::make_unique<SjfScheduler>(true);
    case SchedulerKind::kEasy:
      return std::make_unique<EasyScheduler>();
    case SchedulerKind::kConservative:
      return std::make_unique<ConservativeScheduler>();
    case SchedulerKind::kGang:
      return std::make_unique<GangScheduler>(params.gang_slots);
  }
  throw std::invalid_argument("make_scheduler: unknown kind");
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerParams& params) {
  SchedulerParams p = params;
  const std::string n = util::to_lower(name);
  if (n.rfind("gang", 0) == 0 && n.size() > 4) {
    const auto slots = util::parse_i64(n.substr(4));
    if (slots && *slots >= 1) p.gang_slots = int(*slots);
  }
  return make_scheduler(scheduler_kind_from_name(name), p);
}

}  // namespace pjsb::sched
