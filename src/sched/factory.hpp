// Scheduler factory: one place the experiment harnesses and examples
// use to instantiate the policy zoo by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace pjsb::sched {

enum class SchedulerKind {
  kFcfs,
  kSjf,
  kSjfFit,
  kEasy,
  kConservative,
  kGang,
};

/// All kinds, in canonical presentation order.
std::vector<SchedulerKind> all_scheduler_kinds();

const char* scheduler_kind_name(SchedulerKind kind);

/// Human-readable list of accepted scheduler names, for error messages
/// and CLI help text.
std::string valid_scheduler_names();

/// Parse a scheduler name ("fcfs", "sjf", "sjf-fit", "easy",
/// "conservative", "gang" or "gangN"); throws std::invalid_argument on
/// unknown names.
SchedulerKind scheduler_kind_from_name(const std::string& name);

struct SchedulerParams {
  int gang_slots = 4;
};

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const SchedulerParams& params = {});
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerParams& params = {});

}  // namespace pjsb::sched
