// DEPRECATED enum-based scheduler selection, kept as a thin
// compatibility layer over sched::Registry (registry.hpp).
//
// The closed SchedulerKind enum and the single-knob SchedulerParams
// could not express parameterized policy variants; new code should use
// `make_scheduler("easy reserve_depth=2")`-style registry spec strings
// (see registry.hpp for the grammar and the catalogue). This header
// will be removed once nothing instantiates schedulers by enum.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/registry.hpp"
#include "sched/scheduler.hpp"

namespace pjsb::sched {

enum class SchedulerKind {
  kFcfs,
  kSjf,
  kSjfFit,
  kEasy,
  kConservative,
  kGang,
};

/// All kinds, in canonical presentation order.
std::vector<SchedulerKind> all_scheduler_kinds();

const char* scheduler_kind_name(SchedulerKind kind);

/// Human-readable list of accepted scheduler names, for error messages
/// and CLI help text. Forwards to Registry::valid_names().
std::string valid_scheduler_names();

/// Parse a scheduler name ("fcfs", "sjf", "sjf-fit", "easy",
/// "conservative", "gang" or "gangN"); throws std::invalid_argument on
/// unknown names. Parameterized spec strings resolve to the kind of
/// their base scheduler.
SchedulerKind scheduler_kind_from_name(const std::string& name);

/// DEPRECATED: pass "gang slots=N" (or "gangN") spec strings instead.
struct SchedulerParams {
  int gang_slots = 4;
};

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const SchedulerParams& params = {});
/// DEPRECATED two-argument form; the one-argument spec-string
/// make_scheduler lives in registry.hpp.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerParams& params);

}  // namespace pjsb::sched
