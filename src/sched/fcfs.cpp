#include "sched/fcfs.hpp"

namespace pjsb::sched {

void FcfsScheduler::on_submit(SchedulerContext& /*ctx*/,
                              std::int64_t job_id) {
  queue_.push_back(job_id);
}

void FcfsScheduler::on_job_end(SchedulerContext& /*ctx*/,
                               std::int64_t /*job_id*/) {}

void FcfsScheduler::schedule(SchedulerContext& ctx) {
  while (!queue_.empty()) {
    const std::int64_t id = queue_.front();
    const auto& j = ctx.job(id);
    if (j.state != sim::JobState::kQueued) {
      // Started externally (e.g. via a reservation) or killed; drop it.
      queue_.pop_front();
      continue;
    }
    if (j.procs > ctx.machine().free_nodes()) break;  // head blocks
    if (!ctx.start_job(id)) break;
    queue_.pop_front();
  }
}

}  // namespace pjsb::sched
