#include "sched/fcfs.hpp"

#include "sched/registry.hpp"
#include "sim/snapshot/codec.hpp"

namespace pjsb::sched {

SchedulerInfo fcfs_scheduler_info() {
  SchedulerInfo info;
  info.name = "fcfs";
  info.description =
      "first-come-first-served; the queue head blocks everyone behind it";
  info.make = +[](const ParamValues&) -> std::unique_ptr<Scheduler> {
    return std::make_unique<FcfsScheduler>();
  };
  return info;
}

void FcfsScheduler::on_submit(SchedulerContext& /*ctx*/,
                              std::int64_t job_id) {
  queue_.push_back(job_id);
}

void FcfsScheduler::on_job_end(SchedulerContext& /*ctx*/,
                               std::int64_t /*job_id*/) {}

void FcfsScheduler::schedule(SchedulerContext& ctx) {
  while (!queue_.empty()) {
    const std::int64_t id = queue_.front();
    const auto& j = ctx.job(id);
    if (j.state != sim::JobState::kQueued) {
      // Started externally (e.g. via a reservation) or killed; drop it.
      queue_.pop_front();
      continue;
    }
    if (j.procs > ctx.machine().free_nodes()) break;  // head blocks
    ctx.annotate_start(sim::StartProvenance::kQueueHead);
    if (!ctx.start_job(id)) break;
    queue_.pop_front();
  }
}

void FcfsScheduler::save_state(sim::snapshot::Writer& w) const {
  w.u64(queue_.size());
  for (std::int64_t id : queue_) w.i64(id);
}

void FcfsScheduler::load_state(sim::snapshot::Reader& r) {
  queue_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) queue_.push_back(r.i64());
}

}  // namespace pjsb::sched
