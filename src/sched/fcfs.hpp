// First-come-first-served: the baseline every scheduler-evaluation
// study includes. Jobs start strictly in arrival order; the head of the
// queue blocks everyone behind it until enough processors free up.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace pjsb::sched {

class FcfsScheduler final : public Scheduler {
 public:
  std::string name() const override { return "fcfs"; }
  void on_submit(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_job_end(SchedulerContext& ctx, std::int64_t job_id) override;
  void schedule(SchedulerContext& ctx) override;
  void save_state(sim::snapshot::Writer& w) const override;
  void load_state(sim::snapshot::Reader& r) override;

  std::size_t queue_length() const { return queue_.size(); }

 private:
  std::deque<std::int64_t> queue_;
};

}  // namespace pjsb::sched
