#include "sched/gang.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sched/registry.hpp"
#include "sim/snapshot/codec.hpp"

namespace pjsb::sched {

SchedulerInfo gang_scheduler_info() {
  SchedulerInfo info;
  info.name = "gang";
  info.description =
      "gang scheduling on a round-robin-time-sliced Ousterhout matrix";
  // "gangN" spells "gang slots=N"; 1024 rows is far beyond any
  // published multiprogramming level, and small enough that per-slot
  // machine state cannot blow up from a fat-fingered spec.
  info.compact_prefix = "gang";
  info.compact_param = "slots";
  info.params = {ParamSpec::integer(
      "slots", "matrix depth (maximum multiprogramming level per node)", 4,
      1, 1024)};
  info.make = +[](const ParamValues& values) -> std::unique_ptr<Scheduler> {
    return std::make_unique<GangScheduler>(int(values.get_int("slots")));
  };
  return info;
}

GangScheduler::GangScheduler(int slots) : slots_(slots) {
  if (slots < 1) throw std::invalid_argument("GangScheduler: slots >= 1");
}

std::string GangScheduler::name() const {
  return "gang" + std::to_string(slots_);
}

int GangScheduler::active_rows() const {
  int rows = 0;
  for (const auto& row : columns_) {
    for (std::int64_t owner : row) {
      if (owner >= 0) {
        ++rows;
        break;
      }
    }
  }
  return rows;
}

void GangScheduler::sync(std::int64_t now) {
  const int rows = active_rows();
  if (rows > 0 && now > last_sync_) {
    const double progress = double(now - last_sync_) / double(rows);
    for (auto& [id, job] : jobs_) {
      job.remaining = std::max(0.0, job.remaining - progress);
    }
  }
  last_sync_ = now;
}

void GangScheduler::push_ends(SchedulerContext& ctx) {
  const int rows = std::max(1, active_rows());
  for (auto& [id, job] : jobs_) {
    const auto end =
        ctx.now() +
        std::max<std::int64_t>(0, std::int64_t(
                                      std::ceil(job.remaining * rows)));
    ctx.update_job_end(id, end);
  }
}

bool GangScheduler::place_job(SchedulerContext& ctx, std::int64_t job_id) {
  const auto& j = ctx.job(job_id);
  const std::int64_t total = ctx.machine().total_nodes();
  if (columns_.empty()) {
    columns_.assign(std::size_t(slots_),
                    std::vector<std::int64_t>(std::size_t(total),
                                              sim::kFree));
    node_down_.assign(std::size_t(total), false);
  }
  for (std::size_t row = 0; row < columns_.size(); ++row) {
    // Collect free, up columns in this row.
    std::vector<std::int64_t> free_cols;
    for (std::int64_t n = 0; n < total; ++n) {
      if (!node_down_[std::size_t(n)] &&
          columns_[row][std::size_t(n)] == sim::kFree) {
        free_cols.push_back(n);
        if (std::int64_t(free_cols.size()) == j.procs) break;
      }
    }
    if (std::int64_t(free_cols.size()) < j.procs) continue;

    GangJob gj;
    gj.id = job_id;
    gj.row = int(row);
    gj.columns = std::move(free_cols);
    gj.remaining = double(j.runtime);
    for (std::int64_t n : gj.columns) {
      columns_[row][std::size_t(n)] = job_id;
    }
    // Start with a provisional end; push_ends() revises all jobs next.
    ctx.annotate_start(sim::StartProvenance::kTimeshare);
    ctx.start_job_virtual(job_id, ctx.now() + j.runtime);
    jobs_.emplace(job_id, std::move(gj));
    return true;
  }
  return false;
}

void GangScheduler::remove_job(std::int64_t job_id) {
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  const auto& gj = it->second;
  for (std::int64_t n : gj.columns) {
    if (columns_[std::size_t(gj.row)][std::size_t(n)] == job_id) {
      columns_[std::size_t(gj.row)][std::size_t(n)] = sim::kFree;
    }
  }
  jobs_.erase(it);
}

void GangScheduler::on_submit(SchedulerContext& /*ctx*/,
                              std::int64_t job_id) {
  queue_.push_back(job_id);
}

void GangScheduler::on_job_end(SchedulerContext& ctx, std::int64_t job_id) {
  sync(ctx.now());
  remove_job(job_id);
  push_ends(ctx);
}

void GangScheduler::on_job_killed(SchedulerContext& ctx,
                                  std::int64_t job_id) {
  sync(ctx.now());
  remove_job(job_id);
  push_ends(ctx);
}

void GangScheduler::on_outage_start(SchedulerContext& ctx,
                                    const outage::OutageRecord& rec) {
  sync(ctx.now());
  if (columns_.empty()) {
    const std::int64_t total = ctx.machine().total_nodes();
    columns_.assign(std::size_t(slots_),
                    std::vector<std::int64_t>(std::size_t(total),
                                              sim::kFree));
    node_down_.assign(std::size_t(total), false);
  }
  // Mark nodes down and collect victims across all rows.
  std::vector<std::int64_t> victims;
  for (std::int64_t n : rec.components) {
    if (n < 0 || n >= std::int64_t(node_down_.size())) continue;
    node_down_[std::size_t(n)] = true;
    for (auto& row : columns_) {
      const std::int64_t owner = row[std::size_t(n)];
      if (owner >= 0) victims.push_back(owner);
    }
  }
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  for (std::int64_t id : victims) {
    // kill_running_job triggers on_job_killed -> remove_job, and the
    // engine requeues via on_submit.
    ctx.kill_running_job(id);
  }
  push_ends(ctx);
}

void GangScheduler::on_outage_end(SchedulerContext& ctx,
                                  const outage::OutageRecord& rec) {
  sync(ctx.now());
  for (std::int64_t n : rec.components) {
    if (n >= 0 && n < std::int64_t(node_down_.size())) {
      node_down_[std::size_t(n)] = false;
    }
  }
}

void GangScheduler::schedule(SchedulerContext& ctx) {
  sync(ctx.now());
  bool placed_any = false;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const auto& j = ctx.job(*it);
    if (j.state != sim::JobState::kQueued) {
      it = queue_.erase(it);
      continue;
    }
    if (place_job(ctx, *it)) {
      it = queue_.erase(it);
      placed_any = true;
    } else {
      ++it;  // keep scanning: a smaller job may fit another row
    }
  }
  if (placed_any) push_ends(ctx);
}

void GangScheduler::save_state(sim::snapshot::Writer& w) const {
  // slots_ is a constructor parameter; it rides in name() ("gangN").
  w.i64(last_sync_);
  w.u64(queue_.size());
  for (std::int64_t id : queue_) w.i64(id);
  w.u64(jobs_.size());
  for (const auto& [id, gj] : jobs_) {
    w.i64(gj.id);
    w.i64(gj.row);
    w.u64(gj.columns.size());
    for (std::int64_t n : gj.columns) w.i64(n);
    w.f64(gj.remaining);
  }
  // columns_ is rebuilt from jobs_ on load; only its dimensions (and
  // whether the matrix was materialized at all) need recording.
  w.boolean(!columns_.empty());
  w.u64(node_down_.size());
  for (std::size_t i = 0; i < node_down_.size(); ++i) {
    w.boolean(node_down_[i]);
  }
}

void GangScheduler::load_state(sim::snapshot::Reader& r) {
  last_sync_ = r.i64();
  queue_.clear();
  std::uint64_t n = r.u64();
  queue_.reserve(std::size_t(n));
  for (std::uint64_t i = 0; i < n; ++i) queue_.push_back(r.i64());
  jobs_.clear();
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    GangJob gj;
    gj.id = r.i64();
    gj.row = int(r.i64());
    const std::uint64_t cols = r.u64();
    gj.columns.reserve(std::size_t(cols));
    for (std::uint64_t c = 0; c < cols; ++c) gj.columns.push_back(r.i64());
    gj.remaining = r.f64();
    jobs_.emplace(gj.id, std::move(gj));
  }
  const bool materialized = r.boolean();
  const std::uint64_t total = r.u64();
  node_down_.assign(std::size_t(total), false);
  for (std::uint64_t i = 0; i < total; ++i) node_down_[std::size_t(i)] = r.boolean();
  columns_.clear();
  if (materialized) {
    columns_.assign(std::size_t(slots_),
                    std::vector<std::int64_t>(std::size_t(total), sim::kFree));
    for (const auto& [id, gj] : jobs_) {
      for (std::int64_t node : gj.columns) {
        columns_[std::size_t(gj.row)][std::size_t(node)] = id;
      }
    }
  }
}

}  // namespace pjsb::sched
