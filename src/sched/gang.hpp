// Gang scheduling with an Ousterhout matrix.
//
// The paper repeatedly invokes gang scheduling ([21], and the
// fine-grain synchronization benefits of [22] in section 2.2). The
// matrix has `slots` rows; each row is a full view of the machine's
// nodes, and a job occupies a set of node-columns in exactly one row.
// Rows are time-sliced round-robin, so with k non-empty rows every job
// progresses at rate 1/k — all of a job's processes are always
// co-scheduled, preserving its internal synchronization structure.
//
// Jobs here are "virtual" from the engine's point of view: the gang
// scheduler does its own space accounting and continuously revises
// completion times as the multiprogramming level changes.
#pragma once

#include <map>
#include <vector>

#include "sched/scheduler.hpp"

namespace pjsb::sched {

class GangScheduler final : public Scheduler {
 public:
  /// `slots`: matrix depth (maximum multiprogramming level per node).
  explicit GangScheduler(int slots = 4);

  std::string name() const override;
  void on_submit(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_job_end(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_job_killed(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_outage_start(SchedulerContext& ctx,
                       const outage::OutageRecord& rec) override;
  void on_outage_end(SchedulerContext& ctx,
                     const outage::OutageRecord& rec) override;
  void schedule(SchedulerContext& ctx) override;
  void save_state(sim::snapshot::Writer& w) const override;
  void load_state(sim::snapshot::Reader& r) override;

  int active_rows() const;
  std::size_t queue_length() const { return queue_.size(); }

 private:
  struct GangJob {
    std::int64_t id = 0;
    int row = 0;
    std::vector<std::int64_t> columns;  ///< node ids in the row
    double remaining = 0.0;             ///< seconds of dedicated work left
  };

  /// Progress all running jobs to `now` at the current rate.
  void sync(std::int64_t now);
  /// Re-issue end events after a membership change.
  void push_ends(SchedulerContext& ctx);
  bool place_job(SchedulerContext& ctx, std::int64_t job_id);
  void remove_job(std::int64_t job_id);

  int slots_;
  std::vector<std::int64_t> queue_;
  /// Ordered map, not a hash map: sync()/push_ends() iterate jobs_ and
  /// re-issue end events, so iteration order feeds the engine's event
  /// sequence numbers — it must be deterministic and serializable for
  /// snapshot/resume byte-identity.
  std::map<std::int64_t, GangJob> jobs_;
  /// columns_[row][node] = job id or sim::kFree.
  std::vector<std::vector<std::int64_t>> columns_;
  std::vector<bool> node_down_;
  std::int64_t last_sync_ = 0;
};

}  // namespace pjsb::sched
