#include "sched/profile.hpp"

#include <sstream>
#include <stdexcept>

namespace pjsb::sched {

CapacityProfile::CapacityProfile(std::int64_t base_capacity)
    : base_(base_capacity) {
  if (base_capacity < 0) {
    throw std::invalid_argument("CapacityProfile: negative capacity");
  }
}

void CapacityProfile::add_usage(std::int64_t start, std::int64_t end,
                                std::int64_t procs) {
  if (end <= start || procs <= 0) return;
  deltas_[start] += procs;
  if (end < kForever) deltas_[end] -= procs;
  if (deltas_[start] == 0) deltas_.erase(start);
  auto it = deltas_.find(end);
  if (it != deltas_.end() && it->second == 0) deltas_.erase(it);
}

void CapacityProfile::remove_usage(std::int64_t start, std::int64_t end,
                                   std::int64_t procs) {
  if (end <= start || procs <= 0) return;
  deltas_[start] -= procs;
  if (end < kForever) deltas_[end] += procs;
  auto it = deltas_.find(start);
  if (it != deltas_.end() && it->second == 0) deltas_.erase(it);
  it = deltas_.find(end);
  if (it != deltas_.end() && it->second == 0) deltas_.erase(it);
}

void CapacityProfile::add_capacity_delta(std::int64_t at, std::int64_t delta) {
  // A capacity increase is a usage decrease from `at` onwards.
  if (delta == 0) return;
  deltas_[at] -= delta;
  auto it = deltas_.find(at);
  if (it != deltas_.end() && it->second == 0) deltas_.erase(it);
}

std::int64_t CapacityProfile::available_at(std::int64_t t) const {
  std::int64_t used = 0;
  for (const auto& [time, delta] : deltas_) {
    if (time > t) break;
    used += delta;
  }
  return base_ - used;
}

std::int64_t CapacityProfile::min_available(std::int64_t start,
                                            std::int64_t end) const {
  // State exactly at `start`:
  std::int64_t used = 0;
  auto it = deltas_.begin();
  for (; it != deltas_.end() && it->first <= start; ++it) used += it->second;
  std::int64_t min_avail = base_ - used;
  // Steps inside (start, end):
  for (; it != deltas_.end() && it->first < end; ++it) {
    used += it->second;
    min_avail = std::min(min_avail, base_ - used);
  }
  return min_avail;
}

bool CapacityProfile::fits(std::int64_t start, std::int64_t duration,
                           std::int64_t procs) const {
  if (duration <= 0) return true;
  return min_available(start, start + duration) >= procs;
}

std::int64_t CapacityProfile::earliest_start(std::int64_t from,
                                             std::int64_t duration,
                                             std::int64_t procs) const {
  if (procs <= 0 || duration <= 0) return from;
  std::int64_t candidate = from;
  while (true) {
    if (fits(candidate, duration, procs)) return candidate;
    // Advance to the next event after `candidate` where availability can
    // rise (a negative used-capacity delta).
    auto it = deltas_.upper_bound(candidate);
    while (it != deltas_.end() && it->second >= 0) ++it;
    if (it == deltas_.end()) return kForever;
    candidate = it->first;
  }
}

void CapacityProfile::compact_before(std::int64_t t) {
  std::int64_t folded = 0;
  auto it = deltas_.begin();
  while (it != deltas_.end() && it->first < t) {
    folded += it->second;
    it = deltas_.erase(it);
  }
  if (folded != 0) {
    deltas_[t] += folded;
    auto at = deltas_.find(t);
    if (at != deltas_.end() && at->second == 0) deltas_.erase(at);
  }
}

std::string CapacityProfile::to_string() const {
  std::ostringstream os;
  std::int64_t used = 0;
  os << "t<" << (deltas_.empty() ? 0 : deltas_.begin()->first) << ": "
     << base_ << '\n';
  for (const auto& [time, delta] : deltas_) {
    used += delta;
    os << "t>=" << time << ": " << (base_ - used) << '\n';
  }
  return os.str();
}

}  // namespace pjsb::sched
