#include "sched/profile.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pjsb::sched {

CapacityProfile::CapacityProfile(std::int64_t base_capacity)
    : base_(base_capacity) {
  if (base_capacity < 0) {
    throw std::invalid_argument("CapacityProfile: negative capacity");
  }
}

std::size_t CapacityProfile::segment_index(std::int64_t t) const {
  const std::size_t n = steps_.size();
  const auto brackets = [&](std::size_t i) {
    return (i == 0 || steps_[i - 1].time <= t) &&
           (i == n || steps_[i].time > t);
  };
  std::size_t h = hint_ <= n ? hint_ : n;
  // Monotone query streams hit the hint or its successor; anything else
  // falls back to a binary search.
  if (brackets(h)) {
    hint_ = h;
    return h;
  }
  if (h < n && brackets(h + 1)) {
    hint_ = h + 1;
    return h + 1;
  }
  const auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](std::int64_t v, const Step& s) { return v < s.time; });
  hint_ = std::size_t(it - steps_.begin());
  return hint_;
}

std::size_t CapacityProfile::ensure_boundary(std::int64_t t) {
  const std::size_t idx = segment_index(t);
  if (idx > 0 && steps_[idx - 1].time == t) return idx - 1;
  const std::int64_t avail = idx == 0 ? base_ : steps_[idx - 1].avail;
  steps_.insert(steps_.begin() + std::ptrdiff_t(idx), {t, avail});
  return idx;
}

void CapacityProfile::add_used(std::int64_t start, std::int64_t end,
                               std::int64_t procs) {
  const std::size_t s = ensure_boundary(start);
  const std::size_t e =
      end >= kForever ? steps_.size() : ensure_boundary(end);
  for (std::size_t i = s; i < e; ++i) steps_[i].avail -= procs;
  // A range update only changes values inside [s, e), so only the two
  // boundary steps can become redundant. Erase back-to-front so the
  // first index stays valid.
  const auto redundant = [&](std::size_t i) {
    const std::int64_t prev = i == 0 ? base_ : steps_[i - 1].avail;
    return steps_[i].avail == prev;
  };
  if (e < steps_.size() && redundant(e)) {
    steps_.erase(steps_.begin() + std::ptrdiff_t(e));
  }
  if (redundant(s)) steps_.erase(steps_.begin() + std::ptrdiff_t(s));
  if (hint_ > steps_.size()) hint_ = steps_.size();
}

void CapacityProfile::add_usage(std::int64_t start, std::int64_t end,
                                std::int64_t procs) {
  if (end <= start || procs <= 0) return;
  add_used(start, end, procs);
}

void CapacityProfile::remove_usage(std::int64_t start, std::int64_t end,
                                   std::int64_t procs) {
  if (end <= start || procs <= 0) return;
  add_used(start, end, -procs);
}

void CapacityProfile::add_capacity_delta(std::int64_t at,
                                         std::int64_t delta) {
  // A capacity increase is a usage decrease from `at` onwards.
  if (delta == 0) return;
  add_used(at, kForever, -delta);
}

std::int64_t CapacityProfile::available_at(std::int64_t t) const {
  const std::size_t idx = segment_index(t);
  return idx == 0 ? base_ : steps_[idx - 1].avail;
}

std::int64_t CapacityProfile::min_available(std::int64_t start,
                                            std::int64_t end) const {
  std::size_t i = segment_index(start);
  std::int64_t min_avail = i == 0 ? base_ : steps_[i - 1].avail;
  for (; i < steps_.size() && steps_[i].time < end; ++i) {
    min_avail = std::min(min_avail, steps_[i].avail);
  }
  return min_avail;
}

bool CapacityProfile::fits(std::int64_t start, std::int64_t duration,
                           std::int64_t procs) const {
  if (duration <= 0) return true;
  return min_available(start, start + duration) >= procs;
}

std::int64_t CapacityProfile::earliest_start(std::int64_t from,
                                             std::int64_t duration,
                                             std::int64_t procs) const {
  if (procs <= 0 || duration <= 0) return from;
  // One forward sweep. `candidate` is the start of the currently open
  // feasible window (kForever = none); a window wins as soon as the
  // next step lies at least `duration` past it.
  std::size_t i = segment_index(from);
  std::int64_t candidate =
      (i == 0 ? base_ : steps_[i - 1].avail) >= procs ? from : kForever;
  for (; i < steps_.size(); ++i) {
    if (candidate != kForever && steps_[i].time - candidate >= duration) {
      return candidate;
    }
    if (steps_[i].avail >= procs) {
      if (candidate == kForever) candidate = steps_[i].time;
    } else {
      candidate = kForever;
    }
  }
  // Past the last step the availability is constant forever.
  return candidate;
}

void CapacityProfile::compact_before(std::int64_t t) {
  // Count steps strictly before t.
  std::size_t n = 0;
  while (n < steps_.size() && steps_[n].time < t) ++n;
  if (n == 0) return;
  const std::int64_t avail_at_t = steps_[n - 1].avail;
  steps_.erase(steps_.begin(), steps_.begin() + std::ptrdiff_t(n));
  // Preserve availability from t on; history before t folds into base.
  // The value preceding the (new) front step is now base_, so a
  // surviving step at t whose avail equals base_ became redundant.
  if (!steps_.empty() && steps_.front().time == t) {
    if (steps_.front().avail == base_) steps_.erase(steps_.begin());
  } else if (avail_at_t != base_) {
    steps_.insert(steps_.begin(), {t, avail_at_t});
  }
  hint_ = 0;
}

bool CapacityProfile::same_from(const CapacityProfile& other,
                                std::int64_t from) const {
  if (available_at(from) != other.available_at(from)) return false;
  std::size_t i = segment_index(from);
  std::size_t j = other.segment_index(from);
  while (i < steps_.size() || j < other.steps_.size()) {
    const std::int64_t ti =
        i < steps_.size() ? steps_[i].time : kForever;
    const std::int64_t tj =
        j < other.steps_.size() ? other.steps_[j].time : kForever;
    const std::int64_t t = std::min(ti, tj);
    if (available_at(t) != other.available_at(t)) return false;
    if (ti == t) ++i;
    if (tj == t) ++j;
  }
  return true;
}

std::string CapacityProfile::to_string() const {
  std::ostringstream os;
  os << "t<" << (steps_.empty() ? 0 : steps_.front().time) << ": " << base_
     << '\n';
  for (const auto& step : steps_) {
    os << "t>=" << step.time << ": " << step.avail << '\n';
  }
  return os.str();
}

}  // namespace pjsb::sched
