// CapacityProfile: piecewise-constant available-processor count over
// time. The shared substrate of backfilling (EASY's shadow reservation,
// conservative's full reservation profile), advance reservations for
// metacomputing co-allocation (section 3), and outage-aware scheduling
// (draining up to announced maintenance, section 2.2).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace pjsb::sched {

/// Far-future sentinel for open-ended usages.
inline constexpr std::int64_t kForever =
    std::numeric_limits<std::int64_t>::max() / 4;

/// Piecewise-constant capacity timeline. Usages subtract capacity over
/// [start, end); the profile answers "when can (procs, duration) first
/// start?" queries. All mutations are exact inverses, so schedulers can
/// tentatively place and remove usages.
class CapacityProfile {
 public:
  explicit CapacityProfile(std::int64_t base_capacity);

  std::int64_t base_capacity() const { return base_; }

  /// Subtract `procs` over [start, end). end may be kForever.
  void add_usage(std::int64_t start, std::int64_t end, std::int64_t procs);
  /// Exact inverse of add_usage with identical arguments.
  void remove_usage(std::int64_t start, std::int64_t end,
                    std::int64_t procs);

  /// Permanently change the base capacity from `start` on (outage start
  /// = negative delta at start, positive delta at end).
  void add_capacity_delta(std::int64_t at, std::int64_t delta);

  /// Available processors at time t.
  std::int64_t available_at(std::int64_t t) const;

  /// Minimum available processors over [start, end).
  std::int64_t min_available(std::int64_t start, std::int64_t end) const;

  /// Earliest t >= from such that `procs` are available throughout
  /// [t, t + duration). Returns kForever if no such time exists (e.g.
  /// procs exceeds capacity everywhere).
  std::int64_t earliest_start(std::int64_t from, std::int64_t duration,
                              std::int64_t procs) const;

  /// True if `procs` are available throughout [start, start+duration).
  bool fits(std::int64_t start, std::int64_t duration,
            std::int64_t procs) const;

  /// Drop all events strictly before `t` (folding them into the base),
  /// keeping the profile small in long simulations.
  void compact_before(std::int64_t t);

  /// Debug rendering of the step function.
  std::string to_string() const;

 private:
  std::int64_t base_;
  /// time -> delta of *used* capacity (positive = capacity consumed).
  std::map<std::int64_t, std::int64_t> deltas_;
};

}  // namespace pjsb::sched
