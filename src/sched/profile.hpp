// CapacityProfile: piecewise-constant available-processor count over
// time. The shared substrate of backfilling (EASY's shadow reservation,
// conservative's full reservation profile), advance reservations for
// metacomputing co-allocation (section 3), and outage-aware scheduling
// (draining up to announced maintenance, section 2.2).
//
// Representation: a flat, sorted timeline of {time, available} steps.
// Before the first step the full base capacity is available; each step
// sets the available count from its time until the next step. The
// canonical form stores no redundant steps (adjacent steps always carry
// different values), so structural equality equals functional equality.
// Point lookups binary-search with a cached segment hint (scheduler
// queries are strongly monotone in time), and earliest_start is a
// single forward sweep that tracks the running feasible-window length —
// O(steps), not O(steps^2) as with repeated fits() probing.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace pjsb::sched {

/// Far-future sentinel for open-ended usages.
inline constexpr std::int64_t kForever =
    std::numeric_limits<std::int64_t>::max() / 4;

/// Piecewise-constant capacity timeline. Usages subtract capacity over
/// [start, end); the profile answers "when can (procs, duration) first
/// start?" queries. All mutations are exact inverses, so schedulers can
/// tentatively place and remove usages.
class CapacityProfile {
 public:
  explicit CapacityProfile(std::int64_t base_capacity);

  std::int64_t base_capacity() const { return base_; }

  /// Subtract `procs` over [start, end). end may be kForever.
  void add_usage(std::int64_t start, std::int64_t end, std::int64_t procs);
  /// Exact inverse of add_usage with identical arguments.
  void remove_usage(std::int64_t start, std::int64_t end,
                    std::int64_t procs);

  /// Permanently change the base capacity from `start` on (outage start
  /// = negative delta at start, positive delta at end).
  void add_capacity_delta(std::int64_t at, std::int64_t delta);

  /// Available processors at time t.
  std::int64_t available_at(std::int64_t t) const;

  /// Minimum available processors over [start, end).
  std::int64_t min_available(std::int64_t start, std::int64_t end) const;

  /// Earliest t >= from such that `procs` are available throughout
  /// [t, t + duration). Returns kForever if no such time exists (e.g.
  /// procs exceeds capacity everywhere).
  std::int64_t earliest_start(std::int64_t from, std::int64_t duration,
                              std::int64_t procs) const;

  /// True if `procs` are available throughout [start, start+duration).
  bool fits(std::int64_t start, std::int64_t duration,
            std::int64_t procs) const;

  /// Drop all events strictly before `t` (folding them into a single
  /// step at `t`), keeping the profile small in long simulations.
  void compact_before(std::int64_t t);

  /// Number of step points currently stored. Long-running schedulers
  /// that compact_before(now) keep this O(running + queued) regardless
  /// of trace length.
  std::size_t step_count() const { return steps_.size(); }

  /// True if the two profiles describe the same availability function
  /// for all t >= from (history before `from` may differ, e.g. one side
  /// compacted). Used by the schedulers' debug cross-check.
  bool same_from(const CapacityProfile& other, std::int64_t from) const;

  /// Snapshot access: step `i` as (time, available), 0 <= i <
  /// step_count(). Iterating 0..step_count() yields the canonical
  /// sorted timeline, so from_steps(base, those pairs) reproduces the
  /// profile exactly.
  std::pair<std::int64_t, std::int64_t> step_at(std::size_t i) const {
    return {steps_[i].time, steps_[i].avail};
  }

  /// Rebuild a profile from its serialized step timeline (must be the
  /// sorted canonical form produced by step_at iteration).
  static CapacityProfile from_steps(
      std::int64_t base,
      const std::vector<std::pair<std::int64_t, std::int64_t>>& steps) {
    CapacityProfile p(base);
    p.steps_.reserve(steps.size());
    for (const auto& [time, avail] : steps) p.steps_.push_back({time, avail});
    return p;
  }

  /// Debug rendering of the step function.
  std::string to_string() const;

 private:
  struct Step {
    std::int64_t time;
    std::int64_t avail;  ///< available processors in [time, next.time)
  };

  /// Number of steps with time <= t; 0 means t precedes all steps. Uses
  /// and refreshes the cached hint.
  std::size_t segment_index(std::int64_t t) const;
  /// Index of the step at exactly `t`, inserting one (carrying the
  /// current availability) if absent.
  std::size_t ensure_boundary(std::int64_t t);
  /// Subtract `procs` from availability over [start, end) and restore
  /// the canonical form. procs may be negative (capacity returned).
  void add_used(std::int64_t start, std::int64_t end, std::int64_t procs);

  std::int64_t base_;
  std::vector<Step> steps_;
  /// Last segment index returned; validated before reuse, so staleness
  /// only costs a binary search.
  mutable std::size_t hint_ = 0;
};

}  // namespace pjsb::sched
