// The scheduler query interface: read-only questions a live policy can
// answer about hypothetical work.
//
// Chapin et al. frame "when would my job start?" as the canonical
// query a production scheduler must answer without disturbing the
// schedule (section 1.2's evaluation triad treats the policy as a
// queryable black box). This interface formalizes that contract so
// consumers — the what-if service (sim/snapshot/whatif.hpp), the
// promise-invariant checkers (validate/invariants.hpp), the
// scheduler-assisted predictor — depend on the query surface alone,
// not on any concrete scheduler type.
//
// Contract:
//   * const and non-perturbing: a query MUST NOT change any observable
//     scheduling behaviour. Implementations may maintain `mutable`
//     caches, but the decision trace of a run with interleaved queries
//     must be byte-identical to the same run without them.
//   * best effort: a policy that cannot see the future (FCFS, SJF —
//     no capacity profile) returns nullopt rather than guessing.
//   * the answer is the policy's *promise* under current knowledge:
//     the earliest start a (procs, estimate) job submitted at `now`
//     would be granted, assuming no further arrivals. Later events
//     (early completions, outages) may move the real start — earlier
//     for compressing policies, later only through capacity loss.
#pragma once

#include <cstdint>
#include <optional>

namespace pjsb::sched {

class QueryInterface {
 public:
  virtual ~QueryInterface() = default;

  /// Predicted start time for a hypothetical (procs, estimate) job
  /// submitted at `now`, or nullopt when this policy cannot compute
  /// one from its internal state. See the contract above.
  virtual std::optional<std::int64_t> predict_start(
      std::int64_t now, std::int64_t procs, std::int64_t estimate) const = 0;
};

}  // namespace pjsb::sched
