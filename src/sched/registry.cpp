#include "sched/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "util/keyval.hpp"
#include "util/string_util.hpp"

namespace pjsb::sched {

namespace {

[[noreturn]] void bad_spec(const std::string& message) {
  throw std::invalid_argument(message);
}

std::string format_real(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

ParamSpec ParamSpec::integer(std::string key, std::string description,
                             std::int64_t def, std::int64_t min,
                             std::int64_t max) {
  ParamSpec p;
  p.key = std::move(key);
  p.type = Type::kInt;
  p.description = std::move(description);
  p.int_default = def;
  p.int_min = min;
  p.int_max = max;
  return p;
}

ParamSpec ParamSpec::real(std::string key, std::string description,
                          double def, double min, double max) {
  ParamSpec p;
  p.key = std::move(key);
  p.type = Type::kReal;
  p.description = std::move(description);
  p.real_default = def;
  p.real_min = min;
  p.real_max = max;
  return p;
}

ParamSpec ParamSpec::choice(std::string key, std::string description,
                            std::vector<std::string> choices) {
  ParamSpec p;
  p.key = std::move(key);
  p.type = Type::kChoice;
  p.description = std::move(description);
  p.choices = std::move(choices);
  return p;
}

std::string ParamSpec::to_string() const {
  std::string s = key + "=";
  switch (type) {
    case Type::kInt:
      s += "int in [" + std::to_string(int_min) + ", " +
           std::to_string(int_max) + "], default " +
           std::to_string(int_default);
      break;
    case Type::kReal:
      s += "real in [" + format_real(real_min) + ", " +
           format_real(real_max) + "], default " + format_real(real_default);
      break;
    case Type::kChoice: {
      s += "one of {";
      for (std::size_t i = 0; i < choices.size(); ++i) {
        if (i) s += ", ";
        s += choices[i];
      }
      s += "}, default " + (choices.empty() ? std::string() : choices[0]);
      break;
    }
  }
  if (!description.empty()) s += ": " + description;
  return s;
}

const ParamSpec* SchedulerInfo::find_param(const std::string& key) const {
  for (const auto& p : params) {
    if (p.key == key) return &p;
  }
  return nullptr;
}

std::string SchedulerInfo::valid_keys() const {
  if (params.empty()) return "(none)";
  std::string s;
  for (const auto& p : params) {
    if (!s.empty()) s += "; ";
    s += p.to_string();
  }
  return s;
}

std::int64_t ParamValues::get_int(const std::string& key) const {
  const ParamSpec* p = info_ ? info_->find_param(key) : nullptr;
  if (!p || p->type != ParamSpec::Type::kInt) {
    throw std::logic_error("ParamValues::get_int: '" + key +
                           "' is not an int parameter of this scheduler");
  }
  const auto it = values_.find(key);
  if (it == values_.end()) return p->int_default;
  return *util::parse_i64(it->second);  // validated at parse time
}

double ParamValues::get_real(const std::string& key) const {
  const ParamSpec* p = info_ ? info_->find_param(key) : nullptr;
  if (!p || p->type != ParamSpec::Type::kReal) {
    throw std::logic_error("ParamValues::get_real: '" + key +
                           "' is not a real parameter of this scheduler");
  }
  const auto it = values_.find(key);
  if (it == values_.end()) return p->real_default;
  return *util::parse_f64(it->second);  // validated at parse time
}

const std::string& ParamValues::get_choice(const std::string& key) const {
  const ParamSpec* p = info_ ? info_->find_param(key) : nullptr;
  if (!p || p->type != ParamSpec::Type::kChoice) {
    throw std::logic_error("ParamValues::get_choice: '" + key +
                           "' is not a choice parameter of this scheduler");
  }
  const auto it = values_.find(key);
  if (it == values_.end()) return p->choices.front();
  // Return the canonical (schema) spelling, validated at parse time.
  for (const auto& c : p->choices) {
    if (c == it->second) return c;
  }
  throw std::logic_error("ParamValues::get_choice: unvalidated value");
}

bool ParamValues::is_set(const std::string& key) const {
  return values_.count(key) != 0;
}

Registry& Registry::global() {
  static Registry registry = [] {
    Registry r;
    // Canonical presentation order. Pulled explicitly because static
    // initializers in unreferenced static-library objects are dropped
    // by the linker (see header comment).
    r.add(fcfs_scheduler_info());
    r.add(sjf_scheduler_info());
    r.add(sjf_fit_scheduler_info());
    r.add(easy_scheduler_info());
    r.add(conservative_scheduler_info());
    r.add(gang_scheduler_info());
    return r;
  }();
  return registry;
}

void Registry::add(SchedulerInfo info) {
  if (info.name.empty()) bad_spec("registry: scheduler with empty name");
  if (!info.make) {
    bad_spec("registry: scheduler '" + info.name + "' has no factory");
  }
  if (!info.compact_prefix.empty() && !info.find_param(info.compact_param)) {
    bad_spec("registry: scheduler '" + info.name + "' compact alias binds '" +
             info.compact_param + "', which is not in its schema");
  }
  const std::size_t idx = infos_.size();
  auto claim = [&](const std::string& key) {
    if (!index_.emplace(util::to_lower(key), idx).second) {
      bad_spec("registry: duplicate scheduler name or alias '" + key + "'");
    }
  };
  claim(info.name);
  for (const auto& alias : info.aliases) claim(alias);
  infos_.push_back(std::move(info));
}

const SchedulerInfo* Registry::find(const std::string& name) const {
  const auto it = index_.find(util::to_lower(name));
  if (it == index_.end()) return nullptr;
  return &infos_[it->second];
}

std::string Registry::ParsedSpec::to_string() const {
  std::string s = info->name;
  // Schema order, explicit settings only, so equivalent specs print
  // identically regardless of input order.
  for (const auto& p : info->params) {
    if (values.is_set(p.key)) {
      switch (p.type) {
        case ParamSpec::Type::kInt:
          s += " " + p.key + "=" + std::to_string(values.get_int(p.key));
          break;
        case ParamSpec::Type::kReal:
          s += " " + p.key + "=" + format_real(values.get_real(p.key));
          break;
        case ParamSpec::Type::kChoice:
          s += " " + p.key + "=" + values.get_choice(p.key);
          break;
      }
    }
  }
  return s;
}

Registry::ParsedSpec Registry::parse(const std::string& spec) const {
  auto tokens = util::parse_spec(spec, /*allow_head=*/true);
  const std::string head = util::to_lower(tokens.head);
  if (head.empty()) {
    bad_spec("empty scheduler spec; valid names: " + valid_names());
  }

  ParsedSpec parsed;
  parsed.info = find(head);
  if (!parsed.info) {
    // Compact numeric alias: "<prefix><N>" ("gang8").
    for (const auto& info : infos_) {
      if (info.compact_prefix.empty()) continue;
      if (!util::starts_with(head, info.compact_prefix)) continue;
      const std::string suffix = head.substr(info.compact_prefix.size());
      const ParamSpec* p = info.find_param(info.compact_param);
      const auto n = util::parse_i64(suffix);
      if (!n || *n < p->int_min || *n > p->int_max) {
        bad_spec("bad " + info.compact_param + " count in '" + tokens.head +
                 "'; expected " + info.compact_prefix + "N with " +
                 std::to_string(p->int_min) +
                 " <= N <= " + std::to_string(p->int_max));
      }
      parsed.info = &info;
      tokens.options.insert(tokens.options.begin(),
                            {info.compact_param, suffix});
      break;
    }
  }
  if (!parsed.info) {
    bad_spec("unknown scheduler '" + tokens.head +
             "'; valid names: " + valid_names());
  }

  parsed.values.info_ = parsed.info;
  for (const auto& option : tokens.options) {
    const ParamSpec* p = parsed.info->find_param(option.key);
    if (!p) {
      bad_spec("unknown parameter '" + option.key + "' for scheduler '" +
               parsed.info->name +
               "'; valid keys: " + parsed.info->valid_keys());
    }
    if (!parsed.values.values_.emplace(option.key, option.value).second) {
      bad_spec("parameter '" + option.key + "' set twice for scheduler '" +
               parsed.info->name + "'");
    }
    switch (p->type) {
      case ParamSpec::Type::kInt: {
        const auto v = util::parse_i64(option.value);
        if (!v || *v < p->int_min || *v > p->int_max) {
          bad_spec("scheduler '" + parsed.info->name + "': " + option.key +
                   "='" + option.value + "' is not an integer in [" +
                   std::to_string(p->int_min) + ", " +
                   std::to_string(p->int_max) + "]");
        }
        break;
      }
      case ParamSpec::Type::kReal: {
        const auto v = util::parse_f64(option.value);
        if (!v || !(*v >= p->real_min && *v <= p->real_max)) {
          bad_spec("scheduler '" + parsed.info->name + "': " + option.key +
                   "='" + option.value + "' is not a number in [" +
                   format_real(p->real_min) + ", " + format_real(p->real_max) +
                   "]");
        }
        break;
      }
      case ParamSpec::Type::kChoice: {
        const std::string v = util::to_lower(option.value);
        bool ok = false;
        for (const auto& c : p->choices) ok = ok || c == v;
        if (!ok) {
          bad_spec("scheduler '" + parsed.info->name + "': " + option.key +
                   "='" + option.value + "' is not one of: " +
                   [&] {
                     std::string s;
                     for (const auto& c : p->choices) {
                       if (!s.empty()) s += ", ";
                       s += c;
                     }
                     return s;
                   }());
        }
        parsed.values.values_[option.key] = v;  // canonical lowercase
        break;
      }
    }
  }
  return parsed;
}

std::unique_ptr<Scheduler> Registry::make(const std::string& spec) const {
  const auto parsed = parse(spec);
  return parsed.info->make(parsed.values);
}

std::vector<const SchedulerInfo*> Registry::entries() const {
  std::vector<const SchedulerInfo*> result;
  result.reserve(infos_.size());
  for (const auto& info : infos_) result.push_back(&info);
  return result;
}

std::string Registry::valid_names() const {
  std::string names;
  for (const auto& info : infos_) {
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  for (const auto& info : infos_) {
    if (!info.compact_prefix.empty()) {
      names += " (" + info.name + " accepts a " + info.compact_param +
               " count suffix, e.g. " + info.compact_prefix + "8)";
    }
  }
  return names;
}

std::string Registry::help() const {
  std::string s;
  for (const auto& info : infos_) {
    s += info.name;
    if (!info.aliases.empty()) {
      s += " (aliases: ";
      for (std::size_t i = 0; i < info.aliases.size(); ++i) {
        if (i) s += ", ";
        s += info.aliases[i];
      }
      if (!info.compact_prefix.empty()) {
        s += ", " + info.compact_prefix + "N";
      }
      s += ")";
    } else if (!info.compact_prefix.empty()) {
      s += " (alias: " + info.compact_prefix + "N)";
    }
    s += "\n    " + info.description + "\n";
    for (const auto& p : info.params) {
      s += "    " + p.to_string() + "\n";
    }
  }
  return s;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& spec) {
  return Registry::global().make(spec);
}

}  // namespace pjsb::sched
