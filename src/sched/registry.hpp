// The scheduler policy registry: string-keyed, parameter-carrying
// policy selection behind one front door.
//
// The paper's standardized-evaluation triad (section 1.2) treats the
// scheduling policy as an interchangeable *input*. This registry makes
// that literal: every scheduler registers a canonical name, a one-line
// description, exact-match aliases, and a typed parameter schema; the
// harnesses (exp campaigns, swf_tool, tests) instantiate policies from
// spec strings like
//
//   "easy"                         classic EASY backfilling
//   "easy reserve_depth=4"         protect the first 4 queued jobs
//   "conservative reserve_depth=8" cap the reservation depth at 8
//   "sjf tie=widest"               SJF, ties broken widest-job-first
//   "gang slots=8"  (alias gang8)  8-row Ousterhout matrix
//
// Unknown names and parameters fail with the full list of valid
// choices, so a typo'd campaign dies at parse time, not mid-sweep.
//
// Each scheduler's registration block lives in its own .cpp next to the
// implementation (see PJSB_SCHEDULER_INFO in fcfs.cpp etc.). Because
// pjsb is a static library, a registration relying purely on static
// initializers would be dropped by the linker along with its otherwise
// unreferenced object file; the registry constructor therefore pulls
// each info function explicitly — adding a scheduler means one line in
// registry.cpp plus the block next to the scheduler itself.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace pjsb::sched {

/// One typed parameter in a scheduler's schema.
struct ParamSpec {
  enum class Type { kInt, kReal, kChoice };

  std::string key;  ///< lowercase key in spec strings
  Type type = Type::kInt;
  std::string description;

  // kInt
  std::int64_t int_default = 0;
  std::int64_t int_min = std::numeric_limits<std::int64_t>::min();
  std::int64_t int_max = std::numeric_limits<std::int64_t>::max();
  // kReal
  double real_default = 0.0;
  double real_min = std::numeric_limits<double>::lowest();
  double real_max = std::numeric_limits<double>::max();
  // kChoice: choices[0] is the default.
  std::vector<std::string> choices;

  static ParamSpec integer(std::string key, std::string description,
                           std::int64_t def, std::int64_t min,
                           std::int64_t max);
  static ParamSpec real(std::string key, std::string description, double def,
                        double min, double max);
  static ParamSpec choice(std::string key, std::string description,
                          std::vector<std::string> choices);

  /// "reserve_depth=int in [1, 64], default 1: ..." — for help text and
  /// unknown-key error messages.
  std::string to_string() const;
};

struct SchedulerInfo;

/// Validated parameter values for one instantiation: explicit
/// key=value settings over the schema's defaults. Factories read their
/// knobs through the typed getters; lookups of keys absent from the
/// schema throw std::logic_error (a registration bug, not user error).
class ParamValues {
 public:
  std::int64_t get_int(const std::string& key) const;
  double get_real(const std::string& key) const;
  const std::string& get_choice(const std::string& key) const;
  /// True when the spec set `key` explicitly (even to its default).
  bool is_set(const std::string& key) const;

 private:
  friend class Registry;
  const SchedulerInfo* info_ = nullptr;
  std::map<std::string, std::string> values_;  ///< explicit settings only
};

/// A registered scheduler: identity, documentation, schema, factory.
struct SchedulerInfo {
  std::string name;         ///< canonical, lowercase
  std::string description;  ///< one line, for help()/error text
  std::vector<std::string> aliases;  ///< exact-match aliases ("cons")
  /// Compact numeric alias: "<prefix><N>" resolves to this scheduler
  /// with N bound to `compact_param` ("gang8" == "gang slots=8").
  std::string compact_prefix;
  std::string compact_param;
  std::vector<ParamSpec> params;
  std::unique_ptr<Scheduler> (*make)(const ParamValues& values) = nullptr;

  const ParamSpec* find_param(const std::string& key) const;
  /// Comma-separated parameter summaries, for error messages.
  std::string valid_keys() const;
};

class Registry {
 public:
  /// The process-wide registry, with every built-in scheduler
  /// registered. Harnesses may add() site-specific policies on top.
  static Registry& global();

  /// Construct an empty registry (tests build private ones).
  Registry() = default;

  /// Register a scheduler. Throws std::invalid_argument on a duplicate
  /// name/alias or a malformed schema (empty name, compact_param not in
  /// the schema).
  void add(SchedulerInfo info);

  /// Lookup by canonical name or exact alias (case-insensitive);
  /// nullptr when unknown. Compact aliases ("gang8") resolve through
  /// parse(), not here.
  const SchedulerInfo* find(const std::string& name) const;

  /// A parsed spec string: the scheduler plus its validated explicit
  /// parameter values.
  struct ParsedSpec {
    const SchedulerInfo* info = nullptr;
    ParamValues values;
    /// Canonical round-trippable form: the canonical name followed by
    /// the explicitly set parameters in schema order.
    std::string to_string() const;
  };

  /// Parse and validate "name key=value ..." without instantiating.
  /// Throws std::invalid_argument with the valid-names / valid-keys
  /// list on an unknown scheduler, unknown key, repeated key, bad value
  /// or out-of-range value.
  ParsedSpec parse(const std::string& spec) const;

  /// Parse, validate and instantiate.
  std::unique_ptr<Scheduler> make(const std::string& spec) const;

  /// Registered schedulers in registration (presentation) order.
  std::vector<const SchedulerInfo*> entries() const;

  /// Human-readable list of accepted scheduler names, for error
  /// messages and CLI help text.
  std::string valid_names() const;

  /// Multi-line catalogue: every scheduler with its description,
  /// aliases and parameter schema.
  std::string help() const;

 private:
  /// Deque, not vector: find()/parse()/entries() hand out SchedulerInfo
  /// pointers, and a later add() must not invalidate them.
  std::deque<SchedulerInfo> infos_;
  std::map<std::string, std::size_t> index_;  ///< name and aliases
};

/// The front door every harness uses: instantiate a policy from a spec
/// string via the global registry.
std::unique_ptr<Scheduler> make_scheduler(const std::string& spec);

// Registration blocks for the built-in policy zoo. Each lives in its
// scheduler's own .cpp; the registry constructor calls them (see the
// static-library note in the header comment).
SchedulerInfo fcfs_scheduler_info();
SchedulerInfo sjf_scheduler_info();
SchedulerInfo sjf_fit_scheduler_info();
SchedulerInfo easy_scheduler_info();
SchedulerInfo conservative_scheduler_info();
SchedulerInfo gang_scheduler_info();

}  // namespace pjsb::sched
