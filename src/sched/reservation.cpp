#include "sched/reservation.hpp"

#include <algorithm>

#include "sched/profile.hpp"

namespace pjsb::sched {

std::optional<std::int64_t> find_common_window(
    std::span<const EarliestStartFn> sites, std::int64_t from,
    int max_rounds) {
  if (sites.empty()) return from;
  std::int64_t t = from;
  for (int round = 0; round < max_rounds; ++round) {
    std::int64_t next = t;
    for (const auto& earliest : sites) {
      const std::int64_t site_t = earliest(next);
      if (site_t >= kForever) return std::nullopt;
      next = std::max(next, site_t);
    }
    if (next == t) return t;
    t = next;
  }
  return std::nullopt;
}

}  // namespace pjsb::sched
