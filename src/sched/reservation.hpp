// Co-allocation support: finding a common advance-reservation window
// across several machines.
//
// "Many meta schedulers need resources from more than one source ...
// This requires mechanisms for gaining simultaneous access to
// resources. One such mechanism is reserving resources at some future
// time." (section 1.2 / 3.1). The classic algorithm is a fixpoint over
// per-site earliest-start queries: ask every site for its earliest
// feasible start no earlier than t, take the max, repeat until stable.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

namespace pjsb::sched {

/// Per-site query: earliest feasible start >= from for this site's part
/// of the request, or kForever if the site can never host it.
using EarliestStartFn = std::function<std::int64_t(std::int64_t from)>;

/// Find the earliest time t >= from such that every site reports t as
/// feasible. Returns nullopt if any site reports kForever or the
/// fixpoint fails to converge within `max_rounds`.
std::optional<std::int64_t> find_common_window(
    std::span<const EarliestStartFn> sites, std::int64_t from,
    int max_rounds = 64);

}  // namespace pjsb::sched
