#include "sched/scheduler.hpp"

#include <stdexcept>

namespace pjsb::sched {

void Scheduler::on_attach(SchedulerContext& /*ctx*/) {}

void Scheduler::on_job_killed(SchedulerContext& /*ctx*/,
                              std::int64_t /*job_id*/) {}

void Scheduler::on_outage_announce(SchedulerContext& /*ctx*/,
                                   const outage::OutageRecord& /*rec*/) {}

void Scheduler::on_outage_start(SchedulerContext& /*ctx*/,
                                const outage::OutageRecord& /*rec*/) {}

void Scheduler::on_outage_end(SchedulerContext& /*ctx*/,
                              const outage::OutageRecord& /*rec*/) {}

bool Scheduler::try_reserve(SchedulerContext& /*ctx*/,
                            const AdvanceReservation& /*reservation*/) {
  return false;
}

std::optional<std::int64_t> Scheduler::predict_start(
    std::int64_t /*now*/, std::int64_t /*procs*/,
    std::int64_t /*estimate*/) const {
  return std::nullopt;
}

void Scheduler::save_state(sim::snapshot::Writer& /*w*/) const {
  throw std::logic_error("scheduler '" + name() +
                         "' does not implement save_state");
}

void Scheduler::load_state(sim::snapshot::Reader& /*r*/) {
  throw std::logic_error("scheduler '" + name() +
                         "' does not implement load_state");
}

}  // namespace pjsb::sched
