// The machine-scheduler plugin interface.
//
// "Machine schedulers ... receive characteristic data from a stream of
// independent jobs. Computing resources ... are allocated to these jobs
// with the goal of optimizing the value of the actual scheduling
// objective function." (section 1.2). The engine drives lifecycle
// events; the scheduler decides who runs when. Advance reservations
// (section 3) and outage announcements (section 2.2) are part of the
// interface so that metacomputing co-allocation and outage-aware
// draining are first-class.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/outage/record.hpp"
#include "sched/query.hpp"
#include "sim/job.hpp"
#include "sim/machine.hpp"
#include "sim/provenance.hpp"

namespace pjsb::sim::snapshot {
class Writer;
class Reader;
}  // namespace pjsb::sim::snapshot

namespace pjsb::sched {

/// An accepted advance reservation: `procs` processors are guaranteed
/// for [start, start + duration). If `job_id` is set, the engine starts
/// that job at `start`.
struct AdvanceReservation {
  std::int64_t id = 0;
  std::int64_t start = 0;
  std::int64_t duration = 0;
  std::int64_t procs = 0;
  std::optional<std::int64_t> job_id;
};

/// Engine services exposed to schedulers.
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  virtual std::int64_t now() const = 0;
  virtual sim::Machine& machine() = 0;
  virtual const sim::SimJob& job(std::int64_t id) const = 0;

  /// Start a queued job now, allocating nodes from the machine. The
  /// engine schedules its completion at now + runtime. Returns false if
  /// the allocation does not fit (the scheduler mis-counted).
  virtual bool start_job(std::int64_t job_id) = 0;

  /// Start a queued job now WITHOUT machine node allocation — for
  /// time-sharing schedulers that do their own space/time accounting.
  /// Completion is scheduled at `end_time` and may be revised later via
  /// update_job_end.
  virtual void start_job_virtual(std::int64_t job_id,
                                 std::int64_t end_time) = 0;

  /// Revise the completion time of a running virtual job.
  virtual void update_job_end(std::int64_t job_id,
                              std::int64_t new_end) = 0;

  /// Kill a running job (its work so far is lost; the engine requeues
  /// it). Used by time-sharing schedulers whose jobs do not hold
  /// machine allocations, when an outage takes out their nodes.
  virtual void kill_running_job(std::int64_t job_id) = 0;

  /// Annotate the *next* start_job / start_job_virtual call with the
  /// reason the policy chose that job now. The engine stamps the
  /// annotation onto the emitted sim::Decision and clears it — one
  /// annotation per start; unannotated starts read kUnspecified.
  /// `detail` carries a provenance-specific time (the promised start
  /// slot for kReservation; ignored otherwise). Non-pure and defaulted
  /// to a no-op so contexts without observability stay trivial and
  /// existing custom contexts keep compiling.
  virtual void annotate_start(sim::StartProvenance provenance,
                              std::int64_t detail = -1) {
    (void)provenance;
    (void)detail;
  }
};

/// Abstract machine scheduler. Handlers default to no-ops so simple
/// policies implement only what they need. After every event the engine
/// calls schedule() exactly once per timestamp.
///
/// Derives from QueryInterface (query.hpp): every scheduler is a
/// queryable policy, and predict_start carries that interface's
/// const/non-perturbing contract.
class Scheduler : public QueryInterface {
 public:
  /// name() must be a registry spec string that round-trips through
  /// sched::make_scheduler back to an identically configured instance
  /// ("easy reserve_depth=2", "gang8", ...); snapshots rebuild the
  /// scheduler from it before load_state restores runtime state.
  virtual std::string name() const = 0;

  /// Called once when the scheduler is bound to an engine, before any
  /// event. Lets profile-based schedulers learn the machine size so
  /// predictions work from time zero.
  virtual void on_attach(SchedulerContext& ctx);

  /// A job entered the queue (fresh submission or requeue after a
  /// failure-induced kill).
  virtual void on_submit(SchedulerContext& ctx, std::int64_t job_id) = 0;
  /// A running job completed.
  virtual void on_job_end(SchedulerContext& ctx, std::int64_t job_id) = 0;
  /// A running job was killed by an outage; the engine will requeue it
  /// (a fresh on_submit follows).
  virtual void on_job_killed(SchedulerContext& ctx, std::int64_t job_id);

  /// Outage lifecycle. Announcements arrive only when the engine is
  /// configured outage-aware; starts/ends always arrive (the machine
  /// state changed).
  virtual void on_outage_announce(SchedulerContext& ctx,
                                  const outage::OutageRecord& rec);
  virtual void on_outage_start(SchedulerContext& ctx,
                               const outage::OutageRecord& rec);
  virtual void on_outage_end(SchedulerContext& ctx,
                             const outage::OutageRecord& rec);

  /// Advance-reservation request: may the engine guarantee
  /// `reservation.procs` processors over the window? Schedulers that
  /// cannot honor reservations return false (the default).
  virtual bool try_reserve(SchedulerContext& ctx,
                           const AdvanceReservation& reservation);

  /// QueryInterface: predicted start for a hypothetical (procs,
  /// estimate) job submitted now. Profile-based schedulers answer;
  /// the default returns nullopt (FCFS/SJF cannot see the future).
  std::optional<std::int64_t> predict_start(
      std::int64_t now, std::int64_t procs,
      std::int64_t estimate) const override;

  /// Make scheduling decisions (start any jobs that should start now).
  virtual void schedule(SchedulerContext& ctx) = 0;

  /// Snapshot support (sim/snapshot/): serialize all runtime state
  /// into `w` / restore it from `r`. load_state is called on a freshly
  /// constructed instance (same name()/parameters, on_attach already
  /// run) and must leave it byte-for-byte behaviourally identical to
  /// the saved one. The defaults throw std::logic_error — a custom
  /// policy without snapshot support fails loudly at snapshot time,
  /// not with silently wrong resumes.
  virtual void save_state(sim::snapshot::Writer& w) const;
  virtual void load_state(sim::snapshot::Reader& r);
};

}  // namespace pjsb::sched
