#include "sched/sjf.hpp"

#include <algorithm>

namespace pjsb::sched {

void SjfScheduler::on_submit(SchedulerContext& ctx, std::int64_t job_id) {
  const auto& j = ctx.job(job_id);
  // Insert keeping (estimate, id) order; id breaks ties FIFO.
  const auto pos = std::lower_bound(
      queue_.begin(), queue_.end(), job_id,
      [&ctx, &j](std::int64_t a, std::int64_t b_id) {
        const auto& ja = ctx.job(a);
        if (ja.estimate != j.estimate) return ja.estimate < j.estimate;
        return a < b_id;
      });
  queue_.insert(pos, job_id);
}

void SjfScheduler::on_job_end(SchedulerContext& /*ctx*/,
                              std::int64_t /*job_id*/) {}

void SjfScheduler::schedule(SchedulerContext& ctx) {
  bool progress = true;
  while (progress && !queue_.empty()) {
    progress = false;
    for (auto it = queue_.begin(); it != queue_.end();) {
      const auto& j = ctx.job(*it);
      if (j.state != sim::JobState::kQueued) {
        it = queue_.erase(it);
        progress = true;
        break;
      }
      if (j.procs <= ctx.machine().free_nodes() && ctx.start_job(*it)) {
        queue_.erase(it);
        progress = true;
        break;
      }
      if (!allow_fit_) break;  // strict SJF: shortest job blocks
      ++it;
    }
  }
}

}  // namespace pjsb::sched
