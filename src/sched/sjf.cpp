#include "sched/sjf.hpp"

#include <algorithm>

#include "sched/registry.hpp"
#include "sim/snapshot/codec.hpp"

namespace pjsb::sched {

namespace {

SjfTieBreak tie_from_values(const ParamValues& values) {
  const std::string& tie = values.get_choice("tie");
  if (tie == "widest") return SjfTieBreak::kWidest;
  if (tie == "narrowest") return SjfTieBreak::kNarrowest;
  return SjfTieBreak::kFcfs;
}

ParamSpec tie_param() {
  return ParamSpec::choice(
      "tie", "order of equal-estimate jobs", {"fcfs", "widest", "narrowest"});
}

}  // namespace

SchedulerInfo sjf_scheduler_info() {
  SchedulerInfo info;
  info.name = "sjf";
  info.description =
      "shortest-job-first by user estimate; the shortest job blocks";
  info.params = {tie_param()};
  info.make = +[](const ParamValues& values) -> std::unique_ptr<Scheduler> {
    return std::make_unique<SjfScheduler>(false, tie_from_values(values));
  };
  return info;
}

SchedulerInfo sjf_fit_scheduler_info() {
  SchedulerInfo info;
  info.name = "sjf-fit";
  info.description =
      "shortest-job-first, starting the shortest job that fits now";
  info.aliases = {"sjffit"};
  info.params = {tie_param()};
  info.make = +[](const ParamValues& values) -> std::unique_ptr<Scheduler> {
    return std::make_unique<SjfScheduler>(true, tie_from_values(values));
  };
  return info;
}

std::string SjfScheduler::name() const {
  std::string n = allow_fit_ ? "sjf-fit" : "sjf";
  if (tie_ == SjfTieBreak::kWidest) n += " tie=widest";
  if (tie_ == SjfTieBreak::kNarrowest) n += " tie=narrowest";
  return n;
}

bool SjfScheduler::precedes(const sim::SimJob& a, std::int64_t a_id,
                            const sim::SimJob& b, std::int64_t b_id) const {
  if (a.estimate != b.estimate) return a.estimate < b.estimate;
  switch (tie_) {
    case SjfTieBreak::kWidest:
      if (a.procs != b.procs) return a.procs > b.procs;
      break;
    case SjfTieBreak::kNarrowest:
      if (a.procs != b.procs) return a.procs < b.procs;
      break;
    case SjfTieBreak::kFcfs:
      break;
  }
  return a_id < b_id;  // id breaks remaining ties FIFO
}

void SjfScheduler::on_submit(SchedulerContext& ctx, std::int64_t job_id) {
  const auto& j = ctx.job(job_id);
  const auto pos = std::lower_bound(
      queue_.begin(), queue_.end(), job_id,
      [this, &ctx, &j](std::int64_t a, std::int64_t b_id) {
        return precedes(ctx.job(a), a, j, b_id);
      });
  queue_.insert(pos, job_id);
}

void SjfScheduler::on_job_end(SchedulerContext& /*ctx*/,
                              std::int64_t /*job_id*/) {}

void SjfScheduler::schedule(SchedulerContext& ctx) {
  bool progress = true;
  while (progress && !queue_.empty()) {
    progress = false;
    for (auto it = queue_.begin(); it != queue_.end();) {
      const auto& j = ctx.job(*it);
      if (j.state != sim::JobState::kQueued) {
        it = queue_.erase(it);
        progress = true;
        break;
      }
      if (j.procs <= ctx.machine().free_nodes()) {
        // The policy-order head is a queue-order start; an sjf-fit scan
        // that reaches past it starts a job ahead of the blocked head —
        // a backfill move in SJF order.
        ctx.annotate_start(it == queue_.begin()
                               ? sim::StartProvenance::kQueueHead
                               : sim::StartProvenance::kBackfill);
        if (ctx.start_job(*it)) {
          queue_.erase(it);
          progress = true;
          break;
        }
      }
      if (!allow_fit_) break;  // strict SJF: shortest job blocks
      ++it;
    }
  }
}

void SjfScheduler::save_state(sim::snapshot::Writer& w) const {
  // allow_fit_ / tie_ are constructor parameters; they ride in name().
  w.u64(queue_.size());
  for (std::int64_t id : queue_) w.i64(id);
}

void SjfScheduler::load_state(sim::snapshot::Reader& r) {
  queue_.clear();
  const std::uint64_t n = r.u64();
  queue_.reserve(std::size_t(n));
  for (std::uint64_t i = 0; i < n; ++i) queue_.push_back(r.i64());
}

}  // namespace pjsb::sched
