// Shortest-job-first (by user estimate). The classic user-centric
// counterpoint to FCFS: it minimizes average wait for short jobs at the
// price of fairness, which is exactly what makes schedulers rank
// differently under response time vs slowdown (experiment E3, claim
// [30] of the paper).
#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace pjsb::sched {

/// How equal-estimate jobs are ordered: arrival order (classic),
/// widest-first (drain big jobs while capacity is there) or
/// narrowest-first (maximize packing opportunities).
enum class SjfTieBreak { kFcfs, kWidest, kNarrowest };

class SjfScheduler final : public Scheduler {
 public:
  /// If `allow_fit` is true, when the shortest job does not fit the
  /// scheduler scans for the shortest job that does (non-blocking
  /// variant); otherwise the shortest job blocks (strict SJF).
  explicit SjfScheduler(bool allow_fit = false,
                        SjfTieBreak tie = SjfTieBreak::kFcfs)
      : allow_fit_(allow_fit), tie_(tie) {}

  std::string name() const override;
  void on_submit(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_job_end(SchedulerContext& ctx, std::int64_t job_id) override;
  void schedule(SchedulerContext& ctx) override;
  void save_state(sim::snapshot::Writer& w) const override;
  void load_state(sim::snapshot::Reader& r) override;

  std::size_t queue_length() const { return queue_.size(); }
  SjfTieBreak tie_break() const { return tie_; }

 private:
  /// Strict-weak queue order: estimate, then the tie-break policy,
  /// then id (FIFO) as the final arbiter.
  bool precedes(const sim::SimJob& a, std::int64_t a_id,
                const sim::SimJob& b, std::int64_t b_id) const;

  std::vector<std::int64_t> queue_;  ///< kept sorted by precedes()
  bool allow_fit_;
  SjfTieBreak tie_;
};

}  // namespace pjsb::sched
