// Shortest-job-first (by user estimate). The classic user-centric
// counterpoint to FCFS: it minimizes average wait for short jobs at the
// price of fairness, which is exactly what makes schedulers rank
// differently under response time vs slowdown (experiment E3, claim
// [30] of the paper).
#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace pjsb::sched {

class SjfScheduler final : public Scheduler {
 public:
  /// If `allow_fit` is true, when the shortest job does not fit the
  /// scheduler scans for the shortest job that does (non-blocking
  /// variant); otherwise the shortest job blocks (strict SJF).
  explicit SjfScheduler(bool allow_fit = false) : allow_fit_(allow_fit) {}

  std::string name() const override {
    return allow_fit_ ? "sjf-fit" : "sjf";
  }
  void on_submit(SchedulerContext& ctx, std::int64_t job_id) override;
  void on_job_end(SchedulerContext& ctx, std::int64_t job_id) override;
  void schedule(SchedulerContext& ctx) override;

  std::size_t queue_length() const { return queue_.size(); }

 private:
  std::vector<std::int64_t> queue_;  ///< kept sorted by (estimate, id)
  bool allow_fit_;
};

}  // namespace pjsb::sched
