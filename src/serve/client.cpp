#include "serve/client.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "serve/net.hpp"

namespace pjsb::serve {

Client::Client(int fd) : fd_(fd) {}

Client Client::connect_unix(const std::string& path) {
  std::string error;
  const int fd = net::connect_unix(path, &error);
  if (fd < 0) throw std::runtime_error("serve client: " + error);
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  std::string error;
  const int fd = net::connect_tcp(port, &error);
  if (fd < 0) throw std::runtime_error("serve client: " + error);
  return Client(fd);
}

Client::~Client() { net::close_fd(fd_); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    net::close_fd(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Response Client::request_line(const std::string& line) {
  if (fd_ < 0) throw std::runtime_error("serve client: not connected");
  if (!net::send_all(fd_, line + "\n")) {
    throw std::runtime_error("serve client: send failed");
  }
  // Read one newline-terminated response.
  while (true) {
    const auto nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string raw = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!raw.empty() && raw.back() == '\r') raw.pop_back();
      std::string error;
      const auto response = parse_response(raw, &error);
      if (!response) {
        throw std::runtime_error("serve client: bad response: " + error);
      }
      return *response;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error("serve client: connection closed");
    }
    buffer_.append(chunk, std::size_t(n));
  }
}

Response Client::request(const Request& request) {
  return request_line(serialize_request(request));
}

void Client::handshake(const std::string& token,
                       const std::string& client_name) {
  Request hello;
  hello.verb = Verb::kHello;
  hello.arg = client_name;
  const Response greeting = request(hello);
  if (!greeting.ok) {
    throw std::runtime_error("serve client: HELLO refused: " +
                             greeting.message);
  }
  if (greeting.field("auth").value_or("none") == "required") {
    Request auth;
    auth.verb = Verb::kAuth;
    auth.arg = token;
    const Response authed = request(auth);
    if (!authed.ok) {
      throw std::runtime_error("serve client: AUTH refused: " +
                               authed.message);
    }
  }
}

Response Client::submit(std::int64_t procs, std::int64_t estimate,
                        std::optional<std::int64_t> at,
                        std::optional<std::int64_t> runtime,
                        std::optional<std::int64_t> id,
                        std::int64_t user) {
  Request r;
  r.verb = Verb::kSubmit;
  r.procs = procs;
  r.estimate = estimate;
  r.at = at;
  r.runtime = runtime;
  r.id = id;
  r.user = user;
  return request(r);
}

Response Client::kill(std::int64_t job_id) {
  Request r;
  r.verb = Verb::kKill;
  r.job_id = job_id;
  return request(r);
}

Response Client::query(std::int64_t job_id) {
  Request r;
  r.verb = Verb::kQuery;
  r.job_id = job_id;
  return request(r);
}

Response Client::whatif(std::int64_t procs, std::int64_t estimate,
                        std::int64_t offset, bool simulate) {
  Request r;
  r.verb = Verb::kWhatIf;
  r.procs = procs;
  r.estimate = estimate;
  r.offset = offset;
  r.simulate = simulate;
  return request(r);
}

Response Client::status() {
  Request r;
  r.verb = Verb::kStatus;
  return request(r);
}

Response Client::snapshot(const std::string& path) {
  Request r;
  r.verb = Verb::kSnapshot;
  r.arg = path;
  return request(r);
}

Response Client::resume(const std::string& path) {
  Request r;
  r.verb = Verb::kResume;
  r.arg = path;
  return request(r);
}

Response Client::drain() {
  Request r;
  r.verb = Verb::kDrain;
  return request(r);
}

Response Client::shutdown() {
  Request r;
  r.verb = Verb::kShutdown;
  return request(r);
}

}  // namespace pjsb::serve
