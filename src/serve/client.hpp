// Blocking client for the scheduling daemon: one socket, one
// request/response round trip per call. Used by the serve_client
// example, the tests, the CI smoke step and bench_serve — everything
// that talks to the daemon goes through this library, so protocol
// drift shows up as a compile error, not a wire mystery.
//
// Not thread-safe: one Client per thread (a connection carries one
// session, and sessions are serial by design).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace pjsb::serve {

class Client {
 public:
  /// Connect (Unix-domain or loopback TCP). Throws std::runtime_error
  /// when the endpoint is unreachable.
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(int port);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One round trip. Throws std::runtime_error on a broken connection
  /// or an unparseable response; protocol-level errors come back as
  /// Response{ok == false}.
  Response request(const Request& request);
  /// Raw request line (diagnostics / the `serve_client cmd` mode).
  Response request_line(const std::string& line);

  /// HELLO (and AUTH when the server demands it). Throws on refusal.
  void handshake(const std::string& token = "",
                 const std::string& client_name = "");

  // Typed conveniences; each is one round trip.
  Response submit(std::int64_t procs, std::int64_t estimate,
                  std::optional<std::int64_t> at = std::nullopt,
                  std::optional<std::int64_t> runtime = std::nullopt,
                  std::optional<std::int64_t> id = std::nullopt,
                  std::int64_t user = -1);
  Response kill(std::int64_t job_id);
  Response query(std::int64_t job_id);
  Response whatif(std::int64_t procs, std::int64_t estimate,
                  std::int64_t offset = 0, bool simulate = false);
  Response status();
  Response snapshot(const std::string& path);
  Response resume(const std::string& path);
  Response drain();
  Response shutdown();

 private:
  explicit Client(int fd);

  int fd_ = -1;
  std::string buffer_;  ///< unread bytes past the last response line
};

}  // namespace pjsb::serve
