#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pjsb::serve::net {

namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool fill_unix_address(const std::string& path, sockaddr_un* addr,
                       std::string* error) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    *error = "unix socket path empty or longer than " +
             std::to_string(sizeof(addr->sun_path) - 1) + " bytes";
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

sockaddr_in loopback_address(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_unix_address(path, &addr, error)) return -1;
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = errno_message("socket");
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    *error = errno_message(path.c_str());
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(int port, int* actual_port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = errno_message("socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_address(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    *error = errno_message("bind/listen");
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    *error = errno_message("getsockname");
    ::close(fd);
    return -1;
  }
  if (actual_port) *actual_port = int(ntohs(addr.sin_port));
  return fd;
}

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!fill_unix_address(path, &addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = errno_message("socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = errno_message(path.c_str());
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = errno_message("socket");
    return -1;
  }
  sockaddr_in addr = loopback_address(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = errno_message("connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(std::size_t(n));
  }
  return true;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void shutdown_read(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

std::optional<std::string> LineReader::read_line() {
  while (true) {
    const auto nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (eof_) return std::nullopt;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_ = true;
      return std::nullopt;
    }
    if (n == 0) {
      eof_ = true;
      continue;  // flush a final unterminated line? no: require '\n'
    }
    buffer_.append(chunk, std::size_t(n));
  }
}

}  // namespace pjsb::serve::net
