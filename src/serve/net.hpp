// Minimal blocking POSIX socket helpers shared by the daemon and the
// client library: Unix-domain and loopback-TCP listeners/connectors,
// full-buffer sends, and a buffered line reader. Everything returns
// -1 / false / nullopt with *error set instead of throwing — the
// callers decide whether a failed connection is fatal.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace pjsb::serve::net {

/// Bind + listen on a Unix-domain socket. An existing socket file at
/// `path` is unlinked first (the daemon owns its endpoint). Returns
/// the listening fd, or -1 with *error set.
int listen_unix(const std::string& path, std::string* error);

/// Bind + listen on loopback TCP. `port` 0 picks an ephemeral port;
/// *actual_port receives the bound port either way. Returns the
/// listening fd, or -1 with *error set.
int listen_tcp(int port, int* actual_port, std::string* error);

int connect_unix(const std::string& path, std::string* error);
int connect_tcp(int port, std::string* error);

/// Write the whole buffer (retrying short writes). False on error.
bool send_all(int fd, std::string_view data);

void close_fd(int fd);
/// shutdown(SHUT_RDWR): unblocks a reader in another thread.
void shutdown_fd(int fd);
/// shutdown(SHUT_RD): unblocks a reader but lets an in-flight reply
/// in another thread finish sending (used during server teardown so
/// the session that requested SHUTDOWN still receives its OK).
void shutdown_read(int fd);

/// Buffered newline-delimited reader over a blocking fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next line without its '\n' (a trailing '\r' is stripped too).
  /// Nullopt on EOF or error with no complete line buffered.
  std::optional<std::string> read_line();

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace pjsb::serve::net
