#include "serve/protocol.hpp"

#include <algorithm>
#include <sstream>

#include "util/string_util.hpp"

namespace pjsb::serve {

namespace {

/// key=value split; nullopt when `token` carries no '='.
std::optional<std::pair<std::string_view, std::string_view>> split_kv(
    std::string_view token) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) return std::nullopt;
  return std::make_pair(token.substr(0, eq), token.substr(eq + 1));
}

bool parse_positional_i64(const std::vector<std::string_view>& tokens,
                          std::size_t index, const char* what,
                          std::int64_t min_value, std::int64_t* out,
                          std::string* error) {
  if (index >= tokens.size()) {
    *error = std::string("missing ") + what;
    return false;
  }
  const auto value = util::parse_i64(tokens[index]);
  if (!value || *value < min_value) {
    *error = std::string("bad ") + what + " '" +
             std::string(tokens[index]) + "'";
    return false;
  }
  *out = *value;
  return true;
}

}  // namespace

const char* to_string(Verb verb) {
  switch (verb) {
    case Verb::kHello:
      return "HELLO";
    case Verb::kAuth:
      return "AUTH";
    case Verb::kSubmit:
      return "SUBMIT";
    case Verb::kKill:
      return "KILL";
    case Verb::kQuery:
      return "QUERY";
    case Verb::kWhatIf:
      return "WHATIF";
    case Verb::kStatus:
      return "STATUS";
    case Verb::kSnapshot:
      return "SNAPSHOT";
    case Verb::kResume:
      return "RESUME";
    case Verb::kDrain:
      return "DRAIN";
    case Verb::kShutdown:
      return "SHUTDOWN";
  }
  return "?";
}

std::optional<Request> parse_request(const std::string& line,
                                     std::string* error) {
  std::string scratch;
  if (!error) error = &scratch;
  error->clear();
  const auto tokens = util::split_ws(line);
  if (tokens.empty()) {
    *error = "empty request";
    return std::nullopt;
  }
  Request req;
  const std::string_view verb = tokens[0];
  if (verb == "HELLO") {
    req.verb = Verb::kHello;
    if (tokens.size() > 1) req.arg = std::string(tokens[1]);
    if (tokens.size() > 2) {
      *error = "HELLO takes at most one token (client name)";
      return std::nullopt;
    }
    return req;
  }
  if (verb == "AUTH") {
    req.verb = Verb::kAuth;
    if (tokens.size() != 2) {
      *error = "usage: AUTH <token>";
      return std::nullopt;
    }
    req.arg = std::string(tokens[1]);
    return req;
  }
  if (verb == "SUBMIT") {
    req.verb = Verb::kSubmit;
    if (!parse_positional_i64(tokens, 1, "procs", 1, &req.procs, error) ||
        !parse_positional_i64(tokens, 2, "estimate", 1, &req.estimate,
                              error)) {
      return std::nullopt;
    }
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      const auto kv = split_kv(tokens[i]);
      const auto value = kv ? util::parse_i64(kv->second) : std::nullopt;
      if (!kv || !value) {
        *error = "bad SUBMIT option '" + std::string(tokens[i]) +
                 "' (want at=/runtime=/id=/user=)";
        return std::nullopt;
      }
      if (kv->first == "at" && *value >= 0) {
        req.at = *value;
      } else if (kv->first == "runtime" && *value >= 1) {
        req.runtime = *value;
      } else if (kv->first == "id" && *value >= 1) {
        req.id = *value;
      } else if (kv->first == "user") {
        req.user = *value;
      } else {
        *error = "bad SUBMIT option '" + std::string(tokens[i]) + "'";
        return std::nullopt;
      }
    }
    return req;
  }
  if (verb == "KILL" || verb == "QUERY") {
    req.verb = verb == "KILL" ? Verb::kKill : Verb::kQuery;
    if (tokens.size() != 2 ||
        !parse_positional_i64(tokens, 1, "job id", 1, &req.job_id, error)) {
      if (error->empty()) *error = "usage: " + std::string(verb) + " <id>";
      return std::nullopt;
    }
    return req;
  }
  if (verb == "WHATIF") {
    req.verb = Verb::kWhatIf;
    if (!parse_positional_i64(tokens, 1, "procs", 1, &req.procs, error) ||
        !parse_positional_i64(tokens, 2, "estimate", 1, &req.estimate,
                              error)) {
      return std::nullopt;
    }
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      if (tokens[i] == "--simulate") {
        req.simulate = true;
        continue;
      }
      const auto kv = split_kv(tokens[i]);
      const auto value = kv ? util::parse_i64(kv->second) : std::nullopt;
      if (!kv || kv->first != "offset" || !value || *value < 0) {
        *error = "bad WHATIF option '" + std::string(tokens[i]) +
                 "' (want offset=<s> or --simulate)";
        return std::nullopt;
      }
      req.offset = *value;
    }
    return req;
  }
  if (verb == "STATUS" || verb == "DRAIN" || verb == "SHUTDOWN") {
    if (tokens.size() != 1) {
      *error = std::string(verb) + " takes no arguments";
      return std::nullopt;
    }
    req.verb = verb == "STATUS"  ? Verb::kStatus
               : verb == "DRAIN" ? Verb::kDrain
                                 : Verb::kShutdown;
    return req;
  }
  if (verb == "SNAPSHOT" || verb == "RESUME") {
    req.verb = verb == "SNAPSHOT" ? Verb::kSnapshot : Verb::kResume;
    if (tokens.size() != 2) {
      *error = "usage: " + std::string(verb) + " <path>";
      return std::nullopt;
    }
    req.arg = std::string(tokens[1]);
    return req;
  }
  *error = "unknown verb '" + std::string(verb) + "'";
  return std::nullopt;
}

std::string serialize_request(const Request& request) {
  std::ostringstream out;
  out << to_string(request.verb);
  switch (request.verb) {
    case Verb::kHello:
      if (!request.arg.empty()) out << ' ' << request.arg;
      break;
    case Verb::kAuth:
    case Verb::kSnapshot:
    case Verb::kResume:
      out << ' ' << request.arg;
      break;
    case Verb::kSubmit:
      out << ' ' << request.procs << ' ' << request.estimate;
      if (request.at) out << " at=" << *request.at;
      if (request.runtime) out << " runtime=" << *request.runtime;
      if (request.id) out << " id=" << *request.id;
      if (request.user >= 0) out << " user=" << request.user;
      break;
    case Verb::kKill:
    case Verb::kQuery:
      out << ' ' << request.job_id;
      break;
    case Verb::kWhatIf:
      out << ' ' << request.procs << ' ' << request.estimate;
      if (request.offset > 0) out << " offset=" << request.offset;
      if (request.simulate) out << " --simulate";
      break;
    case Verb::kStatus:
    case Verb::kDrain:
    case Verb::kShutdown:
      break;
  }
  return out.str();
}

std::optional<std::string> Response::field(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<std::int64_t> Response::field_i64(
    const std::string& key) const {
  const auto value = field(key);
  if (!value) return std::nullopt;
  return util::parse_i64(*value);
}

Response& Response::with(std::string key, std::string value) {
  fields.emplace_back(std::move(key), std::move(value));
  return *this;
}

Response& Response::with(std::string key, std::int64_t value) {
  return with(std::move(key), std::to_string(value));
}

Response ok_response() { return Response{}; }

Response error_response(std::string code, std::string message) {
  Response r;
  r.ok = false;
  r.code = std::move(code);
  r.message = std::move(message);
  return r;
}

std::string serialize_response(const Response& response) {
  std::ostringstream out;
  if (response.ok) {
    out << "OK";
    for (const auto& [key, value] : response.fields) {
      out << ' ' << key << '=' << value;
    }
  } else {
    out << "ERR " << (response.code.empty() ? kErrInternal : response.code);
    if (!response.message.empty()) out << ' ' << response.message;
  }
  return out.str();
}

std::optional<Response> parse_response(const std::string& line,
                                       std::string* error) {
  std::string scratch;
  if (!error) error = &scratch;
  const auto tokens = util::split_ws(line);
  if (tokens.empty()) {
    *error = "empty response";
    return std::nullopt;
  }
  Response r;
  if (tokens[0] == "OK") {
    r.ok = true;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto kv = split_kv(tokens[i]);
      if (!kv) {
        *error = "bad OK field '" + std::string(tokens[i]) + "'";
        return std::nullopt;
      }
      r.fields.emplace_back(std::string(kv->first),
                            std::string(kv->second));
    }
    return r;
  }
  if (tokens[0] == "ERR") {
    if (tokens.size() < 2) {
      *error = "ERR without a code";
      return std::nullopt;
    }
    r.ok = false;
    r.code = std::string(tokens[1]);
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      if (!r.message.empty()) r.message += ' ';
      r.message += std::string(tokens[i]);
    }
    return r;
  }
  *error = "response must start with OK or ERR";
  return std::nullopt;
}

}  // namespace pjsb::serve
