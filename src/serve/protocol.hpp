// Wire protocol of the scheduling daemon (`swf_tool serve`).
//
// Newline-delimited text, one request line per round trip, one
// response line back. Requests are a verb plus positional integers
// and optional key=value / --flag tokens:
//
//   HELLO [client-name]
//   AUTH <token>
//   SUBMIT <procs> <estimate-s> [at=<t>] [runtime=<s>] [id=<n>]
//          [user=<n>]
//   KILL <id>
//   QUERY <id>
//   WHATIF <procs> <estimate-s> [offset=<s>] [--simulate]
//   STATUS
//   SNAPSHOT <path>
//   RESUME <path>
//   DRAIN
//   SHUTDOWN
//
// Responses are either `OK [key=value ...]` or
// `ERR <code> <message...>`; values never contain spaces (paths are
// the only free-form field and ride in requests, not responses). The
// codec is shared by the server (parse_request / serialize_response)
// and the client library (serialize_request / parse_response), so a
// grammar change cannot drift between the two sides.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pjsb::serve {

inline constexpr int kProtocolVersion = 1;

enum class Verb {
  kHello,
  kAuth,
  kSubmit,
  kKill,
  kQuery,
  kWhatIf,
  kStatus,
  kSnapshot,
  kResume,
  kDrain,
  kShutdown,
};

const char* to_string(Verb verb);

/// One parsed request line. Fields are meaningful per verb (see the
/// grammar above); the rest keep their defaults.
struct Request {
  Verb verb = Verb::kStatus;

  // SUBMIT / WHATIF positionals.
  std::int64_t procs = 1;
  std::int64_t estimate = 3600;
  // SUBMIT options.
  std::optional<std::int64_t> at;       ///< at= (default: daemon now)
  std::optional<std::int64_t> runtime;  ///< runtime= (default: estimate)
  std::optional<std::int64_t> id;       ///< id= (default: engine picks)
  std::int64_t user = -1;               ///< user=
  // WHATIF options.
  std::int64_t offset = 0;  ///< offset=
  bool simulate = false;    ///< --simulate
  // KILL / QUERY positional id.
  std::int64_t job_id = 0;
  // AUTH token, SNAPSHOT/RESUME path, HELLO client name.
  std::string arg;
};

/// Parse one request line. Nullopt on a malformed line, with *error
/// set to a one-line diagnostic (safe to echo into an ERR response).
std::optional<Request> parse_request(const std::string& line,
                                     std::string* error);
std::string serialize_request(const Request& request);

/// One response line.
struct Response {
  bool ok = true;
  std::string code;     ///< ERR only: stable machine-readable code
  std::string message;  ///< ERR only: human-readable detail
  /// OK only: key=value pairs in emission order.
  std::vector<std::pair<std::string, std::string>> fields;

  /// First value for `key`, if present.
  std::optional<std::string> field(const std::string& key) const;
  /// field() parsed as integer (nullopt: absent or non-numeric).
  std::optional<std::int64_t> field_i64(const std::string& key) const;

  Response& with(std::string key, std::string value);
  Response& with(std::string key, std::int64_t value);
};

Response ok_response();
Response error_response(std::string code, std::string message);

// Stable error codes.
inline constexpr const char* kErrBadRequest = "bad-request";
inline constexpr const char* kErrAuth = "auth";
inline constexpr const char* kErrState = "state";
inline constexpr const char* kErrDraining = "draining";
inline constexpr const char* kErrNotFound = "not-found";
inline constexpr const char* kErrIo = "io";
inline constexpr const char* kErrInternal = "internal";

std::string serialize_response(const Response& response);
/// Parse one response line (client side). Nullopt on garbage.
std::optional<Response> parse_response(const std::string& line,
                                       std::string* error);

}  // namespace pjsb::serve
