#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <stdexcept>
#include <utility>

#include "serve/net.hpp"
#include "sim/snapshot/snapshot.hpp"

namespace pjsb::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Set by the SIGTERM/SIGINT handler (ServerConfig::handle_signals);
/// polled by the engine loop, which then drains and shuts down.
volatile std::sig_atomic_t g_signal_requested = 0;

extern "C" void on_stop_signal(int) { g_signal_requested = 1; }

void install_signal_handlers() {
  g_signal_requested = 0;
  struct sigaction action{};
  action.sa_handler = on_stop_signal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

}  // namespace

Server::Server(ServerConfig config, std::unique_ptr<sim::Engine> engine)
    : config_(std::move(config)), engine_(std::move(engine)) {
  if (!engine_) throw std::invalid_argument("Server: null engine");
  if (engine_->needs_job_source()) {
    throw std::invalid_argument(
        "Server: engine needs a resumed job source; the daemon serves "
        "self-contained states only");
  }
  engine_->add_observer(recorder_);
}

Server::~Server() {
  if (engine_thread_.joinable() || accept_thread_.joinable()) {
    request_shutdown();
    wait();
  }
}

void Server::start() {
  std::string error;
  if (!config_.socket_path.empty()) {
    listen_fd_ = net::listen_unix(config_.socket_path, &error);
  } else {
    listen_fd_ = net::listen_tcp(config_.tcp_port, &port_, &error);
  }
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: cannot listen: " + error);
  }
  if (config_.handle_signals) install_signal_handlers();
  wall_origin_ = Clock::now();
  sim_origin_ = engine_->now();
  horizon_ = engine_->now();
  // Publish the first query tier before any thread can accept a
  // connection: a query must never race the engine thread to epoch 1
  // (the first publish restores a full engine clone, which is slow
  // enough for early connections to win otherwise).
  publish();
  engine_thread_ = std::thread([this] { engine_loop(); });
  const int fd = listen_fd_;
  accept_thread_ = std::thread([this, fd] { accept_loop(fd); });
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] { return engine_done_; });
  }
  // Tear down the socket layer: stop accepting, unblock and join every
  // connection, then the accept + engine threads.
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    net::shutdown_fd(listen_fd_);
    net::close_fd(listen_fd_);
    listen_fd_ = -1;
  }
  // Join the acceptor first: once it is gone no new connection thread
  // can appear, so the harvest below is complete.
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    // Read-half only: the session that asked for SHUTDOWN may still be
    // sending its OK reply from its own thread; the joins below flush it.
    for (const int fd : conn_fds_) net::shutdown_read(fd);
    conns.swap(conn_threads_);
  }
  for (auto& t : conns) {
    if (t.joinable()) t.join();
  }
  if (engine_thread_.joinable()) engine_thread_.join();
  if (!config_.socket_path.empty()) ::unlink(config_.socket_path.c_str());
}

void Server::run() {
  start();
  wait();
}

void Server::request_shutdown() {
  Command command;
  command.kind = Command::Kind::kShutdown;
  submit_command(std::move(command));
}

std::uint64_t Server::epoch() const {
  const std::lock_guard<std::mutex> lock(tier_mutex_);
  return epoch_;
}

std::shared_ptr<const Server::Tier> Server::tier() const {
  const std::lock_guard<std::mutex> lock(tier_mutex_);
  return tier_;
}

// -- session-facing verbs ---------------------------------------------

Response Server::submit_command(Command command) {
  auto future = command.reply.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_space_cv_.wait(lock, [this] {
      return queue_.size() < config_.command_queue_capacity ||
             stopping_.load();
    });
    if (stopping_.load()) {
      return error_response(kErrState, "server stopping");
    }
    queue_.push_back(std::move(command));
  }
  queue_cv_.notify_one();
  return future.get();
}

Response Server::submit(const Request& request) {
  Command command;
  command.kind = Command::Kind::kSubmit;
  command.request = request;
  return submit_command(std::move(command));
}

Response Server::kill(std::int64_t job_id) {
  Command command;
  command.kind = Command::Kind::kKill;
  command.job_id = job_id;
  return submit_command(std::move(command));
}

Response Server::snapshot(const std::string& path) {
  Command command;
  command.kind = Command::Kind::kSnapshot;
  command.path = path;
  return submit_command(std::move(command));
}

Response Server::resume(const std::string& path) {
  Command command;
  command.kind = Command::Kind::kResume;
  command.path = path;
  return submit_command(std::move(command));
}

Response Server::drain() {
  Command command;
  command.kind = Command::Kind::kDrain;
  return submit_command(std::move(command));
}

Response Server::shutdown() {
  Command command;
  command.kind = Command::Kind::kShutdown;
  return submit_command(std::move(command));
}

Response Server::query(std::int64_t job_id) {
  const auto t = tier();
  if (!t) return error_response(kErrState, "not serving yet");
  const auto status = t->service->query_job(job_id);
  if (!status) return error_response(kErrNotFound, "unknown job id");
  Response r = ok_response()
                   .with("id", status->id)
                   .with("state", sim::to_string(status->state))
                   .with("submit", status->submit)
                   .with("procs", status->procs);
  if (status->start) r.with("start", *status->start);
  if (status->end) r.with("end", *status->end);
  if (status->predicted_start) {
    r.with("predicted_start", *status->predicted_start);
  }
  return r.with("epoch", std::int64_t(t->epoch));
}

Response Server::whatif(const Request& request) {
  const auto t = tier();
  if (!t) return error_response(kErrState, "not serving yet");
  sim::WhatIfQuery q;
  q.procs = request.procs;
  q.estimate = request.estimate;
  q.submit_offset = request.offset;
  q.simulate = request.simulate;
  const auto answer = t->service->query(q);
  Response r = ok_response();
  if (answer.start) r.with("start", *answer.start);
  if (answer.wait) r.with("wait", *answer.wait);
  return r.with("mode", answer.simulated ? "simulate" : "predict")
      .with("at", t->service->snapshot_time() + q.submit_offset)
      .with("epoch", std::int64_t(t->epoch));
}

Response Server::status() {
  const auto t = tier();
  if (!t) return error_response(kErrState, "not serving yet");
  return ok_response()
      .with("time", t->time)
      .with("epoch", std::int64_t(t->epoch))
      .with("queued", std::int64_t(t->queued))
      .with("running", std::int64_t(t->running))
      .with("completed", t->completed)
      .with("killed", t->killed)
      .with("dropped", t->dropped)
      .with("decisions", std::int64_t(t->decisions))
      .with("sessions", active_sessions_.load())
      .with("draining", draining_.load() ? 1 : 0)
      .with("mode", config_.time_scale > 0 ? "wall" : "logical");
}

// -- engine thread ----------------------------------------------------

void Server::engine_loop() {
  // Epoch 1 was published by start() before any session could connect.
  while (true) {
    std::vector<Command> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      const auto ready = [this] {
        return !queue_.empty() || stopping_.load();
      };
      if (config_.time_scale > 0 || config_.handle_signals) {
        // Periodic tick: wall-mapped time must advance (and a stop
        // signal must be noticed) even with no commands arriving.
        queue_cv_.wait_for(lock, std::chrono::milliseconds(100), ready);
      } else {
        queue_cv_.wait(lock, ready);
      }
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    queue_space_cv_.notify_all();

    std::vector<std::pair<std::promise<Response>, Response>> replies;
    replies.reserve(batch.size());
    for (auto& command : batch) {
      replies.emplace_back(std::move(command.reply), apply(command));
    }
    const bool ran = advance();
    if (config_.handle_signals && g_signal_requested &&
        !stopping_.load()) {
      if (config_.drain_on_signal && !drained_.load()) apply_drain();
      apply_shutdown();
    }
    const auto t = tier();
    if (!batch.empty() || ran || !t || t->time != engine_->now()) {
      publish();
    }
    // Replies resolve only after the new epoch is visible, so a
    // QUERY issued right after a SUBMIT's OK always finds the job.
    for (auto& [promise, response] : replies) {
      promise.set_value(std::move(response));
    }
    if (stopping_.load()) break;
  }
  // Refuse anything that raced into the queue after the shutdown
  // command was applied.
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    for (auto& command : queue_) {
      command.reply.set_value(
          error_response(kErrState, "server stopping"));
    }
    queue_.clear();
  }
  queue_space_cv_.notify_all();
  {
    const std::lock_guard<std::mutex> lock(done_mutex_);
    engine_done_ = true;
  }
  done_cv_.notify_all();
}

Response Server::apply(Command& command) {
  try {
    switch (command.kind) {
      case Command::Kind::kSubmit:
        return apply_submit(command.request);
      case Command::Kind::kKill:
        return apply_kill(command.job_id);
      case Command::Kind::kSnapshot:
        return apply_snapshot(command.path);
      case Command::Kind::kResume:
        return apply_resume(command.path);
      case Command::Kind::kDrain:
        return apply_drain();
      case Command::Kind::kShutdown:
        return apply_shutdown();
    }
  } catch (const std::exception& e) {
    return error_response(kErrInternal, e.what());
  }
  return error_response(kErrInternal, "unhandled command");
}

Response Server::apply_submit(const Request& request) {
  if (draining_.load()) return error_response(kErrDraining, "drained");
  const std::int64_t now = engine_->now();
  std::int64_t at = request.at.value_or(now);
  // A stale timestamp is submitted immediately, mirroring the engine's
  // straggler rule for trace sources.
  if (at < now) at = now;
  if (request.id && engine_->find_job(*request.id)) {
    return error_response(kErrBadRequest,
                          "job id " + std::to_string(*request.id) +
                              " already exists");
  }
  sim::SimJob job;
  job.id = request.id.value_or(0);  // 0: the engine picks
  job.submit = at;
  job.estimate = request.estimate;
  job.runtime = request.runtime.value_or(request.estimate);
  job.walltime = request.estimate;
  job.procs = request.procs;
  job.user_id = request.user;
  std::int64_t id = 0;
  try {
    id = engine_->submit_job(job);
  } catch (const std::exception& e) {
    return error_response(kErrBadRequest, e.what());
  }
  // Logical time: never process the newest submit timestamp until a
  // later submission proves every event at that time has arrived —
  // the engine runs one scheduler pass per timestamp, so this is what
  // keeps live decision streams byte-identical to offline replays.
  horizon_ = std::max(horizon_, at - 1);
  return ok_response().with("id", id).with("at", at);
}

Response Server::apply_kill(std::int64_t job_id) {
  if (draining_.load()) return error_response(kErrDraining, "drained");
  std::string why;
  if (!engine_->cancel_job(job_id, &why)) {
    const bool unknown = why == "unknown job id";
    return error_response(unknown ? kErrNotFound : kErrBadRequest, why);
  }
  return ok_response().with("id", job_id).with("state", "cancelled");
}

Response Server::apply_snapshot(const std::string& path) {
  const std::string bytes = engine_->snapshot();
  try {
    sim::snapshot::write_file(path, bytes);
  } catch (const std::exception& e) {
    return error_response(kErrIo, e.what());
  }
  return ok_response().with("bytes", std::int64_t(bytes.size()));
}

Response Server::apply_resume(const std::string& path) {
  if (draining_.load()) return error_response(kErrDraining, "drained");
  std::unique_ptr<sim::Engine> restored;
  try {
    restored = sim::Engine::restore(sim::snapshot::read_file(path));
  } catch (const std::exception& e) {
    return error_response(kErrIo, e.what());
  }
  if (restored->needs_job_source()) {
    return error_response(
        kErrBadRequest,
        "snapshot needs a resumed job source; the daemon serves "
        "self-contained states only");
  }
  engine_ = std::move(restored);
  engine_->add_observer(recorder_);
  horizon_ = engine_->now();
  sim_origin_ = engine_->now();
  wall_origin_ = Clock::now();
  return ok_response().with("time", engine_->now());
}

Response Server::apply_drain() {
  if (!drained_.load()) {
    draining_.store(true);
    engine_->run();
    engine_->notify_run_end();
    drained_.store(true);
    horizon_ = engine_->now();
    write_decisions();
  }
  const auto stats = engine_->stats();
  return ok_response()
      .with("drained", 1)
      .with("time", engine_->now())
      .with("completed", stats.jobs_completed)
      .with("decisions", std::int64_t(recorder_.decisions().size()));
}

Response Server::apply_shutdown() {
  if (!config_.snapshot_on_shutdown.empty()) {
    try {
      sim::snapshot::write_file(config_.snapshot_on_shutdown,
                                engine_->snapshot());
    } catch (const std::exception&) {
      // Last-gasp best effort: shutting down anyway.
    }
  }
  write_decisions();
  stopping_.store(true);
  return ok_response().with("bye", 1);
}

bool Server::advance() {
  if (drained_.load()) return false;
  std::int64_t target = horizon_;
  if (config_.time_scale > 0) {
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - wall_origin_)
            .count();
    target = std::max(
        target,
        sim_origin_ + std::int64_t(elapsed * config_.time_scale));
  }
  const auto before = engine_->stats().events_processed;
  if (target > engine_->now() ||
      (engine_->next_event_time() &&
       *engine_->next_event_time() <= target)) {
    engine_->run_until(target);
  }
  return engine_->stats().events_processed != before;
}

void Server::publish() {
  auto next = std::make_shared<Tier>();
  next->service =
      std::make_shared<sim::WhatIfService>(engine_->snapshot());
  const auto stats = engine_->stats();
  next->time = engine_->now();
  next->queued = engine_->queued_jobs();
  next->running = engine_->running_jobs();
  next->completed = stats.jobs_completed;
  next->killed = stats.jobs_killed;
  next->dropped = stats.jobs_dropped;
  next->decisions = recorder_.decisions().size();
  const std::lock_guard<std::mutex> lock(tier_mutex_);
  next->epoch = ++epoch_;
  tier_ = std::move(next);
}

void Server::write_decisions() const {
  if (config_.decisions_path.empty()) return;
  try {
    sim::snapshot::write_file(
        config_.decisions_path,
        validate::decisions_to_csv(recorder_.decisions()));
  } catch (const std::exception&) {
    // Best effort; STATUS still reports the count.
  }
}

// -- socket layer -----------------------------------------------------

void Server::accept_loop(int listen_fd) {
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    if (stopping_.load()) {
      net::close_fd(fd);
      break;
    }
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.insert(fd);
    const std::int64_t session_id = next_session_id_++;
    conn_threads_.emplace_back(
        [this, fd, session_id] { serve_connection(fd, session_id); });
  }
}

void Server::serve_connection(int fd, std::int64_t session_id) {
  active_sessions_.fetch_add(1);
  Session session(*this, session_id);
  net::LineReader reader(fd);
  while (!stopping_.load()) {
    const auto line = reader.read_line();
    if (!line) break;
    const std::string response = session.handle_line(*line) + "\n";
    if (!net::send_all(fd, response)) break;
    if (session.closed()) break;
  }
  active_sessions_.fetch_sub(1);
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.erase(fd);
  }
  net::close_fd(fd);
}

}  // namespace pjsb::serve
