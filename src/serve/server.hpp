// The scheduling daemon: one authoritative engine thread, many
// sessions, a read-mostly what-if query tier.
//
// Architecture (ISSUE 9 / ROADMAP open item 3):
//
//   accept thread ──> connection threads ──> Session FSM
//                           │ mutations                │ queries
//                           v                          v
//        bounded MPSC command queue          epoch-stamped query tier
//                           │                (shared_ptr<WhatIfService>
//                           v                 + status snapshot)
//                  engine thread: apply commands, advance sim time,
//                  republish the tier after every mutation epoch
//
// Mutating verbs (SUBMIT, KILL, SNAPSHOT, RESUME, DRAIN, SHUTDOWN)
// become commands on a bounded MPSC queue consumed by the single
// engine thread — live submissions turn into ordinary engine events,
// so a session that submits a trace's jobs in arrival order yields a
// decision stream byte-identical to an offline sim::replay of that
// trace. Read verbs (QUERY, WHATIF, STATUS) never touch the engine:
// they run against the latest published epoch — an immutable snapshot
// handed to a thread-safe WhatIfService — so a what-if barrage cannot
// perturb the live schedule, and scales across connections.
//
// Time: with time_scale == 0 (logical time, the default) the clock
// only advances under submitted work — events up to (latest submit
// time - 1) are processed, so every event at the newest timestamp is
// enqueued before that timestamp runs (the batching rule behind the
// byte-identical guarantee); DRAIN lifts the horizon and runs the
// engine dry. With time_scale > 0, one wall-clock second advances the
// simulation time_scale seconds, whether or not submissions arrive.
//
// Lifecycle: SIGTERM/SIGINT (with ServerConfig::handle_signals) or
// SHUTDOWN drain-then-stop; decisions_path and snapshot_on_shutdown
// are written on the way out, and a snapshot written there can seed a
// new daemon (swf_tool serve --resume) or the RESUME verb.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "serve/session.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot/whatif.hpp"
#include "validate/decisions.hpp"

namespace pjsb::serve {

struct ServerConfig {
  /// Unix-domain socket path. Empty: listen on loopback TCP instead.
  std::string socket_path;
  /// Loopback TCP port (0 = ephemeral; see Server::port()). Used only
  /// when socket_path is empty.
  int tcp_port = 0;
  /// Non-empty: sessions must AUTH with this token after HELLO.
  std::string auth_token;
  /// Simulated seconds per wall-clock second; 0 = logical time (the
  /// clock advances only under submitted work).
  double time_scale = 0.0;
  /// Write the decision stream CSV here on DRAIN and on shutdown.
  std::string decisions_path;
  /// Write a resumable engine snapshot here on shutdown.
  std::string snapshot_on_shutdown;
  /// Drain (run the backlog dry) before an externally signalled stop.
  bool drain_on_signal = true;
  /// Install SIGTERM/SIGINT handlers that drain + shut down (the
  /// swf_tool serve path; tests drive SHUTDOWN explicitly instead).
  bool handle_signals = false;
  /// Mutation commands buffered before submitters block (backpressure).
  std::size_t command_queue_capacity = 1024;
};

class Server final : public ServerCore {
 public:
  /// Takes the engine to serve (built from a SimulationSpec, or
  /// restored from a snapshot). The engine must not need a job source.
  Server(ServerConfig config, std::unique_ptr<sim::Engine> engine);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the endpoint and start the engine + accept threads. Throws
  /// std::runtime_error when the endpoint cannot be bound.
  void start();
  /// Block until SHUTDOWN (or a handled signal) stops the daemon, then
  /// tear down sockets and join every thread.
  void wait();
  /// start() + wait().
  void run();
  /// Async stop (as if SHUTDOWN arrived). Safe from any thread.
  void request_shutdown();

  /// Bound TCP port (after start(); 0 for Unix-socket endpoints).
  int port() const { return port_; }
  std::uint64_t epoch() const;

  // -- ServerCore (called from session threads) --
  Response submit(const Request& request) override;
  Response kill(std::int64_t job_id) override;
  Response query(std::int64_t job_id) override;
  Response whatif(const Request& request) override;
  Response status() override;
  Response snapshot(const std::string& path) override;
  Response resume(const std::string& path) override;
  Response drain() override;
  Response shutdown() override;
  bool draining() const override { return draining_.load(); }
  const std::string& auth_token() const override {
    return config_.auth_token;
  }

 private:
  struct Command {
    enum class Kind {
      kSubmit,
      kKill,
      kSnapshot,
      kResume,
      kDrain,
      kShutdown,
    };
    Kind kind = Kind::kSubmit;
    Request request;    ///< kSubmit
    std::int64_t job_id = 0;
    std::string path;   ///< kSnapshot / kResume
    std::promise<Response> reply;
  };

  /// One published epoch: an immutable service over the engine state
  /// plus the status fields sessions report without engine access.
  struct Tier {
    std::uint64_t epoch = 0;
    std::shared_ptr<sim::WhatIfService> service;
    std::int64_t time = 0;
    std::size_t queued = 0;
    std::size_t running = 0;
    std::int64_t completed = 0;
    std::int64_t killed = 0;
    std::int64_t dropped = 0;
    std::size_t decisions = 0;
  };

  /// Enqueue a mutation and wait for the engine thread's reply.
  Response submit_command(Command command);

  void engine_loop();
  Response apply(Command& command);
  Response apply_submit(const Request& request);
  Response apply_kill(std::int64_t job_id);
  Response apply_snapshot(const std::string& path);
  Response apply_resume(const std::string& path);
  Response apply_drain();
  Response apply_shutdown();
  /// Process due events (logical horizon or wall-mapped time). True
  /// when any event ran.
  bool advance();
  /// Re-snapshot the engine into a fresh query tier.
  void publish();
  void write_decisions() const;
  std::shared_ptr<const Tier> tier() const;

  void accept_loop(int listen_fd);
  void serve_connection(int fd, std::int64_t session_id);

  ServerConfig config_;
  std::unique_ptr<sim::Engine> engine_;  ///< engine thread only
  validate::DecisionRecorder recorder_;  ///< attached to engine_
  /// Logical-time horizon: events up to this time may run (latest
  /// submit - 1, or +inf once drained). Engine thread only.
  std::int64_t horizon_ = 0;
  std::chrono::steady_clock::time_point wall_origin_;
  std::int64_t sim_origin_ = 0;

  // Command queue (bounded MPSC).
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;       ///< consumer wake
  std::condition_variable queue_space_cv_; ///< producer wake
  std::deque<Command> queue_;

  // Published query tier.
  mutable std::mutex tier_mutex_;
  std::shared_ptr<const Tier> tier_;
  std::uint64_t epoch_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> active_sessions_{0};
  std::int64_t next_session_id_ = 1;

  // Lifecycle.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool engine_done_ = false;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread engine_thread_;
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::unordered_set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace pjsb::serve
