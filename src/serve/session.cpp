#include "serve/session.hpp"

namespace pjsb::serve {

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kHandshake:
      return "handshake";
    case SessionState::kAuth:
      return "auth";
    case SessionState::kServing:
      return "serving";
    case SessionState::kDraining:
      return "draining";
    case SessionState::kClosed:
      return "closed";
  }
  return "unknown";
}

Session::Session(ServerCore& core, std::int64_t session_id)
    : core_(core), session_id_(session_id) {}

std::string Session::handle_line(const std::string& line) {
  std::string error;
  const auto request = parse_request(line, &error);
  const Response response =
      request ? dispatch(*request)
              : error_response(kErrBadRequest, error);
  return serialize_response(response);
}

Response Session::dispatch(const Request& request) {
  // A server-wide drain initiated by another session moves this one
  // along too, lazily, so its own FSM reflects what the core will and
  // will not accept.
  if (state_ == SessionState::kServing && core_.draining()) {
    state_ = SessionState::kDraining;
  }

  switch (state_) {
    case SessionState::kHandshake: {
      if (request.verb != Verb::kHello) {
        return error_response(kErrState, "HELLO first");
      }
      const bool need_auth = !core_.auth_token().empty();
      state_ = need_auth ? SessionState::kAuth : SessionState::kServing;
      if (state_ == SessionState::kServing && core_.draining()) {
        state_ = SessionState::kDraining;
      }
      return ok_response()
          .with("proto", std::int64_t(kProtocolVersion))
          .with("server", "pjsb")
          .with("session", session_id_)
          .with("auth", need_auth ? "required" : "none");
    }
    case SessionState::kAuth: {
      if (request.verb != Verb::kAuth) {
        return error_response(kErrState, "AUTH <token> first");
      }
      if (request.arg != core_.auth_token()) {
        return error_response(kErrAuth, "bad token");
      }
      state_ = core_.draining() ? SessionState::kDraining
                                : SessionState::kServing;
      return ok_response().with("auth", "ok");
    }
    case SessionState::kClosed:
      return error_response(kErrState, "session closed");
    case SessionState::kServing:
    case SessionState::kDraining:
      break;
  }

  const bool draining = state_ == SessionState::kDraining;
  switch (request.verb) {
    case Verb::kHello:
      return error_response(kErrState, "already past handshake");
    case Verb::kAuth:
      return error_response(kErrState, "already authenticated");
    case Verb::kSubmit:
      if (draining) return error_response(kErrDraining, "drained");
      return core_.submit(request);
    case Verb::kKill:
      if (draining) return error_response(kErrDraining, "drained");
      return core_.kill(request.job_id);
    case Verb::kResume:
      if (draining) return error_response(kErrDraining, "drained");
      return core_.resume(request.arg);
    case Verb::kQuery:
      return core_.query(request.job_id);
    case Verb::kWhatIf:
      return core_.whatif(request);
    case Verb::kStatus:
      return core_.status();
    case Verb::kSnapshot:
      return core_.snapshot(request.arg);
    case Verb::kDrain: {
      const Response response = core_.drain();
      if (response.ok) state_ = SessionState::kDraining;
      return response;
    }
    case Verb::kShutdown: {
      const Response response = core_.shutdown();
      if (response.ok) state_ = SessionState::kClosed;
      return response;
    }
  }
  return error_response(kErrInternal, "unhandled verb");
}

}  // namespace pjsb::serve
