// Per-connection session: a small FSM between the socket and the
// server core.
//
//   handshake --HELLO--> (auth --AUTH--> | ) serving --DRAIN-->
//   draining --SHUTDOWN--> closed
//
// The session owns protocol gating only — which verbs are legal in
// which state — and delegates every accepted verb to an abstract
// ServerCore, so the FSM is unit-testable against a mock core with no
// sockets or threads involved (the pppcpd per-session-FSM idiom). One
// request line in, one response line out; the transport layer
// (server.cpp) does the reading and writing.
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"

namespace pjsb::serve {

/// What a session needs from the daemon. Implemented by Server;
/// mocked in tests. All methods must be safe to call from any session
/// (connection) thread concurrently.
class ServerCore {
 public:
  virtual ~ServerCore() = default;

  virtual Response submit(const Request& request) = 0;
  virtual Response kill(std::int64_t job_id) = 0;
  virtual Response query(std::int64_t job_id) = 0;
  virtual Response whatif(const Request& request) = 0;
  virtual Response status() = 0;
  virtual Response snapshot(const std::string& path) = 0;
  virtual Response resume(const std::string& path) = 0;
  virtual Response drain() = 0;
  virtual Response shutdown() = 0;

  /// True once a DRAIN was accepted (no further mutations).
  virtual bool draining() const = 0;
  /// Empty: no authentication required.
  virtual const std::string& auth_token() const = 0;
};

enum class SessionState {
  kHandshake,  ///< waiting for HELLO
  kAuth,       ///< HELLO done, waiting for AUTH
  kServing,
  kDraining,   ///< queries only; mutations refused
  kClosed,     ///< after SHUTDOWN — the connection should be dropped
};

const char* to_string(SessionState state);

class Session {
 public:
  Session(ServerCore& core, std::int64_t session_id);

  /// Process one request line, produce one response line (without the
  /// trailing newline). Never throws: malformed input becomes an ERR
  /// response.
  std::string handle_line(const std::string& line);

  SessionState state() const { return state_; }
  bool closed() const { return state_ == SessionState::kClosed; }
  std::int64_t id() const { return session_id_; }

 private:
  Response dispatch(const Request& request);

  ServerCore& core_;
  const std::int64_t session_id_;
  SessionState state_ = SessionState::kHandshake;
};

}  // namespace pjsb::serve
