#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

namespace pjsb::sim {

SimJob SimJob::from_record(const swf::JobRecord& r) {
  SimJob j;
  j.id = r.job_number;
  j.submit = std::max<std::int64_t>(0, r.submit_time);
  j.runtime = std::max<std::int64_t>(1, r.run_time);
  j.estimate = r.requested_time != swf::kUnknown
                   ? std::max(r.requested_time, j.runtime)
                   : j.runtime;
  // The honest request, for walltime-overrun policies; `estimate` stays
  // clamped to >= runtime so the scheduler view is unchanged.
  j.walltime = r.requested_time;
  j.procs = std::max<std::int64_t>(
      1, r.allocated_procs != swf::kUnknown ? r.allocated_procs
                                            : r.requested_procs);
  j.user_id = r.user_id;
  j.executable_id = r.executable_id;
  j.queue_id = r.queue_id;
  return j;
}

Engine::Engine(const EngineConfig& config,
               std::unique_ptr<sched::Scheduler> scheduler)
    : config_(config),
      scheduler_(std::move(scheduler)),
      machine_(config.nodes) {
  if (!scheduler_) throw std::invalid_argument("Engine: null scheduler");
  scheduler_->on_attach(*this);
}

Engine::~Engine() = default;

void Engine::load_trace(const swf::Trace& trace) {
  // An eager pull of the whole trace: with an unbounded lookahead the
  // fill loop drains the source before returning, so the stack-local
  // adapter's lifetime is safe and behavior matches the historical
  // all-up-front load exactly.
  swf::TraceSource source(trace);
  JobSourceOptions options;
  options.lookahead = std::numeric_limits<std::size_t>::max();
  set_job_source(source, options);
}

void Engine::set_job_source(swf::JobSource& source,
                            const JobSourceOptions& options) {
  source_ = &source;
  source_opts_ = options;
  if (source_opts_.lookahead == 0) source_opts_.lookahead = 1;
  fill_from_source();
}

void Engine::fill_from_source() {
  while (source_ && pending_submits_ < source_opts_.lookahead) {
    if (source_opts_.max_jobs != 0 &&
        source_pulled_ >= source_opts_.max_jobs) {
      source_ = nullptr;
      break;
    }
    const auto record = source_->next();
    if (!record) {
      source_ = nullptr;
      break;
    }
    ++source_pulled_;
    admit_record(*record);
  }
}

void Engine::apply_recovery_defaults(SimJob& j) const {
  // SWF records carry no checkpoint columns; jobs inherit the engine's
  // recovery defaults unless the caller (submit_job) set their own.
  if (j.checkpoint_interval == 0 && j.dump_time == 0 && j.read_time == 0) {
    j.checkpoint_interval = config_.recovery.checkpoint_interval;
    j.dump_time = config_.recovery.dump_time;
    j.read_time = config_.recovery.read_time;
  }
}

void Engine::admit_record(const swf::JobRecord& r) {
  SimJob j = SimJob::from_record(r);
  j.procs = std::min(j.procs, machine_.total_nodes());
  apply_recovery_defaults(j);
  const std::int64_t id = j.id > 0 ? j.id : next_job_id_;
  j.id = id;
  next_job_id_ = std::max(next_job_id_, id + 1);
  if (j.submit < now_) {
    // The source contract is ascending submit order; a straggler (or a
    // record pulled after the clock passed its submit time under a tiny
    // lookahead) is submitted immediately rather than in the past.
    j.submit = now_;
    ++source_clamped_;
  }

  auto& slot = obtain_slot(id);
  const bool fresh = slot.job.id == 0;
  if (fresh) slot.job = j;  // first record wins, as before
  ++pending_submits_;

  const bool dependent = config_.closed_loop &&
                         r.preceding_job != swf::kUnknown &&
                         r.preceding_job > 0;
  if (dependent) {
    const std::int64_t think =
        r.think_time != swf::kUnknown ? std::max<std::int64_t>(0,
                                                               r.think_time)
                                      : 0;
    const std::int64_t pred = r.preceding_job;
    // Live (or not-yet-seen-terminating) predecessor: defer until it
    // terminates — identical to the all-up-front load, where every
    // dependent is registered before the clock starts.
    const JobSlot* ps = find_slot(pred);
    if (ps && ps->job.state != JobState::kFinished) {
      dependents_[pred].push_back({id, think});
      return;
    }
    std::int64_t released = -1;
    if (ps) {
      // Terminated but still resident: release relative to its end.
      released = ps->job.end + think;
    } else if (const auto it = finished_end_.find(pred);
               it != finished_end_.end()) {
      // Recycled predecessor remembered by the bounded history.
      released = it->second + think;
    }
    if (released >= 0) {
      const std::int64_t at = std::max(now_, released);
      if (fresh) slot.job.submit = at;
      push_event(at, EventType::kSubmit, id, /*version=*/1);
      return;
    }
    // Unknown predecessor. During an eager (unbounded-lookahead) load
    // the record may simply precede its predecessor in the file, so
    // register the edge and wait — the historical load_trace behavior,
    // including "a dangling predecessor means the job never runs". A
    // bounded stream cannot afford that: an unresolvable dependent
    // would occupy a lookahead slot forever and jam the pull window,
    // so it falls back to its recorded submit time (open loop).
    if (source_opts_.lookahead ==
        std::numeric_limits<std::size_t>::max()) {
      dependents_[pred].push_back({id, think});
      return;
    }
  }
  push_event(j.submit, EventType::kSubmit, id, /*version=*/1);
}

void Engine::release_slot(std::int64_t id) {
  if (id >= 0 && std::size_t(id) < jobs_dense_.size()) {
    jobs_dense_[std::size_t(id)] = JobSlot{};
  }
  jobs_overflow_.erase(id);
}

void Engine::record_finished(std::int64_t id, std::int64_t end_time) {
  if (!config_.closed_loop) return;
  while (finished_order_.size() >= source_opts_.closed_loop_history &&
         !finished_order_.empty()) {
    finished_end_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
  if (finished_end_.emplace(id, end_time).second) {
    finished_order_.push_back(id);
  }
}

void Engine::add_outages(const outage::OutageLog& log) {
  for (const auto& rec : log.records) {
    outages_.push_back(rec);
    const std::size_t idx = outages_.size() - 1;
    if (config_.deliver_announcements && rec.announced()) {
      push_event(std::max<std::int64_t>(rec.announce_time, 0),
                 EventType::kOutageAnnounce, std::int64_t(idx));
    }
    push_event(rec.start_time, EventType::kOutageStart, std::int64_t(idx));
    push_event(rec.end_time, EventType::kOutageEnd, std::int64_t(idx));
  }
}

std::int64_t Engine::submit_job(SimJob job) {
  if (job.submit < now_) {
    throw std::invalid_argument("submit_job: submit time in the past");
  }
  const std::int64_t id = job.id > 0 ? job.id : next_job_id_;
  job.id = id;
  job.procs = std::min(std::max<std::int64_t>(1, job.procs),
                       machine_.total_nodes());
  apply_recovery_defaults(job);
  next_job_id_ = std::max(next_job_id_, id + 1);
  obtain_slot(id).job = job;
  push_event(job.submit, EventType::kSubmit, id);
  return id;
}

const SimJob* Engine::find_job(std::int64_t id) const {
  const JobSlot* slot = find_slot(id);
  return slot ? &slot->job : nullptr;
}

bool Engine::cancel_job(std::int64_t id, std::string* why) {
  const auto fail = [&](const char* message) {
    if (why) *why = message;
    return false;
  };
  JobSlot* slot = find_slot(id);
  if (!slot) return fail("unknown job id");
  bool release_after_pass = false;
  switch (slot->job.state) {
    case JobState::kPending:
      // The submit event (initial, backoff resubmission, or deferred
      // closed-loop release) is still in flight; cancelling would leave
      // it to fire on a terminated job.
      return fail("job not submitted yet (pending)");
    case JobState::kFinished:
      return fail("job already terminated");
    case JobState::kQueued:
      --queued_count_;
      release_after_pass = config_.recycle_slots;
      drop_job(*slot, DropReason::kCancelled,
               /*defer_release=*/release_after_pass);
      break;
    case JobState::kRunning:
      kill_job(*slot, KillReason::kPreempt, /*force_drop=*/true);
      break;
  }
  // The cancel lands between event timestamps, so the scheduler pass
  // that normally follows a timestamp's events runs here explicitly:
  // the schedulers drop the cancelled entry from their queues and put
  // freed capacity (or an unblocked FCFS head) to use immediately.
  scheduler_->schedule(*this);
  scheduler_dirty_ = false;
  if (release_after_pass) release_slot(id);
  if (!observers_.empty()) {
    observers_.on_step({now_, machine_.free_nodes(), machine_.busy_nodes(),
                        machine_.down_nodes(), queued_count_,
                        running_count_});
  }
  return true;
}

bool Engine::request_reservation(
    const sched::AdvanceReservation& reservation) {
  sched::AdvanceReservation res = reservation;
  if (res.id <= 0) res.id = next_reservation_id_;
  next_reservation_id_ = std::max(next_reservation_id_, res.id + 1);
  if (res.start < now_ || res.duration <= 0 || res.procs <= 0) return false;
  if (res.procs > machine_.total_nodes()) return false;
  if (!scheduler_->try_reserve(*this, res)) return false;
  reservations_.emplace(res.id, res);
  push_event(res.start, EventType::kReservationStart, res.id);
  // Wake the scheduler when the window closes: capacity blocked by the
  // reservation becomes available again, and without an event the
  // scheduler would never notice.
  push_event(res.start + res.duration, EventType::kReservationEnd, res.id);
  return true;
}

std::optional<std::int64_t> Engine::next_event_time() const {
  if (events_.empty()) return std::nullopt;
  return events_.top().time;
}

bool Engine::step() {
  if (events_.empty()) fill_from_source();
  if (events_.empty()) return false;
  const std::int64_t t = events_.top().time;
  account_capacity_to(t);
  now_ = t;
  scheduler_dirty_ = false;
  // Wall-clock phase timing only runs with a listener installed; the
  // detached path pays three predictable null-check branches per step.
  using Clock = std::chrono::steady_clock;
  Clock::time_point mark{};
  if (phase_listener_) mark = Clock::now();
  const auto emit_phase = [&](EnginePhase phase) {
    const auto done = Clock::now();
    phase_listener_->on_phase(
        phase, t,
        std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          done - mark)
                          .count()));
    mark = done;
  };
  while (!events_.empty() && events_.top().time == t) {
    Event ev = events_.top();
    events_.pop();
    process(ev);
  }
  if (phase_listener_) emit_phase(EnginePhase::kEvents);
  if (scheduler_dirty_) {
    scheduler_->schedule(*this);
    if (phase_listener_) emit_phase(EnginePhase::kSchedulerPass);
  }
  if (!observers_.empty()) {
    observers_.on_step({now_, machine_.free_nodes(), machine_.busy_nodes(),
                        machine_.down_nodes(), queued_count_,
                        running_count_});
    if (phase_listener_) emit_phase(EnginePhase::kObserverStep);
  }
  return true;
}

void Engine::run_until(std::int64_t t) {
  while (!events_.empty() && events_.top().time <= t) step();
  if (now_ < t) {
    account_capacity_to(t);
    now_ = t;
  }
}

void Engine::run() {
  while (step()) {
  }
}

Engine::JobSlot* Engine::find_slot(std::int64_t id) {
  if (id >= 0 && id < kDenseIdLimit) {
    const auto idx = std::size_t(id);
    if (idx < jobs_dense_.size() && jobs_dense_[idx].job.id != 0) {
      return &jobs_dense_[idx];
    }
    // Fall through: a sparse id below the limit may still have been
    // routed to the overflow map by the bounded-gap placement rule.
  }
  const auto it = jobs_overflow_.find(id);
  return it == jobs_overflow_.end() ? nullptr : &it->second;
}

const Engine::JobSlot* Engine::find_slot(std::int64_t id) const {
  return const_cast<Engine*>(this)->find_slot(id);
}

Engine::JobSlot& Engine::slot_at(std::int64_t id) {
  JobSlot* slot = find_slot(id);
  if (!slot) throw std::out_of_range("Engine::job: unknown id");
  return *slot;
}

Engine::JobSlot& Engine::obtain_slot(std::int64_t id) {
  if (JobSlot* existing = find_slot(id)) return *existing;
  // Recycle mode keeps every job in the hash map: the dense vector is
  // sized by the largest id ever seen, which for a streamed million-job
  // trace is exactly the O(trace) growth recycling exists to avoid.
  if (config_.recycle_slots) return jobs_overflow_[id];
  // Place new ids densely only while they stay near-contiguous: growing
  // the vector by a bounded gap at a time. A far outlier (e.g. the meta
  // layer's 1'000'000-based ids over a small background trace) goes to
  // the hash map instead of forcing a proportional allocation.
  if (id >= 0 && id < kDenseIdLimit &&
      std::size_t(id) < jobs_dense_.size() + kDenseGapLimit) {
    const auto idx = std::size_t(id);
    if (idx >= jobs_dense_.size()) {
      jobs_dense_.resize(std::min(std::size_t(kDenseIdLimit),
                                  std::max(idx + 1, jobs_dense_.size() * 2)));
    }
    return jobs_dense_[idx];
  }
  return jobs_overflow_[id];
}

const SimJob& Engine::job(std::int64_t id) const {
  const JobSlot* slot = find_slot(id);
  if (!slot) throw std::out_of_range("Engine::job: unknown id");
  return slot->job;
}

bool Engine::start_job(std::int64_t job_id) {
  // Consume the one-shot annotation up front: a failed start (the
  // scheduler mis-counted) must not leak its reason onto a later,
  // unrelated start.
  const StartProvenance provenance = pending_provenance_;
  const std::int64_t reserved_start = pending_reserved_start_;
  pending_provenance_ = StartProvenance::kUnspecified;
  pending_reserved_start_ = -1;
  auto& slot = slot_at(job_id);
  auto& j = slot.job;
  if (j.state != JobState::kQueued) {
    throw std::logic_error("start_job: job is not queued");
  }
  auto nodes = machine_.allocate(job_id, j.procs);
  if (!nodes) return false;
  j.nodes = std::move(*nodes);
  j.state = JobState::kRunning;
  j.start = now_;
  --queued_count_;
  ++running_count_;
  const std::int64_t version = ++slot.end_version;
  const std::int64_t procs = j.procs;

  // Wall duration of this burst: remaining work, plus a checkpoint
  // restore prefix when progress is banked, plus one dump per completed
  // checkpoint interval (the final second of work never dumps — the job
  // completes instead). With checkpointing off this is exactly runtime.
  const std::int64_t remaining = j.runtime - j.completed_work;
  const std::int64_t restore = j.completed_work > 0 ? j.read_time : 0;
  const std::int64_t dumps =
      j.checkpoint_interval > 0 ? (remaining - 1) / j.checkpoint_interval : 0;
  std::int64_t wall = restore + remaining + dumps * j.dump_time;

  // Walltime-overrun policy: under kill/grace the burst may not outlive
  // the requested walltime (plus grace); the deadline event kills and
  // drops the job instead of completing it.
  slot.overrun_end = false;
  const auto& rec = config_.recovery;
  if (rec.overrun != fault::OverrunPolicy::kExtend && j.walltime > 0) {
    const std::int64_t allowed =
        j.walltime +
        (rec.overrun == fault::OverrunPolicy::kGrace ? rec.grace_seconds : 0);
    if (wall > allowed) {
      wall = allowed;
      slot.overrun_end = true;
    }
  }
  push_event(now_ + wall, EventType::kJobEnd, job_id, version);
  observers_.on_decision({now_, job_id, procs, /*virtual_start=*/false,
                          provenance, reserved_start});
  if (j.completed_work > 0) {
    observers_.on_job_restore(now_, j, j.completed_work);
  }
  return true;
}

void Engine::start_job_virtual(std::int64_t job_id, std::int64_t end_time) {
  auto& slot = slot_at(job_id);
  auto& j = slot.job;
  if (j.state != JobState::kQueued) {
    throw std::logic_error("start_job_virtual: job is not queued");
  }
  if (end_time < now_) {
    throw std::invalid_argument("start_job_virtual: end before now");
  }
  j.state = JobState::kRunning;
  j.start = now_;
  j.nodes.clear();
  --queued_count_;
  ++running_count_;
  const std::int64_t version = ++slot.end_version;
  const std::int64_t procs = j.procs;
  push_event(end_time, EventType::kJobEnd, job_id, version);
  observers_.on_decision({now_, job_id, procs, /*virtual_start=*/true,
                          pending_provenance_, pending_reserved_start_});
  pending_provenance_ = StartProvenance::kUnspecified;
  pending_reserved_start_ = -1;
}

void Engine::update_job_end(std::int64_t job_id, std::int64_t new_end) {
  auto& slot = slot_at(job_id);
  if (slot.job.state != JobState::kRunning) {
    throw std::logic_error("update_job_end: job is not running");
  }
  if (new_end < now_) {
    throw std::invalid_argument("update_job_end: end before now");
  }
  const std::int64_t version = ++slot.end_version;
  push_event(new_end, EventType::kJobEnd, job_id, version);
}

void Engine::kill_running_job(std::int64_t job_id) {
  auto& slot = slot_at(job_id);
  if (slot.job.state != JobState::kRunning) {
    throw std::logic_error("kill_running_job: job is not running");
  }
  kill_job(slot, KillReason::kPreempt);
}

void Engine::push_event(std::int64_t time, EventType type, std::int64_t id,
                        std::int64_t version) {
  events_.push({time, type, seq_++, id, version});
}

void Engine::process(const Event& ev) {
  ++events_processed_;
  switch (ev.type) {
    case EventType::kSubmit:
      handle_submit(ev);
      break;
    case EventType::kJobEnd:
      handle_job_end(ev);
      break;
    case EventType::kOutageAnnounce:
      scheduler_->on_outage_announce(*this, outages_.at(std::size_t(ev.id)));
      observers_.on_outage(outages_.at(std::size_t(ev.id)),
                           OutagePhase::kAnnounced);
      scheduler_dirty_ = true;
      break;
    case EventType::kOutageStart:
      handle_outage_start(std::size_t(ev.id));
      break;
    case EventType::kOutageEnd:
      handle_outage_end(std::size_t(ev.id));
      break;
    case EventType::kReservationStart:
      handle_reservation_start(ev.id);
      break;
    case EventType::kReservationEnd:
      reservations_.erase(ev.id);
      scheduler_dirty_ = true;
      break;
  }
}

void Engine::handle_submit(const Event& ev) {
  const std::int64_t job_id = ev.id;
  // One admitted record leaves the lookahead window; top it back up.
  // Externally injected jobs (submit_job) carry version 0 and were
  // never counted, so they must not drain the gauge either.
  if (ev.version != 0 && pending_submits_ > 0) --pending_submits_;
  JobSlot* slot = find_slot(job_id);
  if (!slot) {
    // A duplicate submit for a job that already terminated and was
    // recycled; nothing to (re)queue.
    fill_from_source();
    return;
  }
  slot->job.state = JobState::kQueued;
  ++queued_count_;
  scheduler_->on_submit(*this, job_id);
  observers_.on_job_submit(now_, slot->job);
  scheduler_dirty_ = true;
  fill_from_source();
}

void Engine::handle_job_end(const Event& ev) {
  JobSlot* slot = find_slot(ev.id);
  if (!slot) return;
  // Stale end events (the job was killed/rescheduled) carry an old
  // version; ignore them.
  if (slot->job.state != JobState::kRunning ||
      slot->end_version != ev.version) {
    return;
  }
  if (slot->overrun_end) {
    // The walltime-overrun deadline, not a completion: the job is
    // killed and dropped (real systems do not restart an overrun job).
    kill_job(*slot, KillReason::kWalltime);
    return;
  }
  finish_job(slot->job);
}

void Engine::finish_job(SimJob& j) {
  j.state = JobState::kFinished;
  j.end = now_;
  --running_count_;
  if (!j.nodes.empty()) {
    machine_.release(j.id, j.nodes);
    j.nodes.clear();
  }
  work_node_seconds_ += j.procs * j.runtime;
  makespan_ = std::max(makespan_, now_);

  CompletedJob c;
  c.id = j.id;
  c.submit = j.submit;
  c.start = j.start;
  c.end = j.end;
  c.runtime = j.runtime;
  c.estimate = j.estimate;
  c.procs = j.procs;
  c.user_id = j.user_id;
  c.executable_id = j.executable_id;
  c.queue_id = j.queue_id;
  c.restarts = j.restarts;
  ++jobs_completed_;
  if (config_.retain_completed) completed_.push_back(c);
  // The observer may submit new jobs, which can grow jobs_dense_ and
  // invalidate `j`; use only the copied record from here on.
  const std::int64_t finished_id = c.id;
  if (completion_observer_) completion_observer_(c);
  observers_.on_job_complete(c);

  scheduler_->on_job_end(*this, finished_id);
  scheduler_dirty_ = true;

  // Closed loop: release dependents.
  const auto dit = dependents_.find(finished_id);
  if (dit != dependents_.end()) {
    for (const auto& [dep_id, think] : dit->second) {
      auto& dep = slot_at(dep_id).job;
      dep.submit = now_ + think;
      // Dependents were counted in the gauge when admitted (version 1).
      push_event(dep.submit, EventType::kSubmit, dep_id, /*version=*/1);
    }
    dependents_.erase(dit);
  }

  if (config_.recycle_slots) {
    record_finished(finished_id, c.end);
    release_slot(finished_id);
  }
}

void Engine::kill_job(JobSlot& slot, KillReason reason, bool force_drop) {
  // Work performed so far is lost ("any job running on that node would
  // have to be restarted") — except the checkpointed portion, which the
  // next burst resumes from.
  auto& j = slot.job;
  const std::int64_t elapsed = now_ - j.start;
  std::int64_t saved = 0;
  if (reason != KillReason::kWalltime && j.checkpoint_interval > 0) {
    // Checkpoint k completes at restore-prefix + k * (interval + dump)
    // into the burst; everything up to the last completed dump is
    // banked. The final interval of a burst never dumps (the job would
    // complete instead), so k is capped below remaining work.
    const std::int64_t remaining = j.runtime - j.completed_work;
    const std::int64_t prefix = j.completed_work > 0 ? j.read_time : 0;
    const std::int64_t cycle = j.checkpoint_interval + j.dump_time;
    const std::int64_t usable = elapsed - prefix;
    if (usable > 0 && remaining > 1) {
      const std::int64_t k = std::min(
          usable / cycle, (remaining - 1) / j.checkpoint_interval);
      saved = k * j.checkpoint_interval;
    }
    j.completed_work += saved;
  }
  const std::int64_t recovered = j.procs * saved;
  recovered_node_seconds_ += recovered;
  wasted_node_seconds_ += j.procs * elapsed - recovered;
  ++jobs_killed_;
  ++j.restarts;
  --running_count_;
  if (!j.nodes.empty()) {
    machine_.release(j.id, j.nodes);  // down nodes are skipped internally
    j.nodes.clear();
  }
  ++slot.end_version;  // invalidate the pending end event
  slot.overrun_end = false;

  const auto& rec = config_.recovery;
  bool drop = false;
  DropReason drop_reason = DropReason::kRetryLimit;
  if (force_drop) {
    drop = true;
    drop_reason = DropReason::kCancelled;
  } else if (reason == KillReason::kWalltime) {
    drop = true;
    drop_reason = DropReason::kWalltimeOverrun;
  } else if (!config_.requeue_killed_jobs) {
    drop = true;
    drop_reason = DropReason::kRequeueDisabled;
  } else if (rec.retry_limit > 0 && j.restarts >= rec.retry_limit) {
    drop = true;
    drop_reason = DropReason::kRetryLimit;
  }

  KillInfo info;
  info.reason = reason;
  info.lost_node_seconds = j.procs * elapsed - recovered;
  info.saved_work = saved;
  info.attempt = j.restarts;
  info.will_requeue = !drop;
  info.requeue_at = drop ? -1 : now_ + rec.backoff_seconds;
  observers_.on_job_kill(now_, j, info);
  scheduler_->on_job_killed(*this, j.id);
  if (!drop) {
    if (rec.backoff_seconds > 0) {
      // Deferred resubmission: the job leaves the queue entirely until
      // the backoff expires. Version 0 keeps it off the lookahead gauge
      // (it was drained by its original submit already).
      j.state = JobState::kPending;
      push_event(now_ + rec.backoff_seconds, EventType::kSubmit, j.id,
                 /*version=*/0);
    } else {
      j.state = JobState::kQueued;
      ++queued_count_;
      scheduler_->on_submit(*this, j.id);
      observers_.on_job_submit(now_, j);
    }
  } else {
    drop_job(slot, drop_reason);
  }
  scheduler_dirty_ = true;
}

void Engine::drop_job(JobSlot& slot, DropReason reason,
                      bool defer_release) {
  auto& j = slot.job;
  j.state = JobState::kFinished;
  j.end = now_;
  ++jobs_dropped_;
  observers_.on_job_drop(now_, j, reason);
  const std::int64_t id = j.id;
  // Dependents of a dropped job never run — same outcome as the
  // all-up-front load, where their dependents_ entry simply never
  // fires. But a streaming source must not let those orphans sit in
  // the lookahead gauge forever (the pull window would jam shut and
  // silently truncate the replay), so drop them — and their own
  // dependents, transitively — outright. Dropped orphans are marked
  // terminated (or erased, in recycle mode) so a record pulled later
  // that names one as predecessor resolves instead of deferring
  // forever; they are not recorded in the closed-loop history:
  // dropped, not released.
  std::vector<std::int64_t> doomed = {id};
  if (config_.recycle_slots && !defer_release) release_slot(id);
  while (!doomed.empty()) {
    const std::int64_t doomed_id = doomed.back();
    doomed.pop_back();
    const auto dit = dependents_.find(doomed_id);
    if (dit == dependents_.end()) continue;
    for (const auto& [dep_id, think] : dit->second) {
      (void)think;
      if (pending_submits_ > 0) --pending_submits_;
      if (config_.recycle_slots) {
        release_slot(dep_id);
      } else if (JobSlot* dep = find_slot(dep_id)) {
        dep->job.state = JobState::kFinished;
        dep->job.end = now_;
      }
      doomed.push_back(dep_id);
    }
    dependents_.erase(dit);
  }
}

void Engine::handle_outage_start(std::size_t idx) {
  const auto& rec = outages_[idx];
  std::vector<std::int64_t> victims;
  for (std::int64_t node : rec.components) {
    if (node < 0 || node >= machine_.total_nodes()) continue;
    const std::int64_t owner = machine_.take_down(node);
    if (owner >= 0) victims.push_back(owner);
  }
  // Deduplicate victims (a job may own several failed nodes).
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  for (std::int64_t job_id : victims) {
    auto& slot = slot_at(job_id);
    if (slot.job.state == JobState::kRunning) {
      kill_job(slot, KillReason::kOutage);
    }
  }
  scheduler_->on_outage_start(*this, rec);
  observers_.on_outage(rec, OutagePhase::kStarted);
  scheduler_dirty_ = true;
}

void Engine::handle_outage_end(std::size_t idx) {
  const auto& rec = outages_[idx];
  for (std::int64_t node : rec.components) {
    if (node < 0 || node >= machine_.total_nodes()) continue;
    if (machine_.owner(node) == kDown) machine_.bring_up(node);
  }
  scheduler_->on_outage_end(*this, rec);
  observers_.on_outage(rec, OutagePhase::kEnded);
  scheduler_dirty_ = true;
}

void Engine::handle_reservation_start(std::int64_t res_id) {
  const auto it = reservations_.find(res_id);
  if (it == reservations_.end()) return;
  const auto& res = it->second;
  if (res.job_id) {
    auto& j = slot_at(*res.job_id).job;
    if (j.state == JobState::kQueued) {
      // The scheduler blocked this window, so the allocation succeeds
      // unless an outage shrank the machine; in that case the job stays
      // queued and the scheduler starts it when capacity returns.
      annotate_start(StartProvenance::kReservation, res.start);
      start_job(*res.job_id);
    }
  }
  scheduler_dirty_ = true;
}

void Engine::account_capacity_to(std::int64_t t) {
  if (t <= capacity_accounted_until_) return;
  capacity_node_seconds_ +=
      machine_.up_nodes() * (t - capacity_accounted_until_);
  capacity_accounted_until_ = t;
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.capacity_node_seconds = capacity_node_seconds_;
  s.work_node_seconds = work_node_seconds_;
  s.wasted_node_seconds = wasted_node_seconds_;
  s.recovered_node_seconds = recovered_node_seconds_;
  s.makespan = makespan_;
  s.jobs_completed = jobs_completed_;
  s.jobs_killed = jobs_killed_;
  s.jobs_dropped = jobs_dropped_;
  s.events_processed = events_processed_;
  return s;
}

}  // namespace pjsb::sim
