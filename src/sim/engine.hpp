// The discrete-event simulation engine.
//
// Drives a machine + scheduler against an SWF workload, optionally with
// an outage stream (section 2.2) and closed-loop feedback dependencies
// (fields 17-18). The engine is incremental — next_event_time() /
// run_until() — so the metacomputing layer (section 4.3's WARMstones
// environment) can coordinate several site engines on a global clock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/outage/record.hpp"
#include "core/swf/job_source.hpp"
#include "core/swf/trace.hpp"
#include "sched/scheduler.hpp"
#include "sim/fault/fault.hpp"
#include "sim/job.hpp"
#include "sim/machine.hpp"
#include "sim/observer.hpp"
#include "sim/phase.hpp"

namespace pjsb::sim {

namespace snapshot {
class Reader;
}  // namespace snapshot

struct EngineConfig {
  std::int64_t nodes = 128;
  /// Deliver outage announcements to the scheduler (outage-aware mode).
  /// When false the scheduler only experiences the failures themselves.
  bool deliver_announcements = true;
  /// Respect preceding-job/think-time dependencies in the trace: a
  /// dependent job is submitted when its predecessor terminates plus
  /// think time (closed loop), instead of at its recorded submit time.
  bool closed_loop = false;
  /// Requeue jobs killed by outages (restart from scratch).
  bool requeue_killed_jobs = true;
  /// Recovery policy: checkpoint/restart defaults copied onto admitted
  /// jobs, the resubmit retry limit/backoff, and the walltime-overrun
  /// rule. The default keeps historical behavior exactly (restart from
  /// scratch, retry forever, immediate requeue, never overrun-kill).
  fault::RecoveryConfig recovery;
  /// Accumulate per-job CompletedJob records in completed(). Turn off
  /// for constant-memory streaming runs and consume the completion
  /// observer instead; stats() stays exact either way.
  bool retain_completed = true;
  /// Erase a job's engine slot once it terminates (constant-memory
  /// streaming runs). All jobs then live in the hash map rather than
  /// the dense id-indexed vector, so live memory is O(running+queued)
  /// instead of O(max job id).
  bool recycle_slots = false;
};

/// How the engine pulls from an attached swf::JobSource.
struct JobSourceOptions {
  /// Records pulled ahead of the simulation clock: the engine keeps at
  /// most this many admitted-but-not-yet-submitted jobs. Bounds both
  /// memory and how far ahead closed-loop dependencies can see.
  std::size_t lookahead = 4096;
  /// Stop pulling after this many records (0 = drain the source) — the
  /// brake that makes unbounded generator streams terminate.
  std::uint64_t max_jobs = 0;
  /// Closed loop + recycle_slots only: how many recently terminated
  /// job (id, end) pairs to remember so a late-pulled dependent can
  /// still resolve its predecessor (fields 17/18) after the
  /// predecessor's slot was recycled.
  std::size_t closed_loop_history = std::size_t(1) << 16;
};

/// Aggregate accounting maintained by the engine.
struct EngineStats {
  std::int64_t capacity_node_seconds = 0;  ///< up-capacity integral
  std::int64_t work_node_seconds = 0;      ///< completed useful work
  std::int64_t wasted_node_seconds = 0;    ///< work lost to kills
  /// Node-seconds preserved across kills by completed checkpoints
  /// (already excluded from wasted_node_seconds).
  std::int64_t recovered_node_seconds = 0;
  std::int64_t makespan = 0;               ///< last completion time
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_killed = 0;            ///< kill events (with requeue)
  /// Jobs abandoned without completing (retry limit, overrun kill, or
  /// requeue disabled).
  std::int64_t jobs_dropped = 0;
  std::int64_t events_processed = 0;

  /// Achieved utilization of available capacity.
  double utilization() const {
    return capacity_node_seconds > 0
               ? double(work_node_seconds) / double(capacity_node_seconds)
               : 0.0;
  }
};

class Engine final : public sched::SchedulerContext {
 public:
  Engine(const EngineConfig& config,
         std::unique_ptr<sched::Scheduler> scheduler);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Load the summary records of a trace as the job population. In
  /// closed-loop mode, dependency edges (fields 17/18) defer dependent
  /// submissions until their predecessor terminates. Implemented as an
  /// eager drain of a TraceSource through set_job_source.
  void load_trace(const swf::Trace& trace);

  /// Attach a pull-based job source. The engine pulls records lazily as
  /// the clock advances, keeping at most options.lookahead jobs ahead,
  /// so source size never bounds memory. The source must stay alive
  /// until it is exhausted (or the engine is destroyed); records must
  /// arrive in ascending submit order — stragglers are clamped to now()
  /// and counted in source_clamped().
  void set_job_source(swf::JobSource& source,
                      const JobSourceOptions& options = {});

  /// Records pulled from the attached source so far.
  std::uint64_t source_pulled() const { return source_pulled_; }
  /// Source records whose submit time lay in the past when pulled.
  std::uint64_t source_clamped() const { return source_clamped_; }

  /// Register an outage stream (call before run()).
  void add_outages(const outage::OutageLog& log);

  /// Submit a single external job (used by the meta layer and the
  /// serve daemon). The job's submit time must be >= now(); returns
  /// its id.
  std::int64_t submit_job(SimJob job);

  /// Read-only job lookup by id. Nullptr when the id was never
  /// submitted (or its slot was recycled in recycle_slots mode).
  const SimJob* find_job(std::int64_t id) const;

  /// Cancel a job at now(), on explicit external request (the daemon's
  /// KILL verb). A queued job is dropped (DropReason::kCancelled); a
  /// running job is killed (KillReason::kPreempt) and force-dropped
  /// instead of requeued. Every policy prunes queue entries whose
  /// engine-side state left kQueued, so the cancel is followed by an
  /// immediate scheduler pass — freed capacity or an unblocked queue
  /// head is used right away, exactly as after an event timestamp.
  /// Returns false (with *why set) for unknown ids, jobs whose submit
  /// event has not fired yet (pending), and already-terminated jobs.
  /// Like step(), only legal between steps.
  bool cancel_job(std::int64_t id, std::string* why = nullptr);

  /// Request an advance reservation (forwards to the scheduler).
  /// Returns true if the scheduler accepted and the engine committed it.
  bool request_reservation(const sched::AdvanceReservation& reservation);

  // -- incremental execution --
  std::optional<std::int64_t> next_event_time() const;
  /// Process all events at the next event time. False if none remain.
  bool step();
  /// Process events with time <= t (does not advance now() past t).
  void run_until(std::int64_t t);
  /// Run to exhaustion.
  void run();

  // -- results --
  const std::vector<CompletedJob>& completed() const { return completed_; }
  EngineStats stats() const;
  const sched::Scheduler& scheduler() const { return *scheduler_; }
  sched::Scheduler& scheduler() { return *scheduler_; }
  std::size_t queued_jobs() const { return queued_count_; }
  std::size_t running_jobs() const { return running_count_; }

  /// Attach a composable observer (non-owning — the caller keeps it
  /// alive for the run). Observers receive decision / completion /
  /// outage events in attach order; see sim/observer.hpp.
  void add_observer(SimObserver& observer) { observers_.add(observer); }

  /// Fire on_end(stats()) on every attached observer. replay() calls
  /// this once after the run drains; incremental drivers (run_until)
  /// call it when they decide the run is over.
  void notify_run_end() { observers_.on_end(stats()); }

  /// Install a wall-clock phase listener (nullptr detaches). The
  /// engine times its event / scheduler-pass / observer sections only
  /// while a listener is installed; detached cost is one predictable
  /// null check per step. Non-owning, like observers.
  void set_phase_listener(PhaseListener* listener) {
    phase_listener_ = listener;
  }

  /// DEPRECATED: single-function completion callback, kept for the old
  /// predictor-training path. New code attaches a SimObserver via
  /// add_observer instead.
  void set_completion_observer(std::function<void(const CompletedJob&)> fn) {
    completion_observer_ = std::move(fn);
  }

  // -- snapshot / restore (src/sim/snapshot/snapshot.cpp) --

  /// Serialize the complete simulation state — clock, event queue,
  /// job slots, machine ownership, scheduler state (via
  /// Scheduler::save_state), outages, reservations, source cursor and
  /// all accounting — into the versioned binary snapshot format.
  /// Legal between steps (never from inside an event handler or
  /// observer callback). Runtime attachments (observers, phase
  /// listener, completion callback) are not serialized; re-attach them
  /// after restore().
  std::string snapshot() const;

  /// Reconstruct an engine from snapshot() bytes: the scheduler is
  /// rebuilt from its registry spec (name()), then every state section
  /// is restored, so stepping the result is byte-identical to stepping
  /// the donor — including event sequence numbers and decision traces.
  /// Throws std::runtime_error on a bad magic/version or truncated
  /// payload. If the donor had an active pull source, re-attach it via
  /// resume_job_source before running.
  static std::unique_ptr<Engine> restore(const std::string& bytes);

  /// Re-attach the job source of a snapshotted streaming run: skips
  /// the records the donor already pulled, then continues pulling on
  /// the same schedule (no eager fill — the donor refills only inside
  /// submit handling, and resume must match it event for event).
  /// No-op (after the skip) when the donor had exhausted the source.
  void resume_job_source(swf::JobSource& source);

  /// True when the snapshot this engine was restored from had an
  /// active (unexhausted) job source: running without
  /// resume_job_source would silently truncate the workload.
  bool needs_job_source() const { return source_pending_resume_; }

  // -- SchedulerContext interface --
  std::int64_t now() const override { return now_; }
  Machine& machine() override { return machine_; }
  const SimJob& job(std::int64_t id) const override;
  bool start_job(std::int64_t job_id) override;
  void start_job_virtual(std::int64_t job_id, std::int64_t end_time) override;
  void update_job_end(std::int64_t job_id, std::int64_t new_end) override;
  void kill_running_job(std::int64_t job_id) override;
  void annotate_start(StartProvenance provenance,
                      std::int64_t detail) override {
    pending_provenance_ = provenance;
    pending_reserved_start_ = detail;
  }

 private:
  enum class EventType : int {
    // Order within a timestamp (smaller runs first).
    kJobEnd = 0,
    kOutageEnd = 1,
    kReservationEnd = 2,
    kOutageStart = 3,
    kOutageAnnounce = 4,
    kSubmit = 5,
    // After submits, so a reservation-attached job submitted at the
    // reservation start time is already queued when the window opens.
    kReservationStart = 6,
  };

  struct Event {
    std::int64_t time = 0;
    EventType type = EventType::kSubmit;
    std::int64_t seq = 0;    ///< FIFO tie-break
    std::int64_t id = 0;     ///< job id / outage index / reservation id
    /// kJobEnd: revision counter (stale end events are ignored).
    /// kSubmit: 1 if the job was admitted from the attached source and
    /// counts against the pending_submits_ lookahead gauge; 0 for
    /// external submit_job injections, which must not drain the gauge.
    std::int64_t version = 0;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.type != b.type) return int(a.type) > int(b.type);
      return a.seq > b.seq;
    }
  };

  /// Per-job engine state: the job plus its end-event version counter
  /// (revisable job-end events carry the version they were issued
  /// with; stale ones are ignored).
  struct JobSlot {
    SimJob job;
    std::int64_t end_version = 0;
    /// The pending end event is a walltime-overrun deadline, not a
    /// natural completion: handle_job_end kills instead of finishing.
    bool overrun_end = false;
  };

  /// Job ids index straight into the dense vector while they stay
  /// near-contiguous: a new id is stored densely only if it is below
  /// kDenseIdLimit AND within kDenseGapLimit of the current dense size.
  /// Sparse outliers (caller-chosen ids via submit_job, e.g. the meta
  /// layer's 1'000'000-based ids) fall back to a hash map so a stray
  /// id cannot force a proportional allocation. find_slot checks the
  /// dense vector first and falls through to the map, so placement
  /// history never changes lookup results.
  static constexpr std::int64_t kDenseIdLimit = std::int64_t(1) << 22;
  static constexpr std::size_t kDenseGapLimit = 4096;

  /// Slot lookup (nullptr if absent).
  JobSlot* find_slot(std::int64_t id);
  const JobSlot* find_slot(std::int64_t id) const;
  /// Slot lookup that throws like unordered_map::at did.
  JobSlot& slot_at(std::int64_t id);
  /// Insert-or-get: returns the slot for `id`, default-constructed if
  /// new (job.id == 0 marks an empty slot).
  JobSlot& obtain_slot(std::int64_t id);

  /// Pull from the attached source until the lookahead window is full
  /// (or the source / max_jobs budget is exhausted).
  void fill_from_source();
  /// Admit one source record: create its slot and either push its
  /// submit event or register it as a closed-loop dependent.
  void admit_record(const swf::JobRecord& record);
  /// Drop a terminated job's slot (recycle_slots mode).
  void release_slot(std::int64_t id);
  /// Remember a terminated job's end time for late closed-loop
  /// dependents (bounded by closed_loop_history).
  void record_finished(std::int64_t id, std::int64_t end_time);

  void push_event(std::int64_t time, EventType type, std::int64_t id,
                  std::int64_t version = 0);
  void process(const Event& ev);
  void handle_submit(const Event& ev);
  void handle_job_end(const Event& ev);
  void handle_outage_start(std::size_t idx);
  void handle_outage_end(std::size_t idx);
  void handle_reservation_start(std::int64_t res_id);
  void finish_job(SimJob& j);
  /// `force_drop` (cancel path): skip the requeue policy entirely and
  /// drop with DropReason::kCancelled.
  void kill_job(JobSlot& slot, KillReason reason, bool force_drop = false);
  /// Terminate a job without completion: mark finished, notify
  /// on_job_drop, and doom its closed-loop dependents transitively.
  /// `defer_release` keeps the slot alive in recycle_slots mode so the
  /// caller can run a scheduler pass (which reads the slot while
  /// pruning) before releasing it.
  void drop_job(JobSlot& slot, DropReason reason,
                bool defer_release = false);
  /// Copy EngineConfig::recovery checkpoint defaults onto a job that
  /// carries none of its own.
  void apply_recovery_defaults(SimJob& j) const;
  void account_capacity_to(std::int64_t t);
  /// Restore every state section from a positioned snapshot reader
  /// (the header was already consumed by restore()).
  void load_snapshot(snapshot::Reader& r);

  EngineConfig config_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  Machine machine_;

  std::int64_t now_ = 0;
  std::int64_t seq_ = 0;
  std::int64_t next_job_id_ = 1;
  std::int64_t next_reservation_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;

  /// Dense job storage indexed directly by job id (SWF job numbers are
  /// small and near-contiguous), with a hash-map overflow for ids
  /// beyond kDenseIdLimit. Scheduler callbacks hit job() on every
  /// queue entry per event, so lookups must not hash.
  std::vector<JobSlot> jobs_dense_;
  std::unordered_map<std::int64_t, JobSlot> jobs_overflow_;
  /// Dependents per predecessor job id (closed loop): (job, think).
  std::unordered_map<std::int64_t, std::vector<std::pair<std::int64_t,
                                                         std::int64_t>>>
      dependents_;
  std::vector<outage::OutageRecord> outages_;
  std::map<std::int64_t, sched::AdvanceReservation> reservations_;
  std::vector<CompletedJob> completed_;
  std::function<void(const CompletedJob&)> completion_observer_;
  ObserverList observers_;
  PhaseListener* phase_listener_ = nullptr;
  /// One-shot start annotation (see SchedulerContext::annotate_start),
  /// consumed and reset by start_job / start_job_virtual.
  StartProvenance pending_provenance_ = StartProvenance::kUnspecified;
  std::int64_t pending_reserved_start_ = -1;

  // Attached pull source (nullptr once exhausted or max_jobs reached).
  swf::JobSource* source_ = nullptr;
  /// Restored from a snapshot whose donor still had an active source;
  /// cleared by resume_job_source. See needs_job_source().
  bool source_pending_resume_ = false;
  JobSourceOptions source_opts_;
  std::uint64_t source_pulled_ = 0;
  std::uint64_t source_clamped_ = 0;
  /// Admitted records whose submit event has not been processed yet
  /// (includes deferred closed-loop dependents) — the lookahead gauge.
  std::size_t pending_submits_ = 0;
  /// Bounded (id -> end time) memory of terminated jobs, kept only in
  /// closed-loop recycle mode; eviction is FIFO by termination order.
  std::unordered_map<std::int64_t, std::int64_t> finished_end_;
  std::deque<std::int64_t> finished_order_;

  std::size_t queued_count_ = 0;
  std::size_t running_count_ = 0;
  // Capacity accounting.
  std::int64_t capacity_accounted_until_ = 0;
  std::int64_t capacity_node_seconds_ = 0;
  std::int64_t work_node_seconds_ = 0;
  std::int64_t wasted_node_seconds_ = 0;
  std::int64_t recovered_node_seconds_ = 0;
  std::int64_t makespan_ = 0;
  std::int64_t jobs_completed_ = 0;
  std::int64_t jobs_killed_ = 0;
  std::int64_t jobs_dropped_ = 0;
  std::int64_t events_processed_ = 0;
  bool scheduler_dirty_ = false;
};

}  // namespace pjsb::sim
