#include "sim/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pjsb::sim {

void set_exact_estimates(swf::Trace& trace) {
  for (auto& r : trace.records) {
    if (r.run_time != swf::kUnknown) r.requested_time = r.run_time;
  }
}

void set_factor_estimates(swf::Trace& trace, double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument("set_factor_estimates: factor >= 1");
  }
  for (auto& r : trace.records) {
    if (r.run_time == swf::kUnknown) continue;
    r.requested_time =
        std::max<std::int64_t>(r.run_time,
                               std::int64_t(std::llround(
                                   double(r.run_time) * factor)));
  }
}

void set_random_factor_estimates(swf::Trace& trace, double max_factor,
                                 util::Rng& rng) {
  if (max_factor < 1.0) {
    throw std::invalid_argument("set_random_factor_estimates: factor >= 1");
  }
  for (auto& r : trace.records) {
    if (r.run_time == swf::kUnknown) continue;
    const double f = rng.uniform(1.0, max_factor);
    r.requested_time =
        std::max<std::int64_t>(r.run_time,
                               std::int64_t(std::llround(
                                   double(r.run_time) * f)));
  }
}

void clamp_estimates_to_max_runtime(swf::Trace& trace) {
  if (!trace.header.max_runtime) return;
  const std::int64_t cap = *trace.header.max_runtime;
  for (auto& r : trace.records) {
    if (r.requested_time != swf::kUnknown) {
      r.requested_time = std::min(r.requested_time, cap);
    }
  }
}

}  // namespace pjsb::sim
