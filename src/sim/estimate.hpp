// User runtime-estimate models.
//
// Schedulers only see SWF field 9 (requested time); how loose those
// estimates are strongly affects backfilling. These helpers rewrite the
// estimates of a trace under standard assumptions (the "f-model" used
// across the backfilling literature), enabling estimate-sensitivity
// ablations without regenerating the workload.
#pragma once

#include <cstdint>

#include "core/swf/trace.hpp"
#include "util/rng.hpp"

namespace pjsb::sim {

/// requested_time = run_time exactly (perfect estimates).
void set_exact_estimates(swf::Trace& trace);

/// requested_time = f * run_time (deterministic multiplicative slack).
void set_factor_estimates(swf::Trace& trace, double factor);

/// requested_time = U[1, f] * run_time per job (random slack), the
/// classic model of user overestimation.
void set_random_factor_estimates(swf::Trace& trace, double max_factor,
                                 util::Rng& rng);

/// Clamp all estimates to the trace's MaxRuntime header (if present).
void clamp_estimates_to_max_runtime(swf::Trace& trace);

}  // namespace pjsb::sim
