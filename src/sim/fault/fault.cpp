#include "sim/fault/fault.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace pjsb::sim::fault {

outage::OutageLog generate_crashes(const FaultModel& model,
                                   std::int64_t horizon,
                                   std::int64_t total_nodes) {
  outage::OutageLog log;
  if (!model.enabled() || horizon <= 0 || total_nodes <= 0) return log;
  const double mtbf = double(std::max<std::int64_t>(1, model.mtbf_seconds));
  const double repair_mean =
      double(std::max<std::int64_t>(1, model.repair_mean_seconds));
  for (std::int64_t node = 0; node < total_nodes; ++node) {
    // One independent stream per node: the schedule is a pure function
    // of (seed, horizon, total_nodes), independent of who replays it.
    util::Rng rng(util::derive_seed(model.seed, std::uint64_t(node)));
    double t = 0.0;
    while (true) {
      t += rng.exponential(1.0 / mtbf);
      const auto start = std::int64_t(t);
      if (start >= horizon) break;
      const auto repair =
          std::max<std::int64_t>(1,
                                 std::int64_t(rng.exponential(1.0 /
                                                              repair_mean)));
      outage::OutageRecord rec;
      rec.announce_time = outage::kUnknown;  // surprise failure
      rec.start_time = start;
      rec.end_time = start + repair;
      rec.type = outage::OutageType::kCpuFailure;
      rec.nodes_affected = 1;
      rec.components = {node};
      log.records.push_back(std::move(rec));
      t = double(start + repair);  // a down node cannot fail again
    }
  }
  // Per-node generation emits in node order; the stable sort makes the
  // final order (start_time, node) — deterministic and merge-friendly.
  log.sort_by_start();
  return log;
}

const char* overrun_policy_name(OverrunPolicy policy) {
  switch (policy) {
    case OverrunPolicy::kExtend:
      return "extend";
    case OverrunPolicy::kKill:
      return "kill";
    case OverrunPolicy::kGrace:
      return "grace";
  }
  return "extend";
}

std::optional<OverrunPolicy> overrun_policy_from_name(std::string_view name) {
  if (name == "extend") return OverrunPolicy::kExtend;
  if (name == "kill") return OverrunPolicy::kKill;
  if (name == "grace") return OverrunPolicy::kGrace;
  return std::nullopt;
}

}  // namespace pjsb::sim::fault
