// Deterministic fault injection and recovery policy configuration.
//
// FaultModel describes per-node crash/repair behavior (exponential
// mean time between failures, exponential repair durations) and a seed;
// generate_crashes turns it into an outage::OutageLog of surprise
// single-node failures, the delivery mechanism the engine already
// understands. Each node draws from its own derive_seed(seed, node)
// stream, so the schedule depends only on (seed, horizon, nodes) —
// never on thread count or evaluation order — and decision traces stay
// byte-identical at any campaign parallelism.
//
// RecoveryConfig describes what the engine does with the victims: the
// checkpoint/restart parameters jobs inherit (batsched4-style
// checkpoint_interval / dump_time / read_time), the resubmit retry
// limit and backoff, and the walltime-overrun policy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/outage/record.hpp"

namespace pjsb::sim::fault {

/// Per-node crash process. seed == 0 means "faults disabled" — the
/// uniform convention across SimulationSpec, campaigns and the tools.
struct FaultModel {
  std::uint64_t seed = 0;
  /// Per-node mean time between failures, seconds.
  std::int64_t mtbf_seconds = 7 * 86400;
  /// Mean repair duration, seconds (exponential, floored at 1s).
  std::int64_t repair_mean_seconds = 4 * 3600;

  bool enabled() const { return seed != 0; }
};

/// Generate the crash schedule over [0, horizon) for `total_nodes`
/// nodes. Every record is a surprise (unannounced) single-node
/// kCpuFailure; a node that is down does not fail again until repaired
/// (the per-node clock advances past each repair window). Records are
/// ordered by start time with node id as the tie-break.
outage::OutageLog generate_crashes(const FaultModel& model,
                                   std::int64_t horizon,
                                   std::int64_t total_nodes);

/// What happens when a running job's walltime request expires.
enum class OverrunPolicy {
  kExtend,  ///< let it run to its true runtime (historical behavior)
  kKill,    ///< terminate (and drop) the job at its requested walltime
  kGrace,   ///< like kKill, but `grace_seconds` past the walltime
};

const char* overrun_policy_name(OverrunPolicy policy);
std::optional<OverrunPolicy> overrun_policy_from_name(std::string_view name);

/// Engine-level recovery policy. The checkpoint fields are defaults
/// copied onto each admitted job (SWF carries no checkpoint columns);
/// checkpoint_interval == 0 keeps today's restart-from-scratch.
struct RecoveryConfig {
  /// Seconds of computed work between checkpoint dumps (0 = none).
  std::int64_t checkpoint_interval = 0;
  /// Wall seconds one checkpoint dump costs.
  std::int64_t dump_time = 0;
  /// Wall seconds restoring from a checkpoint costs.
  std::int64_t read_time = 0;
  /// Kills after which the job is dropped instead of requeued
  /// (0 = retry forever, today's behavior).
  int retry_limit = 0;
  /// Delay between a kill and the resubmission (0 = immediate requeue,
  /// today's behavior).
  std::int64_t backoff_seconds = 0;
  OverrunPolicy overrun = OverrunPolicy::kExtend;
  /// Extra wall seconds past the walltime under OverrunPolicy::kGrace.
  std::int64_t grace_seconds = 0;

  bool operator==(const RecoveryConfig&) const = default;
};

}  // namespace pjsb::sim::fault
