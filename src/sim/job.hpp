// Simulation-side job state, built from SWF records.
#pragma once

#include <cstdint>
#include <vector>

#include "core/swf/record.hpp"

namespace pjsb::sim {

enum class JobState {
  kPending,   ///< not yet submitted
  kQueued,    ///< submitted, waiting
  kRunning,
  kFinished,
};

/// A job inside the simulator. `runtime` is the ground-truth execution
/// time (hidden from the scheduler); `estimate` is what the user/
/// scheduler sees (SWF field 9). The engine tracks lifecycle fields.
struct SimJob {
  std::int64_t id = 0;
  std::int64_t submit = 0;
  std::int64_t runtime = 1;
  std::int64_t estimate = 1;
  std::int64_t procs = 1;
  std::int64_t user_id = swf::kUnknown;
  std::int64_t executable_id = swf::kUnknown;
  std::int64_t queue_id = swf::kUnknown;
  /// Raw requested time (SWF field 9), unclamped; kUnknown when the
  /// record carries none. `estimate` above is clamped to >= runtime so
  /// schedulers never see a job outlive its estimate; walltime-overrun
  /// policies need the honest request instead.
  std::int64_t walltime = swf::kUnknown;

  // Recovery policy (engine-owned defaults; SWF has no checkpoint
  // columns, so these are copied from EngineConfig::recovery on admit).
  std::int64_t checkpoint_interval = 0;  ///< work seconds per dump (0 = off)
  std::int64_t dump_time = 0;            ///< wall cost of one dump
  std::int64_t read_time = 0;            ///< wall cost of one restore

  // Lifecycle (engine-owned).
  JobState state = JobState::kPending;
  std::int64_t start = -1;  ///< last (successful) start
  std::int64_t end = -1;    ///< completion time
  int restarts = 0;         ///< times killed by outages and requeued
  /// Checkpointed progress carried across restarts, in work seconds;
  /// the next burst computes runtime - completed_work (plus read_time).
  std::int64_t completed_work = 0;
  std::vector<std::int64_t> nodes;  ///< allocation (node ids), if any

  /// Build from an SWF summary record. Estimates default to the runtime
  /// when the record carries none (perfect estimates).
  static SimJob from_record(const swf::JobRecord& r);
};

/// The per-job outcome the metrics layer consumes.
struct CompletedJob {
  std::int64_t id = 0;
  std::int64_t submit = 0;
  std::int64_t start = 0;   ///< final successful start
  std::int64_t end = 0;
  std::int64_t runtime = 0;  ///< requested ground-truth runtime
  std::int64_t estimate = 0;
  std::int64_t procs = 0;
  std::int64_t user_id = swf::kUnknown;
  std::int64_t executable_id = swf::kUnknown;
  std::int64_t queue_id = swf::kUnknown;
  int restarts = 0;

  std::int64_t wait() const { return start - submit; }
  std::int64_t response() const { return end - submit; }
};

}  // namespace pjsb::sim
