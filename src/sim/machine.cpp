#include "sim/machine.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "sim/snapshot/codec.hpp"

namespace pjsb::sim {

Machine::Machine(std::int64_t total_nodes)
    : owner_(std::size_t(total_nodes), kFree),
      free_heap_(std::size_t(total_nodes)),
      in_free_heap_(std::size_t(total_nodes), 1),
      free_(total_nodes) {
  if (total_nodes <= 0) {
    throw std::invalid_argument("Machine: need at least one node");
  }
  // 0..N-1 ascending is already a valid min-heap.
  std::iota(free_heap_.begin(), free_heap_.end(), std::int64_t(0));
}

void Machine::push_free(std::int64_t node) {
  auto& flag = in_free_heap_[std::size_t(node)];
  if (flag) return;
  flag = 1;
  free_heap_.push_back(node);
  std::push_heap(free_heap_.begin(), free_heap_.end(), std::greater<>());
}

std::int64_t Machine::pop_free() {
  while (true) {
    std::pop_heap(free_heap_.begin(), free_heap_.end(), std::greater<>());
    const std::int64_t node = free_heap_.back();
    free_heap_.pop_back();
    in_free_heap_[std::size_t(node)] = 0;
    if (owner_[std::size_t(node)] == kFree) return node;
    // Stale entry: the node went down while listed; drop and continue.
  }
}

std::optional<std::vector<std::int64_t>> Machine::allocate(
    std::int64_t job_id, std::int64_t count) {
  if (count <= 0) throw std::invalid_argument("allocate: count must be > 0");
  if (count > free_) return std::nullopt;
  std::vector<std::int64_t> nodes;
  nodes.reserve(std::size_t(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t node = pop_free();
    owner_[std::size_t(node)] = job_id;
    nodes.push_back(node);
  }
  free_ -= count;
  return nodes;
}

void Machine::release(std::int64_t job_id,
                      std::span<const std::int64_t> nodes) {
  for (std::int64_t n : nodes) {
    auto& o = owner_.at(std::size_t(n));
    if (o == kDown) continue;  // node failed while the job ran
    if (o != job_id) {
      throw std::logic_error("release: node not owned by job");
    }
    o = kFree;
    ++free_;
    push_free(n);
  }
}

std::int64_t Machine::take_down(std::int64_t node) {
  auto& o = owner_.at(std::size_t(node));
  const std::int64_t prev = o;
  if (prev == kDown) return kDown;
  // A free node keeps its (now stale) heap entry; pop_free discards it.
  if (prev == kFree) --free_;
  o = kDown;
  ++down_;
  return prev;
}

void Machine::bring_up(std::int64_t node) {
  auto& o = owner_.at(std::size_t(node));
  if (o != kDown) throw std::logic_error("bring_up: node is not down");
  o = kFree;
  --down_;
  ++free_;
  push_free(node);
}

std::int64_t Machine::owner(std::int64_t node) const {
  return owner_.at(std::size_t(node));
}

void Machine::save_state(snapshot::Writer& w) const {
  w.u64(owner_.size());
  for (std::int64_t o : owner_) w.i64(o);
}

void Machine::load_state(snapshot::Reader& r) {
  const std::uint64_t n = r.u64();
  if (n != owner_.size()) {
    throw std::runtime_error("Machine::load_state: node count mismatch");
  }
  free_ = 0;
  down_ = 0;
  free_heap_.clear();
  in_free_heap_.assign(owner_.size(), 0);
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    owner_[i] = r.i64();
    if (owner_[i] == kFree) {
      ++free_;
      free_heap_.push_back(std::int64_t(i));
      in_free_heap_[i] = 1;
    } else if (owner_[i] == kDown) {
      ++down_;
    }
  }
  // Ascending node ids are already a valid min-heap.
}

}  // namespace pjsb::sim
