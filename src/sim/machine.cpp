#include "sim/machine.hpp"

#include <stdexcept>

namespace pjsb::sim {

Machine::Machine(std::int64_t total_nodes)
    : owner_(std::size_t(total_nodes), kFree), free_(total_nodes) {
  if (total_nodes <= 0) {
    throw std::invalid_argument("Machine: need at least one node");
  }
}

std::optional<std::vector<std::int64_t>> Machine::allocate(
    std::int64_t job_id, std::int64_t count) {
  if (count <= 0) throw std::invalid_argument("allocate: count must be > 0");
  if (count > free_) return std::nullopt;
  std::vector<std::int64_t> nodes;
  nodes.reserve(std::size_t(count));
  for (std::size_t i = 0; i < owner_.size() &&
                          std::int64_t(nodes.size()) < count; ++i) {
    if (owner_[i] == kFree) {
      owner_[i] = job_id;
      nodes.push_back(std::int64_t(i));
    }
  }
  free_ -= count;
  return nodes;
}

void Machine::release(std::int64_t job_id,
                      std::span<const std::int64_t> nodes) {
  for (std::int64_t n : nodes) {
    auto& o = owner_.at(std::size_t(n));
    if (o == kDown) continue;  // node failed while the job ran
    if (o != job_id) {
      throw std::logic_error("release: node not owned by job");
    }
    o = kFree;
    ++free_;
  }
}

std::int64_t Machine::take_down(std::int64_t node) {
  auto& o = owner_.at(std::size_t(node));
  const std::int64_t prev = o;
  if (prev == kDown) return kDown;
  if (prev == kFree) --free_;
  o = kDown;
  ++down_;
  return prev;
}

void Machine::bring_up(std::int64_t node) {
  auto& o = owner_.at(std::size_t(node));
  if (o != kDown) throw std::logic_error("bring_up: node is not down");
  o = kFree;
  --down_;
  ++free_;
}

std::int64_t Machine::owner(std::int64_t node) const {
  return owner_.at(std::size_t(node));
}

}  // namespace pjsb::sim
