// Machine model: a space-shared parallel machine with per-node state.
//
// Node-level tracking (rather than just a free counter) is what lets
// outages hit specific components — "which nodes went down" — and kill
// exactly the jobs running there, per section 2.2 of the paper.
//
// Allocation draws from a free-list kept as a min-heap of node ids, so
// starting a job costs O(count log N) instead of scanning every node,
// while preserving the exact first-fit (lowest-id-first) placement of
// the naive scan — outage victim selection stays reproducible across
// implementations.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace pjsb::sim::snapshot {
class Writer;
class Reader;
}  // namespace pjsb::sim::snapshot

namespace pjsb::sim {

/// Owner id stored per node; kFree / kDown are sentinels.
inline constexpr std::int64_t kFree = -1;
inline constexpr std::int64_t kDown = -2;

class Machine {
 public:
  explicit Machine(std::int64_t total_nodes);

  std::int64_t total_nodes() const { return std::int64_t(owner_.size()); }
  std::int64_t free_nodes() const { return free_; }
  std::int64_t down_nodes() const { return down_; }
  std::int64_t busy_nodes() const {
    return total_nodes() - free_ - down_;
  }
  /// Nodes currently usable (free + busy).
  std::int64_t up_nodes() const { return total_nodes() - down_; }

  /// Allocate `count` free nodes to `job_id` (first fit: the lowest-
  /// numbered free nodes, in increasing order). Returns the node ids,
  /// or nullopt if not enough free nodes.
  std::optional<std::vector<std::int64_t>> allocate(std::int64_t job_id,
                                                    std::int64_t count);
  /// Return `nodes` to the free pool. Nodes that went down while the
  /// job ran (owner is now kDown) are skipped silently — the outage
  /// owns them until bring_up. Throws std::logic_error if a node is
  /// owned by a different job (double release / bookkeeping bug).
  void release(std::int64_t job_id, std::span<const std::int64_t> nodes);

  /// Take a node out of service. Returns the previous owner's job id if
  /// the node was allocated (the engine kills that job), kFree if it
  /// was idle (it leaves the free pool), or kDown if it was already
  /// down (idempotent; counters unchanged).
  std::int64_t take_down(std::int64_t node);
  /// Bring a node back into service and return it to the free pool.
  /// The node must currently be down; any pre-outage owner was already
  /// killed at take_down time, so it always comes back as free.
  void bring_up(std::int64_t node);

  /// Owner of a node (job id, kFree, or kDown).
  std::int64_t owner(std::int64_t node) const;

  /// Serialize per-node ownership. Only owner_ is written: the free
  /// list is rebuilt canonically on load, which is allocation-
  /// equivalent — pop_free always returns the lowest-numbered free
  /// node regardless of stale heap entries.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  /// Add `node` to the free-list heap unless it already has an entry.
  void push_free(std::int64_t node);
  /// Pop the lowest-numbered genuinely free node. Entries going stale
  /// (node taken down while listed) are discarded lazily. Requires
  /// free_ > 0.
  std::int64_t pop_free();

  std::vector<std::int64_t> owner_;
  /// Min-heap of candidate free node ids (std::greater comparator).
  /// Lazy deletion: an entry may be stale; in_free_heap_ guarantees at
  /// most one entry per node, and pop_free() validates against owner_.
  std::vector<std::int64_t> free_heap_;
  std::vector<std::uint8_t> in_free_heap_;
  std::int64_t free_ = 0;
  std::int64_t down_ = 0;
};

}  // namespace pjsb::sim
