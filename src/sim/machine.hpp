// Machine model: a space-shared parallel machine with per-node state.
//
// Node-level tracking (rather than just a free counter) is what lets
// outages hit specific components — "which nodes went down" — and kill
// exactly the jobs running there, per section 2.2 of the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace pjsb::sim {

/// Owner id stored per node; kFree / kDown are sentinels.
inline constexpr std::int64_t kFree = -1;
inline constexpr std::int64_t kDown = -2;

class Machine {
 public:
  explicit Machine(std::int64_t total_nodes);

  std::int64_t total_nodes() const { return std::int64_t(owner_.size()); }
  std::int64_t free_nodes() const { return free_; }
  std::int64_t down_nodes() const { return down_; }
  std::int64_t busy_nodes() const {
    return total_nodes() - free_ - down_;
  }
  /// Nodes currently usable (free + busy).
  std::int64_t up_nodes() const { return total_nodes() - down_; }

  /// Allocate `count` free nodes to `job_id` (first fit). Returns the
  /// node ids, or nullopt if not enough free nodes.
  std::optional<std::vector<std::int64_t>> allocate(std::int64_t job_id,
                                                    std::int64_t count);
  /// Release the given nodes (must be owned by `job_id`).
  void release(std::int64_t job_id, std::span<const std::int64_t> nodes);

  /// Take a node down. Returns the previous owner's job id if the node
  /// was allocated (the engine kills that job), or kFree/kDown.
  std::int64_t take_down(std::int64_t node);
  /// Bring a node back into service (must currently be down).
  void bring_up(std::int64_t node);

  /// Owner of a node (job id, kFree, or kDown).
  std::int64_t owner(std::int64_t node) const;

 private:
  std::vector<std::int64_t> owner_;
  std::int64_t free_ = 0;
  std::int64_t down_ = 0;
};

}  // namespace pjsb::sim
