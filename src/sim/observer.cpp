#include "sim/observer.hpp"

#include <ostream>

namespace pjsb::sim {

void SimObserver::on_job_complete(const CompletedJob&) {}
void SimObserver::on_decision(const Decision&) {}
void SimObserver::on_outage(const outage::OutageRecord&, OutagePhase) {}
void SimObserver::on_end(const EngineStats&) {}
void SimObserver::on_job_submit(std::int64_t, const SimJob&) {}
void SimObserver::on_job_kill(std::int64_t, const SimJob&, const KillInfo&) {}
void SimObserver::on_job_restore(std::int64_t, const SimJob&, std::int64_t) {}
void SimObserver::on_job_drop(std::int64_t, const SimJob&, DropReason) {}
void SimObserver::on_step(const StepSnapshot&) {}

ObserverList& ObserverList::add(SimObserver& observer) {
  observers_.push_back(&observer);
  return *this;
}

void ObserverList::on_job_complete(const CompletedJob& job) {
  for (auto* o : observers_) o->on_job_complete(job);
}

void ObserverList::on_decision(const Decision& decision) {
  for (auto* o : observers_) o->on_decision(decision);
}

void ObserverList::on_outage(const outage::OutageRecord& rec,
                             OutagePhase phase) {
  for (auto* o : observers_) o->on_outage(rec, phase);
}

void ObserverList::on_end(const EngineStats& stats) {
  for (auto* o : observers_) o->on_end(stats);
}

void ObserverList::on_job_submit(std::int64_t time, const SimJob& job) {
  for (auto* o : observers_) o->on_job_submit(time, job);
}

void ObserverList::on_job_kill(std::int64_t time, const SimJob& job,
                               const KillInfo& info) {
  for (auto* o : observers_) o->on_job_kill(time, job, info);
}

void ObserverList::on_job_restore(std::int64_t time, const SimJob& job,
                                  std::int64_t resumed_work) {
  for (auto* o : observers_) o->on_job_restore(time, job, resumed_work);
}

void ObserverList::on_job_drop(std::int64_t time, const SimJob& job,
                               DropReason reason) {
  for (auto* o : observers_) o->on_job_drop(time, job, reason);
}

void ObserverList::on_step(const StepSnapshot& snapshot) {
  for (auto* o : observers_) o->on_step(snapshot);
}

void FunctionObserver::on_job_complete(const CompletedJob& job) {
  if (job_complete) job_complete(job);
}

void FunctionObserver::on_decision(const Decision& d) {
  if (decision) decision(d);
}

void FunctionObserver::on_outage(const outage::OutageRecord& rec,
                                 OutagePhase phase) {
  if (outage) outage(rec, phase);
}

void FunctionObserver::on_end(const EngineStats& stats) {
  if (end) end(stats);
}

void FunctionObserver::on_job_submit(std::int64_t time, const SimJob& job) {
  if (job_submit) job_submit(time, job);
}

void FunctionObserver::on_job_kill(std::int64_t time, const SimJob& job,
                                   const KillInfo& info) {
  if (job_kill) job_kill(time, job, info);
}

void FunctionObserver::on_job_restore(std::int64_t time, const SimJob& job,
                                      std::int64_t resumed_work) {
  if (job_restore) job_restore(time, job, resumed_work);
}

void FunctionObserver::on_job_drop(std::int64_t time, const SimJob& job,
                                   DropReason reason) {
  if (job_drop) job_drop(time, job, reason);
}

void FunctionObserver::on_step(const StepSnapshot& snapshot) {
  if (step) step(snapshot);
}

CompletionCsvObserver::CompletionCsvObserver(std::ostream& os, bool header)
    : os_(os) {
  if (header) os_ << "id,submit,start,end,procs,restarts\n";
}

void CompletionCsvObserver::on_job_complete(const CompletedJob& job) {
  os_ << job.id << ',' << job.submit << ',' << job.start << ',' << job.end
      << ',' << job.procs << ',' << job.restarts << '\n';
}

}  // namespace pjsb::sim
