// Composable simulation observers.
//
// The engine's per-job output used to be a single completion
// std::function — one consumer, one event. SimObserver turns the
// output side of a replay into a composable interface: any number of
// observers (predictor trainers, streaming CSV dumps, online metrics)
// attach to one run and receive decision, completion, outage and
// end-of-run events. Observers are non-owning — the caller keeps them
// alive for the duration of the run — and are notified in attach
// order, deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "core/outage/record.hpp"
#include "sim/job.hpp"

namespace pjsb::sim {

struct EngineStats;

/// A scheduling decision: the engine started a job.
struct Decision {
  std::int64_t time = 0;
  std::int64_t job_id = 0;
  std::int64_t procs = 0;
  /// Time-sharing start (no machine node allocation; the scheduler
  /// does its own space accounting and may revise the end time).
  bool virtual_start = false;
};

/// Outage lifecycle stage an on_outage notification reports.
enum class OutagePhase { kAnnounced, kStarted, kEnded };

/// Observer interface. Handlers default to no-ops so consumers
/// implement only what they need. `on_end` fires once per replay(),
/// after the run drains (engines driven incrementally via step()/
/// run_until() fire it only through Engine::notify_run_end).
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual void on_job_complete(const CompletedJob& job);
  virtual void on_decision(const Decision& decision);
  virtual void on_outage(const outage::OutageRecord& rec, OutagePhase phase);
  virtual void on_end(const EngineStats& stats);
};

/// Fan-out: forwards every event to each added observer, in add order.
class ObserverList final : public SimObserver {
 public:
  ObserverList& add(SimObserver& observer);
  bool empty() const { return observers_.empty(); }
  std::size_t size() const { return observers_.size(); }

  void on_job_complete(const CompletedJob& job) override;
  void on_decision(const Decision& decision) override;
  void on_outage(const outage::OutageRecord& rec,
                 OutagePhase phase) override;
  void on_end(const EngineStats& stats) override;

 private:
  std::vector<SimObserver*> observers_;
};

/// Adapter for callers that just want lambdas: any unset function is a
/// no-op. The deprecated completion_observer path wraps into this.
class FunctionObserver final : public SimObserver {
 public:
  std::function<void(const CompletedJob&)> job_complete;
  std::function<void(const Decision&)> decision;
  std::function<void(const outage::OutageRecord&, OutagePhase)> outage;
  std::function<void(const EngineStats&)> end;

  void on_job_complete(const CompletedJob& job) override;
  void on_decision(const Decision& decision) override;
  void on_outage(const outage::OutageRecord& rec,
                 OutagePhase phase) override;
  void on_end(const EngineStats& stats) override;
};

/// Streaming per-job CSV dump ("id,submit,start,end,procs,restarts"),
/// written in completion order as jobs finish — constant memory, for
/// runs too large to retain per-job records. Completion order is
/// deterministic for a given spec, so the output is byte-comparable
/// across runs.
class CompletionCsvObserver final : public SimObserver {
 public:
  /// Writes the header line immediately unless `header` is false.
  explicit CompletionCsvObserver(std::ostream& os, bool header = true);

  void on_job_complete(const CompletedJob& job) override;

 private:
  std::ostream& os_;
};

}  // namespace pjsb::sim
