// Composable simulation observers.
//
// The engine's per-job output used to be a single completion
// std::function — one consumer, one event. SimObserver turns the
// output side of a replay into a composable interface: any number of
// observers (predictor trainers, streaming CSV dumps, online metrics)
// attach to one run and receive decision, completion, outage and
// end-of-run events. Observers are non-owning — the caller keeps them
// alive for the duration of the run — and are notified in attach
// order, deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "core/outage/record.hpp"
#include "sim/job.hpp"
#include "sim/provenance.hpp"

namespace pjsb::sim {

struct EngineStats;

/// A scheduling decision: the engine started a job.
struct Decision {
  std::int64_t time = 0;
  std::int64_t job_id = 0;
  std::int64_t procs = 0;
  /// Time-sharing start (no machine node allocation; the scheduler
  /// does its own space accounting and may revise the end time).
  bool virtual_start = false;
  /// Why the scheduler chose this job now (kUnspecified when the
  /// policy did not annotate; see SchedulerContext::annotate_start).
  /// Defaulted so the canonical (time, job, procs, virtual) tuple —
  /// and every golden decision CSV derived from it — is unchanged.
  StartProvenance provenance = StartProvenance::kUnspecified;
  /// For kReservation starts: the start time the reservation promised
  /// (equal to `time` when a promise was compressed to "now").
  /// -1 when not applicable.
  std::int64_t reserved_start = -1;
};

/// Outage lifecycle stage an on_outage notification reports.
enum class OutagePhase { kAnnounced, kStarted, kEnded };

/// Why a running job was killed.
enum class KillReason {
  kOutage,    ///< a node failure / outage took its allocation down
  kPreempt,   ///< the scheduler or meta layer killed it explicitly
  kWalltime,  ///< walltime-overrun policy terminated it at its deadline
};

/// Accounting attached to an on_job_kill notification.
struct KillInfo {
  KillReason reason = KillReason::kOutage;
  /// Node-seconds irrecoverably lost by this kill (elapsed minus the
  /// checkpointed portion, times procs).
  std::int64_t lost_node_seconds = 0;
  /// Work seconds preserved by checkpoints completed during this burst
  /// (0 without checkpointing).
  std::int64_t saved_work = 0;
  /// Kill count for this job including this one (== job.restarts).
  int attempt = 0;
  /// False when the job will not be resubmitted (dropped).
  bool will_requeue = true;
  /// When the resubmission lands (== time without backoff); -1 when
  /// will_requeue is false.
  std::int64_t requeue_at = -1;
};

/// Why a job was abandoned without completing.
enum class DropReason {
  kRetryLimit,       ///< killed retry_limit times, gave up
  kWalltimeOverrun,  ///< overrun=kill/grace deadline expired
  kRequeueDisabled,  ///< engine runs with requeue_killed_jobs off
  kCancelled,        ///< explicit Engine::cancel_job (user request)
};

/// Machine/queue accounting at the end of one event timestamp, after
/// every event at that time was processed and the scheduler pass ran.
/// This is the engine's per-event node accounting made observable, so
/// external validators can cross-check their own bookkeeping against
/// the machine's without reaching into the engine.
struct StepSnapshot {
  std::int64_t time = 0;
  std::int64_t free_nodes = 0;
  std::int64_t busy_nodes = 0;
  std::int64_t down_nodes = 0;
  std::size_t queued_jobs = 0;
  std::size_t running_jobs = 0;

  std::int64_t total_nodes() const {
    return free_nodes + busy_nodes + down_nodes;
  }
  std::int64_t up_nodes() const { return free_nodes + busy_nodes; }
};

/// Observer interface. Handlers default to no-ops so consumers
/// implement only what they need. `on_end` fires once per replay(),
/// after the run drains (engines driven incrementally via step()/
/// run_until() fire it only through Engine::notify_run_end).
///
/// Job references passed to on_job_submit / on_job_kill point into
/// engine-owned state and are valid only for the duration of the call;
/// handlers must not mutate the engine (submit_job etc.) from inside a
/// notification.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual void on_job_complete(const CompletedJob& job);
  virtual void on_decision(const Decision& decision);
  virtual void on_outage(const outage::OutageRecord& rec, OutagePhase phase);
  virtual void on_end(const EngineStats& stats);

  /// A job entered the queue at `time` — a fresh submission or a
  /// requeue after a failure-induced kill (job.restarts > 0 tells the
  /// two apart).
  virtual void on_job_submit(std::int64_t time, const SimJob& job);
  /// A running job was killed at `time`. `info` carries the reason and
  /// the lost/saved work split; when info.will_requeue an on_job_submit
  /// for the same id follows (at info.requeue_at), otherwise an
  /// on_job_drop fires immediately after.
  virtual void on_job_kill(std::int64_t time, const SimJob& job,
                           const KillInfo& info);
  /// A job started a burst that resumes from a checkpoint: resumed_work
  /// seconds of its runtime are already banked and the burst begins
  /// with a read_time restore. Fires right after the on_decision for
  /// the same start.
  virtual void on_job_restore(std::int64_t time, const SimJob& job,
                              std::int64_t resumed_work);
  /// A job was abandoned at `time` without completing; it will never
  /// produce an on_job_complete.
  virtual void on_job_drop(std::int64_t time, const SimJob& job,
                           DropReason reason);
  /// End of one event timestamp: all events at snapshot.time were
  /// processed and the scheduler made its decisions.
  virtual void on_step(const StepSnapshot& snapshot);
};

/// Fan-out: forwards every event to each added observer, in add order.
class ObserverList final : public SimObserver {
 public:
  ObserverList& add(SimObserver& observer);
  bool empty() const { return observers_.empty(); }
  std::size_t size() const { return observers_.size(); }

  void on_job_complete(const CompletedJob& job) override;
  void on_decision(const Decision& decision) override;
  void on_outage(const outage::OutageRecord& rec,
                 OutagePhase phase) override;
  void on_end(const EngineStats& stats) override;
  void on_job_submit(std::int64_t time, const SimJob& job) override;
  void on_job_kill(std::int64_t time, const SimJob& job,
                   const KillInfo& info) override;
  void on_job_restore(std::int64_t time, const SimJob& job,
                      std::int64_t resumed_work) override;
  void on_job_drop(std::int64_t time, const SimJob& job,
                   DropReason reason) override;
  void on_step(const StepSnapshot& snapshot) override;

 private:
  std::vector<SimObserver*> observers_;
};

/// Adapter for callers that just want lambdas: any unset function is a
/// no-op. The deprecated completion_observer path wraps into this.
class FunctionObserver final : public SimObserver {
 public:
  std::function<void(const CompletedJob&)> job_complete;
  std::function<void(const Decision&)> decision;
  std::function<void(const outage::OutageRecord&, OutagePhase)> outage;
  std::function<void(const EngineStats&)> end;
  std::function<void(std::int64_t, const SimJob&)> job_submit;
  std::function<void(std::int64_t, const SimJob&, const KillInfo&)> job_kill;
  std::function<void(std::int64_t, const SimJob&, std::int64_t)> job_restore;
  std::function<void(std::int64_t, const SimJob&, DropReason)> job_drop;
  std::function<void(const StepSnapshot&)> step;

  void on_job_complete(const CompletedJob& job) override;
  void on_decision(const Decision& decision) override;
  void on_outage(const outage::OutageRecord& rec,
                 OutagePhase phase) override;
  void on_end(const EngineStats& stats) override;
  void on_job_submit(std::int64_t time, const SimJob& job) override;
  void on_job_kill(std::int64_t time, const SimJob& job,
                   const KillInfo& info) override;
  void on_job_restore(std::int64_t time, const SimJob& job,
                      std::int64_t resumed_work) override;
  void on_job_drop(std::int64_t time, const SimJob& job,
                   DropReason reason) override;
  void on_step(const StepSnapshot& snapshot) override;
};

/// Streaming per-job CSV dump ("id,submit,start,end,procs,restarts"),
/// written in completion order as jobs finish — constant memory, for
/// runs too large to retain per-job records. Completion order is
/// deterministic for a given spec, so the output is byte-comparable
/// across runs.
class CompletionCsvObserver final : public SimObserver {
 public:
  /// Writes the header line immediately unless `header` is false.
  explicit CompletionCsvObserver(std::ostream& os, bool header = true);

  void on_job_complete(const CompletedJob& job) override;

 private:
  std::ostream& os_;
};

}  // namespace pjsb::sim
