// Engine phase timing hooks.
//
// ROADMAP item 4 (attacking the replay throughput ceiling) needs to
// know where a replay spends wall-clock: draining the event queue,
// running scheduler passes, or notifying observers. The engine times
// these sections only when a listener is installed — a single null
// check per step otherwise — and reports wall-clock durations tagged
// with the *simulated* time they occurred at, so a profile lines up
// with the trace and time-series streams.
//
// The listener lives in sim/ (not obs/) to keep the dependency arrow
// pointing one way: obs builds on sim's interfaces, never the reverse.
#pragma once

#include <cstdint>

namespace pjsb::sim {

/// The engine sections a PhaseListener can observe. One step of the
/// event loop is: process every event at the current timestamp
/// (kEvents), run the scheduler pass if anything changed
/// (kSchedulerPass), then fan out the step snapshot (kObserverStep).
enum class EnginePhase : std::uint8_t {
  kEvents = 0,
  kSchedulerPass = 1,
  kObserverStep = 2,
};

inline const char* phase_name(EnginePhase p) {
  switch (p) {
    case EnginePhase::kEvents:
      return "events";
    case EnginePhase::kSchedulerPass:
      return "schedule";
    case EnginePhase::kObserverStep:
      return "observers";
  }
  return "unknown";
}

inline constexpr std::size_t kEnginePhaseCount = 3;

/// Wall-clock phase listener. The engine calls on_phase once per timed
/// section, after it finishes, with the simulated time the section ran
/// at and its wall-clock duration. Implementations must be cheap — the
/// call sits on the hot event loop.
class PhaseListener {
 public:
  virtual ~PhaseListener() = default;
  virtual void on_phase(EnginePhase phase, std::int64_t sim_time,
                        std::uint64_t wall_ns) = 0;
};

}  // namespace pjsb::sim
