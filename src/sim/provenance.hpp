// Start provenance: *why* the scheduler started a job at this instant.
//
// The paper's methodology is about comparing scheduling strategies on
// standard workloads; a decision trace that only says "job 17 started
// at t=300" cannot distinguish a backfill move from a queue-head start
// or a promoted reservation. Schedulers annotate each start through
// SchedulerContext::annotate_start and the engine stamps the reason
// onto the emitted sim::Decision, so traces, telemetry counters and
// the trace-summary tool can break starts down by cause.
#pragma once

#include <cstdint>
#include <string_view>

namespace pjsb::sim {

/// Why a job started now. Policies that predate the annotation (or
/// external custom policies) leave kUnspecified; the trace keeps the
/// value verbatim rather than guessing.
enum class StartProvenance : std::uint8_t {
  kUnspecified = 0,
  /// Started in queue order: the job was the first runnable job by the
  /// policy's own ordering (arrival order for FCFS/EASY/conservative,
  /// policy order for SJF) and capacity was free.
  kQueueHead = 1,
  /// Started ahead of at least one earlier-queued job, into a capacity
  /// hole that did not delay any held reservation.
  kBackfill = 2,
  /// Started by (or promoted from) a reservation: the job held a
  /// promised start slot, and either the slot came due or capacity
  /// changes compressed it to "now". Decision::reserved_start carries
  /// the promised slot.
  kReservation = 3,
  /// Virtual start into a time-sharing slot (gang scheduling); no
  /// machine nodes were allocated.
  kTimeshare = 4,
};

/// Stable lower-case token for traces and reports.
inline const char* provenance_name(StartProvenance p) {
  switch (p) {
    case StartProvenance::kQueueHead:
      return "queue_head";
    case StartProvenance::kBackfill:
      return "backfill";
    case StartProvenance::kReservation:
      return "reservation";
    case StartProvenance::kTimeshare:
      return "timeshare";
    case StartProvenance::kUnspecified:
      break;
  }
  return "unspecified";
}

/// Inverse of provenance_name; kUnspecified for unknown tokens (trace
/// readers must tolerate fields from newer schema revisions).
inline StartProvenance provenance_from_name(std::string_view name) {
  if (name == "queue_head") return StartProvenance::kQueueHead;
  if (name == "backfill") return StartProvenance::kBackfill;
  if (name == "reservation") return StartProvenance::kReservation;
  if (name == "timeshare") return StartProvenance::kTimeshare;
  return StartProvenance::kUnspecified;
}

/// Number of distinct StartProvenance values (array sizing for
/// per-provenance counters).
inline constexpr std::size_t kProvenanceCount = 5;

}  // namespace pjsb::sim
