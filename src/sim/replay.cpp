#include "sim/replay.hpp"

namespace pjsb::sim {

ReplayResult replay(const swf::Trace& trace,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const ReplayOptions& options) {
  EngineConfig config;
  config.nodes =
      options.nodes.value_or(trace.header.max_nodes.value_or(kDefaultNodes));
  config.closed_loop = options.closed_loop;
  config.deliver_announcements = options.deliver_announcements;

  Engine engine(config, std::move(scheduler));
  if (options.completion_observer) {
    engine.set_completion_observer(options.completion_observer);
  }
  engine.load_trace(trace);
  if (options.outages) engine.add_outages(*options.outages);
  engine.run();

  ReplayResult result;
  result.completed = engine.completed();
  result.stats = engine.stats();
  result.nodes = config.nodes;
  return result;
}

ReplayResult replay(swf::JobSource& source,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const StreamReplayOptions& options) {
  EngineConfig config;
  config.nodes = options.nodes.value_or(
      source.header().max_nodes.value_or(kDefaultNodes));
  config.closed_loop = options.closed_loop;
  config.deliver_announcements = options.deliver_announcements;
  config.retain_completed = options.retain_completed;
  config.recycle_slots = options.recycle_slots;

  Engine engine(config, std::move(scheduler));
  if (options.completion_observer) {
    engine.set_completion_observer(options.completion_observer);
  }
  if (options.outages) engine.add_outages(*options.outages);
  JobSourceOptions source_options;
  source_options.lookahead = options.lookahead;
  source_options.max_jobs = options.max_jobs;
  engine.set_job_source(source, source_options);
  engine.run();

  ReplayResult result;
  result.completed = engine.completed();
  result.stats = engine.stats();
  result.nodes = config.nodes;
  result.source_pulled = engine.source_pulled();
  result.source_clamped = engine.source_clamped();
  return result;
}

}  // namespace pjsb::sim
