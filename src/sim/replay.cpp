#include "sim/replay.hpp"

#include <stdexcept>

#include "obs/sinks.hpp"
#include "sched/registry.hpp"

namespace pjsb::sim {

EngineConfig spec_engine_config(const SimulationSpec& spec,
                                std::int64_t header_nodes) {
  EngineConfig config;
  config.nodes = spec.nodes.value_or(header_nodes);
  config.closed_loop = spec.closed_loop;
  config.deliver_announcements = spec.deliver_announcements;
  config.retain_completed = spec.retain_completed;
  config.recycle_slots = spec.recycle_slots;
  config.recovery = spec.recovery_config();
  return config;
}

swf::IngestOptions ingest_options(const SimulationSpec& spec) {
  swf::IngestOptions options;
  options.fast = spec.parser == "fast";
  options.threads = spec.threads;
  return options;
}

std::unique_ptr<swf::TraceReader> open_trace_source(
    const std::string& path, const SimulationSpec& spec) {
  return swf::open_trace_source(path, ingest_options(spec));
}

swf::ReadResult load_trace(const std::string& path,
                           const SimulationSpec& spec) {
  if (spec.parser == "fast") {
    swf::FastReaderOptions options;
    options.threads = spec.threads;
    return swf::fast_read_swf_file(path, options);
  }
  return swf::read_swf_file(path);
}

namespace {

void attach_hooks(Engine& engine, const ReplayHooks& hooks) {
  if (hooks.outages) engine.add_outages(*hooks.outages);
  for (SimObserver* observer : hooks.observers) {
    engine.add_observer(*observer);
  }
}

}  // namespace

ReplayResult replay(const swf::Trace& trace,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const SimulationSpec& spec, const ReplayHooks& hooks) {
  // The caller built the scheduler instance; spec.scheduler is a free
  // label here, so skip its registry resolution (the spec-only
  // overloads resolve it when they instantiate).
  spec.validate(/*resolve_scheduler=*/false);
  if (spec.max_jobs != 0) {
    throw std::invalid_argument(
        "replay: max_jobs is a streaming-source brake; a materialized "
        "trace replays whole");
  }
  const auto config =
      spec_engine_config(spec, trace.header.max_nodes.value_or(kDefaultNodes));

  // Observability sinks named in the spec (no-op bundle when none):
  // open files before the run so a bad path fails fast.
  obs::SinkSet sinks;
  sinks.open(spec);

  Engine engine(config, std::move(scheduler));
  attach_hooks(engine, hooks);
  // The seeded crash schedule rides the outage delivery mechanism; it
  // is a pure function of (seed, horizon, nodes), so the same spec
  // reproduces the same failures regardless of who replays it.
  outage::OutageLog crashes;
  if (spec.faults != 0) {
    crashes = fault::generate_crashes(spec.fault_model(), trace.horizon(),
                                      config.nodes);
    engine.add_outages(crashes);
  }
  sinks.attach(engine);
  engine.load_trace(trace);
  engine.run();
  engine.notify_run_end();
  sinks.finish();

  ReplayResult result;
  result.completed = engine.completed();
  result.stats = engine.stats();
  result.nodes = config.nodes;
  return result;
}

ReplayResult replay(swf::JobSource& source,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const SimulationSpec& spec, const ReplayHooks& hooks) {
  spec.validate(/*resolve_scheduler=*/false);
  if (spec.faults != 0) {
    throw std::invalid_argument(
        "replay: fault injection needs the workload horizon up front; "
        "faults= is not available on streaming sources");
  }
  const auto config = spec_engine_config(
      spec, source.header().max_nodes.value_or(kDefaultNodes));

  obs::SinkSet sinks;
  sinks.open(spec);

  Engine engine(config, std::move(scheduler));
  attach_hooks(engine, hooks);
  sinks.attach(engine);
  JobSourceOptions source_options;
  source_options.lookahead = spec.lookahead;
  source_options.max_jobs = spec.max_jobs;
  engine.set_job_source(source, source_options);
  engine.run();
  engine.notify_run_end();
  sinks.finish();

  ReplayResult result;
  result.completed = engine.completed();
  result.stats = engine.stats();
  result.nodes = config.nodes;
  result.source_pulled = engine.source_pulled();
  result.source_clamped = engine.source_clamped();
  return result;
}

ReplayResult replay(const swf::Trace& trace, const SimulationSpec& spec,
                    const ReplayHooks& hooks) {
  // The scheduler-instance overload validates the spec.
  return replay(trace, sched::make_scheduler(spec.scheduler), spec, hooks);
}

ReplayResult replay(swf::JobSource& source, const SimulationSpec& spec,
                    const ReplayHooks& hooks) {
  return replay(source, sched::make_scheduler(spec.scheduler), spec, hooks);
}

}  // namespace pjsb::sim
