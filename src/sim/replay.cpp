#include "sim/replay.hpp"

namespace pjsb::sim {

ReplayResult replay(const swf::Trace& trace,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const ReplayOptions& options) {
  EngineConfig config;
  config.nodes =
      options.nodes.value_or(trace.header.max_nodes.value_or(kDefaultNodes));
  config.closed_loop = options.closed_loop;
  config.deliver_announcements = options.deliver_announcements;

  Engine engine(config, std::move(scheduler));
  if (options.completion_observer) {
    engine.set_completion_observer(options.completion_observer);
  }
  engine.load_trace(trace);
  if (options.outages) engine.add_outages(*options.outages);
  engine.run();

  ReplayResult result;
  result.completed = engine.completed();
  result.stats = engine.stats();
  result.nodes = config.nodes;
  return result;
}

}  // namespace pjsb::sim
