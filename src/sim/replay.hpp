// One-call trace replay: the convenience layer every experiment uses.
//
// Wraps Engine construction, trace loading, optional outage streams and
// the open-loop / closed-loop switch (section 2.2: "accounting logs do
// not include explicit information about feedback, so this effect is
// lost when a log is replayed" — unless fields 17/18 are present and
// closed_loop is set).
//
// Configuration is one sim::SimulationSpec (spec.hpp) for both the
// materialized-trace and the streaming JobSource paths; runtime-only
// attachments (an outage log, observers) ride in ReplayHooks.
#pragma once

#include <memory>
#include <string>

#include "core/outage/record.hpp"
#include "core/swf/fast_reader.hpp"
#include "core/swf/trace.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/observer.hpp"
#include "sim/spec.hpp"

namespace pjsb::sim {

/// Machine size used when neither the caller nor the trace's MaxNodes
/// header specifies one.
inline constexpr std::int64_t kDefaultNodes = 128;

/// The EngineConfig a spec resolves to for a workload whose header
/// advertises `header_nodes` — the exact mapping replay() itself uses,
/// exposed for drivers that construct an Engine by hand (snapshot
/// tooling, incremental meta-layer runs) and must match replay
/// semantics.
EngineConfig spec_engine_config(const SimulationSpec& spec,
                                std::int64_t header_nodes);

/// The ingestion backend a spec's parser=/threads= keys select.
swf::IngestOptions ingest_options(const SimulationSpec& spec);

/// Open a trace file with the spec-selected parser (StreamReader for
/// parser=stream, FastReader for parser=fast) behind the common
/// diagnostic surface. Never throws; check open_failed()/error_count().
std::unique_ptr<swf::TraceReader> open_trace_source(
    const std::string& path, const SimulationSpec& spec);

/// Load a whole trace file with the spec-selected parser —
/// read_swf_file for parser=stream, fast_read_swf_file (threads=N) for
/// parser=fast; results are identical, only speed differs.
swf::ReadResult load_trace(const std::string& path,
                           const SimulationSpec& spec);

/// Runtime attachments for one replay that cannot round-trip through a
/// spec string: an outage stream and the observers receiving events.
/// Everything is non-owning; keep it alive for the run.
struct ReplayHooks {
  const outage::OutageLog* outages = nullptr;
  std::vector<SimObserver*> observers;

  ReplayHooks& with_outages(const outage::OutageLog& log) {
    outages = &log;
    return *this;
  }
  ReplayHooks& observe(SimObserver& observer) {
    observers.push_back(&observer);
    return *this;
  }
};

struct ReplayResult {
  std::vector<CompletedJob> completed;
  EngineStats stats;
  std::int64_t nodes = 0;
  /// Streaming replays only: records pulled / submit-clamped.
  std::uint64_t source_pulled = 0;
  std::uint64_t source_clamped = 0;
};

/// Replay `trace` under `spec` (the scheduler is built from
/// spec.scheduler via the registry). Throws std::invalid_argument on
/// an invalid spec or a nonzero spec.max_jobs (a streaming-only brake).
ReplayResult replay(const swf::Trace& trace, const SimulationSpec& spec,
                    const ReplayHooks& hooks = {});

/// Replay a pull-based job source under `spec` in bounded memory;
/// drains (up to spec.max_jobs of) the source.
ReplayResult replay(swf::JobSource& source, const SimulationSpec& spec,
                    const ReplayHooks& hooks = {});

/// Programmatic-scheduler overloads: the caller supplies the instance
/// (consumed); spec.scheduler is ignored.
ReplayResult replay(const swf::Trace& trace,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const SimulationSpec& spec,
                    const ReplayHooks& hooks = {});
ReplayResult replay(swf::JobSource& source,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const SimulationSpec& spec,
                    const ReplayHooks& hooks = {});

}  // namespace pjsb::sim
