// One-call trace replay: the convenience layer every experiment uses.
//
// Wraps Engine construction, trace loading, optional outage streams and
// the open-loop / closed-loop switch (section 2.2: "accounting logs do
// not include explicit information about feedback, so this effect is
// lost when a log is replayed" — unless fields 17/18 are present and
// closed_loop is set).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/outage/record.hpp"
#include "core/swf/trace.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace pjsb::sim {

/// Machine size used when neither the caller nor the trace's MaxNodes
/// header specifies one.
inline constexpr std::int64_t kDefaultNodes = 128;

struct ReplayOptions {
  /// Machine size; defaults to the trace's MaxNodes header (128 if the
  /// header is absent).
  std::optional<std::int64_t> nodes;
  /// Honor fields 17/18 as submission dependencies.
  bool closed_loop = false;
  /// Outage stream to inject (optional).
  const outage::OutageLog* outages = nullptr;
  /// Deliver outage announcements (outage-aware mode).
  bool deliver_announcements = true;
  /// Observer for online predictor training.
  std::function<void(const CompletedJob&)> completion_observer;
};

/// Options for streaming replay from a JobSource: the ReplayOptions
/// set plus the ingestion-window and memory knobs.
struct StreamReplayOptions {
  /// Machine size; defaults to the source's MaxNodes header (128 if the
  /// header carries none).
  std::optional<std::int64_t> nodes;
  /// Honor fields 17/18 as submission dependencies. Resolved within the
  /// bounded lookahead/history window — see JobSourceOptions.
  bool closed_loop = false;
  /// Outage stream to inject (optional).
  const outage::OutageLog* outages = nullptr;
  /// Deliver outage announcements (outage-aware mode).
  bool deliver_announcements = true;
  /// Observer for online consumers (predictors, streaming CSV dumps,
  /// online metrics). In constant-memory runs this is the only per-job
  /// output channel.
  std::function<void(const CompletedJob&)> completion_observer;

  /// Ingestion window and unbounded-source brake (see JobSourceOptions).
  std::size_t lookahead = 4096;
  std::uint64_t max_jobs = 0;
  /// Keep per-job records in ReplayResult::completed. Turn off together
  /// with recycle_slots for O(running+queued+lookahead) memory.
  bool retain_completed = true;
  bool recycle_slots = false;
};

struct ReplayResult {
  std::vector<CompletedJob> completed;
  EngineStats stats;
  std::int64_t nodes = 0;
  /// Streaming replays only: records pulled / submit-clamped.
  std::uint64_t source_pulled = 0;
  std::uint64_t source_clamped = 0;
};

/// Replay `trace` under `scheduler`. Consumes the scheduler.
ReplayResult replay(const swf::Trace& trace,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const ReplayOptions& options = {});

/// Replay a pull-based job source under `scheduler` in bounded memory.
/// Consumes the scheduler; drains (up to max_jobs of) the source.
ReplayResult replay(swf::JobSource& source,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const StreamReplayOptions& options = {});

}  // namespace pjsb::sim
