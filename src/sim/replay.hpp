// One-call trace replay: the convenience layer every experiment uses.
//
// Wraps Engine construction, trace loading, optional outage streams and
// the open-loop / closed-loop switch (section 2.2: "accounting logs do
// not include explicit information about feedback, so this effect is
// lost when a log is replayed" — unless fields 17/18 are present and
// closed_loop is set).
//
// Configuration is one sim::SimulationSpec (spec.hpp) for both the
// materialized-trace and the streaming JobSource paths; runtime-only
// attachments (an outage log, observers) ride in ReplayHooks. The old
// ReplayOptions / StreamReplayOptions structs survive below as
// deprecated shims over that pair.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/outage/record.hpp"
#include "core/swf/trace.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/observer.hpp"
#include "sim/spec.hpp"

namespace pjsb::sim {

/// Machine size used when neither the caller nor the trace's MaxNodes
/// header specifies one.
inline constexpr std::int64_t kDefaultNodes = 128;

/// Runtime attachments for one replay that cannot round-trip through a
/// spec string: an outage stream and the observers receiving events.
/// Everything is non-owning; keep it alive for the run.
struct ReplayHooks {
  const outage::OutageLog* outages = nullptr;
  std::vector<SimObserver*> observers;

  ReplayHooks& with_outages(const outage::OutageLog& log) {
    outages = &log;
    return *this;
  }
  ReplayHooks& observe(SimObserver& observer) {
    observers.push_back(&observer);
    return *this;
  }
};

struct ReplayResult {
  std::vector<CompletedJob> completed;
  EngineStats stats;
  std::int64_t nodes = 0;
  /// Streaming replays only: records pulled / submit-clamped.
  std::uint64_t source_pulled = 0;
  std::uint64_t source_clamped = 0;
};

/// Replay `trace` under `spec` (the scheduler is built from
/// spec.scheduler via the registry). Throws std::invalid_argument on
/// an invalid spec or a nonzero spec.max_jobs (a streaming-only brake).
ReplayResult replay(const swf::Trace& trace, const SimulationSpec& spec,
                    const ReplayHooks& hooks = {});

/// Replay a pull-based job source under `spec` in bounded memory;
/// drains (up to spec.max_jobs of) the source.
ReplayResult replay(swf::JobSource& source, const SimulationSpec& spec,
                    const ReplayHooks& hooks = {});

/// Programmatic-scheduler overloads: the caller supplies the instance
/// (consumed); spec.scheduler is ignored.
ReplayResult replay(const swf::Trace& trace,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const SimulationSpec& spec,
                    const ReplayHooks& hooks = {});
ReplayResult replay(swf::JobSource& source,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const SimulationSpec& spec,
                    const ReplayHooks& hooks = {});

// ---------------------------------------------------------------------
// DEPRECATED compatibility shims: the pre-SimulationSpec option structs
// and overloads. They forward to the spec-based API and will be removed
// once callers migrate.

struct ReplayOptions {
  std::optional<std::int64_t> nodes;
  bool closed_loop = false;
  const outage::OutageLog* outages = nullptr;
  bool deliver_announcements = true;
  std::function<void(const CompletedJob&)> completion_observer;
};

struct StreamReplayOptions {
  std::optional<std::int64_t> nodes;
  bool closed_loop = false;
  const outage::OutageLog* outages = nullptr;
  bool deliver_announcements = true;
  std::function<void(const CompletedJob&)> completion_observer;
  std::size_t lookahead = 4096;
  std::uint64_t max_jobs = 0;
  bool retain_completed = true;
  bool recycle_slots = false;
};

ReplayResult replay(const swf::Trace& trace,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const ReplayOptions& options = {});
ReplayResult replay(swf::JobSource& source,
                    std::unique_ptr<sched::Scheduler> scheduler,
                    const StreamReplayOptions& options = {});

}  // namespace pjsb::sim
