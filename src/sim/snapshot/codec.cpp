#include "sim/snapshot/codec.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace pjsb::sim::snapshot {

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(char((v >> (8 * i)) & 0xff));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(char((v >> (8 * i)) & 0xff));
  }
}

void Writer::i64(std::int64_t v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view s) {
  u64(s.size());
  out_.append(s.data(), s.size());
}

void Reader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    throw std::runtime_error("snapshot: truncated data");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return std::uint8_t(data_[pos_++]);
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t(std::uint8_t(data_[pos_ + std::size_t(i)]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t(std::uint8_t(data_[pos_ + std::size_t(i)]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t Reader::i64() { return std::bit_cast<std::int64_t>(u64()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw std::runtime_error("snapshot: malformed boolean");
  return v != 0;
}

std::string Reader::str() {
  const std::uint64_t n = u64();
  need(std::size_t(n));
  std::string s(data_.substr(pos_, std::size_t(n)));
  pos_ += std::size_t(n);
  return s;
}

void Reader::expect_done() const {
  if (!done()) {
    throw std::runtime_error("snapshot: trailing bytes after payload");
  }
}

}  // namespace pjsb::sim::snapshot
