// Binary codec for simulation snapshots.
//
// A deliberately tiny, dependency-free serialization layer: fixed-width
// little-endian integers, bit-cast doubles (so floating-point scheduler
// state round-trips bit-exactly), and length-prefixed strings. Both
// sides agree on field order by construction — the format carries no
// self-description beyond the snapshot header's magic + version
// (snapshot.hpp), which is what gates compatibility.
//
// The Reader throws std::runtime_error on truncation or overrun, never
// reads past its buffer, and exposes expect_done() so loaders can
// reject trailing garbage.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pjsb::sim::snapshot {

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(char(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data)
      : data_(data), pos_(0) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Throws std::runtime_error if bytes remain unread.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_;
};

}  // namespace pjsb::sim::snapshot
