// Engine snapshot/restore: the full simulation state round-trip.
//
// Implemented as Engine member functions (the state being serialized is
// almost entirely private), kept in this file so the engine's hot path
// stays free of serialization code. Field order is the format; see
// snapshot.hpp for the layout contract and what is deliberately left
// out (runtime attachments).
#include "sim/snapshot/snapshot.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot/codec.hpp"

namespace pjsb::sim {

namespace {

using snapshot::Reader;
using snapshot::Writer;

void write_config(Writer& w, const EngineConfig& c) {
  w.i64(c.nodes);
  w.boolean(c.deliver_announcements);
  w.boolean(c.closed_loop);
  w.boolean(c.requeue_killed_jobs);
  w.boolean(c.retain_completed);
  w.boolean(c.recycle_slots);
  w.i64(c.recovery.checkpoint_interval);
  w.i64(c.recovery.dump_time);
  w.i64(c.recovery.read_time);
  w.i64(c.recovery.retry_limit);
  w.i64(c.recovery.backoff_seconds);
  w.u8(std::uint8_t(c.recovery.overrun));
  w.i64(c.recovery.grace_seconds);
}

EngineConfig read_config(Reader& r) {
  EngineConfig c;
  c.nodes = r.i64();
  c.deliver_announcements = r.boolean();
  c.closed_loop = r.boolean();
  c.requeue_killed_jobs = r.boolean();
  c.retain_completed = r.boolean();
  c.recycle_slots = r.boolean();
  c.recovery.checkpoint_interval = r.i64();
  c.recovery.dump_time = r.i64();
  c.recovery.read_time = r.i64();
  c.recovery.retry_limit = int(r.i64());
  c.recovery.backoff_seconds = r.i64();
  const std::uint8_t overrun = r.u8();
  if (overrun > std::uint8_t(fault::OverrunPolicy::kGrace)) {
    throw std::runtime_error("snapshot: bad overrun policy code");
  }
  c.recovery.overrun = fault::OverrunPolicy(overrun);
  c.recovery.grace_seconds = r.i64();
  return c;
}

void write_job(Writer& w, const SimJob& j) {
  w.i64(j.id);
  w.i64(j.submit);
  w.i64(j.runtime);
  w.i64(j.estimate);
  w.i64(j.procs);
  w.i64(j.user_id);
  w.i64(j.executable_id);
  w.i64(j.queue_id);
  w.i64(j.walltime);
  w.i64(j.checkpoint_interval);
  w.i64(j.dump_time);
  w.i64(j.read_time);
  w.u8(std::uint8_t(j.state));
  w.i64(j.start);
  w.i64(j.end);
  w.i64(j.restarts);
  w.i64(j.completed_work);
  w.u64(j.nodes.size());
  for (std::int64_t n : j.nodes) w.i64(n);
}

SimJob read_job(Reader& r) {
  SimJob j;
  j.id = r.i64();
  j.submit = r.i64();
  j.runtime = r.i64();
  j.estimate = r.i64();
  j.procs = r.i64();
  j.user_id = r.i64();
  j.executable_id = r.i64();
  j.queue_id = r.i64();
  j.walltime = r.i64();
  j.checkpoint_interval = r.i64();
  j.dump_time = r.i64();
  j.read_time = r.i64();
  const std::uint8_t state = r.u8();
  if (state > std::uint8_t(JobState::kFinished)) {
    throw std::runtime_error("snapshot: bad job state code");
  }
  j.state = JobState(state);
  j.start = r.i64();
  j.end = r.i64();
  j.restarts = int(r.i64());
  j.completed_work = r.i64();
  const std::uint64_t n = r.u64();
  j.nodes.reserve(std::size_t(n));
  for (std::uint64_t i = 0; i < n; ++i) j.nodes.push_back(r.i64());
  return j;
}

void write_header(Writer& w) {
  for (char c : snapshot::kMagic) w.u8(std::uint8_t(c));
  w.u32(snapshot::kFormatVersion);
}

void read_header(Reader& r) {
  for (char c : snapshot::kMagic) {
    if (r.u8() != std::uint8_t(c)) {
      throw std::runtime_error("snapshot: bad magic (not a snapshot file)");
    }
  }
  const std::uint32_t version = r.u32();
  if (version != snapshot::kFormatVersion) {
    throw std::runtime_error("snapshot: unsupported format version " +
                             std::to_string(version));
  }
}

}  // namespace

std::string Engine::snapshot() const {
  Writer w;
  write_header(w);
  write_config(w, config_);
  w.str(scheduler_->name());

  // Scalars.
  w.i64(now_);
  w.i64(seq_);
  w.i64(next_job_id_);
  w.i64(next_reservation_id_);
  w.u64(queued_count_);
  w.u64(running_count_);
  w.i64(capacity_accounted_until_);
  w.i64(capacity_node_seconds_);
  w.i64(work_node_seconds_);
  w.i64(wasted_node_seconds_);
  w.i64(recovered_node_seconds_);
  w.i64(makespan_);
  w.i64(jobs_completed_);
  w.i64(jobs_killed_);
  w.i64(jobs_dropped_);
  w.i64(events_processed_);
  w.boolean(scheduler_dirty_);

  // Event queue, drained from a copy in pop order with sequence numbers
  // preserved — the (time, type, seq) order is total, so re-pushing the
  // same set reproduces the donor's pop order exactly.
  {
    auto events = events_;
    w.u64(events.size());
    while (!events.empty()) {
      const Event& ev = events.top();
      w.i64(ev.time);
      w.u8(std::uint8_t(int(ev.type)));
      w.i64(ev.seq);
      w.i64(ev.id);
      w.i64(ev.version);
      events.pop();
    }
  }

  const auto write_slot = [&w](const JobSlot& slot) {
    write_job(w, slot.job);
    w.i64(slot.end_version);
    w.boolean(slot.overrun_end);
  };

  // Dense job storage: the vector's size (growth history feeds the
  // dense-vs-overflow placement rule) plus only the occupied slots.
  {
    w.u64(jobs_dense_.size());
    std::uint64_t occupied = 0;
    for (const JobSlot& slot : jobs_dense_) {
      if (slot.job.id != 0) ++occupied;
    }
    w.u64(occupied);
    for (std::size_t i = 0; i < jobs_dense_.size(); ++i) {
      if (jobs_dense_[i].job.id == 0) continue;
      w.u64(i);
      write_slot(jobs_dense_[i]);
    }
  }

  // Overflow map, sorted by id (hash order is not deterministic).
  {
    std::vector<std::int64_t> ids;
    ids.reserve(jobs_overflow_.size());
    for (const auto& [id, slot] : jobs_overflow_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.u64(ids.size());
    for (std::int64_t id : ids) {
      w.i64(id);
      write_slot(jobs_overflow_.at(id));
    }
  }

  // Closed-loop dependency edges, sorted by predecessor.
  {
    std::vector<std::int64_t> preds;
    preds.reserve(dependents_.size());
    for (const auto& [pred, deps] : dependents_) preds.push_back(pred);
    std::sort(preds.begin(), preds.end());
    w.u64(preds.size());
    for (std::int64_t pred : preds) {
      const auto& deps = dependents_.at(pred);
      w.i64(pred);
      w.u64(deps.size());
      for (const auto& [dep, think] : deps) {
        w.i64(dep);
        w.i64(think);
      }
    }
  }

  // Outage book (events referencing these indices are already in the
  // queue above).
  w.u64(outages_.size());
  for (const auto& rec : outages_) {
    w.i64(rec.announce_time);
    w.i64(rec.start_time);
    w.i64(rec.end_time);
    w.i64(std::int64_t(rec.type));
    w.i64(rec.nodes_affected);
    w.u64(rec.components.size());
    for (std::int64_t n : rec.components) w.i64(n);
  }

  // Reservation book (std::map — already in id order).
  w.u64(reservations_.size());
  for (const auto& [id, res] : reservations_) {
    w.i64(res.id);
    w.i64(res.start);
    w.i64(res.duration);
    w.i64(res.procs);
    w.boolean(res.job_id.has_value());
    if (res.job_id) w.i64(*res.job_id);
  }

  // Completed-job archive.
  w.u64(completed_.size());
  for (const auto& c : completed_) {
    w.i64(c.id);
    w.i64(c.submit);
    w.i64(c.start);
    w.i64(c.end);
    w.i64(c.runtime);
    w.i64(c.estimate);
    w.i64(c.procs);
    w.i64(c.user_id);
    w.i64(c.executable_id);
    w.i64(c.queue_id);
    w.i64(c.restarts);
  }

  // Pull-source cursor. "Active" means the donor would still pull
  // (source attached, or itself restored and awaiting resume).
  w.boolean(source_ != nullptr || source_pending_resume_);
  w.u64(source_opts_.lookahead);
  w.u64(source_opts_.max_jobs);
  w.u64(source_opts_.closed_loop_history);
  w.u64(source_pulled_);
  w.u64(source_clamped_);
  w.u64(pending_submits_);

  // Terminated-job history (closed-loop recycle mode), in termination
  // order so FIFO eviction resumes identically.
  w.u64(finished_order_.size());
  for (std::int64_t id : finished_order_) {
    w.i64(id);
    w.i64(finished_end_.at(id));
  }

  machine_.save_state(w);
  scheduler_->save_state(w);
  return w.take();
}

void Engine::load_snapshot(snapshot::Reader& r) {
  now_ = r.i64();
  seq_ = r.i64();
  next_job_id_ = r.i64();
  next_reservation_id_ = r.i64();
  queued_count_ = std::size_t(r.u64());
  running_count_ = std::size_t(r.u64());
  capacity_accounted_until_ = r.i64();
  capacity_node_seconds_ = r.i64();
  work_node_seconds_ = r.i64();
  wasted_node_seconds_ = r.i64();
  recovered_node_seconds_ = r.i64();
  makespan_ = r.i64();
  jobs_completed_ = r.i64();
  jobs_killed_ = r.i64();
  jobs_dropped_ = r.i64();
  events_processed_ = r.i64();
  scheduler_dirty_ = r.boolean();

  {
    std::vector<Event> events;
    const std::uint64_t n = r.u64();
    events.reserve(std::size_t(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      Event ev;
      ev.time = r.i64();
      const std::uint8_t type = r.u8();
      if (type > std::uint8_t(int(EventType::kReservationStart))) {
        throw std::runtime_error("snapshot: bad event type code");
      }
      ev.type = EventType(int(type));
      ev.seq = r.i64();
      ev.id = r.i64();
      ev.version = r.i64();
      events.push_back(ev);
    }
    events_ = std::priority_queue<Event, std::vector<Event>, EventOrder>(
        EventOrder{}, std::move(events));
  }

  const auto read_slot = [&r]() {
    JobSlot slot;
    slot.job = read_job(r);
    slot.end_version = r.i64();
    slot.overrun_end = r.boolean();
    return slot;
  };

  {
    const std::uint64_t dense_size = r.u64();
    jobs_dense_.assign(std::size_t(dense_size), JobSlot{});
    const std::uint64_t occupied = r.u64();
    for (std::uint64_t i = 0; i < occupied; ++i) {
      const std::uint64_t idx = r.u64();
      if (idx >= dense_size) {
        throw std::runtime_error("snapshot: dense slot index out of range");
      }
      jobs_dense_[std::size_t(idx)] = read_slot();
    }
  }

  jobs_overflow_.clear();
  {
    const std::uint64_t n = r.u64();
    jobs_overflow_.reserve(std::size_t(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::int64_t id = r.i64();
      jobs_overflow_.emplace(id, read_slot());
    }
  }

  dependents_.clear();
  {
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::int64_t pred = r.i64();
      const std::uint64_t deps = r.u64();
      auto& edges = dependents_[pred];
      edges.reserve(std::size_t(deps));
      for (std::uint64_t d = 0; d < deps; ++d) {
        const std::int64_t dep = r.i64();
        const std::int64_t think = r.i64();
        edges.push_back({dep, think});
      }
    }
  }

  outages_.clear();
  {
    const std::uint64_t n = r.u64();
    outages_.reserve(std::size_t(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      outage::OutageRecord rec;
      rec.announce_time = r.i64();
      rec.start_time = r.i64();
      rec.end_time = r.i64();
      rec.type = outage::OutageType(r.i64());
      rec.nodes_affected = r.i64();
      const std::uint64_t comps = r.u64();
      rec.components.reserve(std::size_t(comps));
      for (std::uint64_t c = 0; c < comps; ++c) {
        rec.components.push_back(r.i64());
      }
      outages_.push_back(std::move(rec));
    }
  }

  reservations_.clear();
  {
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      sched::AdvanceReservation res;
      res.id = r.i64();
      res.start = r.i64();
      res.duration = r.i64();
      res.procs = r.i64();
      if (r.boolean()) res.job_id = r.i64();
      reservations_.emplace(res.id, res);
    }
  }

  completed_.clear();
  {
    const std::uint64_t n = r.u64();
    completed_.reserve(std::size_t(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      CompletedJob c;
      c.id = r.i64();
      c.submit = r.i64();
      c.start = r.i64();
      c.end = r.i64();
      c.runtime = r.i64();
      c.estimate = r.i64();
      c.procs = r.i64();
      c.user_id = r.i64();
      c.executable_id = r.i64();
      c.queue_id = r.i64();
      c.restarts = int(r.i64());
      completed_.push_back(c);
    }
  }

  source_ = nullptr;
  source_pending_resume_ = r.boolean();
  source_opts_.lookahead = std::size_t(r.u64());
  source_opts_.max_jobs = r.u64();
  source_opts_.closed_loop_history = std::size_t(r.u64());
  source_pulled_ = r.u64();
  source_clamped_ = r.u64();
  pending_submits_ = std::size_t(r.u64());

  finished_end_.clear();
  finished_order_.clear();
  {
    const std::uint64_t n = r.u64();
    finished_end_.reserve(std::size_t(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::int64_t id = r.i64();
      finished_end_.emplace(id, r.i64());
      finished_order_.push_back(id);
    }
  }

  machine_.load_state(r);
  scheduler_->load_state(r);
}

std::unique_ptr<Engine> Engine::restore(const std::string& bytes) {
  snapshot::Reader r(bytes);
  read_header(r);
  const EngineConfig config = read_config(r);
  const std::string spec = r.str();
  // Same policy, same parameters (name() round-trips by contract);
  // on_attach runs in the constructor, load_snapshot then overwrites
  // every piece of runtime state.
  auto engine =
      std::make_unique<Engine>(config, sched::make_scheduler(spec));
  engine->load_snapshot(r);
  r.expect_done();
  return engine;
}

void Engine::resume_job_source(swf::JobSource& source) {
  if (!source_pending_resume_) {
    throw std::logic_error(
        "resume_job_source: this engine has no pending source to resume");
  }
  // Skip everything the donor already pulled; the source then stands at
  // exactly the donor's cursor.
  for (std::uint64_t i = 0; i < source_pulled_; ++i) {
    if (!source.next()) {
      throw std::runtime_error(
          "resume_job_source: source exhausted before the donor's cursor (" +
          std::to_string(source_pulled_) + " records) — wrong source?");
    }
  }
  source_ = &source;
  source_pending_resume_ = false;
  // Deliberately no eager fill: the donor tops the window back up only
  // inside submit handling (or a step() that finds the queue empty),
  // and a resumed run must assign event sequence numbers at exactly the
  // same points.
}

}  // namespace pjsb::sim

namespace pjsb::sim::snapshot {

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("snapshot: cannot open for writing: " + path);
  }
  out.write(bytes.data(), std::streamsize(bytes.size()));
  out.flush();
  if (!out) throw std::runtime_error("snapshot: write failed: " + path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("snapshot: cannot open: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("snapshot: read failed: " + path);
  return bytes;
}

}  // namespace pjsb::sim::snapshot
