// Versioned binary snapshot format for simulation state.
//
// A snapshot is the complete, self-contained state of one Engine
// between steps: clock, event queue (with sequence numbers — event
// ordering is part of determinism), job slots, machine ownership,
// scheduler-specific state (via Scheduler::save_state/load_state),
// outage and reservation books, the pull-source cursor, and every
// accounting counter. Engine::restore() rebuilds an engine whose
// subsequent decision trace is byte-identical to the donor's.
//
// Layout: 8 magic bytes, a u32 format version, then fixed-order
// sections encoded with the codec (codec.hpp). The version gates
// compatibility — readers reject any version they do not know; there
// is no in-band schema. The scheduler is identified by its registry
// spec string (Scheduler::name()), so restoring instantiates the same
// policy with the same parameters before loading its runtime state.
//
// What is NOT serialized (runtime attachments, re-attach after
// restore): observers, the phase listener, the completion callback,
// and the JobSource object itself — Engine::resume_job_source()
// reconnects a source by skipping the records the donor already
// pulled.
#pragma once

#include <cstdint>
#include <string>

namespace pjsb::sim::snapshot {

/// Leading magic bytes of every snapshot.
inline constexpr char kMagic[8] = {'P', 'J', 'S', 'B', 'S', 'N', 'A', 'P'};

/// Current format version. Bump on any layout change; readers reject
/// versions they do not understand.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Write snapshot bytes to a file (binary, atomic overwrite). Throws
/// std::runtime_error on I/O failure.
void write_file(const std::string& path, const std::string& bytes);

/// Read a whole snapshot file. Throws std::runtime_error on I/O
/// failure (the content is validated by Engine::restore).
std::string read_file(const std::string& path);

}  // namespace pjsb::sim::snapshot
