#include "sim/snapshot/whatif.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"
#include "sim/observer.hpp"

namespace pjsb::sim {

WhatIfService::WhatIfService(std::string snapshot_bytes)
    : bytes_(std::move(snapshot_bytes)), warm_(Engine::restore(bytes_)) {
  if (warm_->needs_job_source()) {
    throw std::invalid_argument(
        "WhatIfService: snapshot has an unresumed job source; what-if "
        "queries need a self-contained snapshot");
  }
}

WhatIfService WhatIfService::from_engine(const Engine& engine) {
  return WhatIfService(engine.snapshot());
}

std::int64_t WhatIfService::snapshot_time() const { return warm_->now(); }

WhatIfAnswer WhatIfService::query(const WhatIfQuery& q) {
  return q.simulate ? simulate(q) : predict(q);
}

std::vector<WhatIfAnswer> WhatIfService::batch(
    const std::vector<WhatIfQuery>& queries) {
  std::vector<WhatIfAnswer> answers;
  answers.reserve(queries.size());
  for (const auto& q : queries) answers.push_back(query(q));
  return answers;
}

WhatIfAnswer WhatIfService::predict(const WhatIfQuery& q) {
  const std::int64_t submit =
      warm_->now() + std::max<std::int64_t>(0, q.submit_offset);
  WhatIfAnswer a;
  a.simulated = false;
  a.start = warm_->scheduler().predict_start(submit, q.procs,
                                             std::max<std::int64_t>(1,
                                                                    q.estimate));
  if (a.start) a.wait = *a.start - submit;
  return a;
}

WhatIfAnswer WhatIfService::simulate(const WhatIfQuery& q) {
  auto clone = Engine::restore(bytes_);
  const std::int64_t submit =
      clone->now() + std::max<std::int64_t>(0, q.submit_offset);
  SimJob job;
  job.submit = submit;
  job.runtime = std::max<std::int64_t>(1, q.estimate);
  job.estimate = job.runtime;
  job.procs = std::max<std::int64_t>(1, q.procs);
  const std::int64_t id = clone->submit_job(job);  // engine picks the id

  std::optional<std::int64_t> started;
  FunctionObserver watcher;
  watcher.decision = [&](const Decision& d) {
    if (d.job_id == id) started = d.time;
  };
  clone->add_observer(watcher);
  while (!started && clone->step()) {
  }

  WhatIfAnswer a;
  a.simulated = true;
  a.start = started;
  if (a.start) a.wait = *a.start - submit;
  return a;
}

}  // namespace pjsb::sim
