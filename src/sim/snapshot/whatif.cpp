#include "sim/snapshot/whatif.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"
#include "sim/observer.hpp"

namespace pjsb::sim {

const char* to_string(JobStateName state) {
  switch (state) {
    case JobStateName::kPending:
      return "pending";
    case JobStateName::kQueued:
      return "queued";
    case JobStateName::kRunning:
      return "running";
    case JobStateName::kFinished:
      return "finished";
  }
  return "unknown";
}

namespace {

JobStateName state_name(JobState state) {
  switch (state) {
    case JobState::kPending:
      return JobStateName::kPending;
    case JobState::kQueued:
      return JobStateName::kQueued;
    case JobState::kRunning:
      return JobStateName::kRunning;
    case JobState::kFinished:
      return JobStateName::kFinished;
  }
  return JobStateName::kPending;
}

}  // namespace

/// Pops an idle clone under the mutex (restoring a fresh one outside
/// it when the pool is empty) and returns the clone on destruction —
/// exception-safe, so a throwing query cannot leak or poison a clone.
class WhatIfService::WarmLease {
 public:
  explicit WarmLease(WhatIfService& service) : service_(service) {
    {
      const std::lock_guard<std::mutex> lock(service_.pool_mutex_);
      if (!service_.pool_.empty()) {
        clone_ = std::move(service_.pool_.back());
        service_.pool_.pop_back();
      }
    }
    if (!clone_) clone_ = Engine::restore(service_.bytes_);
  }
  ~WarmLease() {
    const std::lock_guard<std::mutex> lock(service_.pool_mutex_);
    service_.pool_.push_back(std::move(clone_));
  }
  WarmLease(const WarmLease&) = delete;
  WarmLease& operator=(const WarmLease&) = delete;

  Engine& engine() { return *clone_; }

 private:
  WhatIfService& service_;
  std::unique_ptr<Engine> clone_;
};

WhatIfService::WhatIfService(std::string snapshot_bytes)
    : bytes_(std::move(snapshot_bytes)) {
  auto warm = Engine::restore(bytes_);
  if (warm->needs_job_source()) {
    throw std::invalid_argument(
        "WhatIfService: snapshot has an unresumed job source; what-if "
        "queries need a self-contained snapshot");
  }
  snapshot_time_ = warm->now();
  pool_.push_back(std::move(warm));
}

WhatIfService WhatIfService::from_engine(const Engine& engine) {
  return WhatIfService(engine.snapshot());
}

std::size_t WhatIfService::warm_clones() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_.size();
}

WhatIfAnswer WhatIfService::query(const WhatIfQuery& q) {
  return q.simulate ? simulate(q) : predict(q);
}

std::vector<WhatIfAnswer> WhatIfService::batch(
    const std::vector<WhatIfQuery>& queries) {
  std::vector<WhatIfAnswer> answers;
  answers.reserve(queries.size());
  for (const auto& q : queries) answers.push_back(query(q));
  return answers;
}

std::optional<WhatIfJobStatus> WhatIfService::query_job(
    std::int64_t id, bool predict_pending) {
  WhatIfJobStatus status;
  {
    WarmLease lease(*this);
    const SimJob* job = lease.engine().find_job(id);
    if (!job) return std::nullopt;
    status.id = job->id;
    status.state = state_name(job->state);
    status.submit = job->submit;
    status.procs = job->procs;
    if (job->state == JobState::kRunning ||
        job->state == JobState::kFinished) {
      status.start = job->start;
    }
    if (job->state == JobState::kFinished) status.end = job->end;
  }
  const bool waiting = status.state == JobStateName::kPending ||
                       status.state == JobStateName::kQueued;
  if (waiting && predict_pending) {
    // Run the frozen state forward (no further arrivals) in a private
    // clone and watch for the job's own start decision — exact under
    // any policy, prediction-capable or not.
    auto clone = Engine::restore(bytes_);
    std::optional<std::int64_t> started;
    FunctionObserver watcher;
    watcher.decision = [&](const Decision& d) {
      if (d.job_id == id) started = d.time;
    };
    clone->add_observer(watcher);
    while (!started && clone->step()) {
    }
    status.predicted_start = started;
  }
  return status;
}

WhatIfAnswer WhatIfService::predict(const WhatIfQuery& q) {
  WarmLease lease(*this);
  Engine& warm = lease.engine();
  const std::int64_t submit =
      warm.now() + std::max<std::int64_t>(0, q.submit_offset);
  WhatIfAnswer a;
  a.simulated = false;
  a.start = warm.scheduler().predict_start(
      submit, q.procs, std::max<std::int64_t>(1, q.estimate));
  if (a.start) a.wait = *a.start - submit;
  return a;
}

WhatIfAnswer WhatIfService::simulate(const WhatIfQuery& q) {
  auto clone = Engine::restore(bytes_);
  const std::int64_t submit =
      clone->now() + std::max<std::int64_t>(0, q.submit_offset);
  SimJob job;
  job.submit = submit;
  job.runtime = std::max<std::int64_t>(1, q.estimate);
  job.estimate = job.runtime;
  job.procs = std::max<std::int64_t>(1, q.procs);
  const std::int64_t id = clone->submit_job(job);  // engine picks the id

  std::optional<std::int64_t> started;
  FunctionObserver watcher;
  watcher.decision = [&](const Decision& d) {
    if (d.job_id == id) started = d.time;
  };
  clone->add_observer(watcher);
  while (!started && clone->step()) {
  }

  WhatIfAnswer a;
  a.simulated = true;
  a.start = started;
  if (a.start) a.wait = *a.start - submit;
  return a;
}

}  // namespace pjsb::sim
