// What-if query service over a frozen simulation state.
//
// A WhatIfService owns one snapshot (snapshot.hpp bytes) and answers
// batched hypothetical questions — "if a job of `procs` nodes and
// `estimate` seconds were submitted now (or at now + offset), when
// would it start?" — without perturbing the donor run. Two answer
// modes:
//
//   predict  — ask the scheduler's QueryInterface (predict_start)
//              against one warm restored clone, reused across queries.
//              The interface contract makes the call const and
//              non-perturbing, so the clone never needs re-restoring;
//              each query is one profile sweep.
//   simulate — restore a fresh clone, inject the hypothetical job for
//              real, and step the simulation until it starts. Exact
//              under any policy (including ones that cannot predict),
//              at the cost of replaying the future.
//
// Both modes leave the donor engine and the snapshot bytes untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pjsb::sim {

class Engine;

/// One hypothetical submission.
struct WhatIfQuery {
  std::int64_t procs = 1;
  std::int64_t estimate = 3600;  ///< requested runtime, seconds
  /// Submit at snapshot_time() + submit_offset (offsets < 0 are
  /// clamped to 0 — a snapshot cannot answer about its own past).
  std::int64_t submit_offset = 0;
  /// True: run the simulation forward instead of asking predict_start.
  bool simulate = false;
};

struct WhatIfAnswer {
  /// Predicted (or observed) start time; nullopt when the policy
  /// cannot answer (predict mode on a non-predicting scheduler) or the
  /// simulation drained without the job ever starting.
  std::optional<std::int64_t> start;
  /// start - submit time, when start is known.
  std::optional<std::int64_t> wait;
  /// Which mode produced the answer (echoes the query's `simulate`).
  bool simulated = false;
};

class WhatIfService {
 public:
  /// Take ownership of snapshot bytes (Engine::snapshot() output).
  /// Restores the warm clone eagerly so a bad snapshot fails here, not
  /// on the first query. Throws std::invalid_argument if the snapshot
  /// needs a resumed job source — a what-if clone cannot re-attach one,
  /// so only self-contained (materialized-workload) snapshots qualify.
  explicit WhatIfService(std::string snapshot_bytes);

  /// Convenience: snapshot `engine` (which it does not perturb) and
  /// build a service over the result.
  static WhatIfService from_engine(const Engine& engine);

  /// The frozen simulation clock all submit_offsets are relative to.
  std::int64_t snapshot_time() const;
  /// The underlying snapshot bytes (e.g. to persist alongside answers).
  const std::string& bytes() const { return bytes_; }

  WhatIfAnswer query(const WhatIfQuery& q);
  /// Answer a batch in order. Predict queries share the warm clone;
  /// each simulate query restores its own.
  std::vector<WhatIfAnswer> batch(const std::vector<WhatIfQuery>& queries);

 private:
  WhatIfAnswer predict(const WhatIfQuery& q);
  WhatIfAnswer simulate(const WhatIfQuery& q);

  std::string bytes_;
  /// Restored once, reused for every predict query (predict_start is
  /// const and non-perturbing by the QueryInterface contract).
  std::unique_ptr<Engine> warm_;
};

}  // namespace pjsb::sim
