// What-if query service over a frozen simulation state.
//
// A WhatIfService owns one snapshot (snapshot.hpp bytes) and answers
// batched hypothetical questions — "if a job of `procs` nodes and
// `estimate` seconds were submitted now (or at now + offset), when
// would it start?" — without perturbing the donor run. Two answer
// modes:
//
//   predict  — ask the scheduler's QueryInterface (predict_start)
//              against a warm restored clone drawn from an internal
//              pool. The interface contract makes the call const and
//              non-perturbing, so a clone never needs re-restoring;
//              each query is one profile sweep.
//   simulate — restore a fresh clone, inject the hypothetical job for
//              real, and step the simulation until it starts. Exact
//              under any policy (including ones that cannot predict),
//              at the cost of replaying the future.
//
// Both modes leave the donor engine and the snapshot bytes untouched.
//
// Concurrency contract: after construction, every public method may be
// called from any number of threads concurrently. Predict-mode (and
// job-status) queries check a warm clone out of a mutex-guarded pool —
// the pool grows on demand up to the peak concurrency, so steady-state
// queries never restore and never share a clone. Simulate-mode queries
// restore a private clone per call and touch no shared state beyond
// the (immutable) snapshot bytes. Answers are therefore identical to
// issuing the same queries serially, in any interleaving. The service
// itself must outlive all in-flight calls, and construction is not
// synchronized against use (create it before sharing it).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace pjsb::sim {

class Engine;

/// One hypothetical submission.
struct WhatIfQuery {
  std::int64_t procs = 1;
  std::int64_t estimate = 3600;  ///< requested runtime, seconds
  /// Submit at snapshot_time() + submit_offset (offsets < 0 are
  /// clamped to 0 — a snapshot cannot answer about its own past).
  std::int64_t submit_offset = 0;
  /// True: run the simulation forward instead of asking predict_start.
  bool simulate = false;
};

struct WhatIfAnswer {
  /// Predicted (or observed) start time; nullopt when the policy
  /// cannot answer (predict mode on a non-predicting scheduler) or the
  /// simulation drained without the job ever starting.
  std::optional<std::int64_t> start;
  /// start - submit time, when start is known.
  std::optional<std::int64_t> wait;
  /// Which mode produced the answer (echoes the query's `simulate`).
  bool simulated = false;
};

/// Job lifecycle states as protocol-stable lowercase names.
enum class JobStateName { kPending, kQueued, kRunning, kFinished };
const char* to_string(JobStateName state);

/// Point-in-time view of one real job in the frozen state, for the
/// daemon's QUERY verb.
struct WhatIfJobStatus {
  std::int64_t id = 0;
  JobStateName state = JobStateName::kPending;
  std::int64_t submit = 0;
  std::int64_t procs = 0;
  /// Actual start / end when the job reached them before the snapshot.
  std::optional<std::int64_t> start;
  std::optional<std::int64_t> end;
  /// For pending/queued jobs: when a forward simulation of the frozen
  /// state (no further arrivals) starts the job. Exact under any
  /// policy; nullopt when the simulation drained without starting it
  /// or prediction was not requested.
  std::optional<std::int64_t> predicted_start;
};

class WhatIfService {
 public:
  /// Take ownership of snapshot bytes (Engine::snapshot() output).
  /// Restores one warm clone eagerly so a bad snapshot fails here, not
  /// on the first query. Throws std::invalid_argument if the snapshot
  /// needs a resumed job source — a what-if clone cannot re-attach one,
  /// so only self-contained (materialized-workload) snapshots qualify.
  explicit WhatIfService(std::string snapshot_bytes);

  /// Convenience: snapshot `engine` (which it does not perturb) and
  /// build a service over the result.
  static WhatIfService from_engine(const Engine& engine);

  /// The frozen simulation clock all submit_offsets are relative to.
  std::int64_t snapshot_time() const { return snapshot_time_; }
  /// The underlying snapshot bytes (e.g. to persist alongside answers).
  const std::string& bytes() const { return bytes_; }

  /// Thread-safe (see the concurrency contract above).
  WhatIfAnswer query(const WhatIfQuery& q);
  /// Answer a batch in order. Predict queries share the warm pool;
  /// each simulate query restores its own clone. Thread-safe.
  std::vector<WhatIfAnswer> batch(const std::vector<WhatIfQuery>& queries);

  /// Status of a real job in the frozen state (nullopt: unknown id).
  /// With `predict_pending`, pending/queued jobs additionally get
  /// predicted_start from a forward simulation of the frozen state.
  /// Thread-safe.
  std::optional<WhatIfJobStatus> query_job(std::int64_t id,
                                           bool predict_pending = true);

  /// Warm clones currently pooled (== peak predict concurrency so
  /// far). Exposed for tests.
  std::size_t warm_clones() const;

 private:
  /// RAII checkout of a warm clone: pops the pool (restoring a new
  /// clone when it is empty) and returns the clone on destruction.
  class WarmLease;

  WhatIfAnswer predict(const WhatIfQuery& q);
  WhatIfAnswer simulate(const WhatIfQuery& q);

  const std::string bytes_;  ///< immutable after construction
  std::int64_t snapshot_time_ = 0;
  /// Idle warm clones. A predict query runs against exactly one clone
  /// checked out under pool_mutex_, so clones are never shared between
  /// concurrent queries even though predict_start is const.
  mutable std::mutex pool_mutex_;
  std::vector<std::unique_ptr<Engine>> pool_;
};

}  // namespace pjsb::sim
