#include "sim/spec.hpp"

#include <stdexcept>

#include "sched/registry.hpp"
#include "util/keyval.hpp"
#include "util/string_util.hpp"

namespace pjsb::sim {

namespace {

constexpr const char* kValidKeys =
    "scheduler=<registry spec string>, nodes=<int|auto>, closed_loop=<bool>, "
    "announce=<bool>, lookahead=<int>, max_jobs=<int>, "
    "parser=<stream|fast>, threads=<int>, "
    "retain_completed=<bool>, recycle_slots=<bool>, trace=<path>, "
    "timeseries=<path>, sample_every=<int>, profile=<path>, "
    "faults=<seed>, mtbf=<seconds>, repair=<seconds>, "
    "checkpoint=<seconds>, dump=<seconds>, read=<seconds>, "
    "retry_limit=<int>, backoff=<seconds>, overrun=<extend|kill|grace>, "
    "grace=<seconds>";

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("simulation spec: " + message);
}

bool parse_bool_or_fail(const std::string& key, std::string_view value) {
  const auto b = util::parse_bool(value);
  if (!b) {
    fail(key + "='" + std::string(value) +
         "' must be 1/0, true/false or yes/no");
  }
  return *b;
}

}  // namespace

SimulationSpec& SimulationSpec::with_scheduler(std::string spec) {
  scheduler = std::move(spec);
  return *this;
}

SimulationSpec& SimulationSpec::with_nodes(std::int64_t n) {
  nodes = n;
  return *this;
}

SimulationSpec& SimulationSpec::auto_nodes() {
  nodes.reset();
  return *this;
}

SimulationSpec& SimulationSpec::closed(bool on) {
  closed_loop = on;
  return *this;
}

SimulationSpec& SimulationSpec::announce_outages(bool on) {
  deliver_announcements = on;
  return *this;
}

SimulationSpec& SimulationSpec::with_lookahead(std::size_t n) {
  lookahead = n;
  return *this;
}

SimulationSpec& SimulationSpec::with_max_jobs(std::uint64_t n) {
  max_jobs = n;
  return *this;
}

SimulationSpec& SimulationSpec::with_parser(std::string backend,
                                            int n_threads) {
  parser = std::move(backend);
  threads = n_threads;
  return *this;
}

SimulationSpec& SimulationSpec::streaming_memory(bool on) {
  retain_completed = !on;
  recycle_slots = on;
  return *this;
}

SimulationSpec& SimulationSpec::with_trace(std::string path) {
  trace = std::move(path);
  return *this;
}

SimulationSpec& SimulationSpec::with_timeseries(std::string path,
                                                std::int64_t every) {
  timeseries = std::move(path);
  sample_every = every;
  return *this;
}

SimulationSpec& SimulationSpec::with_profile(std::string path) {
  profile = std::move(path);
  return *this;
}

SimulationSpec& SimulationSpec::with_faults(std::uint64_t seed,
                                            std::int64_t mtbf_seconds,
                                            std::int64_t repair_seconds) {
  faults = seed;
  mtbf = mtbf_seconds;
  repair = repair_seconds;
  return *this;
}

SimulationSpec& SimulationSpec::with_checkpointing(std::int64_t interval,
                                                   std::int64_t dump_seconds,
                                                   std::int64_t read_seconds) {
  checkpoint = interval;
  dump = dump_seconds;
  read = read_seconds;
  return *this;
}

SimulationSpec& SimulationSpec::with_retry(int limit,
                                           std::int64_t backoff_seconds) {
  retry_limit = limit;
  backoff = backoff_seconds;
  return *this;
}

SimulationSpec& SimulationSpec::with_overrun(fault::OverrunPolicy policy,
                                             std::int64_t grace_seconds) {
  overrun = policy;
  grace = grace_seconds;
  return *this;
}

fault::FaultModel SimulationSpec::fault_model() const {
  fault::FaultModel model;
  model.seed = faults;
  model.mtbf_seconds = mtbf;
  model.repair_mean_seconds = repair;
  return model;
}

fault::RecoveryConfig SimulationSpec::recovery_config() const {
  fault::RecoveryConfig config;
  config.checkpoint_interval = checkpoint;
  config.dump_time = dump;
  config.read_time = read;
  config.retry_limit = retry_limit;
  config.backoff_seconds = backoff;
  config.overrun = overrun;
  config.grace_seconds = grace;
  return config;
}

void SimulationSpec::validate(bool resolve_scheduler) const {
  if (scheduler.empty()) fail("no scheduler");
  // Resolve the scheduler spec through the registry so a bad name or
  // parameter dies here, with the registry's valid-choices message.
  if (resolve_scheduler) sched::Registry::global().parse(scheduler);
  if (nodes && (*nodes < 1 || *nodes > kMaxSpecNodes)) {
    fail("nodes must be in [1, " + std::to_string(kMaxSpecNodes) +
         "], or auto");
  }
  if (lookahead == 0) fail("lookahead must be >= 1");
  if (parser != "stream" && parser != "fast") {
    fail("parser must be 'stream' or 'fast'");
  }
  if (threads < 1 || threads > 256) fail("threads must be in [1, 256]");
  if (threads > 1 && parser != "fast") {
    fail("threads=" + std::to_string(threads) +
         " needs parser=fast (the stream parser is single-threaded)");
  }
  if (sample_every < 0) fail("sample_every must be >= 0");
  if (sample_every > 0 && timeseries.empty()) {
    fail("sample_every without timeseries=<path> samples into nowhere; "
         "name the output file");
  }
  if (!retain_completed && !recycle_slots) {
    fail("retain_completed=0 without recycle_slots=1 drops the per-job "
         "records but keeps every slot in memory; enable recycle_slots "
         "for constant-memory runs");
  }
  const SimulationSpec defaults;
  if (faults == 0 &&
      (mtbf != defaults.mtbf || repair != defaults.repair)) {
    fail("mtbf=/repair= describe the crash schedule and need "
         "faults=<seed> to enable it");
  }
  if (mtbf < 1) fail("mtbf must be >= 1 second");
  if (repair < 1) fail("repair must be >= 1 second");
  if (checkpoint < 0) fail("checkpoint must be >= 0");
  if (dump < 0 || read < 0) fail("dump/read must be >= 0");
  if (checkpoint == 0 && (dump != 0 || read != 0)) {
    fail("dump=/read= cost checkpoints that never happen; set "
         "checkpoint=<interval> too");
  }
  if (retry_limit < 0) fail("retry_limit must be >= 0 (0 = retry forever)");
  if (backoff < 0) fail("backoff must be >= 0");
  if (grace < 0) fail("grace must be >= 0");
  if (overrun == fault::OverrunPolicy::kGrace && grace == 0) {
    fail("overrun=grace needs grace=<seconds> > 0 (grace=0 is overrun=kill)");
  }
  if (overrun != fault::OverrunPolicy::kGrace && grace != 0) {
    fail("grace= only applies with overrun=grace");
  }
}

std::string SimulationSpec::to_string() const {
  const SimulationSpec defaults;
  std::string s = "scheduler=" + util::quote_spec_value(scheduler);
  if (nodes) s += " nodes=" + std::to_string(*nodes);
  if (closed_loop != defaults.closed_loop) {
    s += std::string(" closed_loop=") + (closed_loop ? "1" : "0");
  }
  if (deliver_announcements != defaults.deliver_announcements) {
    s += std::string(" announce=") + (deliver_announcements ? "1" : "0");
  }
  if (lookahead != defaults.lookahead) {
    s += " lookahead=" + std::to_string(lookahead);
  }
  if (max_jobs != defaults.max_jobs) {
    s += " max_jobs=" + std::to_string(max_jobs);
  }
  if (parser != defaults.parser) s += " parser=" + parser;
  if (threads != defaults.threads) s += " threads=" + std::to_string(threads);
  if (retain_completed != defaults.retain_completed) {
    s += std::string(" retain_completed=") + (retain_completed ? "1" : "0");
  }
  if (recycle_slots != defaults.recycle_slots) {
    s += std::string(" recycle_slots=") + (recycle_slots ? "1" : "0");
  }
  if (!trace.empty()) s += " trace=" + util::quote_spec_value(trace);
  if (!timeseries.empty()) {
    s += " timeseries=" + util::quote_spec_value(timeseries);
  }
  if (sample_every != defaults.sample_every) {
    s += " sample_every=" + std::to_string(sample_every);
  }
  if (!profile.empty()) s += " profile=" + util::quote_spec_value(profile);
  if (faults != defaults.faults) s += " faults=" + std::to_string(faults);
  if (mtbf != defaults.mtbf) s += " mtbf=" + std::to_string(mtbf);
  if (repair != defaults.repair) s += " repair=" + std::to_string(repair);
  if (checkpoint != defaults.checkpoint) {
    s += " checkpoint=" + std::to_string(checkpoint);
  }
  if (dump != defaults.dump) s += " dump=" + std::to_string(dump);
  if (read != defaults.read) s += " read=" + std::to_string(read);
  if (retry_limit != defaults.retry_limit) {
    s += " retry_limit=" + std::to_string(retry_limit);
  }
  if (backoff != defaults.backoff) s += " backoff=" + std::to_string(backoff);
  if (overrun != defaults.overrun) {
    s += std::string(" overrun=") + fault::overrun_policy_name(overrun);
  }
  if (grace != defaults.grace) s += " grace=" + std::to_string(grace);
  return s;
}

SimulationSpec SimulationSpec::parse(const std::string& text) {
  SimulationSpec spec;
  const auto tokens = util::parse_spec(text, /*allow_head=*/false);
  bool seen[24] = {};
  auto once = [&](int idx, const std::string& key) {
    if (seen[idx]) fail(key + " set twice");
    seen[idx] = true;
  };
  for (const auto& option : tokens.options) {
    const std::string& key = option.key;
    const std::string& value = option.value;
    if (key == "scheduler") {
      once(0, key);
      spec.scheduler = value;
    } else if (key == "nodes") {
      once(1, key);
      if (util::to_lower(value) == "auto") {
        spec.nodes.reset();
      } else {
        const auto n = util::parse_i64(value);
        if (!n) fail("nodes must be an integer or 'auto'");
        spec.nodes = *n;
      }
    } else if (key == "closed_loop") {
      once(2, key);
      spec.closed_loop = parse_bool_or_fail(key, value);
    } else if (key == "announce") {
      once(3, key);
      spec.deliver_announcements = parse_bool_or_fail(key, value);
    } else if (key == "lookahead") {
      once(4, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 1) fail("lookahead must be a positive integer");
      spec.lookahead = std::size_t(*n);
    } else if (key == "max_jobs") {
      once(5, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 0) fail("max_jobs must be a non-negative integer");
      spec.max_jobs = std::uint64_t(*n);
    } else if (key == "parser") {
      once(22, key);
      spec.parser = value;
    } else if (key == "threads") {
      once(23, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 1) fail("threads must be a positive integer");
      spec.threads = int(*n);
    } else if (key == "retain_completed") {
      once(6, key);
      spec.retain_completed = parse_bool_or_fail(key, value);
    } else if (key == "recycle_slots") {
      once(7, key);
      spec.recycle_slots = parse_bool_or_fail(key, value);
    } else if (key == "trace") {
      once(8, key);
      spec.trace = value;
    } else if (key == "timeseries") {
      once(9, key);
      spec.timeseries = value;
    } else if (key == "sample_every") {
      once(10, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 0) fail("sample_every must be a non-negative integer");
      spec.sample_every = *n;
    } else if (key == "profile") {
      once(11, key);
      spec.profile = value;
    } else if (key == "faults") {
      once(12, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 0) {
        fail("faults must be a non-negative seed (0 disables)");
      }
      spec.faults = std::uint64_t(*n);
    } else if (key == "mtbf") {
      once(13, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 1) fail("mtbf must be a positive number of seconds");
      spec.mtbf = *n;
    } else if (key == "repair") {
      once(14, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 1) fail("repair must be a positive number of seconds");
      spec.repair = *n;
    } else if (key == "checkpoint") {
      once(15, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 0) {
        fail("checkpoint must be a non-negative interval in seconds");
      }
      spec.checkpoint = *n;
    } else if (key == "dump") {
      once(16, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 0) fail("dump must be a non-negative number of seconds");
      spec.dump = *n;
    } else if (key == "read") {
      once(17, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 0) fail("read must be a non-negative number of seconds");
      spec.read = *n;
    } else if (key == "retry_limit") {
      once(18, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 0) fail("retry_limit must be a non-negative integer");
      spec.retry_limit = int(*n);
    } else if (key == "backoff") {
      once(19, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 0) {
        fail("backoff must be a non-negative number of seconds");
      }
      spec.backoff = *n;
    } else if (key == "overrun") {
      once(20, key);
      const auto policy = fault::overrun_policy_from_name(value);
      if (!policy) fail("overrun must be extend, kill or grace");
      spec.overrun = *policy;
    } else if (key == "grace") {
      once(21, key);
      const auto n = util::parse_i64(value);
      if (!n || *n < 0) fail("grace must be a non-negative number of seconds");
      spec.grace = *n;
    } else {
      fail("unknown key '" + key + "'; valid keys: " + kValidKeys);
    }
  }
  spec.validate();
  return spec;
}

}  // namespace pjsb::sim
