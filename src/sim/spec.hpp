// SimulationSpec: the one configuration record a replay needs.
//
// One declarative spec for both replay paths — machine size, loop
// mode, scheduler spec
// string, ingestion-window and memory knobs — that round-trips through
// a key=value string (util/keyval.hpp grammar):
//
//   scheduler='easy reserve_depth=2' nodes=256 closed_loop=1
//   scheduler=conservative lookahead=8192 max_jobs=100000 recycle_slots=1
//
// Experiment campaign cells, swf_tool, and the tests all speak this
// grammar, so a cell's exact engine configuration can be logged,
// diffed, and replayed byte-identically from its own to_string().
//
// Runtime-only attachments that cannot live in a string — an outage
// log, observers — ride in ReplayHooks (replay.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/fault/fault.hpp"

namespace pjsb::sim {

/// Upper bound on the simulated machine size: generous for any real
/// system while keeping per-node state allocations sane when a spec
/// fat-fingers `nodes=`.
inline constexpr std::int64_t kMaxSpecNodes = 1 << 22;  // ~4M nodes

struct SimulationSpec {
  /// Scheduler spec string for sched::Registry ("easy",
  /// "gang slots=8", "conservative reserve_depth=4", ...).
  std::string scheduler = "fcfs";
  /// Machine size; nullopt defers to the trace/source MaxNodes header
  /// (128 when the header carries none) — spelled `nodes=auto`.
  std::optional<std::int64_t> nodes;
  /// Honor fields 17/18 as submission dependencies.
  bool closed_loop = false;
  /// Deliver outage announcements (outage-aware mode).
  bool deliver_announcements = true;
  /// Streaming ingestion window: records pulled ahead of the clock.
  std::size_t lookahead = 4096;
  /// Trace-file ingestion backend: "stream" (constant-memory
  /// swf::StreamReader) or "fast" (mmap'd chunk-parallel
  /// swf::FastReader — O(file) memory, GB/s parse). Records and
  /// diagnostics are identical either way; only speed/memory differ.
  std::string parser = "stream";
  /// FastReader worker threads; >1 requires parser=fast.
  int threads = 1;
  /// Stop pulling after this many records (0 = drain the source) —
  /// the brake for unbounded generator streams. Streaming replays
  /// only; replay(trace, ...) rejects a nonzero value.
  std::uint64_t max_jobs = 0;
  /// Keep per-job records in ReplayResult::completed. Turn off together
  /// with recycle_slots for O(running+queued+lookahead) memory.
  bool retain_completed = true;
  bool recycle_slots = false;

  // Observability sinks (src/obs/). All opt-in; empty paths mean the
  // replay runs with zero instrumentation attached.
  /// Write a JSONL event trace (schema in README "Observability").
  std::string trace;
  /// Write a sim-time time-series CSV (machine/queue state + backfill
  /// rate, sampled every `sample_every` sim-seconds).
  std::string timeseries;
  /// Time-series cadence in sim-seconds; 0 = default (60). Setting it
  /// without `timeseries=` is rejected.
  std::int64_t sample_every = 0;
  /// Write a Chrome trace-event JSON profile of engine phases
  /// (opens in Perfetto).
  std::string profile;

  // Fault injection & recovery (src/sim/fault/). `faults` seeds the
  // per-node crash schedule; 0 disables injection entirely. The crash
  // schedule needs a horizon up front, so faults are rejected on
  // streaming (JobSource) replays, like outage logs in campaigns.
  std::uint64_t faults = 0;      ///< crash-schedule seed (0 = off)
  std::int64_t mtbf = 7 * 86400;  ///< per-node MTBF, seconds
  std::int64_t repair = 4 * 3600; ///< mean repair duration, seconds
  /// Checkpoint interval in work seconds (0 = restart from scratch).
  std::int64_t checkpoint = 0;
  std::int64_t dump = 0;  ///< wall cost of one checkpoint dump
  std::int64_t read = 0;  ///< wall cost of one checkpoint restore
  /// Kills after which a job is dropped (0 = retry forever).
  int retry_limit = 0;
  /// Seconds between a kill and the resubmission (0 = immediate).
  std::int64_t backoff = 0;
  fault::OverrunPolicy overrun = fault::OverrunPolicy::kExtend;
  std::int64_t grace = 0;  ///< extra wall seconds under overrun=grace

  // Builder-style chainers, so call sites read declaratively:
  //   SimulationSpec{}.with_scheduler("easy").closed().with_nodes(256)
  SimulationSpec& with_scheduler(std::string spec);
  SimulationSpec& with_nodes(std::int64_t n);
  SimulationSpec& auto_nodes();
  SimulationSpec& closed(bool on = true);
  SimulationSpec& announce_outages(bool on);
  SimulationSpec& with_lookahead(std::size_t n);
  SimulationSpec& with_max_jobs(std::uint64_t n);
  SimulationSpec& with_parser(std::string backend, int n_threads = 1);
  SimulationSpec& streaming_memory(bool on = true);  ///< retain off + recycle
  SimulationSpec& with_trace(std::string path);
  SimulationSpec& with_timeseries(std::string path,
                                  std::int64_t every = 0);
  SimulationSpec& with_profile(std::string path);
  SimulationSpec& with_faults(std::uint64_t seed,
                              std::int64_t mtbf_seconds = 7 * 86400,
                              std::int64_t repair_seconds = 4 * 3600);
  SimulationSpec& with_checkpointing(std::int64_t interval,
                                     std::int64_t dump_seconds = 0,
                                     std::int64_t read_seconds = 0);
  SimulationSpec& with_retry(int limit, std::int64_t backoff_seconds = 0);
  SimulationSpec& with_overrun(fault::OverrunPolicy policy,
                               std::int64_t grace_seconds = 0);

  /// The fault model this spec describes (enabled() false when
  /// faults == 0).
  fault::FaultModel fault_model() const;
  /// The engine recovery policy this spec describes.
  fault::RecoveryConfig recovery_config() const;

  /// Reject nonsense: empty or unresolvable scheduler spec, nodes out
  /// of [1, kMaxSpecNodes], zero lookahead, or retain_completed=false
  /// without recycle_slots (per-job records dropped while slots still
  /// accumulate — all of the memory cost for none of the output).
  /// Throws std::invalid_argument. `resolve_scheduler=false` skips the
  /// registry lookup — the replay overloads that take a caller-built
  /// scheduler instance use it, so `scheduler` may carry any label
  /// (e.g. a custom policy's name) for logging purposes.
  void validate(bool resolve_scheduler = true) const;

  /// Round-trippable form: `scheduler=<quoted>` plus every field that
  /// differs from its default, in declaration order. parse(to_string())
  /// reproduces the spec exactly.
  std::string to_string() const;

  /// Parse a spec string (all key=value; see to_string). Unknown keys,
  /// repeated keys and malformed values throw std::invalid_argument
  /// naming the valid keys. The result is validated.
  static SimulationSpec parse(const std::string& text);
};

}  // namespace pjsb::sim
