// Newline-aligned chunking for parallel text parsing. A chunk boundary
// always falls immediately after a '\n', so no line is ever split
// between two chunks and each chunk can be parsed independently; the
// concatenation of the returned views reproduces the input exactly.
#pragma once

#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

namespace pjsb::util {

/// Split `buffer` into pieces of at least `target_bytes` bytes, each
/// extended to the next '\n' (the final piece may lack one — a
/// truncated tail). No empty pieces; an empty buffer yields {}. With
/// `max_chunks`, the last piece absorbs the remainder.
inline std::vector<std::string_view> split_line_chunks(
    std::string_view buffer, std::size_t target_bytes,
    std::size_t max_chunks = std::size_t(-1)) {
  std::vector<std::string_view> chunks;
  if (target_bytes == 0) target_bytes = 1;
  std::size_t pos = 0;
  while (pos < buffer.size()) {
    if (chunks.size() + 1 == max_chunks ||
        buffer.size() - pos <= target_bytes) {
      chunks.push_back(buffer.substr(pos));
      break;
    }
    const std::size_t probe = pos + target_bytes;
    const void* nl = std::memchr(buffer.data() + probe, '\n',
                                 buffer.size() - probe);
    if (!nl) {
      chunks.push_back(buffer.substr(pos));
      break;
    }
    const auto end =
        std::size_t(static_cast<const char*>(nl) - buffer.data()) + 1;
    chunks.push_back(buffer.substr(pos, end - pos));
    pos = end;
  }
  return chunks;
}

}  // namespace pjsb::util
