#include "util/keyval.hpp"

#include <cctype>
#include <stdexcept>

#include "util/string_util.hpp"

namespace pjsb::util {

namespace {

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("spec: " + message);
}

/// Read one token starting at `i` (not at whitespace). Returns the
/// token with quoted runs resolved; `saw_eq` reports whether an
/// *unquoted* '=' occurred, and `eq_pos` its position in the returned
/// token.
std::string read_token(std::string_view text, std::size_t& i, bool& saw_eq,
                       std::size_t& eq_pos) {
  std::string token;
  saw_eq = false;
  eq_pos = 0;
  while (i < text.size() && !is_space(text[i])) {
    const char c = text[i];
    if (c == '\'' || c == '"') {
      const char quote = c;
      const auto close = text.find(quote, i + 1);
      if (close == std::string_view::npos) {
        fail("unterminated " + std::string(1, quote) + "quote in '" +
             std::string(text) + "'");
      }
      token.append(text.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    if (c == '=' && !saw_eq) {
      saw_eq = true;
      eq_pos = token.size();
    }
    token.push_back(c);
    ++i;
  }
  return token;
}

}  // namespace

std::optional<std::string_view> SpecTokens::find(
    std::string_view key) const {
  for (const auto& option : options) {
    if (option.key == key) return option.value;
  }
  return std::nullopt;
}

SpecTokens parse_spec(std::string_view text, bool allow_head) {
  SpecTokens result;
  std::size_t i = 0;
  bool first = true;
  while (i < text.size()) {
    if (is_space(text[i])) {
      ++i;
      continue;
    }
    bool saw_eq = false;
    std::size_t eq_pos = 0;
    const std::string token = read_token(text, i, saw_eq, eq_pos);
    if (!saw_eq) {
      if (first && allow_head) {
        result.head = token;
        first = false;
        continue;
      }
      fail("expected key=value, got '" + token + "'");
    }
    first = false;
    SpecOption option;
    option.key = to_lower(std::string_view(token).substr(0, eq_pos));
    option.value = token.substr(eq_pos + 1);
    if (option.key.empty()) {
      fail("empty key in '" + token + "'");
    }
    result.options.push_back(std::move(option));
  }
  return result;
}

std::string quote_spec_value(std::string_view value) {
  bool needs_quoting = value.empty();
  for (const char c : value) {
    if (is_space(c) || c == '=' || c == '\'' || c == '"') {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) return std::string(value);
  const bool has_single = value.find('\'') != std::string_view::npos;
  const bool has_double = value.find('"') != std::string_view::npos;
  if (has_single && has_double) {
    fail("value mixes both quote characters: " + std::string(value));
  }
  const char quote = has_single ? '"' : '\'';
  std::string quoted(1, quote);
  quoted.append(value);
  quoted.push_back(quote);
  return quoted;
}

std::optional<bool> parse_bool(std::string_view value) {
  const std::string v = to_lower(value);
  if (v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  return std::nullopt;
}

}  // namespace pjsb::util
