// The shared spec-string tokenizer: one grammar from CLI to campaign.
//
// Every configurable surface in the benchmark — scheduler selection
// ("easy reserve_depth=2"), simulation specs ("scheduler=easy
// nodes=256"), campaign workload lines ("lublin99 jobs=2000 load=0.7")
// — speaks the same `head key=value ...` token language, parsed here
// exactly once. Values may be quoted ('...' or "...") so a value can
// itself contain spaces or '=' (a SimulationSpec embeds a whole
// scheduler spec: scheduler='easy reserve_depth=2').
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pjsb::util {

struct SpecOption {
  std::string key;    ///< lowercased
  std::string value;  ///< verbatim (quotes stripped)
};

struct SpecTokens {
  /// First bare token, verbatim ("" when the spec had none). Consumers
  /// that treat heads as case-insensitive names lowercase it
  /// themselves; file-path heads must keep their case.
  std::string head;
  std::vector<SpecOption> options;  ///< in input order

  /// The explicit value of `key`, or nullopt. Last occurrence wins is
  /// NOT the policy — callers reject duplicates — this is lookup only.
  std::optional<std::string_view> find(std::string_view key) const;
};

/// Tokenize a one-line spec. Tokens are whitespace-separated; the first
/// may be a bare head word (when `allow_head`), every other token must
/// be key=value. A single- or double-quoted run groups whitespace and
/// '=' into a value. Throws std::invalid_argument on a bare token in
/// option position, an empty key, or an unterminated quote.
SpecTokens parse_spec(std::string_view text, bool allow_head);

/// Quote `value` so parse_spec reads it back verbatim: returns it
/// unchanged when it is a self-delimiting token, otherwise wraps it in
/// whichever quote character it does not contain. Throws
/// std::invalid_argument if it contains both quote characters.
std::string quote_spec_value(std::string_view value);

/// Parse a boolean option value: 1/0, true/false, yes/no (any case).
std::optional<bool> parse_bool(std::string_view value);

}  // namespace pjsb::util
