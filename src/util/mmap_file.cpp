#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pjsb::util {

namespace {

std::string errno_string() {
  return std::strerror(errno);
}

}  // namespace

MmapFile::MmapFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    error_ = "open: " + errno_string();
    return;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    error_ = "fstat: " + errno_string();
    ::close(fd);
    return;
  }
  if (S_ISREG(st.st_mode) && st.st_size > 0) {
    // MAP_POPULATE prefaults the whole mapping: a full-file parse pays
    // one batched fault instead of one minor fault per page mid-scan.
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    flags |= MAP_POPULATE;
#endif
    void* map = ::mmap(nullptr, std::size_t(st.st_size), PROT_READ, flags,
                       fd, 0);
    if (map == MAP_FAILED && flags != MAP_PRIVATE) {
      // Some filesystems reject MAP_POPULATE; retry plain.
      map = ::mmap(nullptr, std::size_t(st.st_size), PROT_READ, MAP_PRIVATE,
                   fd, 0);
    }
    if (map != MAP_FAILED) {
      ::close(fd);
      ::madvise(map, std::size_t(st.st_size), MADV_SEQUENTIAL);
      map_ = map;
      map_size_ = std::size_t(st.st_size);
      view_ = std::string_view(static_cast<const char*>(map_), map_size_);
      ok_ = true;
      return;
    }
    // mmap can fail on exotic filesystems; fall through to read().
  }
  // Pipes, FIFOs, zero-size and unmappable files: slurp with read().
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      fallback_.append(buf, std::size_t(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    error_ = "read: " + errno_string();
    ::close(fd);
    fallback_.clear();
    return;
  }
  ::close(fd);
  view_ = fallback_;
  ok_ = true;
}

MmapFile::~MmapFile() { reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      fallback_(std::move(other.fallback_)),
      ok_(other.ok_),
      error_(std::move(other.error_)) {
  view_ = map_ ? std::string_view(static_cast<const char*>(map_), map_size_)
               : std::string_view(fallback_);
  other.view_ = {};
  other.ok_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    fallback_ = std::move(other.fallback_);
    ok_ = other.ok_;
    error_ = std::move(other.error_);
    view_ = map_ ? std::string_view(static_cast<const char*>(map_), map_size_)
                 : std::string_view(fallback_);
    other.view_ = {};
    other.ok_ = false;
  }
  return *this;
}

void MmapFile::reset() {
  if (map_) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
    map_size_ = 0;
  }
}

}  // namespace pjsb::util
