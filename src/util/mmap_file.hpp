// Read-only whole-file view: mmap for regular files, a read() loop for
// everything else (pipes, /proc files, filesystems without mmap). The
// fast SWF parser wants one contiguous byte span to carve into chunks;
// this type provides it without forcing callers to care how the bytes
// got into the address space.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace pjsb::util {

class MmapFile {
 public:
  MmapFile() = default;
  /// Open and map (or slurp) `path`. Check ok() before using view().
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  bool ok() const { return ok_; }
  /// Why the open failed; empty when ok().
  const std::string& error() const { return error_; }
  /// The file's bytes. Valid for the lifetime of this object; empty for
  /// an empty file (which is still ok()).
  std::string_view view() const { return view_; }
  /// True when view() is an mmap (vs the read() fallback buffer).
  bool mapped() const { return map_ != nullptr; }

 private:
  void reset();

  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  std::string fallback_;
  std::string_view view_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace pjsb::util
