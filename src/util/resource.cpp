#include "util/resource.hpp"

#include <sys/resource.h>

namespace pjsb::util {

double peak_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return double(usage.ru_maxrss) / 1024.0;
}

}  // namespace pjsb::util
