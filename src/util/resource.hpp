// Process resource introspection shared by the tools and benches.
#pragma once

namespace pjsb::util {

/// Peak resident set size of this process in MB. Linux semantics:
/// getrusage's ru_maxrss is kilobytes and monotone over the process
/// lifetime — measure phases in separate (child) processes when their
/// individual peaks matter (see bench/bench_swf.cpp).
double peak_rss_mb();

}  // namespace pjsb::util
