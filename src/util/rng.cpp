#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pjsb::util {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::exponential(double rate) {
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::normal(double mu, double sigma) {
  return std::normal_distribution<double>(mu, sigma)(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::gamma(double alpha, double beta) {
  return std::gamma_distribution<double>(alpha, beta)(engine_);
}

double Rng::erlang(int k, double rate) {
  double sum = 0.0;
  for (int i = 0; i < k; ++i) sum += exponential(rate);
  return sum;
}

double Rng::weibull(double shape, double scale) {
  return std::weibull_distribution<double>(shape, scale)(engine_);
}

double Rng::hyper_exponential(double p, double rate1, double rate2) {
  return exponential(bernoulli(p) ? rate1 : rate2);
}

double Rng::hyper_gamma(double p, double a1, double b1, double a2, double b2) {
  return bernoulli(p) ? gamma(a1, b1) : gamma(a2, b2);
}

double Rng::hyper_erlang(std::span<const double> probs,
                         std::span<const double> rates, int k) {
  if (probs.size() != rates.size() || probs.empty()) {
    throw std::invalid_argument("hyper_erlang: probs/rates size mismatch");
  }
  const std::size_t branch = categorical(probs);
  return erlang(k, rates[branch]);
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  // Inverse-CDF over the finite support; n is small (users, apps) so a
  // linear scan is fine and avoids precomputing tables per call site.
  if (n <= 1) return 1;
  double norm = 0.0;
  for (std::int64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), s);
  double u = uniform() * norm;
  for (std::int64_t i = 1; i <= n; ++i) {
    u -= 1.0 / std::pow(double(i), s);
    if (u <= 0.0) return i;
  }
  return n;
}

std::size_t Rng::categorical(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("categorical: empty");
  double total = 0.0;
  for (double w : weights) total += w;
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

double Rng::two_stage_uniform(double lo, double med, double hi, double prob) {
  return bernoulli(prob) ? uniform(lo, med) : uniform(med, hi);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) {
  // SplitMix64 step over (master ^ stream), giving well-separated child
  // seeds even for consecutive stream indices.
  std::uint64_t z = master ^ (stream * 0xbf58476d1ce4e5b9ULL);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace pjsb::util
