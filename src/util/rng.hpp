// Random number generation and the distribution toolbox used by all
// workload models (DESIGN.md section 3, `util`).
//
// All stochastic components in pjsb draw from a single `Rng` instance so
// that every experiment is reproducible from one seed. The distribution
// set covers what the published workload models need: exponential and
// gamma for interarrival times, hyper-gamma (Lublin '99) and hyper-Erlang
// (Jann '97) for runtimes, two-stage log-uniform (Lublin) for job sizes,
// and Zipf for user/application popularity.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace pjsb::util {

/// Deterministic pseudo-random source. Wraps std::mt19937_64 and exposes
/// the named distributions used by the workload models. Cheap to copy;
/// copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform real in [0, 1).
  double uniform();
  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponential with the given rate (mean = 1/rate).
  double exponential(double rate);
  /// Normal with mean mu and standard deviation sigma.
  double normal(double mu, double sigma);
  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Gamma with shape alpha and scale beta (mean = alpha * beta).
  double gamma(double alpha, double beta);
  /// Erlang: sum of k exponentials each with the given rate.
  double erlang(int k, double rate);
  /// Weibull with shape k and scale lambda.
  double weibull(double shape, double scale);

  /// Two-branch hyper-exponential: rate1 with probability p, else rate2.
  double hyper_exponential(double p, double rate1, double rate2);
  /// Two-branch hyper-gamma (Lublin-Feitelson): Gamma(a1,b1) with
  /// probability p, else Gamma(a2,b2).
  double hyper_gamma(double p, double a1, double b1, double a2, double b2);
  /// Mixture of Erlang branches of common order `k` (Jann et al.): branch
  /// i is chosen with probability probs[i] and has rate rates[i].
  double hyper_erlang(std::span<const double> probs,
                      std::span<const double> rates, int k);

  /// Zipf over {1..n} with exponent s >= 0 (s = 0 is uniform). Used for
  /// user / executable popularity when synthesizing traces.
  std::int64_t zipf(std::int64_t n, double s);

  /// Draw an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights need not be normalized.
  std::size_t categorical(std::span<const double> weights);

  /// Lublin's two-stage uniform over a log2 scale: with probability prob
  /// the value is drawn from U[lo, med], otherwise from U[med, hi]; the
  /// result is the exponent (still in log2 space).
  double two_stage_uniform(double lo, double med, double hi, double prob);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derive a child seed from a master seed and a stream index, so that
/// parallel experiment arms get decorrelated but reproducible streams.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream);

}  // namespace pjsb::util
