#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pjsb::util {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t n = n_ + other.n_;
  m2_ += other.m2_ +
         delta * delta * double(n_) * double(other.n_) / double(n);
  mean_ += delta * double(other.n_) / double(n);
  n_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(double(n_));
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * double(sorted.size() - 1);
  const std::size_t lo = std::size_t(pos);
  const double frac = pos - double(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  OnlineStats os;
  for (double x : sorted) os.add(x);
  s.mean = os.mean();
  s.stddev = os.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile_sorted(sorted, 0.5);
  s.p90 = percentile_sorted(sorted, 0.9);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / double(counts_.size());
  auto idx = std::ptrdiff_t((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   std::ptrdiff_t(counts_.size()) - 1);
  ++counts_[std::size_t(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * double(i) / double(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

double Histogram::fraction(std::size_t i) const {
  return total_ > 0 ? double(counts_.at(i)) / double(total_) : 0.0;
}

std::size_t kendall_discordant_pairs(std::span<const std::size_t> rank_a,
                                     std::span<const std::size_t> rank_b) {
  if (rank_a.size() != rank_b.size()) {
    throw std::invalid_argument("kendall: size mismatch");
  }
  // Position of each item in each ranking.
  const std::size_t n = rank_a.size();
  std::vector<std::size_t> pos_a(n), pos_b(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos_a[rank_a[i]] = i;
    pos_b[rank_b[i]] = i;
  }
  std::size_t discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool a_less = pos_a[i] < pos_a[j];
      const bool b_less = pos_b[i] < pos_b[j];
      if (a_less != b_less) ++discordant;
    }
  }
  return discordant;
}

double ks_statistic(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_statistic: empty sample");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < sa.size() && j < sb.size()) {
    // Advance both CDFs past the next value together, so ties do not
    // create spurious distance.
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] == x) ++i;
    while (j < sb.size() && sb[j] == x) ++j;
    const double fa = double(i) / double(sa.size());
    const double fb = double(j) / double(sb.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

double coefficient_of_variation(std::span<const double> xs) {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.mean() != 0.0 ? s.stddev() / s.mean() : 0.0;
}

std::vector<std::size_t> ranking_of(std::span<const double> scores) {
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  return idx;
}

}  // namespace pjsb::util
