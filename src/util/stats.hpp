// Summary statistics used by the metrics module and the experiment
// harnesses: online moments (Welford), percentiles, confidence
// intervals, and fixed-width histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace pjsb::util {

/// Single-pass mean/variance accumulator (Welford). Numerically stable
/// for the long, heavy-tailed series produced by scheduler simulations.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * double(n_); }
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Full-sample summary: keeps the data so percentiles are exact.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Compute a full summary of `xs` (copies and sorts internally).
Summary summarize(std::span<const double> xs);

/// Exact percentile (linear interpolation between order statistics) of a
/// *sorted* sample; q in [0, 1].
double percentile_sorted(std::span<const double> sorted, double q);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; samples
/// outside the range are clamped into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  /// Fraction of samples in bin i (0 if the histogram is empty).
  double fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Kendall rank distance between two rankings of the same item set:
/// the number of discordant pairs. 0 means identical rankings; used by
/// the metric-conflict experiments (E3/E4) to quantify rank flips.
std::size_t kendall_discordant_pairs(std::span<const std::size_t> rank_a,
                                     std::span<const std::size_t> rank_b);

/// Return the ranking (indices sorted ascending by score) of `scores`.
std::vector<std::size_t> ranking_of(std::span<const double> scores);

/// Two-sample Kolmogorov-Smirnov statistic: the maximum distance
/// between the empirical CDFs of `a` and `b` (in [0, 1]). Used to
/// compare workload models against each other / against traces, in the
/// spirit of the model-comparison work ([58]) the paper cites.
double ks_statistic(std::span<const double> a, std::span<const double> b);

/// Coefficient of variation (stddev / mean); 0 for degenerate input.
double coefficient_of_variation(std::span<const double> xs);

}  // namespace pjsb::util
