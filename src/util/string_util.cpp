#include "util/string_util.hpp"

#include <cctype>
#include <charconv>

namespace pjsb::util {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::optional<std::int64_t> parse_i64(std::string_view token) {
  token = trim(token);
  if (token.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_f64(std::string_view token) {
  token = trim(token);
  if (token.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = char(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace pjsb::util
