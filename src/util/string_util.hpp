// Small string helpers shared by the SWF / outage / raw-log parsers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pjsb::util {

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of spaces/tabs; no empty tokens.
std::vector<std::string_view> split_ws(std::string_view s);

/// Split on a single delimiter character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Parse a decimal signed 64-bit integer; the *entire* token must be
/// consumed. Returns nullopt on any malformed input (the SWF reader
/// turns that into a diagnostic rather than silently coercing).
std::optional<std::int64_t> parse_i64(std::string_view token);

/// Parse a decimal double (entire token). Used only by raw-log
/// converters; the SWF body itself is integers-only by design.
std::optional<double> parse_f64(std::string_view token);

/// Case-sensitive prefix test.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lowercase copy (ASCII).
std::string to_lower(std::string_view s);

}  // namespace pjsb::util
