#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pjsb::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  if (cells_.empty()) row();
  if (cells_.back().size() >= headers_.size()) {
    throw std::logic_error("Table: too many cells in row");
  }
  cells_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

const std::string& Table::at(std::size_t r, std::size_t c) const {
  return cells_.at(r).at(c);
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : headers_[0].substr(0, 0);
      os << (c == 0 ? "| " : " ") << std::left << std::setw(int(widths[c]))
         << v << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : cells_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : cells_) emit(row);
  return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Exact JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
/// strtod alone would also accept "inf", hex floats, "+5", ".5", "5."
/// and "007" — all invalid JSON tokens that, emitted unquoted, would
/// make the whole document unparseable.
bool is_number(const std::string& s) {
  const char* p = s.c_str();
  if (*p == '-') ++p;
  if (*p == '0') {
    ++p;
  } else if (*p >= '1' && *p <= '9') {
    while (*p >= '0' && *p <= '9') ++p;
  } else {
    return false;
  }
  if (*p == '.') {
    ++p;
    if (!(*p >= '0' && *p <= '9')) return false;
    while (*p >= '0' && *p <= '9') ++p;
  }
  if (*p == 'e' || *p == 'E') {
    ++p;
    if (*p == '+' || *p == '-') ++p;
    if (!(*p >= '0' && *p <= '9')) return false;
    while (*p >= '0' && *p <= '9') ++p;
  }
  return *p == '\0' && !s.empty();
}

}  // namespace

std::string Table::to_json() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t r = 0; r < cells_.size(); ++r) {
    if (r) os << ", ";
    os << '{';
    const auto& row = cells_[r];
    for (std::size_t c = 0; c < headers_.size() && c < row.size(); ++c) {
      if (c) os << ", ";
      os << '"' << json_escape(headers_[c]) << "\": ";
      if (is_number(row[c])) {
        os << row[c];
      } else {
        os << '"' << json_escape(row[c]) << '"';
      }
    }
    os << '}';
  }
  os << ']';
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string format_duration(std::int64_t seconds) {
  std::ostringstream os;
  if (seconds < 0) {
    os << '-';
    seconds = -seconds;
  }
  const std::int64_t h = seconds / 3600;
  const std::int64_t m = (seconds % 3600) / 60;
  const std::int64_t s = seconds % 60;
  if (h > 0) {
    os << h << 'h' << std::setw(2) << std::setfill('0') << m << 'm';
  } else if (m > 0) {
    os << m << 'm' << std::setw(2) << std::setfill('0') << s << 's';
  } else {
    os << s << 's';
  }
  return os.str();
}

}  // namespace pjsb::util
