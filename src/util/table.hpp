// ASCII table rendering for the benchmark harnesses. Every experiment
// binary (bench/) prints its reproduction of a paper artifact as one of
// these tables, plus an optional CSV dump for post-processing.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pjsb::util {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendering pads to the widest cell per column.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::int64_t value);
  Table& cell(std::size_t value);
  Table& cell(int value);

  std::size_t rows() const { return cells_.size(); }
  std::size_t columns() const { return headers_.size(); }
  const std::string& at(std::size_t r, std::size_t c) const;

  /// Render with a header rule and column separators.
  std::string to_string() const;
  /// Comma-separated values (headers + rows), for machine consumption.
  std::string to_csv() const;
  /// JSON array of row objects keyed by header. Cells that parse as
  /// numbers are emitted unquoted so downstream tooling gets real
  /// numeric fields.
  std::string to_json() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format a duration in seconds as a compact human string (e.g. "2h05m").
std::string format_duration(std::int64_t seconds);

}  // namespace pjsb::util
