#include "util/time_util.hpp"

#include <array>
#include <iomanip>
#include <sstream>

namespace pjsb::util {

namespace {

constexpr std::array<const char*, 7> kWeekdays = {
    "Sunday", "Monday", "Tuesday", "Wednesday",
    "Thursday", "Friday", "Saturday"};

constexpr std::array<const char*, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

std::optional<int> month_from_name(const std::string& name) {
  for (int i = 0; i < 12; ++i) {
    if (name == kMonths[std::size_t(i)]) return i + 1;
  }
  return std::nullopt;
}

}  // namespace

std::int64_t days_from_civil(int year, int month, int day) {
  year -= month <= 2;
  const std::int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = unsigned(year - int(era) * 400);
  const unsigned doy =
      unsigned((153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + std::int64_t(doe) - 719468;
}

CivilTime civil_from_days(std::int64_t days) {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = unsigned(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = std::int64_t(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  CivilTime ct;
  ct.year = int(y + (m <= 2));
  ct.month = int(m);
  ct.day = int(d);
  return ct;
}

std::int64_t to_unix_seconds(const CivilTime& ct) {
  return days_from_civil(ct.year, ct.month, ct.day) * 86400 +
         ct.hour * 3600 + ct.minute * 60 + ct.second;
}

CivilTime from_unix_seconds(std::int64_t t) {
  std::int64_t days = t / 86400;
  std::int64_t rem = t % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  CivilTime ct = civil_from_days(days);
  ct.hour = int(rem / 3600);
  ct.minute = int((rem % 3600) / 60);
  ct.second = int(rem % 60);
  return ct;
}

int day_of_week(std::int64_t unix_seconds) {
  std::int64_t days = unix_seconds / 86400;
  if (unix_seconds % 86400 < 0) --days;
  // 1970-01-01 was a Thursday (4).
  return int(((days % 7) + 7 + 4) % 7);
}

std::string format_swf_time(std::int64_t unix_seconds) {
  const CivilTime ct = from_unix_seconds(unix_seconds);
  std::ostringstream os;
  os << kWeekdays[std::size_t(day_of_week(unix_seconds))] << ", " << ct.day
     << ' ' << kMonths[std::size_t(ct.month - 1)] << ' ' << ct.year << ", "
     << std::setw(2) << std::setfill('0') << ct.hour << ':' << std::setw(2)
     << ct.minute << ':' << std::setw(2) << ct.second;
  return os.str();
}

std::optional<std::int64_t> parse_swf_time(const std::string& text) {
  // Expected: "Weekday, D Mon YYYY, HH:MM:SS". Split on commas first.
  std::istringstream is(text);
  std::string weekday, datepart, timepart;
  if (!std::getline(is, weekday, ',')) return std::nullopt;
  if (!std::getline(is, datepart, ',')) return std::nullopt;
  if (!std::getline(is, timepart)) return std::nullopt;

  std::istringstream ds(datepart);
  int day = 0, year = 0;
  std::string mon;
  if (!(ds >> day >> mon >> year)) return std::nullopt;
  const auto month = month_from_name(mon);
  if (!month || day < 1 || day > 31) return std::nullopt;

  std::istringstream ts(timepart);
  int hh = 0, mm = 0, ss = 0;
  char c1 = 0, c2 = 0;
  if (!(ts >> hh >> c1 >> mm >> c2 >> ss) || c1 != ':' || c2 != ':') {
    return std::nullopt;
  }
  if (hh < 0 || hh > 23 || mm < 0 || mm > 59 || ss < 0 || ss > 60) {
    return std::nullopt;
  }
  CivilTime ct{year, *month, day, hh, mm, ss};
  return to_unix_seconds(ct);
}

int seconds_into_day(std::int64_t unix_seconds) {
  std::int64_t rem = unix_seconds % 86400;
  if (rem < 0) rem += 86400;
  return int(rem);
}

}  // namespace pjsb::util
