// Human-readable timestamp handling for SWF header comments.
//
// The standard (paper section 2.3) requires StartTime / EndTime header
// values "in human readable form, in this standard format:
// `Tuesday, 1 Dec 1998, 22:00:00`". We parse and format exactly that
// shape, treating the timestamp as UTC (the standard does not carry a
// timezone; archive convention is local time recorded verbatim).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace pjsb::util {

/// Broken-down civil time, proleptic Gregorian.
struct CivilTime {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
  int hour = 0;
  int minute = 0;
  int second = 0;

  bool operator==(const CivilTime&) const = default;
};

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
std::int64_t days_from_civil(int year, int month, int day);

/// Inverse of days_from_civil.
CivilTime civil_from_days(std::int64_t days);

/// Seconds since the Unix epoch for a civil time (UTC).
std::int64_t to_unix_seconds(const CivilTime& ct);

/// Civil time (UTC) for a Unix timestamp.
CivilTime from_unix_seconds(std::int64_t t);

/// Day of week, 0 = Sunday .. 6 = Saturday.
int day_of_week(std::int64_t unix_seconds);

/// Format in SWF header style: "Tuesday, 1 Dec 1998, 22:00:00".
std::string format_swf_time(std::int64_t unix_seconds);

/// Parse SWF header style; returns nullopt on malformed input. The
/// weekday name is accepted but not trusted (the date wins).
std::optional<std::int64_t> parse_swf_time(const std::string& text);

/// Seconds into the (UTC) day, 0..86399.
int seconds_into_day(std::int64_t unix_seconds);

}  // namespace pjsb::util
