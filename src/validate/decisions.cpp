#include "validate/decisions.hpp"

#include <sstream>

#include "sim/replay.hpp"

namespace pjsb::validate {

std::vector<sim::Decision> replay_decisions(
    const swf::Trace& trace, const std::string& scheduler_spec,
    std::optional<std::int64_t> nodes) {
  DecisionRecorder recorder;
  sim::SimulationSpec spec;
  spec.scheduler = scheduler_spec;
  spec.nodes = nodes;
  sim::replay(trace, spec, sim::ReplayHooks{}.observe(recorder));
  return recorder.decisions();
}

std::string decisions_to_csv(const std::vector<sim::Decision>& decisions) {
  std::string csv = "time,job,procs,virtual\n";
  for (const auto& d : decisions) {
    csv += std::to_string(d.time) + ',' + std::to_string(d.job_id) + ',' +
           std::to_string(d.procs) + ',' + (d.virtual_start ? '1' : '0');
    csv += '\n';
  }
  return csv;
}

std::string diff_decision_csv(const std::string& expected,
                              const std::string& actual) {
  if (expected == actual) return "";
  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line, got_line;
  for (std::size_t line = 1;; ++line) {
    const bool have_want = bool(std::getline(want, want_line));
    const bool have_got = bool(std::getline(got, got_line));
    if (!have_want && !have_got) break;  // differ only in trailing bytes
    if (have_want && have_got && want_line == got_line) continue;
    std::string diff = "decision traces diverge at line " +
                       std::to_string(line) + ":\n  expected: " +
                       (have_want ? want_line : "<end of trace>") +
                       "\n  actual:   " +
                       (have_got ? got_line : "<end of trace>");
    return diff;
  }
  return "decision traces differ in whitespace/trailing bytes only";
}

}  // namespace pjsb::validate
