// Decision traces: the scheduler's observable behaviour as data.
//
// A replay's sequence of (time, job, procs, virtual) start decisions
// pins down the policy's behaviour exactly — two runs that agree on
// their decision traces agree on every derived metric. The metamorphic
// harness compares decision traces across workload transformations and
// the golden harness snapshots them to files, so both build on this
// one recorder + serializer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/swf/trace.hpp"
#include "sim/observer.hpp"

namespace pjsb::validate {

/// Collects every decision of one replay, in emission order.
class DecisionRecorder final : public sim::SimObserver {
 public:
  void on_decision(const sim::Decision& decision) override {
    decisions_.push_back(decision);
  }
  const std::vector<sim::Decision>& decisions() const { return decisions_; }

 private:
  std::vector<sim::Decision> decisions_;
};

/// Replay `trace` under `scheduler_spec` (open loop, no outages) and
/// return the decision trace. `nodes` empty defers to the trace's
/// MaxNodes header, exactly like sim::replay.
std::vector<sim::Decision> replay_decisions(
    const swf::Trace& trace, const std::string& scheduler_spec,
    std::optional<std::int64_t> nodes = std::nullopt);

/// Canonical text form, one line per decision:
///   time,job,procs,virtual
/// preceded by a header line. Line-diffable and byte-stable, so golden
/// files review well and diffs point at the first divergent decision.
std::string decisions_to_csv(const std::vector<sim::Decision>& decisions);

/// Compare two decision CSVs; empty result means identical. Otherwise a
/// short human-readable diff naming the first divergent line.
std::string diff_decision_csv(const std::string& expected,
                              const std::string& actual);

}  // namespace pjsb::validate
