#include "validate/fuzzer.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <set>

#include "core/swf/job_source.hpp"
#include "sim/fault/fault.hpp"
#include "sim/replay.hpp"
#include "util/rng.hpp"
#include "validate/invariants.hpp"

namespace pjsb::validate {

namespace {

/// Candidate settings for an integer parameter: the schema bounds plus
/// a couple of small values, clamped into range, minus the default
/// (the bare name already covers it).
std::vector<std::int64_t> int_candidates(const sched::ParamSpec& p) {
  std::vector<std::int64_t> raw = {p.int_min, 1, 2, 8};
  if (p.int_default > 0) raw.push_back(p.int_default * 2);
  std::vector<std::int64_t> values;
  for (std::int64_t v : raw) {
    v = std::clamp(v, p.int_min, p.int_max);
    if (v == p.int_default) continue;
    if (std::find(values.begin(), values.end(), v) == values.end()) {
      values.push_back(v);
    }
  }
  std::sort(values.begin(), values.end());
  return values;
}

}  // namespace

std::string FuzzFailure::to_string() const {
  return "[" + scheduler + " / " + variant + " / seed=" +
         std::to_string(seed) + " workload=" + std::to_string(workload) +
         " (derived workload seed " + std::to_string(workload_seed) +
         ")] " + detail;
}

std::string FuzzReport::summary() const {
  std::string s = "fuzzer: " + std::to_string(specs) + " scheduler specs, " +
                  std::to_string(runs) + " runs, " +
                  std::to_string(failure_count) + " failure(s)";
  if (failure_count > failures.size()) {
    s += " (first " + std::to_string(failures.size()) + " shown)";
  }
  for (const auto& f : failures) s += "\n  " + f.to_string();
  return s;
}

std::vector<std::string> enumerate_scheduler_specs(
    const sched::Registry& registry) {
  std::vector<std::string> specs;
  for (const auto* info : registry.entries()) {
    specs.push_back(info->name);
    for (const auto& p : info->params) {
      switch (p.type) {
        case sched::ParamSpec::Type::kInt:
          for (const std::int64_t v : int_candidates(p)) {
            specs.push_back(info->name + " " + p.key + "=" +
                            std::to_string(v));
          }
          break;
        case sched::ParamSpec::Type::kChoice:
          for (std::size_t i = 1; i < p.choices.size(); ++i) {
            specs.push_back(info->name + " " + p.key + "=" + p.choices[i]);
          }
          break;
        case sched::ParamSpec::Type::kReal:
          // No built-in scheduler carries real parameters; fuzz the
          // bounds when one appears.
          specs.push_back(info->name + " " + p.key + "=" +
                          std::to_string(p.real_min));
          break;
      }
    }
  }
  return specs;
}

swf::Trace fuzz_workload(std::uint64_t seed, std::size_t jobs,
                         std::int64_t nodes) {
  util::Rng rng(seed);
  swf::Trace trace;
  trace.header.max_nodes = nodes;
  trace.header.computer = "fuzz";
  std::int64_t t = 0;
  for (std::size_t i = 0; i < jobs; ++i) {
    // Bursty arrivals: same-second clusters, short gaps, rare lulls.
    const double roll = rng.uniform();
    if (roll < 0.3) {
      // burst: keep t
    } else if (roll < 0.9) {
      t += rng.uniform_int(1, 600);
    } else {
      t += rng.uniform_int(600, 20000);
    }

    swf::JobRecord r;
    r.job_number = std::int64_t(i) + 1;
    r.submit_time = t;

    const double size_roll = rng.uniform();
    if (size_roll < 0.4) {
      r.requested_procs = 1;
    } else if (size_roll < 0.7) {
      r.requested_procs = rng.uniform_int(2, std::max<std::int64_t>(2, nodes / 2));
    } else if (size_roll < 0.9) {
      // Power-of-two sizes, the dominant shape in real archives.
      const std::int64_t max_pow =
          std::max<std::int64_t>(1, std::int64_t(std::log2(double(nodes))));
      r.requested_procs = std::int64_t(1) << rng.uniform_int(1, max_pow);
    } else {
      r.requested_procs = nodes;  // full-machine drains stress the head
    }
    r.requested_procs = std::clamp<std::int64_t>(r.requested_procs, 1, nodes);
    r.allocated_procs = r.requested_procs;

    // Heavy-tailed runtimes; estimates always bound the runtime, as
    // SimJob::from_record enforces for replayed records.
    r.run_time = std::clamp<std::int64_t>(
        std::int64_t(rng.lognormal(6.0, 2.0)), 1, 50000);
    if (rng.bernoulli(0.3)) {
      r.requested_time = r.run_time;  // perfect estimate
    } else {
      r.requested_time =
          r.run_time + std::int64_t(double(r.run_time) * rng.uniform(0.0, 3.0));
    }
    r.status = swf::Status::kCompleted;
    trace.records.push_back(r);
  }
  return trace;
}

outage::OutageLog fuzz_outages(std::uint64_t seed, std::int64_t nodes,
                               std::int64_t horizon) {
  util::Rng rng(seed);
  outage::OutageLog log;
  const std::int64_t span = std::max<std::int64_t>(horizon, 1000);
  const int count = int(rng.uniform_int(1, 4));
  for (int i = 0; i < count; ++i) {
    outage::OutageRecord rec;
    rec.start_time = rng.uniform_int(span / 10, span);
    rec.end_time = rec.start_time + rng.uniform_int(100, span / 4 + 100);
    rec.type = rng.bernoulli(0.5) ? outage::OutageType::kCpuFailure
                                  : outage::OutageType::kScheduledMaintenance;
    if (rng.bernoulli(0.5)) {
      rec.announce_time =
          std::max<std::int64_t>(0, rec.start_time - rng.uniform_int(60, 7200));
    }
    std::set<std::int64_t> components;
    const std::int64_t victims =
        rng.uniform_int(1, std::max<std::int64_t>(1, nodes / 4));
    while (std::int64_t(components.size()) < victims) {
      components.insert(rng.uniform_int(0, nodes - 1));
    }
    rec.components.assign(components.begin(), components.end());
    rec.nodes_affected = std::int64_t(rec.components.size());
    log.records.push_back(rec);
  }
  log.sort_by_start();
  return log;
}

namespace {

/// A randomized fault-injection plan: the spec-surface fields the
/// faults variant copies onto its SimulationSpec. One per workload, so
/// every policy faces the identical crash schedule.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::int64_t mtbf = 0;
  std::int64_t repair = 0;
  std::int64_t checkpoint = 0;
  std::int64_t dump = 0;
  std::int64_t read = 0;
  int retry_limit = 0;
  std::int64_t backoff = 0;
  sim::fault::OverrunPolicy overrun = sim::fault::OverrunPolicy::kExtend;
  std::int64_t grace = 0;
};

FaultPlan fuzz_fault_plan(std::uint64_t seed, std::int64_t nodes,
                          std::int64_t horizon) {
  util::Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed != 0 ? seed : 1;
  // Aim for a handful of crashes across the whole machine: the
  // expected count over the horizon is nodes * horizon / mtbf.
  const std::int64_t span = std::max<std::int64_t>(horizon, 1000);
  plan.mtbf = std::max<std::int64_t>(
      1000, nodes * span / rng.uniform_int(3, 15));
  plan.repair = rng.uniform_int(60, span / 10 + 60);
  if (rng.bernoulli(0.7)) {
    plan.checkpoint = rng.uniform_int(50, 5000);
    plan.dump = rng.uniform_int(0, 60);
    plan.read = rng.uniform_int(0, 60);
  }
  if (rng.bernoulli(0.5)) plan.retry_limit = int(rng.uniform_int(1, 3));
  if (rng.bernoulli(0.3)) plan.backoff = rng.uniform_int(30, 600);
  const double overrun_roll = rng.uniform();
  if (overrun_roll < 0.25) {
    plan.overrun = sim::fault::OverrunPolicy::kKill;
  } else if (overrun_roll < 0.5) {
    plan.overrun = sim::fault::OverrunPolicy::kGrace;
    plan.grace = rng.uniform_int(60, 3600);
  }
  return plan;
}

void fuzz_one(const std::string& spec_string, const swf::Trace& trace,
              const outage::OutageLog* outages, const FaultPlan* faults,
              int workload, std::uint64_t workload_seed,
              const FuzzOptions& options, bool stream, const char* variant,
              FuzzReport& report) {
  ++report.runs;
  std::string detail;
  try {
    auto scheduler = sched::make_scheduler(spec_string);

    CheckerOptions checker_options;
    checker_options.nodes = options.nodes;
    checker_options.scheduler = spec_string;
    checker_options.outages = outages != nullptr || faults != nullptr;
    InvariantChecker checker(checker_options);
    checker.watch(*scheduler);

    sim::SimulationSpec spec;
    spec.scheduler = spec_string;
    spec.nodes = options.nodes;
    if (faults) {
      spec.faults = faults->seed;
      spec.mtbf = faults->mtbf;
      spec.repair = faults->repair;
      spec.checkpoint = faults->checkpoint;
      spec.dump = faults->dump;
      spec.read = faults->read;
      spec.retry_limit = faults->retry_limit;
      spec.backoff = faults->backoff;
      spec.overrun = faults->overrun;
      spec.grace = faults->grace;
    }
    sim::ReplayHooks hooks;
    hooks.observe(checker);
    if (outages) hooks.with_outages(*outages);

    if (stream) {
      spec.streaming_memory().with_lookahead(8);
      swf::TraceSource source(trace);
      sim::replay(source, std::move(scheduler), spec, hooks);
    } else {
      sim::replay(trace, std::move(scheduler), spec, hooks);
    }
    if (!checker.clean()) detail = checker.summary();
  } catch (const std::exception& e) {
    detail = std::string("exception: ") + e.what();
  }
  if (detail.empty()) return;
  ++report.failure_count;
  if (report.failures.size() < options.max_failures) {
    report.failures.push_back({spec_string, variant, options.seed, workload,
                               workload_seed, std::move(detail)});
  }
}

}  // namespace

FuzzReport run_fuzzer(const FuzzOptions& options) {
  FuzzReport report;
  const auto specs = enumerate_scheduler_specs(sched::Registry::global());
  report.specs = specs.size();

  for (int w = 0; w < options.workloads; ++w) {
    // Workload seeds are independent of the scheduler axis, so every
    // policy faces the identical workloads (and outage streams).
    const std::uint64_t workload_seed =
        util::derive_seed(options.seed, std::uint64_t(w));
    const auto trace = fuzz_workload(workload_seed, options.jobs,
                                     options.nodes);
    outage::OutageLog outages;
    if (options.outage_runs) {
      outages = fuzz_outages(util::derive_seed(options.seed,
                                               std::uint64_t(w) + 1000),
                             options.nodes, trace.horizon());
    }
    FaultPlan fault_plan;
    if (options.fault_runs) {
      fault_plan = fuzz_fault_plan(util::derive_seed(options.seed,
                                                     std::uint64_t(w) + 2000),
                                   options.nodes, trace.horizon());
    }

    for (const auto& spec : specs) {
      fuzz_one(spec, trace, nullptr, nullptr, w, workload_seed, options,
               /*stream=*/false, "materialized", report);
      if (options.outage_runs) {
        fuzz_one(spec, trace, &outages, nullptr, w, workload_seed, options,
                 /*stream=*/false, "outages", report);
      }
      if (options.stream_runs) {
        fuzz_one(spec, trace, nullptr, nullptr, w, workload_seed, options,
                 /*stream=*/true, "stream", report);
      }
      if (options.fault_runs) {
        fuzz_one(spec, trace, nullptr, &fault_plan, w, workload_seed,
                 options, /*stream=*/false, "faults", report);
      }
    }
  }
  return report;
}

}  // namespace pjsb::validate
