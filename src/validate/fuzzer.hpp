// Deterministic seeded fuzzer: every registered scheduler spec under
// randomized workloads and outages, with all invariant checkers
// attached.
//
// The policy axis is not hand-listed — it is enumerated from
// sched::Registry (base names plus parameterized variants derived from
// each schema), so a newly registered scheduler is fuzzed the moment it
// exists. Every run derives from one master seed; a reported failure
// carries the exact seed that reproduces it:
//
//   swf_tool fuzz <seed>
//
// Four variants per (spec, workload): a materialized replay with the
// policy-promise checks on, an outage replay (random failures, promise
// checks off — capacity loss legitimately slips reservations), a
// bounded-lookahead streaming replay with slot recycling (exercising
// job conservation under constant-memory mode), and a faults replay
// (a random seeded crash schedule plus a randomized recovery config —
// checkpointing, retry limits, backoff, walltime-overrun policies —
// exercising the recovery contracts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/outage/record.hpp"
#include "core/swf/trace.hpp"
#include "sched/registry.hpp"

namespace pjsb::validate {

struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Random workloads per scheduler spec.
  int workloads = 3;
  /// Jobs per workload.
  std::size_t jobs = 120;
  /// Simulated machine size.
  std::int64_t nodes = 32;
  /// Run the outage variant of each workload.
  bool outage_runs = true;
  /// Run the streaming (recycle_slots) variant of each workload.
  bool stream_runs = true;
  /// Run the fault-injection variant of each workload (random crash
  /// schedule + randomized recovery config).
  bool fault_runs = true;
  /// Failures stored verbatim; the count stays exact.
  std::size_t max_failures = 16;
};

struct FuzzFailure {
  std::string scheduler;  ///< registry spec string
  std::string variant;    ///< "materialized", "outages", "stream", "faults"
  /// The master seed of the run: `swf_tool fuzz <seed>` (with the same
  /// workloads/jobs budget) reproduces this failure.
  std::uint64_t seed = 0;
  /// Which workload of the run tripped it (0-based).
  int workload = 0;
  /// util::derive_seed(seed, workload) — feeds fuzz_workload directly
  /// when reproducing in a unit test.
  std::uint64_t workload_seed = 0;
  std::string detail;     ///< checker summary or exception text

  std::string to_string() const;
};

struct FuzzReport {
  std::size_t specs = 0;  ///< scheduler specs enumerated
  std::size_t runs = 0;   ///< replays executed
  std::size_t failure_count = 0;
  std::vector<FuzzFailure> failures;  ///< first max_failures

  bool clean() const { return failure_count == 0; }
  std::string summary() const;
};

/// Every spec the fuzzer drives: each registered scheduler's canonical
/// name plus parameterized variants derived from its schema (a few
/// values per int parameter, every non-default choice). Deterministic
/// and registration-ordered.
std::vector<std::string> enumerate_scheduler_specs(
    const sched::Registry& registry);

/// A randomized but reproducible workload: bursty arrivals, skewed
/// sizes (serial to full-machine), heavy-tailed runtimes, estimates
/// that always bound the runtime (as replayed SWF records do).
swf::Trace fuzz_workload(std::uint64_t seed, std::size_t jobs,
                         std::int64_t nodes);

/// A randomized outage log over the workload horizon: a few node
/// failures/maintenance windows, some announced in advance.
outage::OutageLog fuzz_outages(std::uint64_t seed, std::int64_t nodes,
                               std::int64_t horizon);

/// Drive every enumerated spec through every workload variant with an
/// InvariantChecker attached; never throws — engine exceptions become
/// failures too.
FuzzReport run_fuzzer(const FuzzOptions& options = {});

// ---------------------------------------------------------------------
// Differential parser fuzzing (`swf_tool fuzz parse`): seeded byte-
// level mutations of generated traces — bit flips, field splices, huge
// tokens, NUL/UTF-8 junk, CRLF conversion, truncation, empty and
// comment-only files — fed through the legacy readers and the fast
// parser at several thread counts and adversarial chunk sizes. Every
// case asserts identical records, header fields, accept/reject
// verdicts, error lines/messages and bounded error storage; any
// divergence or exception is a failure carrying its case seed.

struct ParserFuzzOptions {
  std::uint64_t seed = 1;
  /// Mutated inputs to generate and cross-check.
  int cases = 200;
  /// FastReader thread counts exercised per case.
  std::vector<int> thread_counts = {1, 2, 8};
  /// Failures stored verbatim; the count stays exact.
  std::size_t max_failures = 16;
};

struct ParserFuzzReport {
  int cases = 0;
  std::size_t failure_count = 0;
  std::vector<std::string> failures;  ///< first max_failures

  bool clean() const { return failure_count == 0; }
  std::string summary() const;
};

ParserFuzzReport run_parser_fuzzer(const ParserFuzzOptions& options = {});

}  // namespace pjsb::validate
