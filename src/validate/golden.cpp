#include "validate/golden.hpp"

#include <fstream>
#include <sstream>

#include "validate/decisions.hpp"

namespace pjsb::validate {

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return bool(out);
}

}  // namespace

GoldenResult check_golden_csv(const std::string& actual_csv,
                              const std::string& golden_path,
                              const std::string& label) {
  GoldenResult result;
  const auto expected = read_file(golden_path);
  if (!expected) {
    result.message = "cannot read golden file '" + golden_path +
                     "' (run with --bless to create it)";
    return result;
  }
  const std::string diff = diff_decision_csv(*expected, actual_csv);
  if (diff.empty()) {
    result.ok = true;
    result.message = "golden decision trace matches (" + golden_path + ")";
    return result;
  }
  result.message = label + " vs " + golden_path + ": " + diff;
  const std::string actual_path = golden_path + ".actual";
  if (write_file(actual_path, actual_csv)) {
    result.actual_path = actual_path;
    result.message += "\nactual trace written to " + actual_path;
  }
  return result;
}

GoldenResult bless_golden_csv(const std::string& actual_csv,
                              const std::string& golden_path,
                              const std::string& label) {
  GoldenResult result;
  if (!write_file(golden_path, actual_csv)) {
    result.message = "cannot write golden file '" + golden_path + "'";
    return result;
  }
  result.ok = true;
  result.message = "blessed " + golden_path + " from " + label;
  return result;
}

GoldenResult check_golden(const swf::Trace& trace,
                          const std::string& scheduler_spec,
                          const std::string& golden_path,
                          std::optional<std::int64_t> nodes) {
  return check_golden_csv(
      decisions_to_csv(replay_decisions(trace, scheduler_spec, nodes)),
      golden_path, scheduler_spec);
}

GoldenResult bless_golden(const swf::Trace& trace,
                          const std::string& scheduler_spec,
                          const std::string& golden_path,
                          std::optional<std::int64_t> nodes) {
  return bless_golden_csv(
      decisions_to_csv(replay_decisions(trace, scheduler_spec, nodes)),
      golden_path, scheduler_spec);
}

}  // namespace pjsb::validate
