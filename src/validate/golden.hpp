// Golden decision-trace regression: committed snapshots of scheduler
// behaviour on reference workloads.
//
// A golden file under data/golden/ records the exact decision trace of
// one (workload, scheduler) pair. `check_golden` replays and compares;
// `bless_golden` regenerates the snapshot after an intentional policy
// change (`swf_tool validate <trace> <spec> <golden> --bless`). On a
// mismatch the actual trace is written next to the golden file as
// `<golden>.actual`, so CI can upload the pair as a reviewable diff
// artifact.
#pragma once

#include <optional>
#include <string>

#include "core/swf/trace.hpp"

namespace pjsb::validate {

struct GoldenResult {
  bool ok = false;
  /// Diagnostic: diff location, I/O failure, or bless confirmation.
  std::string message;
  /// Path of the `.actual` dump written on a mismatch (empty if none).
  std::string actual_path;
};

/// Replay `trace` under `scheduler_spec` and compare the decision trace
/// against the snapshot at `golden_path`. A missing snapshot is a
/// failure (run --bless once to create it). `nodes` empty defers to the
/// trace's MaxNodes header.
GoldenResult check_golden(const swf::Trace& trace,
                          const std::string& scheduler_spec,
                          const std::string& golden_path,
                          std::optional<std::int64_t> nodes = std::nullopt);

/// Regenerate the snapshot at `golden_path` from a fresh replay.
GoldenResult bless_golden(const swf::Trace& trace,
                          const std::string& scheduler_spec,
                          const std::string& golden_path,
                          std::optional<std::int64_t> nodes = std::nullopt);

/// CSV-level variants for callers that already ran the replay (e.g.
/// swf_tool, which records decisions while the invariant checkers
/// watch the same run — no second simulation). `label` only flavors
/// diagnostics.
GoldenResult check_golden_csv(const std::string& actual_csv,
                              const std::string& golden_path,
                              const std::string& label);
GoldenResult bless_golden_csv(const std::string& actual_csv,
                              const std::string& golden_path,
                              const std::string& label);

}  // namespace pjsb::validate
