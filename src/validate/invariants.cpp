#include "validate/invariants.hpp"

#include <algorithm>

#include "sched/registry.hpp"
#include "sim/engine.hpp"

namespace pjsb::validate {

namespace {

/// How often the cross-check profile folds its history away.
constexpr std::size_t kCompactEvery = 4096;

}  // namespace

std::string Violation::to_string() const {
  std::string s = invariant + " @t=" + std::to_string(time);
  if (job_id >= 0) s += " job=" + std::to_string(job_id);
  s += ": " + message;
  return s;
}

InvariantChecker::InvariantChecker(const CheckerOptions& options)
    : options_(options),
      scheduler_instance_(options.scheduler_instance),
      profile_(options.nodes),
      last_up_(options.nodes) {
  if (!options_.scheduler.empty()) {
    // Resolve the policy identity; a spec the registry does not know
    // (a custom policy) simply runs without the policy-contract checks.
    try {
      const auto parsed = sched::Registry::global().parse(options_.scheduler);
      base_ = parsed.info->name;
      if (base_ == "gang") gang_slots_ = parsed.values.get_int("slots");
      if (base_ == "easy" || base_ == "conservative") {
        reserve_depth_ = parsed.values.get_int("reserve_depth");
      }
      track_order_ = base_ == "fcfs" || base_ == "easy" ||
                     base_ == "conservative";
    } catch (const std::invalid_argument&) {
      base_.clear();
    }
  }
}

void InvariantChecker::report(const std::string& invariant,
                              std::int64_t time, std::int64_t job_id,
                              std::string message) {
  ++violation_count_;
  if (violations_.size() < options_.max_violations) {
    violations_.push_back({invariant, time, job_id, std::move(message)});
  }
}

std::string InvariantChecker::summary() const {
  if (clean()) return "clean";
  std::string s = std::to_string(violation_count_) + " violation(s)";
  if (violation_count_ > violations_.size()) {
    s += " (first " + std::to_string(violations_.size()) + " shown)";
  }
  for (const auto& v : violations_) s += "\n  " + v.to_string();
  return s;
}

bool InvariantChecker::promise_checks_enabled() const {
  return scheduler_instance_ != nullptr && !options_.outages &&
         !options_.reservations &&
         (base_ == "easy" || base_ == "conservative");
}

bool InvariantChecker::fifo_entry_stale(const FifoEntry& entry) const {
  const auto it = jobs_.find(entry.id);
  return it == jobs_.end() || it->second.running ||
         it->second.seq != entry.seq;
}

void InvariantChecker::pop_stale_fifo_front() {
  while (!fifo_.empty() && fifo_entry_stale(fifo_.front())) {
    fifo_.pop_front();
  }
}

void InvariantChecker::on_job_submit(std::int64_t time,
                                     const sim::SimJob& job) {
  if (job.procs < 1 || job.procs > options_.nodes) {
    report("job-shape", time, job.id,
           "queued with procs=" + std::to_string(job.procs) +
               " on a " + std::to_string(options_.nodes) + "-node machine");
  }
  if (options_.expect_all_complete) submitted_.insert(job.id);
  auto [it, fresh] = jobs_.try_emplace(job.id);
  if (!fresh && it->second.running) {
    report("lifecycle", time, job.id, "submitted while still running");
  }
  it->second = TrackedJob{};
  it->second.submit = time;
  it->second.procs = job.procs;
  it->second.estimate = job.estimate;
  it->second.seq = ++submit_seq_;
  if (track_order_) fifo_.push_back({job.id, it->second.seq});
  ++queued_tracked_;
  promise_candidates_.push_back(job.id);
}

void InvariantChecker::on_decision(const sim::Decision& d) {
  const auto it = jobs_.find(d.job_id);
  if (it == jobs_.end()) {
    report("lifecycle", d.time, d.job_id, "started but never submitted");
    return;
  }
  TrackedJob& job = it->second;
  if (job.running) {
    report("lifecycle", d.time, d.job_id, "started twice without ending");
    return;
  }
  if (d.time < job.submit) {
    report("lifecycle", d.time, d.job_id,
           "started before its submission at t=" +
               std::to_string(job.submit));
  }
  if (d.procs != job.procs) {
    report("lifecycle", d.time, d.job_id,
           "started with procs=" + std::to_string(d.procs) +
               " but was submitted with procs=" +
               std::to_string(job.procs));
  }

  if (base_ == "fcfs") {
    pop_stale_fifo_front();
    if (!fifo_.empty() && fifo_.front().id != d.job_id) {
      report("fcfs-order", d.time, d.job_id,
             "started ahead of earlier-arrived job " +
                 std::to_string(fifo_.front().id));
    }
  }
  if (job.promise >= 0 && d.time > job.promise) {
    report("promise", d.time, d.job_id,
           base_ + " promised a start by t=" + std::to_string(job.promise) +
               " but started at t=" + std::to_string(d.time));
  }

  if (base_ == "gang" && !d.virtual_start) {
    report("gang-virtual", d.time, d.job_id,
           "gang scheduling must not allocate machine nodes");
  }
  if (base_ != "gang" && !base_.empty() && d.virtual_start) {
    report("gang-virtual", d.time, d.job_id,
           "space-sharing scheduler issued a virtual (time-shared) start");
  }

  if (d.virtual_start) {
    virtual_procs_ += d.procs;
    if (gang_slots_ > 0 &&
        virtual_procs_ > gang_slots_ * options_.nodes) {
      report("gang-slots", d.time, d.job_id,
             "time-shared processors " + std::to_string(virtual_procs_) +
                 " exceed the Ousterhout matrix budget " +
                 std::to_string(gang_slots_) + " slots x " +
                 std::to_string(options_.nodes) + " nodes");
    }
  } else {
    busy_procs_ += d.procs;
    profile_.add_usage(d.time, sched::kForever, d.procs);
  }

  job.running = true;  // the fifo entry goes stale with this flag
  job.virtual_start = d.virtual_start;
  job.start = d.time;
  if (queued_tracked_ > 0) --queued_tracked_;
}

void InvariantChecker::on_job_complete(const sim::CompletedJob& c) {
  ++completions_;
  // A duplicate completion also trips "completed while not running"
  // below (the first completion erased the tracked entry), so skipping
  // the id sets when conservation is off loses no detection.
  if (options_.expect_all_complete && !completed_.insert(c.id).second) {
    report("conservation", c.end, c.id, "completed twice");
  }
  if (dropped_.count(c.id)) {
    report("recovery", c.end, c.id, "completed after being dropped");
  }
  const auto it = jobs_.find(c.id);
  if (it == jobs_.end() || !it->second.running) {
    report("lifecycle", c.end, c.id, "completed while not running");
    return;
  }
  const TrackedJob& job = it->second;
  if (c.start != job.start) {
    report("lifecycle", c.end, c.id,
           "completion reports start=" + std::to_string(c.start) +
               " but the decision was at t=" + std::to_string(job.start));
  }
  if (c.start < c.submit) {
    report("lifecycle", c.end, c.id,
           "completion record starts before its submit time");
  }
  if (c.end < c.start) {
    report("lifecycle", c.end, c.id, "completed before it started");
  }
  if (job.virtual_start) {
    virtual_procs_ -= c.procs;
  } else {
    busy_procs_ -= c.procs;
    profile_.remove_usage(c.end, sched::kForever, c.procs);
  }
  jobs_.erase(it);
  saved_work_.erase(c.id);
}

void InvariantChecker::on_job_kill(std::int64_t time,
                                   const sim::SimJob& job,
                                   const sim::KillInfo& info) {
  ++kills_;
  const auto it = jobs_.find(job.id);
  if (it == jobs_.end() || !it->second.running) {
    report("lifecycle", time, job.id, "killed while not running");
    return;
  }
  // Checkpoint work accounting: the engine cannot salvage more work
  // than the wall-clock the job actually held, and the lost
  // node-seconds it reports must be non-negative.
  const std::int64_t elapsed = time - it->second.start;
  if (info.saved_work < 0 || info.saved_work > elapsed) {
    report("recovery", time, job.id,
           "kill salvaged " + std::to_string(info.saved_work) +
               "s of checkpointed work from only " +
               std::to_string(elapsed) + "s of execution");
  }
  if (info.lost_node_seconds < 0) {
    report("recovery", time, job.id,
           "kill reports negative lost node-seconds " +
               std::to_string(info.lost_node_seconds));
  }
  if (info.saved_work > 0) saved_work_[job.id] += info.saved_work;
  if (it->second.virtual_start) {
    virtual_procs_ -= it->second.procs;
  } else {
    busy_procs_ -= it->second.procs;
    profile_.remove_usage(time, sched::kForever, it->second.procs);
  }
  jobs_.erase(it);
}

void InvariantChecker::on_job_restore(std::int64_t time,
                                      const sim::SimJob& job,
                                      std::int64_t resumed_work) {
  // A restore can only resume work some earlier kill checkpointed.
  const auto it = saved_work_.find(job.id);
  const std::int64_t saved = it == saved_work_.end() ? 0 : it->second;
  if (resumed_work <= 0 || resumed_work > saved) {
    report("recovery", time, job.id,
           "restore resumes " + std::to_string(resumed_work) +
               "s of work but kills only checkpointed " +
               std::to_string(saved) + "s");
  }
}

void InvariantChecker::on_job_drop(std::int64_t time, const sim::SimJob& job,
                                   sim::DropReason /*reason*/) {
  ++drops_;
  saved_work_.erase(job.id);
  if (options_.expect_all_complete && !dropped_.insert(job.id).second) {
    report("recovery", time, job.id, "dropped twice");
  }
  if (completed_.count(job.id)) {
    report("recovery", time, job.id, "dropped after completing");
  }
}

void InvariantChecker::record_promises(std::int64_t now) {
  if (!promise_checks_enabled()) {
    promise_candidates_.clear();
    return;
  }
  // Classic conservative: *every* queued job holds a reservation, so
  // every fresh submission gets a promise. The poll happens after the
  // scheduler pass, when its queue placements are current; the
  // hypothetical job is placed behind the whole queue, so the promise
  // is never earlier than the job's own reservation (weak but sound).
  if (base_ == "conservative" && reserve_depth_ == 0) {
    for (const std::int64_t id : promise_candidates_) {
      const auto it = jobs_.find(id);
      if (it == jobs_.end() || it->second.running) continue;
      const auto t = scheduler_instance_->predict_start(
          now, it->second.procs, it->second.estimate);
      if (t) it->second.promise = *t;
    }
  }
  promise_candidates_.clear();
  // The queue head is protected under both EASY (the shadow
  // reservation) and depth-capped conservative: record its promised
  // start once, when it first reaches the head. Estimates bound real
  // runtimes in replayed workloads, so the promise can only improve —
  // a later start is a broken guarantee.
  pop_stale_fifo_front();
  if (!fifo_.empty()) {
    auto& job = jobs_.find(fifo_.front().id)->second;
    if (job.promise < 0) {
      const auto t =
          scheduler_instance_->predict_start(now, job.procs, job.estimate);
      if (t) job.promise = *t;
    }
  }
}

void InvariantChecker::on_step(const sim::StepSnapshot& snap) {
  const std::int64_t up = snap.up_nodes();
  if (up != last_up_) {
    profile_.add_capacity_delta(snap.time, up - last_up_);
    last_up_ = up;
  }

  if (busy_procs_ > up) {
    report("capacity", snap.time, -1,
           "allocated processors " + std::to_string(busy_procs_) +
               " exceed the " + std::to_string(up) + " up nodes");
  }
  if (base_ == "gang") {
    if (snap.busy_nodes != 0) {
      report("gang-virtual", snap.time, -1,
             "gang run reports " + std::to_string(snap.busy_nodes) +
                 " machine-allocated nodes");
    }
    if (gang_slots_ > 0 && virtual_procs_ > gang_slots_ * up) {
      report("gang-slots", snap.time, -1,
             "time-shared processors " + std::to_string(virtual_procs_) +
                 " exceed " + std::to_string(gang_slots_) + " slots x " +
                 std::to_string(up) + " up nodes");
    }
  } else {
    // Cross-check all three accountings: the checker's busy counter,
    // the machine's node owners, and the replayed CapacityProfile must
    // tell the same story at every event timestamp.
    if (snap.busy_nodes != busy_procs_) {
      report("node-accounting", snap.time, -1,
             "machine reports " + std::to_string(snap.busy_nodes) +
                 " busy nodes but decisions add up to " +
                 std::to_string(busy_procs_));
    }
    const std::int64_t avail = profile_.available_at(snap.time);
    if (avail != snap.free_nodes) {
      report("profile-mismatch", snap.time, -1,
             "CapacityProfile says " + std::to_string(avail) +
                 " free, machine says " + std::to_string(snap.free_nodes));
    }
  }
  if (snap.queued_jobs != queued_tracked_) {
    report("queue-accounting", snap.time, -1,
           "engine reports " + std::to_string(snap.queued_jobs) +
               " queued jobs, observer events add up to " +
               std::to_string(queued_tracked_));
  }

  record_promises(snap.time);
  // Keep the arrival-order deque bounded even when record_promises
  // early-returns (outage runs, no watched scheduler): started jobs'
  // stale entries are drained here, so fifo_ stays O(queue depth).
  pop_stale_fifo_front();

  last_step_time_ = snap.time;
  if (++steps_since_compact_ >= kCompactEvery) {
    profile_.compact_before(snap.time);
    steps_since_compact_ = 0;
  }
}

void InvariantChecker::on_end(const sim::EngineStats& stats) {
  if (std::size_t(stats.jobs_completed) != completions_) {
    report("conservation", last_step_time_, -1,
           "engine counted " + std::to_string(stats.jobs_completed) +
               " completions, observer saw " + std::to_string(completions_));
  }
  if (std::size_t(stats.jobs_killed) != kills_) {
    report("conservation", last_step_time_, -1,
           "engine counted " + std::to_string(stats.jobs_killed) +
               " kills, observer saw " + std::to_string(kills_));
  }
  if (std::size_t(stats.jobs_dropped) != drops_) {
    report("conservation", last_step_time_, -1,
           "engine counted " + std::to_string(stats.jobs_dropped) +
               " drops, observer saw " + std::to_string(drops_));
  }
  if (options_.expect_all_complete) {
    // Resubmitted-job conservation: every submission terminates —
    // completed exactly once (checked above) or dropped.
    for (const std::int64_t id : submitted_) {
      if (!completed_.count(id) && !dropped_.count(id)) {
        report("conservation", last_step_time_, id,
               "submitted but never completed or dropped");
      }
    }
  }
  if (!options_.expect_all_complete) return;
  if (busy_procs_ != 0 || virtual_procs_ != 0) {
    report("conservation", last_step_time_, -1,
           "run ended with " + std::to_string(busy_procs_) +
               " allocated and " + std::to_string(virtual_procs_) +
               " time-shared processors still charged");
  }
}

}  // namespace pjsb::validate
