// Scheduler invariant checkers: the paper's ground rules as executable
// observers.
//
// The source paper standardizes *how* parallel job schedulers are
// evaluated; this subsystem turns the rules every policy must obey into
// sim::SimObserver-based checkers that ride along any replay:
//
//   * capacity — running jobs never oversubscribe the machine at any
//     instant, cross-checked two independent ways (an integer busy
//     counter vs. a sched::CapacityProfile fed the same events) against
//     the engine's own per-step node accounting;
//   * lifecycle — no start before submit, no completion before start,
//     no double start / double completion;
//   * policy contracts — FCFS starts strictly in arrival order; EASY
//     never delays the reserved queue head beyond its promised start;
//     conservative honors every promised reservation; gang never
//     exceeds its Ousterhout-matrix slot budget (and never allocates
//     machine nodes);
//   * conservation — every submitted job completes exactly once, even
//     when the engine recycles slots for constant-memory streaming;
//   * recovery — under faults, no job is both completed and dropped,
//     every submission terminates (completed once or dropped at the
//     retry limit), checkpoint salvage never exceeds the node-seconds a
//     job actually held, and a restore never resumes more work than its
//     kills saved.
//
// A checker records violations instead of throwing, so one run reports
// every broken rule; harnesses (fuzzer, campaign `validate=1` cells,
// swf_tool validate) decide whether a dirty run is fatal.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/profile.hpp"
#include "sched/query.hpp"
#include "sched/scheduler.hpp"
#include "sim/observer.hpp"

namespace pjsb::validate {

/// One broken invariant, with enough context to reproduce and triage.
struct Violation {
  std::string invariant;  ///< short id ("capacity", "fcfs-order", ...)
  std::int64_t time = 0;
  std::int64_t job_id = -1;
  std::string message;

  std::string to_string() const;
};

/// What the checker needs to know about the run it is watching.
struct CheckerOptions {
  /// Simulated machine size (required; the capacity baseline).
  std::int64_t nodes = 0;
  /// Registry spec of the scheduler under test ("easy reserve_depth=2").
  /// Enables the policy-contract checks; empty runs only the generic
  /// invariants (useful for custom policies not in the registry).
  std::string scheduler;
  /// The run injects outages. Promise-based policy checks are disabled
  /// (capacity loss legitimately slips reservations); capacity and
  /// lifecycle checks stay on and track the shrinking machine.
  bool outages = false;
  /// The run commits external advance reservations (disables promise
  /// checks the same way).
  bool reservations = false;
  /// Check at on_end that every submitted job completed (off for
  /// max_jobs-braked or incrementally driven runs). The check keeps
  /// O(jobs) id sets; turn it off to validate an unbounded stream in
  /// bounded memory (all other state is O(queue depth)).
  bool expect_all_complete = true;
  /// Violations stored verbatim; the total count stays exact.
  std::size_t max_violations = 64;
  /// The query surface of the scheduler driving the run (non-owning;
  /// optional). Needed only by the promise checks, which poll
  /// predict_start through the read-only sched::QueryInterface.
  const sched::QueryInterface* scheduler_instance = nullptr;
};

/// The composite invariant checker. Attach to a replay via
/// ReplayHooks::observe (or Engine::add_observer) and inspect after:
///
///   validate::InvariantChecker checker(options);
///   auto scheduler = sched::make_scheduler(spec);
///   checker.watch(*scheduler);  // optional: enables promise checks
///   sim::replay(trace, std::move(scheduler), sim_spec,
///               sim::ReplayHooks{}.observe(checker));
///   ASSERT_TRUE(checker.clean()) << checker.summary();
class InvariantChecker final : public sim::SimObserver {
 public:
  explicit InvariantChecker(const CheckerOptions& options);

  /// Set the watched scheduler instance after construction (the usual
  /// flow: options are built before the instance exists).
  void watch(const sched::QueryInterface& scheduler) {
    scheduler_instance_ = &scheduler;
  }

  bool clean() const { return violation_count_ == 0; }
  std::size_t violation_count() const { return violation_count_; }
  const std::vector<Violation>& violations() const { return violations_; }
  /// Multi-line report of every stored violation (or "clean").
  std::string summary() const;

  // -- SimObserver --
  void on_job_submit(std::int64_t time, const sim::SimJob& job) override;
  void on_decision(const sim::Decision& decision) override;
  void on_job_complete(const sim::CompletedJob& job) override;
  void on_job_kill(std::int64_t time, const sim::SimJob& job,
                   const sim::KillInfo& info) override;
  void on_job_restore(std::int64_t time, const sim::SimJob& job,
                      std::int64_t resumed_work) override;
  void on_job_drop(std::int64_t time, const sim::SimJob& job,
                   sim::DropReason reason) override;
  void on_step(const sim::StepSnapshot& snapshot) override;
  void on_end(const sim::EngineStats& stats) override;

 private:
  struct TrackedJob {
    std::int64_t submit = 0;  ///< last queue-entry time
    std::int64_t procs = 0;
    std::int64_t estimate = 0;
    std::int64_t start = -1;        ///< set when running
    std::int64_t promise = -1;      ///< promised latest start (-1: none)
    std::int64_t seq = 0;           ///< submission sequence number
    bool running = false;
    bool virtual_start = false;
  };

  /// One arrival-order queue entry. Entries are never erased from the
  /// middle (that would make validation O(queue) per start); instead an
  /// entry goes stale when its job started, terminated, or was
  /// resubmitted with a newer seq, and stale entries are popped lazily
  /// at the front.
  struct FifoEntry {
    std::int64_t id = 0;
    std::int64_t seq = 0;
  };

  void report(const std::string& invariant, std::int64_t time,
              std::int64_t job_id, std::string message);
  bool fifo_entry_stale(const FifoEntry& entry) const;
  void pop_stale_fifo_front();
  /// Pending promise queries are answered after the scheduler pass.
  void record_promises(std::int64_t now);
  bool promise_checks_enabled() const;

  CheckerOptions options_;
  const sched::QueryInterface* scheduler_instance_ = nullptr;

  // Policy identity, resolved from options_.scheduler via the registry.
  std::string base_;        ///< canonical scheduler name ("" if none)
  std::int64_t gang_slots_ = 0;
  std::int64_t reserve_depth_ = -1;  ///< easy/conservative knob
  /// Arrival order is tracked only for policies with an order or
  /// promise contract (fcfs/easy/conservative); other policies would
  /// just accumulate fifo_ entries nobody ever pops.
  bool track_order_ = false;

  // Live state mirrored from the event stream.
  std::unordered_map<std::int64_t, TrackedJob> jobs_;  ///< queued+running
  std::deque<FifoEntry> fifo_;  ///< arrival order (lazy deletion)
  std::int64_t submit_seq_ = 0;
  std::size_t queued_tracked_ = 0;  ///< currently queued jobs
  std::unordered_set<std::int64_t> submitted_;
  std::unordered_set<std::int64_t> completed_;
  std::unordered_set<std::int64_t> dropped_;  ///< abandoned under faults
  /// Cumulative checkpoint-saved work per job, accumulated across its
  /// kills; the restore contract checks resumed work against it.
  std::unordered_map<std::int64_t, std::int64_t> saved_work_;
  std::vector<std::int64_t> promise_candidates_;  ///< submitted this step

  // Two independent capacity accountings (counter vs. profile).
  std::int64_t busy_procs_ = 0;     ///< space-shared allocations
  std::int64_t virtual_procs_ = 0;  ///< gang (time-shared) allocations
  sched::CapacityProfile profile_;
  std::int64_t last_up_ = 0;
  std::int64_t last_step_time_ = 0;
  std::size_t steps_since_compact_ = 0;

  std::size_t completions_ = 0;
  std::size_t kills_ = 0;
  std::size_t drops_ = 0;
  std::size_t violation_count_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace pjsb::validate
