#include "validate/metamorphic.hpp"

#include <algorithm>

#include "core/swf/job_source.hpp"
#include "sched/registry.hpp"
#include "sim/fault/fault.hpp"
#include "sim/replay.hpp"
#include "validate/decisions.hpp"

namespace pjsb::validate {

namespace {

/// Effective ground-truth runtime the engine will use for a record
/// (SimJob::from_record clamps unknown/zero runtimes to 1). The scale
/// transformation normalizes these before multiplying so the scaled
/// workload's effective times are exactly factor x the originals.
std::int64_t effective_runtime(const swf::JobRecord& r) {
  return std::max<std::int64_t>(1, r.run_time);
}

MetamorphicResult compare(std::string relation,
                          const std::vector<sim::Decision>& expected,
                          const std::vector<sim::Decision>& actual) {
  MetamorphicResult result;
  result.relation = std::move(relation);
  const std::string diff = diff_decision_csv(decisions_to_csv(expected),
                                             decisions_to_csv(actual));
  if (!diff.empty()) {
    result.holds = false;
    result.message = diff;
  }
  return result;
}

}  // namespace

swf::Trace shift_submit_times(const swf::Trace& trace, std::int64_t delta) {
  swf::Trace shifted = trace;
  for (auto& r : shifted.records) {
    r.submit_time = std::max<std::int64_t>(0, r.submit_time) + delta;
  }
  return shifted;
}

swf::Trace scale_times(const swf::Trace& trace, std::int64_t factor) {
  swf::Trace scaled = trace;
  for (auto& r : scaled.records) {
    const std::int64_t runtime = effective_runtime(r);
    r.submit_time = std::max<std::int64_t>(0, r.submit_time) * factor;
    r.run_time = runtime * factor;
    if (r.requested_time != swf::kUnknown) {
      // Match the engine's estimate clamp (estimate >= runtime) before
      // scaling, so the scaled estimate is factor x the effective one.
      r.requested_time = std::max(r.requested_time, runtime) * factor;
    }
    if (r.think_time != swf::kUnknown && r.think_time > 0) {
      r.think_time *= factor;
    }
  }
  return scaled;
}

swf::Trace relabel_job_ids(const swf::Trace& trace, std::int64_t offset) {
  swf::Trace relabeled = trace;
  for (auto& r : relabeled.records) {
    if (r.job_number != swf::kUnknown) {
      r.job_number = r.job_number * 2 + offset;
    }
    if (r.preceding_job != swf::kUnknown && r.preceding_job > 0) {
      r.preceding_job = r.preceding_job * 2 + offset;
    }
  }
  return relabeled;
}

std::vector<MetamorphicResult> check_metamorphic(
    const swf::Trace& trace, const std::string& scheduler_spec,
    const MetamorphicOptions& options) {
  std::vector<MetamorphicResult> results;
  const auto base = replay_decisions(trace, scheduler_spec);

  // Which policy is this? (For the gang scale exemption only; an
  // unparseable custom spec runs every relation.)
  std::string base_name;
  try {
    base_name =
        sched::Registry::global().parse(scheduler_spec).info->name;
  } catch (const std::invalid_argument&) {
  }

  {
    auto expected = base;
    for (auto& d : expected) d.time += options.shift_delta;
    const auto actual = replay_decisions(
        shift_submit_times(trace, options.shift_delta), scheduler_spec);
    results.push_back(compare("shift", expected, actual));
  }

  if (base_name != "gang") {
    // Gang's round-robin progress accounting rounds fractional seconds
    // (ceil of a double), which does not commute with time scaling.
    auto expected = base;
    for (auto& d : expected) d.time *= options.scale_factor;
    const auto actual = replay_decisions(
        scale_times(trace, options.scale_factor), scheduler_spec);
    results.push_back(compare("scale", expected, actual));
  }

  {
    auto expected = base;
    for (auto& d : expected) d.job_id = d.job_id * 2 + options.relabel_offset;
    const auto actual = replay_decisions(
        relabel_job_ids(trace, options.relabel_offset), scheduler_spec);
    results.push_back(compare("relabel", expected, actual));
  }

  {
    swf::TraceSource source(trace);
    DecisionRecorder recorder;
    sim::SimulationSpec spec;
    spec.scheduler = scheduler_spec;
    spec.lookahead = options.stream_lookahead;
    sim::replay(source, spec, sim::ReplayHooks{}.observe(recorder));
    results.push_back(compare("stream", base, recorder.decisions()));
  }

  {
    // Stretch the MTBF until this seed draws no crash before the
    // horizon (the exponential first-arrival scales with its mean, so
    // doubling converges); the full fault machinery must then be inert.
    const std::int64_t nodes =
        std::max<std::int64_t>(1, trace.header.max_nodes.value_or(128));
    sim::fault::FaultModel model;
    model.seed = options.faultfree_seed != 0 ? options.faultfree_seed : 1;
    model.mtbf_seconds = 30 * std::int64_t(86400);
    const std::int64_t horizon = trace.horizon();
    for (int i = 0; i < 64; ++i) {
      if (sim::fault::generate_crashes(model, horizon, nodes)
              .records.empty()) {
        break;
      }
      model.mtbf_seconds *= 2;
    }
    DecisionRecorder recorder;
    sim::SimulationSpec spec;
    spec.scheduler = scheduler_spec;
    spec.faults = model.seed;
    spec.mtbf = model.mtbf_seconds;
    sim::replay(trace, spec, sim::ReplayHooks{}.observe(recorder));
    results.push_back(compare("faultfree", base, recorder.decisions()));
  }

  {
    // Checkpoint bookkeeping with zero overhead and no crashes must
    // not move a single decision.
    DecisionRecorder recorder;
    sim::SimulationSpec spec;
    spec.scheduler = scheduler_spec;
    spec.checkpoint = options.zerodump_interval;
    sim::replay(trace, spec, sim::ReplayHooks{}.observe(recorder));
    results.push_back(compare("zerodump", base, recorder.decisions()));
  }

  return results;
}

bool all_hold(const std::vector<MetamorphicResult>& results,
              std::string* failures) {
  bool ok = true;
  for (const auto& r : results) {
    if (r.holds) continue;
    ok = false;
    if (failures) {
      if (!failures->empty()) *failures += "\n";
      *failures += r.relation + ": " + r.message;
    }
  }
  return ok;
}

}  // namespace pjsb::validate
