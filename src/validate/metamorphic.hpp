// Metamorphic properties: the same workload under a systematic
// transformation must produce a predictably transformed schedule.
//
// Absolute oracles for a scheduler's full decision trace do not exist
// (that is the point of simulating), but *relations between runs* do:
//
//   * shift     — adding a constant to every submit time shifts every
//                 decision by exactly that constant (schedulers reason
//                 about relative time only);
//   * scale     — multiplying all times (submit, runtime, estimate) by
//                 an integer factor scales every decision time by the
//                 same factor (profile arithmetic is linear; gang is
//                 excluded: its round-robin progress accounting rounds
//                 fractional seconds, which does not commute with
//                 scaling);
//   * relabel   — renumbering job ids order-preservingly relabels the
//                 decision trace and changes nothing else (no policy
//                 may key behaviour off id magnitude);
//   * stream    — feeding the identical workload through a bounded-
//                 lookahead JobSource instead of a materialized trace
//                 replays byte-identically (ingestion mechanics must
//                 not leak into policy);
//   * faultfree — enabling fault injection with an MTBF long enough
//                 that the seeded crash schedule is empty replays
//                 byte-identically to the faults-disabled run (the
//                 recovery machinery must be inert without crashes);
//   * zerodump  — checkpointing with zero dump/read overhead and no
//                 faults replays byte-identically (checkpoint
//                 bookkeeping must not perturb burst walls).
//
// Each relation replays twice and diffs the (suitably mapped) decision
// traces; a violation names the first divergent decision.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/swf/trace.hpp"

namespace pjsb::validate {

// -- workload transformations (usable on their own in tests) ----------

/// Add `delta` to every record's submit time (delta >= 0 keeps times
/// valid; the trace must stay sorted, which a constant shift does).
swf::Trace shift_submit_times(const swf::Trace& trace, std::int64_t delta);

/// Multiply submit, run and requested times by `factor` (>= 1).
swf::Trace scale_times(const swf::Trace& trace, std::int64_t factor);

/// Renumber job ids order-preservingly (id -> id * 2 + offset),
/// remapping preceding-job references to match.
swf::Trace relabel_job_ids(const swf::Trace& trace, std::int64_t offset);

// -- the harness ------------------------------------------------------

struct MetamorphicResult {
  std::string relation;  ///< "shift", "scale", "relabel", "stream",
                         ///< "faultfree", "zerodump"
  bool holds = true;
  std::string message;   ///< first divergence when !holds
};

struct MetamorphicOptions {
  std::int64_t shift_delta = 7919;
  std::int64_t scale_factor = 3;
  std::int64_t relabel_offset = 1000;
  std::size_t stream_lookahead = 16;
  /// Fault seed for the faultfree relation (the harness stretches the
  /// MTBF until this seed's crash schedule over the horizon is empty).
  std::uint64_t faultfree_seed = 17;
  /// Checkpoint interval for the zerodump relation.
  std::int64_t zerodump_interval = 3600;
};

/// Check every relation that applies to `scheduler_spec` over `trace`.
/// The scale relation is skipped for gang (see header comment); all
/// others run for every registered scheduler.
std::vector<MetamorphicResult> check_metamorphic(
    const swf::Trace& trace, const std::string& scheduler_spec,
    const MetamorphicOptions& options = {});

/// True when every result holds; `failures` (optional out) collects a
/// printable line per broken relation.
bool all_hold(const std::vector<MetamorphicResult>& results,
              std::string* failures = nullptr);

}  // namespace pjsb::validate
