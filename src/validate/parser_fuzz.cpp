// Differential parser fuzzer: the legacy SWF readers are the oracle,
// the fast parser must agree byte-for-byte on records, header fields,
// verdicts and diagnostics — for every mutation, thread count and
// chunk size.
#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/swf/fast_reader.hpp"
#include "core/swf/reader.hpp"
#include "core/swf/stream_reader.hpp"
#include "core/swf/writer.hpp"
#include "util/rng.hpp"
#include "validate/fuzzer.hpp"

namespace pjsb::validate {

namespace {

/// Junk spliced into record lines: non-integers, overflow shapes,
/// signs, floats, NUL and UTF-8 bytes — each must produce the same
/// verdict from both parsers.
const char* const kSpliceTokens[] = {
    "-",       "--3",       "abc",  "1e5",
    "0x10",    "99999999999999999999",
    "+7",      "3.5",       "\xc3\xa9junk",
    "nan",     "9223372036854775807", "-9223372036854775808",
    "9223372036854775808",  // one past int64 max: overflow reject
};

std::string huge_token(util::Rng& rng) {
  std::string t(std::size_t(rng.uniform_int(64, 2048)), '9');
  if (rng.bernoulli(0.3)) t.insert(t.begin(), '-');
  return t;
}

/// One seeded base input: usually a generated workload rendered to SWF
/// text, sometimes the degenerate shapes (empty, comment-only,
/// header-only, garbage-only) that exercise the header/EOF paths.
std::string base_input(util::Rng& rng, std::uint64_t case_seed) {
  switch (rng.uniform_int(0, 9)) {
    case 0:
      return "";
    case 1:
      return ";Computer: fuzz\n;Note: comment-only file\n";
    case 2:
      return "; stray comment\n\n\n;another\n";
    case 3:
      return "not an swf line at all\n";
    default: {
      const auto trace = fuzz_workload(case_seed,
                                       std::size_t(rng.uniform_int(3, 40)),
                                       32);
      swf::WriterOptions w;
      w.include_header = rng.bernoulli(0.8);
      return swf::write_swf_string(trace, w);
    }
  }
}

void mutate(std::string& text, util::Rng& rng) {
  if (text.empty() && !rng.bernoulli(0.3)) return;
  const int rounds = int(rng.uniform_int(0, 4));
  for (int r = 0; r < rounds; ++r) {
    switch (rng.uniform_int(0, 8)) {
      case 0: {  // bit flip
        if (text.empty()) break;
        const auto pos = std::size_t(
            rng.uniform_int(0, std::int64_t(text.size()) - 1));
        text[pos] = char(text[pos] ^ (1 << rng.uniform_int(0, 7)));
        break;
      }
      case 1: {  // byte splice (NUL and high bytes included)
        if (text.empty()) break;
        const auto pos = std::size_t(
            rng.uniform_int(0, std::int64_t(text.size()) - 1));
        text[pos] = char(rng.uniform_int(0, 255));
        break;
      }
      case 2: {  // token splice
        const auto pos =
            std::size_t(rng.uniform_int(0, std::int64_t(text.size())));
        const auto& tok = kSpliceTokens[std::size_t(rng.uniform_int(
            0, std::int64_t(std::size(kSpliceTokens)) - 1))];
        text.insert(pos, tok);
        break;
      }
      case 3: {  // huge token
        const auto pos =
            std::size_t(rng.uniform_int(0, std::int64_t(text.size())));
        text.insert(pos, huge_token(rng));
        break;
      }
      case 4: {  // truncated tail
        if (text.empty()) break;
        text.resize(std::size_t(rng.uniform_int(0,
                                                std::int64_t(text.size()))));
        break;
      }
      case 5: {  // CRLF: convert some or all newlines
        std::string out;
        out.reserve(text.size() + 16);
        const bool all = rng.bernoulli(0.5);
        for (char c : text) {
          if (c == '\n' && (all || rng.bernoulli(0.3))) out += '\r';
          out += c;
        }
        text = std::move(out);
        break;
      }
      case 6: {  // insert a comment / blank / junk line mid-file
        const char* lines[] = {";mid comment\n", "\n", "   \t  \n",
                               "1 2 3\n", "; \n", "\v\f\n"};
        const auto pos =
            std::size_t(rng.uniform_int(0, std::int64_t(text.size())));
        text.insert(pos, lines[std::size_t(rng.uniform_int(
                             0, std::int64_t(std::size(lines)) - 1))]);
        break;
      }
      case 7: {  // duplicate a random span
        if (text.empty()) break;
        const auto a = std::size_t(
            rng.uniform_int(0, std::int64_t(text.size()) - 1));
        const auto len = std::size_t(rng.uniform_int(
            1, std::min<std::int64_t>(200, std::int64_t(text.size() - a))));
        const auto pos =
            std::size_t(rng.uniform_int(0, std::int64_t(text.size())));
        text.insert(pos, text.substr(a, len));
        break;
      }
      case 8: {  // delete a random span
        if (text.empty()) break;
        const auto a = std::size_t(
            rng.uniform_int(0, std::int64_t(text.size()) - 1));
        const auto len = std::size_t(rng.uniform_int(
            1, std::min<std::int64_t>(200, std::int64_t(text.size() - a))));
        text.erase(a, len);
        break;
      }
    }
  }
}

std::string describe(const swf::ParseError& e) {
  return std::to_string(e.line) + ": " + e.message;
}

/// Drain a reader; returns the records in order.
std::vector<swf::JobRecord> drain(swf::TraceReader& reader) {
  std::vector<swf::JobRecord> records;
  while (auto r = reader.next()) records.push_back(*r);
  return records;
}

struct CaseFailure {
  bool failed = false;
  std::string detail;
};

/// Run one mutated input through every parser and cross-check.
CaseFailure check_case(const std::string& text, bool strict,
                       bool allow_extra, std::size_t chunk_bytes,
                       const std::vector<int>& thread_counts) {
  auto fail = [](std::string detail) {
    return CaseFailure{true, std::move(detail)};
  };

  // Oracle 1: the in-memory Reader (all records, unbounded errors).
  swf::ReaderOptions legacy_options;
  legacy_options.strict = strict;
  legacy_options.allow_extra_fields = allow_extra;
  const auto legacy = swf::read_swf_string(text, legacy_options);

  // Oracle 2: the StreamReader (summaries, bounded errors), drained.
  swf::StreamReaderOptions stream_options;
  stream_options.strict = strict;
  stream_options.allow_extra_fields = allow_extra;
  auto stream = std::make_unique<swf::StreamReader>(
      std::make_unique<std::istringstream>(text), "fuzz", stream_options);
  const auto stream_records = drain(*stream);

  for (const int threads : thread_counts) {
    swf::FastReaderOptions fast_options;
    fast_options.strict = strict;
    fast_options.allow_extra_fields = allow_extra;
    fast_options.threads = threads;
    fast_options.chunk_bytes = chunk_bytes;
    const std::string tag =
        " [threads=" + std::to_string(threads) +
        " chunk=" + std::to_string(chunk_bytes) +
        (strict ? " strict" : "") + (allow_extra ? " allow_extra" : "") +
        "]";

    // Batch facade vs Reader: everything must match, including
    // partial-execution records and the unbounded error list.
    const auto fast = swf::fast_read_swf_string(text, fast_options);
    if (fast.trace.records != legacy.trace.records) {
      return fail("batch records diverge from Reader" + tag);
    }
    if (!(fast.trace.header == legacy.trace.header)) {
      return fail("batch header diverges from Reader" + tag);
    }
    if (fast.errors.size() != legacy.errors.size()) {
      return fail("batch error count " + std::to_string(fast.errors.size()) +
                  " != Reader " + std::to_string(legacy.errors.size()) + tag);
    }
    for (std::size_t i = 0; i < fast.errors.size(); ++i) {
      if (!(fast.errors[i] == legacy.errors[i])) {
        return fail("batch error " + describe(fast.errors[i]) +
                    " != Reader " + describe(legacy.errors[i]) + tag);
      }
    }

    // JobSource facade vs StreamReader: summaries, counters and the
    // bounded error storage must agree after a full drain.
    swf::FastReader reader(text, "fuzz", fast_options);
    const auto fast_records = drain(reader);
    if (fast_records != stream_records) {
      return fail("streamed records diverge from StreamReader" + tag);
    }
    if (!(reader.header() == stream->header())) {
      return fail("header diverges from StreamReader" + tag);
    }
    if (reader.ok() != stream->ok()) {
      return fail("verdict diverges: fast ok()=" +
                  std::to_string(reader.ok()) + " stream ok()=" +
                  std::to_string(stream->ok()) + tag);
    }
    if (reader.error_count() != stream->error_count()) {
      return fail("error_count " + std::to_string(reader.error_count()) +
                  " != stream " + std::to_string(stream->error_count()) +
                  tag);
    }
    if (reader.errors() != stream->errors()) {
      return fail("bounded error list diverges from StreamReader" + tag);
    }
    if (reader.errors().size() > fast_options.max_stored_errors) {
      return fail("error storage exceeds bound: " +
                  std::to_string(reader.errors().size()) + tag);
    }
    if (reader.partials_skipped() != stream->partials_skipped()) {
      return fail("partials_skipped " +
                  std::to_string(reader.partials_skipped()) + " != stream " +
                  std::to_string(stream->partials_skipped()) + tag);
    }
    if (reader.lines_read() != stream->lines_read()) {
      return fail("lines_read " + std::to_string(reader.lines_read()) +
                  " != stream " + std::to_string(stream->lines_read()) + tag);
    }
  }
  return {};
}

}  // namespace

std::string ParserFuzzReport::summary() const {
  std::string s = "parser fuzzer: " + std::to_string(cases) + " cases, " +
                  std::to_string(failure_count) + " failure(s)";
  if (failure_count > failures.size()) {
    s += " (first " + std::to_string(failures.size()) + " shown)";
  }
  for (const auto& f : failures) s += "\n  " + f;
  return s;
}

ParserFuzzReport run_parser_fuzzer(const ParserFuzzOptions& options) {
  ParserFuzzReport report;
  for (int c = 0; c < options.cases; ++c) {
    const std::uint64_t case_seed =
        util::derive_seed(options.seed, std::uint64_t(c));
    util::Rng rng(case_seed);
    std::string text = base_input(rng, case_seed);
    mutate(text, rng);
    const bool strict = rng.bernoulli(0.25);
    const bool allow_extra = rng.bernoulli(0.25);
    // Tiny random chunks move the boundaries through every line; 0
    // leaves auto-chunking in play.
    const std::size_t chunk_bytes =
        rng.bernoulli(0.75) ? std::size_t(rng.uniform_int(1, 257)) : 0;
    ++report.cases;
    CaseFailure failure;
    try {
      failure = check_case(text, strict, allow_extra, chunk_bytes,
                           options.thread_counts);
    } catch (const std::exception& e) {
      failure = {true, std::string("exception: ") + e.what()};
    }
    if (failure.failed) {
      ++report.failure_count;
      if (report.failures.size() < options.max_failures) {
        report.failures.push_back(
            "[case=" + std::to_string(c) +
            " seed=" + std::to_string(options.seed) +
            " (derived " + std::to_string(case_seed) + ")] " +
            failure.detail);
      }
    }
  }
  return report;
}

}  // namespace pjsb::validate
