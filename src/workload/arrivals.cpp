#include "workload/arrivals.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/time_util.hpp"

namespace pjsb::workload {

PoissonArrivals::PoissonArrivals(double mean_interarrival_seconds)
    : rate_(1.0 / mean_interarrival_seconds) {
  if (!(mean_interarrival_seconds > 0)) {
    throw std::invalid_argument("PoissonArrivals: mean must be positive");
  }
}

std::int64_t PoissonArrivals::next(util::Rng& rng) {
  now_ += rng.exponential(rate_);
  return std::int64_t(now_);
}

DailyCycle DailyCycle::flat() {
  DailyCycle c;
  c.weights.fill(1.0);
  return c;
}

DailyCycle DailyCycle::production() {
  // Relative submission intensity per hour of day, shaped after the
  // canonical daily cycle of the archive logs (nighttime trough around
  // 4-6 AM, daytime plateau with a mid-afternoon peak).
  DailyCycle c;
  c.weights = {0.40, 0.30, 0.25, 0.22, 0.20, 0.22,   // 0-5
               0.30, 0.50, 0.85, 1.20, 1.45, 1.55,   // 6-11
               1.50, 1.60, 1.70, 1.65, 1.55, 1.40,   // 12-17
               1.15, 0.95, 0.80, 0.70, 0.58, 0.48};  // 18-23
  return c;
}

double DailyCycle::max_weight() const {
  return *std::max_element(weights.begin(), weights.end());
}

double DailyCycle::mean_weight() const {
  double sum = 0.0;
  for (double w : weights) sum += w;
  return sum / double(weights.size());
}

DailyCycleArrivals::DailyCycleArrivals(double mean_interarrival_seconds,
                                       DailyCycle cycle)
    : cycle_(cycle) {
  if (!(mean_interarrival_seconds > 0)) {
    throw std::invalid_argument("DailyCycleArrivals: mean must be positive");
  }
  // Thinning accepts with probability w(h)/w_max, so the average accept
  // rate is mean_w / max_w; compensate so the long-run mean interarrival
  // equals the configured value.
  const double mean_rate = 1.0 / mean_interarrival_seconds;
  peak_rate_ = mean_rate * cycle_.max_weight() / cycle_.mean_weight();
}

std::int64_t DailyCycleArrivals::next(util::Rng& rng) {
  const double wmax = cycle_.max_weight();
  while (true) {
    now_ += rng.exponential(peak_rate_);
    const int hour = util::seconds_into_day(std::int64_t(now_)) / 3600;
    const double w = cycle_.weights[std::size_t(hour)];
    if (rng.uniform() * wmax <= w) return std::int64_t(now_);
  }
}

}  // namespace pjsb::workload
