// Arrival processes for synthetic workloads.
//
// Two processes cover the published models: a plain Poisson stream and
// a non-homogeneous Poisson stream modulated by a daily cycle (rush
// hours), realized by thinning. Both produce integer submit times in
// seconds, as SWF requires.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace pjsb::workload {

/// Homogeneous Poisson arrivals with the given mean interarrival time.
class PoissonArrivals {
 public:
  explicit PoissonArrivals(double mean_interarrival_seconds);

  /// Advance and return the next arrival time (seconds, monotone).
  std::int64_t next(util::Rng& rng);
  void reset(std::int64_t start = 0) { now_ = double(start); }

 private:
  double rate_;
  double now_ = 0.0;
};

/// Hour-of-day weight profile. Weights are relative; the daily-cycle
/// process thins a Poisson stream so that the *average* rate matches
/// the configured mean interarrival while hour h receives a share
/// proportional to weights[h].
struct DailyCycle {
  std::array<double, 24> weights;

  /// The flat profile (all hours equal).
  static DailyCycle flat();
  /// A production-like profile: low load 0-7h, ramp through the
  /// morning, peak 13-17h, decline in the evening — the classic shape
  /// observed in the logs the paper canonizes (daytime rush hours).
  static DailyCycle production();

  double max_weight() const;
  double mean_weight() const;
};

/// Non-homogeneous Poisson arrivals via thinning over a daily cycle.
class DailyCycleArrivals {
 public:
  DailyCycleArrivals(double mean_interarrival_seconds, DailyCycle cycle);

  std::int64_t next(util::Rng& rng);
  void reset(std::int64_t start = 0) { now_ = double(start); }

 private:
  double peak_rate_;
  DailyCycle cycle_;
  double now_ = 0.0;
};

}  // namespace pjsb::workload
