#include "workload/downey97.hpp"

#include <algorithm>
#include <cmath>

#include "workload/arrivals.hpp"

namespace pjsb::workload {

double DowneyJob::speedup(double n) const {
  const double A = std::max(1.0, avg_parallelism);
  const double s = std::max(0.0, sigma);
  if (n <= 1.0) return std::max(0.0, n);  // fractional n used in tests
  if (s <= 1.0) {
    // Low-variance case of Downey's published family.
    if (n <= A) {
      return A * n / (A + s / 2.0 * (n - 1.0));
    }
    if (n <= 2.0 * A - 1.0) {
      return A * n / (s * (A - 0.5) + n * (1.0 - s / 2.0));
    }
    return A;
  }
  // High-variance case.
  const double knee = A + A * s - s;
  if (n < knee) {
    return n * A * (s + 1.0) / (s * (n + A - 1.0) + A);
  }
  return A;
}

double DowneyJob::runtime_on(std::int64_t n) const {
  const double s = speedup(double(std::max<std::int64_t>(1, n)));
  return work / std::max(1e-9, s);
}

std::int64_t DowneyJob::best_allocation(std::int64_t max_procs) const {
  // S is nondecreasing and saturates at A; scan is cheap and exact
  // (max_procs is a machine size, not astronomically large).
  std::int64_t best = 1;
  double best_rt = runtime_on(1);
  for (std::int64_t n = 2; n <= max_procs; ++n) {
    const double rt = runtime_on(n);
    if (rt < best_rt - 1e-12) {
      best_rt = rt;
      best = n;
    }
  }
  return best;
}

DowneyWorkload generate_downey97_detailed(const Downey97Params& params,
                                          const ModelConfig& config,
                                          util::Rng& rng) {
  PoissonArrivals poisson(config.mean_interarrival);
  DailyCycleArrivals cycled(config.mean_interarrival,
                            DailyCycle::production());

  DowneyWorkload out;
  out.moldable.reserve(config.jobs);
  std::vector<RawModelJob> rigid;
  rigid.reserve(config.jobs);

  const double lw_lo = std::log2(params.work_lo);
  const double lw_hi = std::log2(params.work_hi);
  const double la_hi = std::log2(params.parallelism_hi);

  for (std::size_t i = 0; i < config.jobs; ++i) {
    DowneyJob job;
    job.submit = config.daily_cycle ? cycled.next(rng) : poisson.next(rng);
    job.work = std::exp2(rng.uniform(lw_lo, lw_hi));
    job.avg_parallelism =
        std::min(std::exp2(rng.uniform(0.0, la_hi)),
                 double(config.machine_nodes));
    job.sigma = rng.uniform(0.0, params.sigma_hi);
    out.moldable.push_back(job);

    RawModelJob r;
    r.submit = job.submit;
    r.procs = std::clamp<std::int64_t>(
        std::int64_t(std::lround(job.avg_parallelism)), 1,
        config.machine_nodes);
    r.runtime = std::max<std::int64_t>(
        1, std::int64_t(std::lround(job.runtime_on(r.procs))));
    rigid.push_back(r);
  }
  out.rigid_trace =
      package_jobs(std::move(rigid), config, "Downey97 (rigid A)", rng);
  return out;
}

swf::Trace generate_downey97(const Downey97Params& params,
                             const ModelConfig& config, util::Rng& rng) {
  return generate_downey97_detailed(params, config, rng).rigid_trace;
}

}  // namespace pjsb::workload
