// Downey '97 model ("A parallel workload model and its implications for
// processor allocation" — reference [13] of the paper).
//
// This is the paper's exemplar of a *flexible* job model: instead of
// (procs, runtime) it provides "data about the total computation and
// the speedup function ... This enables the scheduler to choose the
// number of processors". We implement Downey's published speedup
// family S(n; A, sigma) exactly, plus his log-uniform distributions of
// total work L and average parallelism A, and provide both a rigid SWF
// rendering (allocation = A) and the detailed moldable jobs used by
// experiment E10.
#pragma once

#include <vector>

#include "workload/model.hpp"

namespace pjsb::workload {

/// A moldable job in Downey's parameterization.
struct DowneyJob {
  double work = 1.0;       ///< L: total work (node-seconds at S(1)=1)
  double avg_parallelism = 1.0;  ///< A
  double sigma = 0.0;      ///< variance of parallelism
  std::int64_t submit = 0;

  /// Downey's speedup function S(n). Piecewise in n with the published
  /// low-variance (sigma <= 1) and high-variance (sigma > 1) cases;
  /// S(1) = 1, S is nondecreasing, and S(n) = A for large n.
  double speedup(double n) const;

  /// Wall-clock runtime when run on n processors: L / S(n).
  double runtime_on(std::int64_t n) const;

  /// The allocation in [1, max_procs] minimizing runtime (ties -> fewer
  /// processors). With monotone S this is min(max_procs, saturation).
  std::int64_t best_allocation(std::int64_t max_procs) const;
};

struct Downey97Params {
  /// log2(work) uniform in [log2(work_lo), log2(work_hi)] (seconds).
  double work_lo = 60.0;
  double work_hi = 200000.0;
  /// log2(A) uniform in [0, log2(parallelism_hi)].
  double parallelism_hi = 150.0;
  /// sigma uniform in [0, sigma_hi].
  double sigma_hi = 2.0;
};

/// Detailed generation: moldable jobs plus the rigid SWF packaging of
/// the same stream (allocation = round(A), clamped to the machine).
struct DowneyWorkload {
  swf::Trace rigid_trace;
  std::vector<DowneyJob> moldable;
};

DowneyWorkload generate_downey97_detailed(const Downey97Params& params,
                                          const ModelConfig& config,
                                          util::Rng& rng);

/// Convenience: rigid trace only (ModelKind dispatch).
swf::Trace generate_downey97(const Downey97Params& params,
                             const ModelConfig& config, util::Rng& rng);

}  // namespace pjsb::workload
