#include "workload/feitelson96.hpp"

#include <algorithm>
#include <cmath>

#include "workload/arrivals.hpp"

namespace pjsb::workload {

namespace {

bool is_pow2(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// Build the size distribution table p(n) ~ n^-alpha with boosts.
std::vector<double> size_weights(const Feitelson96Params& p,
                                 std::int64_t max_nodes) {
  std::vector<double> w(static_cast<std::size_t>(max_nodes));
  for (std::int64_t n = 1; n <= max_nodes; ++n) {
    double weight = std::pow(double(n), -p.size_alpha);
    if (is_pow2(n)) weight *= p.pow2_boost;
    if (n == max_nodes) weight *= p.full_machine_boost;
    w[std::size_t(n - 1)] = weight;
  }
  return w;
}

}  // namespace

swf::Trace generate_feitelson96(const Feitelson96Params& params,
                                const ModelConfig& config, util::Rng& rng) {
  const auto weights = size_weights(params, config.machine_nodes);
  PoissonArrivals poisson(config.mean_interarrival);
  DailyCycleArrivals cycled(config.mean_interarrival,
                            DailyCycle::production());

  std::vector<RawModelJob> jobs;
  jobs.reserve(config.jobs);
  while (jobs.size() < config.jobs) {
    const std::int64_t submit =
        config.daily_cycle ? cycled.next(rng) : poisson.next(rng);
    const std::int64_t procs = std::int64_t(rng.categorical(weights)) + 1;

    // Size-correlated hyper-exponential runtime.
    const double log2n = std::log2(double(procs) + 1.0);
    const double p_long = std::clamp(
        params.long_prob_base + params.long_prob_slope * log2n, 0.0, 0.95);
    // Reruns: the same job (size, similar runtime) resubmitted after a
    // pause; the whole burst counts against the requested job budget.
    const auto reruns = std::max<std::int64_t>(
        1, std::int64_t(rng.exponential(1.0 / params.mean_reruns)) + 1);
    std::int64_t t = submit;
    for (std::int64_t k = 0; k < reruns && jobs.size() < config.jobs; ++k) {
      RawModelJob j;
      j.submit = t;
      j.procs = procs;
      const double mean = rng.bernoulli(p_long) ? params.long_mean
                                                : params.short_mean;
      j.runtime = std::max<std::int64_t>(
          1, std::int64_t(rng.exponential(1.0 / mean)));
      jobs.push_back(j);
      t += j.runtime +
           std::int64_t(rng.exponential(1.0 / params.rerun_gap_mean));
    }
  }
  jobs.resize(config.jobs);
  return package_jobs(std::move(jobs), config, "Feitelson96", rng);
}

}  // namespace pjsb::workload
